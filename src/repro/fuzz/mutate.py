"""Mutation and crossover operators over :class:`SyscallProgram`.

Every operator is a pure function of ``(program, rng)`` — all
randomness flows from the caller's seeded :class:`random.Random`, so a
fuzzing campaign is deterministic per seed.  The operator mix mirrors
the feedback-driven fuzzing follow-up: structural syscall mutations
(insert/delete/swap), argument mutations, concurrency mutations
(thread count, interleaving seed), and corpus splicing.
"""

from __future__ import annotations

import random
from typing import Callable, List, Tuple

from repro.fuzz.program import _ARITY, SyscallOp, SyscallProgram, kinds_for

#: Bounds keeping candidates cheap to execute.
MAX_THREADS = 4
MAX_OPS_PER_THREAD = 24
_ARG_RANGE = 64  # raw slot values; consumers reduce modulo pool sizes


def random_op(rng: random.Random, subsystem: str = "vfs") -> SyscallOp:
    """One random op from *subsystem*'s vocabulary.

    For vfs the draw sequence is identical to the historical one (same
    ``rng.choice`` over the same tuple), so seeded campaigns reproduce.
    """
    kind = rng.choice(kinds_for(subsystem))
    return SyscallOp(
        kind, tuple(rng.randrange(_ARG_RANGE) for _ in range(_ARITY[kind]))
    )


def random_program(
    rng: random.Random,
    max_threads: int = MAX_THREADS,
    max_ops: int = MAX_OPS_PER_THREAD,
    subsystem: str = "vfs",
) -> SyscallProgram:
    """A fresh random candidate (corpus bootstrap / exploration)."""
    nthreads = rng.randint(1, max_threads)
    return SyscallProgram(
        threads=[
            [random_op(rng, subsystem) for _ in range(rng.randint(1, max_ops))]
            for _ in range(nthreads)
        ],
        sched_seed=rng.randrange(1 << 30),
        subsystem=subsystem,
    )


def _copy(program: SyscallProgram) -> SyscallProgram:
    return SyscallProgram(
        threads=[list(thread) for thread in program.threads],
        sched_seed=program.sched_seed,
        subsystem=program.subsystem,
    )


def _pick_thread(program: SyscallProgram, rng: random.Random) -> int:
    return rng.randrange(len(program.threads))


# ----------------------------------------------------------------------
# Structural operators
# ----------------------------------------------------------------------

def insert_op(program: SyscallProgram, rng: random.Random) -> SyscallProgram:
    out = _copy(program)
    thread = out.threads[_pick_thread(out, rng)]
    if len(thread) < MAX_OPS_PER_THREAD:
        thread.insert(rng.randint(0, len(thread)), random_op(rng, out.subsystem))
    return out


def delete_op(program: SyscallProgram, rng: random.Random) -> SyscallProgram:
    out = _copy(program)
    thread = out.threads[_pick_thread(out, rng)]
    if len(thread) > 1:
        del thread[rng.randrange(len(thread))]
    return out


def swap_ops(program: SyscallProgram, rng: random.Random) -> SyscallProgram:
    out = _copy(program)
    thread = out.threads[_pick_thread(out, rng)]
    if len(thread) >= 2:
        i, j = rng.sample(range(len(thread)), 2)
        thread[i], thread[j] = thread[j], thread[i]
    return out


def mutate_arg(program: SyscallProgram, rng: random.Random) -> SyscallProgram:
    """Perturb one argument slot (path/fd/flag analogue)."""
    out = _copy(program)
    thread = out.threads[_pick_thread(out, rng)]
    index = rng.randrange(len(thread))
    op = thread[index]
    if op.args:
        slot = rng.randrange(len(op.args))
        args = list(op.args)
        args[slot] = rng.randrange(_ARG_RANGE)
        thread[index] = SyscallOp(op.kind, tuple(args))
    else:
        thread[index] = random_op(rng, out.subsystem)
    return out


# ----------------------------------------------------------------------
# Concurrency operators
# ----------------------------------------------------------------------

def mutate_threads(program: SyscallProgram, rng: random.Random) -> SyscallProgram:
    """Add or remove a whole thread (concurrency-shape mutation)."""
    out = _copy(program)
    if len(out.threads) < MAX_THREADS and (
        len(out.threads) == 1 or rng.random() < 0.5
    ):
        out.threads.append(
            [random_op(rng, out.subsystem)
             for _ in range(rng.randint(1, MAX_OPS_PER_THREAD // 2))]
        )
    elif len(out.threads) > 1:
        del out.threads[rng.randrange(len(out.threads))]
    return out


def mutate_sched_seed(program: SyscallProgram, rng: random.Random) -> SyscallProgram:
    """New interleaving: same ops, different schedule."""
    out = _copy(program)
    out.sched_seed = rng.randrange(1 << 30)
    return out


# ----------------------------------------------------------------------
# Crossover
# ----------------------------------------------------------------------

def splice(
    first: SyscallProgram, second: SyscallProgram, rng: random.Random
) -> SyscallProgram:
    """AFL-style splice: thread bodies cut-and-joined across parents."""
    threads: List[List[SyscallOp]] = []
    nthreads = min(MAX_THREADS, max(len(first.threads), len(second.threads)))
    for index in range(nthreads):
        a = first.threads[index % len(first.threads)]
        b = second.threads[index % len(second.threads)]
        cut_a = rng.randint(0, len(a))
        cut_b = rng.randint(0, len(b))
        body = (list(a[:cut_a]) + list(b[cut_b:]))[:MAX_OPS_PER_THREAD]
        threads.append(body or [random_op(rng, first.subsystem)])
    seed = first.sched_seed if rng.random() < 0.5 else second.sched_seed
    return SyscallProgram(
        threads=threads, sched_seed=seed, subsystem=first.subsystem
    )


MUTATORS: Tuple[Callable[[SyscallProgram, random.Random], SyscallProgram], ...] = (
    insert_op,
    insert_op,  # weighted: growth finds more than shrinkage
    delete_op,
    swap_ops,
    mutate_arg,
    mutate_arg,
    mutate_threads,
    mutate_sched_seed,
)


def mutate(program: SyscallProgram, rng: random.Random, rounds: int = 0) -> SyscallProgram:
    """Apply 1..3 randomly chosen operators (stacked, like AFL havoc)."""
    out = program
    for _ in range(rounds or rng.randint(1, 3)):
        out = rng.choice(MUTATORS)(out, rng)
    return out
