"""The fuzzing loop: generations of mutate → execute → admit.

One :class:`FuzzOrchestrator` runs a campaign:

1. **Baseline** — run the seed workload (the benchmark mix by default)
   once and extract its coverage map; the corpus frontier starts there,
   so every admitted program is, by construction, *beyond* what the
   paper's workload mix already exercises.
2. **Generations** — each generation breeds ``population`` candidates
   (energy-weighted mutation of corpus parents, splicing, and a trickle
   of fresh random programs), executes them — optionally fanned across
   a process pool (``jobs``), bit-identical to serial — and admits the
   ones that cover new ``(member, access, lockset)`` pairs or
   functions.
3. **Records** — per-generation progress (candidates, admissions,
   global pair/function coverage, wall time) lands in the corpus for
   reporting and the ``BENCH_fuzz.json`` trajectory.

Everything except wall-clock timestamps is a pure function of the
config, so two campaigns with the same seed produce the same corpus.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.fuzz.corpus import Corpus, GenerationRecord
from repro.fuzz.feedback import CoverageMap, execute_batch, execute_program
from repro.fuzz.mutate import mutate, random_program, splice
from repro.fuzz.program import SyscallProgram


@dataclass
class FuzzConfig:
    """Campaign parameters (all deterministic-relevant)."""

    seed: int = 0
    generations: int = 3
    population: int = 8
    baseline_scale: float = 1.0
    jobs: Optional[int] = None
    max_threads: int = 4
    max_ops: int = 24
    #: Which simulated subsystem the campaign fuzzes ("vfs" or "net").
    subsystem: str = "vfs"
    #: Probability mix for candidate breeding.
    p_mutate: float = 0.70
    p_splice: float = 0.15  # remainder is fresh random programs


@dataclass
class FuzzOutcome:
    """A finished campaign."""

    corpus: Corpus
    baseline: CoverageMap
    config: FuzzConfig

    @property
    def pair_growth(self) -> float:
        """Relative growth of pair coverage over the baseline workload."""
        base = self.baseline.pair_count
        if not base:
            return 0.0
        return (self.corpus.global_coverage.pair_count - base) / base


def baseline_coverage(
    seed: int, scale: float, subsystem: str = "vfs"
) -> CoverageMap:
    """Coverage of the seed workload: the benchmark mix for vfs, the
    socket benchmark for net."""
    if subsystem == "net":
        from repro.workloads.net import NetBench

        result = NetBench(seed=seed, scale=scale).run()
        return CoverageMap.of_database(result.to_database())
    from repro.workloads.mix import BenchmarkMix

    mix = BenchmarkMix(seed=seed, scale=scale).run()
    return CoverageMap.of_database(mix.to_database())


class FuzzOrchestrator:
    """Runs one coverage-guided fuzzing campaign."""

    def __init__(
        self,
        config: Optional[FuzzConfig] = None,
        progress: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.config = config or FuzzConfig()
        self.rng = random.Random(self.config.seed)
        self._progress = progress or (lambda message: None)

    # -- breeding ------------------------------------------------------

    def _breed(self, corpus: Corpus) -> SyscallProgram:
        config, rng = self.config, self.rng
        roll = rng.random()
        if corpus.entries and roll < config.p_mutate:
            return mutate(corpus.select(rng).program, rng)
        if len(corpus.entries) >= 2 and roll < config.p_mutate + config.p_splice:
            first = corpus.select(rng)
            second = corpus.select(rng)
            return splice(first.program, second.program, rng)
        return random_program(
            rng, config.max_threads, config.max_ops, config.subsystem
        )

    # -- campaign ------------------------------------------------------

    def run(self, baseline: Optional[CoverageMap] = None) -> FuzzOutcome:
        config = self.config
        if baseline is None:
            workload = "netbench" if config.subsystem == "net" else "mix"
            self._progress(
                f"baseline: {workload} seed={config.seed} "
                f"scale={config.baseline_scale}"
            )
            baseline = baseline_coverage(
                config.seed, config.baseline_scale, config.subsystem
            )
        corpus = Corpus(baseline, seed=config.seed)
        self._progress(
            f"baseline coverage: {baseline.pair_count} pairs, "
            f"{baseline.function_count} functions"
        )
        for generation in range(config.generations):
            t0 = time.perf_counter()
            candidates = [self._breed(corpus) for _ in range(config.population)]
            executions = execute_batch(candidates, jobs=config.jobs)
            admitted = 0
            for program, execution in zip(candidates, executions):
                if corpus.admit(program, execution.coverage, generation):
                    admitted += 1
            record = GenerationRecord(
                generation=generation,
                candidates=len(candidates),
                admitted=admitted,
                pair_coverage=corpus.global_coverage.pair_count,
                function_coverage=corpus.global_coverage.function_count,
                wall_s=time.perf_counter() - t0,
            )
            corpus.records.append(record)
            self._progress(
                f"gen {generation}: {admitted}/{len(candidates)} admitted, "
                f"{record.pair_coverage} pairs "
                f"(+{record.pair_coverage - baseline.pair_count}), "
                f"{record.function_coverage} functions "
                f"[{record.wall_s:.2f}s]"
            )
        return FuzzOutcome(corpus=corpus, baseline=baseline, config=config)


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------

@dataclass
class ReplayResult:
    """Outcome of re-executing a saved corpus."""

    entries: int
    mismatches: List[int]
    pair_coverage: int

    @property
    def identical(self) -> bool:
        return not self.mismatches


def replay_corpus(corpus: Corpus) -> ReplayResult:
    """Re-execute every corpus program and verify each stored coverage
    map reproduces **bit-for-bit** (the determinism guarantee)."""
    mismatches: List[int] = []
    coverage = corpus.baseline
    for entry in corpus.entries:
        execution = execute_program(entry.program)
        if execution.coverage != entry.coverage:
            mismatches.append(entry.entry_id)
        coverage = coverage.union(execution.coverage)
    return ReplayResult(
        entries=len(corpus.entries),
        mismatches=mismatches,
        pair_coverage=coverage.pair_count,
    )
