"""The fuzzer's workload IR: :class:`SyscallProgram`.

A program is a small, typed syscall-sequence description — per-thread
lists of :class:`SyscallOp` over the :class:`~repro.kernel.vfs.fs.VfsWorld`
entry points — plus the scheduler interleaving seed.  Programs

* **compile** to standard :data:`~repro.workloads.base.ThreadBody`
  generators, so a fuzzed program is a first-class workload (it can be
  spawned next to the benchmark mix, registered in the workload
  registry, traced, imported, derived),
* **round-trip** through plain dicts (JSON corpus persistence),
* are **deterministic**: executing the same program twice produces the
  identical event trace (all randomness inside an execution flows from
  the program's own seeds).

The op vocabulary deliberately mirrors what the paper's fuzzing
follow-up mutates — syscall kind, arguments (paths/fds become fstype +
object indices here), thread count and interleaving — rather than raw
bytes.  Object arguments are *indices into the live pool* at execution
time, so mutated programs stay well-formed no matter how the world
state evolves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Sequence, Tuple

from repro.kernel.context import ExecutionContext
from repro.kernel.runtime import pinned
from repro.kernel.vfs import dentry as dops, inode as iops, jbd2
from repro.kernel.vfs.fs import VfsWorld
from repro.workloads.base import ThreadBody, Workload

#: Filesystem types a program may name (mounted by ``VfsWorld.boot``).
FSTYPES: Tuple[str, ...] = (
    "ext4", "tmpfs", "rootfs", "devtmpfs", "sysfs", "proc",
    "pipefs", "bdev", "sockfs", "anon_inodefs", "debugfs",
)

#: Struct types reachable through the spec-driven op engine.
ENGINE_TYPES: Tuple[str, ...] = (
    "inode", "dentry", "super_block", "backing_dev_info", "buffer_head",
    "block_device", "cdev", "pipe_inode_info", "journal_t",
    "transaction_t", "journal_head",
)

#: Op kinds with their argument slots.  ``fstype`` indexes FSTYPES,
#: ``type`` indexes ENGINE_TYPES, ``idx`` picks an object from the live
#: pool (modulo its size at execution time).
OP_KINDS: Tuple[str, ...] = (
    "create",       # (fstype)            vfs_create
    "unlink",       # (fstype)            vfs_unlink
    "write",        # (fstype, idx)       vfs_write on pool[idx]
    "read",         # (fstype, idx)       vfs_read on pool[idx]
    "rename",       # ()                  vfs_rename
    "exercise",     # (type, idx)         one synthesized spec op
    "hash_lookup",  # (fstype, idx)       find_inode on a hash chain
    "journal",      # (idx)               jbd2_journal_start
    "dirwalk",      # (idx)               simple_dir_walk (libfs path)
    "lru",          # (fstype, idx, sub)  inode LRU add/check/isolate
)

#: Struct types reachable through the net slice's op engine.
NET_ENGINE_TYPES: Tuple[str, ...] = (
    "sock", "sk_buff", "socket_wq", "net_device",
)

#: Op kinds of the net-slice vocabulary.  Socket arguments are indices
#: into the live sock pool (modulo its size at execution time), exactly
#: like the VFS vocabulary's object slots.
NET_OP_KINDS: Tuple[str, ...] = (
    "sock_create",      # ()            socket(2) + connect
    "sock_send",        # (idx)         sendmsg(2) on socks[idx]
    "sock_recv",        # (idx, dgram)  recvmsg(2); odd dgram = UDP path
    "sock_poll",        # (idx, busy)   poll(2); odd busy = busy-poll tail
    "sock_setsockopt",  # (idx)         setsockopt(2) on socks[idx]
    "dev_ioctl",        # ()            device flags read/write
    "sock_close",       # (idx)         close(2) on socks[idx]
    "sock_wake",        # (idx)         sock_wake_async (callback read lock)
    "sock_fasync",      # (idx)         O_ASYNC setup (owner + callback)
    "sock_retransmit",  # (idx)         tx-queue walk (owner + queue lock)
    "dev_set_mtu",      # ()            MTU write under rtnl
    "sock_diag",        # ()            family-list dump under global lock
    "net_exercise",     # (type, idx)   one synthesized spec op
)

_ARITY: Dict[str, int] = {
    "create": 1, "unlink": 1, "write": 2, "read": 2, "rename": 0,
    "exercise": 2, "hash_lookup": 2, "journal": 1, "dirwalk": 1, "lru": 3,
    "sock_create": 0, "sock_send": 1, "sock_recv": 2, "sock_poll": 2,
    "sock_setsockopt": 1, "dev_ioctl": 0, "sock_close": 1, "sock_wake": 1,
    "sock_fasync": 1, "sock_retransmit": 1, "dev_set_mtu": 0,
    "sock_diag": 0, "net_exercise": 2,
}


def kinds_for(subsystem: str) -> Tuple[str, ...]:
    """The op vocabulary of *subsystem* (``vfs`` or ``net``)."""
    if subsystem == "vfs":
        return OP_KINDS
    if subsystem == "net":
        return NET_OP_KINDS
    raise ValueError(f"unknown fuzz subsystem {subsystem!r}")


@dataclass(frozen=True)
class SyscallOp:
    """One typed operation: a kind plus small-integer argument slots."""

    kind: str
    args: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in _ARITY:
            raise ValueError(f"unknown op kind {self.kind!r}")
        if len(self.args) != _ARITY[self.kind]:
            raise ValueError(
                f"op {self.kind!r} takes {_ARITY[self.kind]} args, "
                f"got {len(self.args)}"
            )

    def to_list(self) -> List:
        return [self.kind, *self.args]

    @classmethod
    def from_list(cls, data: Sequence) -> "SyscallOp":
        return cls(str(data[0]), tuple(int(a) for a in data[1:]))


@dataclass
class SyscallProgram:
    """A fuzzable workload: per-thread op lists + interleaving seed."""

    threads: List[List[SyscallOp]] = field(default_factory=list)
    sched_seed: int = 0
    #: Which simulated subsystem the program drives ("vfs" or "net").
    subsystem: str = "vfs"

    # -- identity ------------------------------------------------------

    def key(self) -> Tuple:
        """Hashable structural identity (corpus de-duplication)."""
        return (
            self.subsystem,
            self.sched_seed,
            tuple(tuple((op.kind, op.args) for op in t) for t in self.threads),
        )

    @property
    def op_count(self) -> int:
        return sum(len(t) for t in self.threads)

    # -- serialization -------------------------------------------------

    def to_dict(self) -> dict:
        data = {
            "sched_seed": self.sched_seed,
            "threads": [[op.to_list() for op in t] for t in self.threads],
        }
        # Omitted for vfs so existing corpus JSON stays byte-identical.
        if self.subsystem != "vfs":
            data["subsystem"] = self.subsystem
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SyscallProgram":
        return cls(
            threads=[
                [SyscallOp.from_list(op) for op in thread]
                for thread in data.get("threads", [])
            ],
            sched_seed=int(data.get("sched_seed", 0)),
            subsystem=str(data.get("subsystem", "vfs")),
        )

    # -- compilation ---------------------------------------------------

    def compile(self, world) -> List[Tuple[str, ThreadBody]]:
        """``(name, body)`` pairs driving *world* — the workload shape
        every scheduler consumer expects.  The world must match the
        program's subsystem (:class:`VfsWorld` or ``NetWorld``)."""
        body = _net_thread_body if self.subsystem == "net" else _thread_body
        return [
            (f"fuzz/{index}", body(world, list(ops)))
            for index, ops in enumerate(self.threads)
        ]


def _pool(world: VfsWorld, fstype: str):
    return [i for i in world.inodes.get(fstype, []) if i.live]


def _thread_body(world: VfsWorld, ops: List[SyscallOp]) -> ThreadBody:
    def run(ctx: ExecutionContext) -> Generator:
        rt = world.rt
        for op in ops:
            kind, args = op.kind, op.args
            if kind == "create":
                fstype = FSTYPES[args[0] % len(FSTYPES)]
                if fstype in world.supers:
                    yield from world.vfs_create(ctx, fstype)
            elif kind == "unlink":
                fstype = FSTYPES[args[0] % len(FSTYPES)]
                if fstype in world.supers:
                    yield from world.vfs_unlink(ctx, fstype)
            elif kind in ("write", "read"):
                fstype = FSTYPES[args[0] % len(FSTYPES)]
                pool = _pool(world, fstype)
                if pool:
                    inode = pool[args[1] % len(pool)]
                    if kind == "write":
                        yield from world.vfs_write(ctx, inode)
                    else:
                        yield from world.vfs_read(ctx, inode)
            elif kind == "rename":
                yield from world.vfs_rename(ctx)
            elif kind == "exercise":
                type_name = ENGINE_TYPES[args[0] % len(ENGINE_TYPES)]
                obj = world.random_object(type_name)
                if obj is not None:
                    yield from world.exercise(ctx, type_name, obj)
            elif kind == "hash_lookup":
                fstype = FSTYPES[args[0] % len(FSTYPES)]
                chains = world.hash_chains.get(fstype, [])
                chain = chains[args[1] % len(chains)] if chains else []
                if chain:
                    yield from iops.find_inode(
                        rt, ctx, chain[-4:], with_i_lock=args[1] % 2 == 0
                    )
            elif kind == "journal":
                if world.journal is not None and world.transactions:
                    txn = world.transactions[args[0] % len(world.transactions)]
                    if txn.live:
                        yield from jbd2.jbd2_journal_start(
                            rt, ctx, world.journal, txn
                        )
            elif kind == "dirwalk":
                live = [d for d in world.dentries if d.live]
                if live:
                    d = live[args[0] % len(live)]
                    dir_inode = d.refs.get("d_inode")
                    if dir_inode is not None and dir_inode.live:
                        with pinned(dir_inode, d):
                            yield from dops.simple_dir_walk(rt, ctx, dir_inode, d)
            elif kind == "lru":
                fstype = FSTYPES[args[0] % len(FSTYPES)]
                pool = _pool(world, fstype)
                if pool:
                    inode = pool[args[1] % len(pool)]
                    with pinned(inode):
                        sub = args[2] % 3
                        if sub == 0:
                            yield from iops.inode_lru_add(
                                rt, ctx, inode, with_i_lock=args[1] % 2 == 0
                            )
                        elif sub == 1:
                            yield from iops.inode_lru_check(
                                rt, ctx, inode, with_i_lock=args[1] % 2 == 0
                            )
                        else:
                            yield from iops.inode_lru_isolate(rt, ctx, inode)
            yield  # voluntary preemption between syscalls

    return run


def _live_socks(world) -> List:
    return [s for s in world.socks if s.live]


def _net_thread_body(world, ops: List[SyscallOp]) -> ThreadBody:
    def run(ctx: ExecutionContext) -> Generator:
        for op in ops:
            kind, args = op.kind, op.args
            if kind == "sock_create":
                yield from world.sock_create(ctx)
            elif kind in ("sock_send", "sock_recv", "sock_poll",
                          "sock_setsockopt", "sock_close", "sock_wake",
                          "sock_fasync", "sock_retransmit"):
                pool = _live_socks(world)
                # Keep a couple of sockets alive so close storms don't
                # starve every other op of targets.
                if kind == "sock_close" and len(pool) <= 2:
                    pool = []
                if pool:
                    sk = pool[args[0] % len(pool)]
                    if kind == "sock_send":
                        yield from world.sock_sendmsg(ctx, sk)
                    elif kind == "sock_recv":
                        yield from world.sock_recvmsg(
                            ctx, sk, datagram=args[1] % 2 == 1
                        )
                    elif kind == "sock_poll":
                        yield from world.sock_poll(
                            ctx, sk, busy=args[1] % 2 == 1
                        )
                    elif kind == "sock_setsockopt":
                        yield from world.sock_setsockopt(ctx, sk)
                    elif kind == "sock_wake":
                        yield from world.sock_wake_async(ctx, sk)
                    elif kind == "sock_fasync":
                        yield from world.sock_fasync(ctx, sk)
                    elif kind == "sock_retransmit":
                        yield from world.tcp_retransmit(ctx, sk)
                    else:
                        yield from world.sock_close(ctx, sk)
            elif kind == "dev_ioctl":
                yield from world.dev_ioctl(ctx)
            elif kind == "dev_set_mtu":
                yield from world.dev_set_mtu(ctx)
            elif kind == "sock_diag":
                yield from world.sock_diag_dump(ctx)
            elif kind == "net_exercise":
                type_name = NET_ENGINE_TYPES[args[0] % len(NET_ENGINE_TYPES)]
                obj = world.random_object(type_name)
                if obj is not None:
                    yield from world.exercise(ctx, type_name, obj)
            yield  # voluntary preemption between syscalls

    return run


class ProgramWorkload(Workload):
    """Adapter making a :class:`SyscallProgram` a standard workload."""

    name = "fuzz-program"

    def __init__(self, world: VfsWorld, program: SyscallProgram) -> None:
        super().__init__(world, iterations=program.op_count, seed=program.sched_seed)
        self.program = program

    def threads(self) -> List[Tuple[str, ThreadBody]]:
        return self.program.compile(self.world)
