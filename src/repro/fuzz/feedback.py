"""The fuzzer's feedback signal.

Line coverage alone saturates quickly and says nothing about *locking*
diversity, which is what rule derivation feeds on.  Following the
LockDoc fuzzing follow-up, the signal here is the set of distinct

    (type_key, member, access-type, held-lockset)

observation pairs a run produces — exactly the tuples rule derivation
counts support over — plus the executed-function set from
:mod:`repro.workloads.coverage` (the Tab. 3 substrate).  A candidate
that touches a member under a lockset nobody has held before, or drags
execution through an unvisited function, is *interesting*; one that
merely repeats known pairs is not.

Locksets are recorded as the access's abstract :class:`LockRef`
sequence (``ES(i_lock in inode)+...``), not instance ids, so coverage
maps compare bit-for-bit across fresh worlds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Tuple

from repro.db.database import TraceDatabase
from repro.workloads.coverage import executed_functions

#: One feedback pair: (type_key, member, access_type, lockset string).
Pair = Tuple[str, str, str, str]
#: One executed function: (name, file).
Func = Tuple[str, str]


def lockseq_key(lockseq) -> str:
    """Canonical, order-preserving string for an abstract lock sequence."""
    return "+".join(ref.format() for ref in lockseq) or "-"


def pairs_of(db: TraceDatabase) -> FrozenSet[Pair]:
    """All distinct feedback pairs of an imported trace."""
    return frozenset(
        (a.type_key, a.member, a.access_type, lockseq_key(a.lockseq))
        for a in db.kept_accesses()
    )


@dataclass(frozen=True)
class CoverageMap:
    """An immutable coverage snapshot: feedback pairs + functions."""

    pairs: FrozenSet[Pair] = frozenset()
    functions: FrozenSet[Func] = frozenset()

    @classmethod
    def of_database(cls, db: TraceDatabase) -> "CoverageMap":
        return cls(pairs=pairs_of(db), functions=frozenset(executed_functions(db)))

    # -- set algebra ---------------------------------------------------

    def union(self, other: "CoverageMap") -> "CoverageMap":
        return CoverageMap(
            pairs=self.pairs | other.pairs,
            functions=self.functions | other.functions,
        )

    def new_against(self, other: "CoverageMap") -> "CoverageMap":
        """What *self* adds beyond *other*."""
        return CoverageMap(
            pairs=self.pairs - other.pairs,
            functions=self.functions - other.functions,
        )

    @property
    def pair_count(self) -> int:
        return len(self.pairs)

    @property
    def function_count(self) -> int:
        return len(self.functions)

    def __bool__(self) -> bool:
        return bool(self.pairs) or bool(self.functions)

    # -- serialization (sorted => byte-stable JSON) --------------------

    def to_dict(self) -> dict:
        return {
            "pairs": sorted(list(p) for p in self.pairs),
            "functions": sorted(list(f) for f in self.functions),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CoverageMap":
        return cls(
            pairs=frozenset(tuple(p) for p in data.get("pairs", ())),
            functions=frozenset(tuple(f) for f in data.get("functions", ())),
        )


@dataclass
class Execution:
    """One executed program: its coverage plus trace bookkeeping."""

    coverage: CoverageMap
    events: int
    steps: int
    #: Kept only for in-process runs (the pool returns coverage alone).
    db: Optional[TraceDatabase] = field(default=None, repr=False)


def execute_program(program, scale_pool: bool = False) -> Execution:
    """Run one :class:`~repro.fuzz.program.SyscallProgram` in a fresh,
    fully reset world and extract its coverage.

    Deterministic: the world seed and the scheduler seed both derive
    from the program's ``sched_seed``, so the same program always
    produces the identical trace — the property ``fuzz replay`` checks
    bit-for-bit.
    """
    from repro.kernel import reset_id_counters
    from repro.kernel.sched import Scheduler

    reset_id_counters()
    subsystem = getattr(program, "subsystem", "vfs")
    if subsystem == "net":
        from repro.kernel.net.world import NetWorld

        world = NetWorld(seed=program.sched_seed * 2 + 1)
        world.boot()
    else:
        from repro.kernel.vfs.fs import VfsWorld

        world = VfsWorld(seed=program.sched_seed * 2 + 1)
        world.boot()
    scheduler = Scheduler(world.rt, seed=program.sched_seed)
    for name, body in program.compile(world):
        scheduler.spawn(name, body)
    steps = scheduler.run()
    db = _import(world, subsystem)
    return Execution(
        coverage=CoverageMap.of_database(db),
        events=len(world.rt.tracer.events),
        steps=steps,
        db=db,
    )


def _import(world, subsystem: str = "vfs") -> TraceDatabase:
    from repro.db.importer import import_tracer

    if subsystem == "net":
        from repro.kernel.net.groundtruth import build_net_filter_config

        filters = build_net_filter_config()
    else:
        from repro.kernel.vfs.groundtruth import build_filter_config

        filters = build_filter_config()
    return import_tracer(world.rt.tracer, world.rt.structs, filters)


def execute_program_dict(program_dict: dict) -> dict:
    """Process-pool entry point: dicts in, dicts out (picklable both
    ways, no live kernel objects cross the process boundary)."""
    from repro.fuzz.program import SyscallProgram

    execution = execute_program(SyscallProgram.from_dict(program_dict))
    return {
        "coverage": execution.coverage.to_dict(),
        "events": execution.events,
        "steps": execution.steps,
    }


def execute_batch(
    programs: List, jobs: Optional[int] = None
) -> List[Execution]:
    """Execute candidates, optionally fanning across a process pool.

    Results come back in input order regardless of worker scheduling,
    so parallel fuzzing is bit-identical to serial — the same contract
    the derivation engine's ``--jobs`` machinery established.
    """
    if jobs is None or jobs <= 1 or len(programs) <= 1:
        return [execute_program(p) for p in programs]
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=min(jobs, len(programs))) as pool:
        raw = list(pool.map(execute_program_dict, [p.to_dict() for p in programs]))
    return [
        Execution(
            coverage=CoverageMap.from_dict(r["coverage"]),
            events=r["events"],
            steps=r["steps"],
        )
        for r in raw
    ]
