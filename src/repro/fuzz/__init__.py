"""``repro.fuzz`` — coverage-guided workload fuzzing.

Reproduces the feedback-driven fuzzing loop of the LockDoc follow-up
(*Improving Linux-Kernel Tests for LockDoc with Feedback-driven
Fuzzing*, Lochmann et al. 2020) on the simulated kernel:

* :mod:`repro.fuzz.program`      — the :class:`SyscallProgram` IR
* :mod:`repro.fuzz.mutate`       — mutation/crossover operators
* :mod:`repro.fuzz.feedback`     — the (member, access, lockset) signal
* :mod:`repro.fuzz.corpus`       — AFL-style corpus + persistence
* :mod:`repro.fuzz.orchestrator` — the generation loop + replay
* :mod:`repro.fuzz.report`       — mix-only vs mix+fuzz comparison
"""

from repro.fuzz.corpus import Corpus, CorpusEntry, GenerationRecord
from repro.fuzz.feedback import CoverageMap, execute_program
from repro.fuzz.mutate import mutate, random_program, splice
from repro.fuzz.orchestrator import (
    FuzzConfig,
    FuzzOrchestrator,
    FuzzOutcome,
    replay_corpus,
)
from repro.fuzz.program import ProgramWorkload, SyscallOp, SyscallProgram

__all__ = [
    "Corpus",
    "CorpusEntry",
    "CoverageMap",
    "FuzzConfig",
    "FuzzOrchestrator",
    "FuzzOutcome",
    "GenerationRecord",
    "ProgramWorkload",
    "SyscallOp",
    "SyscallProgram",
    "execute_program",
    "mutate",
    "random_program",
    "replay_corpus",
    "splice",
]
