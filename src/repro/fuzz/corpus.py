"""Corpus management: admission, energy, minimization, persistence.

The corpus is the fuzzer's long-term memory.  Admission follows the
AFL rule — a candidate enters the corpus iff it contributes coverage
nobody (baseline workload or earlier entry) has produced: at least one
new ``(type_key, member, access, lockset)`` pair or one new executed
function.  Each entry carries **energy** (its admission-time novelty),
which biases parent selection toward programs that found new behaviour.

The whole corpus round-trips through JSON: programs, per-entry
coverage maps, the baseline map, and per-generation progress records,
so a saved campaign can be replayed (``fuzz replay``) and re-used as a
first-class workload (``--workload fuzz:<file>``).
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.fuzz.feedback import CoverageMap
from repro.fuzz.program import SyscallProgram

#: Bump on any change to the JSON layout.
SCHEMA = "lockdoc-fuzz-corpus/1"


@dataclass
class CorpusEntry:
    """One admitted program with its full and novel coverage."""

    entry_id: int
    program: SyscallProgram
    coverage: CoverageMap      # everything the program covered
    novel: CoverageMap         # what was new at admission time
    generation: int
    energy: float

    def to_dict(self) -> dict:
        return {
            "entry_id": self.entry_id,
            "program": self.program.to_dict(),
            "coverage": self.coverage.to_dict(),
            "novel": self.novel.to_dict(),
            "generation": self.generation,
            "energy": self.energy,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CorpusEntry":
        return cls(
            entry_id=int(data["entry_id"]),
            program=SyscallProgram.from_dict(data["program"]),
            coverage=CoverageMap.from_dict(data["coverage"]),
            novel=CoverageMap.from_dict(data["novel"]),
            generation=int(data["generation"]),
            energy=float(data["energy"]),
        )


@dataclass
class GenerationRecord:
    """Progress of one fuzzing generation."""

    generation: int
    candidates: int
    admitted: int
    pair_coverage: int       # global pairs after this generation
    function_coverage: int   # global functions after this generation
    wall_s: float

    def to_dict(self) -> dict:
        return {
            "generation": self.generation,
            "candidates": self.candidates,
            "admitted": self.admitted,
            "pair_coverage": self.pair_coverage,
            "function_coverage": self.function_coverage,
            "wall_s": round(self.wall_s, 4),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GenerationRecord":
        return cls(
            generation=int(data["generation"]),
            candidates=int(data["candidates"]),
            admitted=int(data["admitted"]),
            pair_coverage=int(data["pair_coverage"]),
            function_coverage=int(data["function_coverage"]),
            wall_s=float(data["wall_s"]),
        )


class Corpus:
    """Admitted programs + the global coverage frontier."""

    def __init__(self, baseline: CoverageMap, seed: int = 0) -> None:
        self.baseline = baseline
        self.seed = seed
        self.entries: List[CorpusEntry] = []
        self.records: List[GenerationRecord] = []
        self.global_coverage = baseline
        self.rejected = 0

    # -- identity ------------------------------------------------------

    @property
    def subsystem(self) -> str:
        """The subsystem of the corpus's programs (``"vfs"`` if empty).

        A campaign breeds within one vocabulary, so all entries agree.
        """
        return self.entries[0].program.subsystem if self.entries else "vfs"

    @property
    def corpus_id(self) -> str:
        """Deterministic id: seed + admitted program structure."""
        digest = hashlib.sha256()
        digest.update(str(self.seed).encode())
        for entry in self.entries:
            digest.update(json.dumps(entry.program.to_dict(), sort_keys=True).encode())
        return digest.hexdigest()[:12]

    # -- admission -----------------------------------------------------

    def admit(
        self, program: SyscallProgram, coverage: CoverageMap, generation: int
    ) -> Optional[CorpusEntry]:
        """AFL rule: keep iff the candidate covers something new."""
        novel = coverage.new_against(self.global_coverage)
        if not novel:
            self.rejected += 1
            return None
        entry = CorpusEntry(
            entry_id=len(self.entries),
            program=program,
            coverage=coverage,
            novel=novel,
            generation=generation,
            energy=float(novel.pair_count * 2 + novel.function_count),
        )
        self.entries.append(entry)
        self.global_coverage = self.global_coverage.union(coverage)
        return entry

    # -- energy-weighted parent selection ------------------------------

    def select(self, rng: random.Random) -> CorpusEntry:
        if not self.entries:
            raise ValueError("cannot select from an empty corpus")
        weights = [max(entry.energy, 1.0) for entry in self.entries]
        return rng.choices(self.entries, weights=weights, k=1)[0]

    # -- minimization --------------------------------------------------

    def minimize(self) -> "Corpus":
        """Greedy set cover: the smallest entry subset (largest novelty
        first) that preserves the corpus's coverage beyond baseline."""
        chosen: List[CorpusEntry] = []
        covered = self.baseline
        ranked = sorted(
            self.entries,
            key=lambda e: (-(e.coverage.pair_count + e.coverage.function_count),
                           e.entry_id),
        )
        for entry in ranked:
            gain = entry.coverage.new_against(covered)
            if gain:
                chosen.append(entry)
                covered = covered.union(entry.coverage)
            if (covered.pairs >= self.global_coverage.pairs
                    and covered.functions >= self.global_coverage.functions):
                break
        out = Corpus(self.baseline, seed=self.seed)
        for index, entry in enumerate(sorted(chosen, key=lambda e: e.entry_id)):
            out.entries.append(
                CorpusEntry(
                    entry_id=index,
                    program=entry.program,
                    coverage=entry.coverage,
                    novel=entry.novel,
                    generation=entry.generation,
                    energy=entry.energy,
                )
            )
            out.global_coverage = out.global_coverage.union(entry.coverage)
        out.records = list(self.records)
        return out

    # -- persistence ---------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "corpus_id": self.corpus_id,
            "seed": self.seed,
            "baseline": self.baseline.to_dict(),
            "entries": [entry.to_dict() for entry in self.entries],
            "records": [record.to_dict() for record in self.records],
        }

    def save(self, path: str) -> None:
        # Atomic (tmp + rename): a fuzzing campaign killed mid-save can
        # never leave a torn corpus under the final name.
        from repro.atomicio import atomic_write_text

        text = json.dumps(self.to_dict(), indent=1, sort_keys=True) + "\n"
        atomic_write_text(path, text)

    @classmethod
    def from_dict(cls, data: dict) -> "Corpus":
        if data.get("schema") != SCHEMA:
            raise ValueError(
                f"unsupported corpus schema {data.get('schema')!r} "
                f"(expected {SCHEMA!r})"
            )
        corpus = cls(CoverageMap.from_dict(data["baseline"]), seed=int(data["seed"]))
        for entry_data in data["entries"]:
            entry = CorpusEntry.from_dict(entry_data)
            corpus.entries.append(entry)
            corpus.global_coverage = corpus.global_coverage.union(entry.coverage)
        corpus.records = [GenerationRecord.from_dict(r) for r in data.get("records", [])]
        return corpus

    @classmethod
    def load(cls, path: str) -> "Corpus":
        try:
            with open(path) as fp:
                data = json.load(fp)
        except json.JSONDecodeError as exc:
            raise ValueError(f"malformed corpus file {path!r}: {exc}") from exc
        if not isinstance(data, dict):
            raise ValueError(f"malformed corpus file {path!r}: not an object")
        return cls.from_dict(data)
