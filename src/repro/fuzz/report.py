"""Experiment-style report: what did fuzzing buy us?

Compares the **mix-only** trace against **mix + fuzzed corpus**:

* feedback-pair coverage (the fuzzer's own signal),
* Tab. 3-style per-directory function/line coverage,
* the rule-support ``s_r`` distribution and per-target observation
  depth after derivation — the paper's Tab. 3 observation was that
  low-coverage workloads yield weak/wrong winning hypotheses, so the
  interesting deltas are more derivation targets and deeper support.

The combined view merges *observations*, not raw events: each trace is
imported separately (ids are per-run) and the folded observations of
the corpus programs are appended to the mix's observation table — the
same abstraction level derivation consumes.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.derivator import Derivator
from repro.core.observations import ObservationTable
from repro.core.report import render_table
from repro.db.database import TraceDatabase
from repro.fuzz.corpus import Corpus
from repro.fuzz.feedback import CoverageMap, execute_program, pairs_of
from repro.workloads.coverage import build_catalog, subsystem_directories

#: s_r histogram buckets (upper bounds, inclusive for the last).
_SR_BUCKETS: Tuple[Tuple[str, float], ...] = (
    ("<50%", 0.50),
    ("50-70%", 0.70),
    ("70-90%", 0.90),
    ("90-<100%", 0.999999),
    ("100%", 1.0),
)


def merge_observations(
    table: ObservationTable, db: TraceDatabase
) -> ObservationTable:
    """Append *db*'s folded observations to *table* (in place).

    Grouping happens per database — txn/alloc ids from different runs
    never meet — so appending merged observations is sound even though
    the raw id spaces overlap.
    """
    groups: Dict[Tuple[Optional[int], int, str], List] = defaultdict(list)
    for access in db.kept_accesses():
        groups[(access.txn_id, access.alloc_id, access.member)].append(access)
    for (txn_id, alloc_id, member), rows in groups.items():
        table._add_group(txn_id, alloc_id, member, rows)
    return table


@dataclass
class SrDistribution:
    """Support distribution of a derivation run."""

    targets: int
    mean_s_r: float
    mean_observations: float
    histogram: Dict[str, int]

    @classmethod
    def of(cls, derivation) -> "SrDistribution":
        rows = derivation.all()
        if not rows:
            return cls(0, 0.0, 0.0, {label: 0 for label, _ in _SR_BUCKETS})
        histogram = {label: 0 for label, _ in _SR_BUCKETS}
        for d in rows:
            for label, bound in _SR_BUCKETS:
                if d.winner.s_r <= bound:
                    histogram[label] += 1
                    break
        return cls(
            targets=len(rows),
            mean_s_r=sum(d.winner.s_r for d in rows) / len(rows),
            mean_observations=sum(d.observation_count for d in rows) / len(rows),
            histogram=histogram,
        )


@dataclass
class FuzzReport:
    """Mix-only vs mix+fuzz comparison."""

    baseline_pairs: int
    combined_pairs: int
    baseline_sr: SrDistribution
    combined_sr: SrDistribution
    coverage_rows: List[Tuple[str, float, float, float, float]]
    corpus_entries: int

    @property
    def pair_growth(self) -> float:
        if not self.baseline_pairs:
            return 0.0
        return (self.combined_pairs - self.baseline_pairs) / self.baseline_pairs

    def render(self) -> str:
        lines = [
            "fuzzing yield (mix-only vs mix+fuzzed corpus)",
            "=" * 46,
            f"corpus programs          {self.corpus_entries}",
            f"feedback pairs           {self.baseline_pairs} -> "
            f"{self.combined_pairs} (+{self.pair_growth:.1%})",
            "",
        ]
        sr_rows = []
        for label, _ in _SR_BUCKETS:
            sr_rows.append(
                [label, self.baseline_sr.histogram[label],
                 self.combined_sr.histogram[label]]
            )
        sr_rows.append(["targets", self.baseline_sr.targets, self.combined_sr.targets])
        sr_rows.append(
            ["mean s_r", f"{self.baseline_sr.mean_s_r:.2%}",
             f"{self.combined_sr.mean_s_r:.2%}"]
        )
        sr_rows.append(
            ["mean n/target", f"{self.baseline_sr.mean_observations:.1f}",
             f"{self.combined_sr.mean_observations:.1f}"]
        )
        lines.append(render_table(
            ["s_r bucket", "mix", "mix+fuzz"], sr_rows,
            title="winning-rule support distribution",
        ))
        lines.append("")
        coverage_rows = [
            [directory, f"{fn_mix:.2%}", f"{fn_all:.2%}",
             f"{ln_mix:.2%}", f"{ln_all:.2%}"]
            for directory, fn_mix, fn_all, ln_mix, ln_all in self.coverage_rows
        ]
        lines.append(render_table(
            ["directory", "func mix", "func mix+fuzz", "line mix", "line mix+fuzz"],
            coverage_rows, title="Tab. 3-style coverage",
        ))
        return "\n".join(lines)


def build_fuzz_report(
    corpus: Corpus,
    seed: int = 0,
    scale: float = 1.0,
    threshold: float = 0.9,
    jobs: Optional[int] = None,
) -> FuzzReport:
    """Run the baseline workload + every corpus program, derive both
    views, compare.  The baseline matches the corpus's subsystem: the
    benchmark mix for vfs corpora, netbench for net corpora."""
    subsystem = corpus.subsystem
    if subsystem == "net":
        from repro.workloads.net import NetBench

        mix = NetBench(seed=seed, scale=scale).run()
    else:
        from repro.workloads.mix import BenchmarkMix

        mix = BenchmarkMix(seed=seed, scale=scale).run()
    mix_world = mix.world
    mix_db = mix.to_database()
    mix_pairs = set(pairs_of(mix_db))
    mix_table = ObservationTable.from_database(mix_db)
    mix_executed = {
        (name, file) for frames in mix_db.stack_table for name, file, _ in frames
    }

    combined_table = ObservationTable.from_database(mix_db)
    combined_pairs = set(mix_pairs)
    combined_executed = set(mix_executed)
    for entry in corpus.entries:
        execution = execute_program(entry.program)
        merge_observations(combined_table, execution.db)
        combined_pairs |= execution.coverage.pairs
        combined_executed |= execution.coverage.functions

    derivator = Derivator(threshold)
    baseline_sr = SrDistribution.of(derivator.derive(mix_table, jobs=jobs))
    combined_sr = SrDistribution.of(derivator.derive(combined_table, jobs=jobs))

    catalog = build_catalog(mix_world, subsystem)
    coverage_rows = []
    for directory in subsystem_directories(subsystem):
        members = [e for e in catalog if e.directory == directory]
        if not members:
            continue
        total_lines = sum(e.span for e in members) or 1
        hit_mix = [e for e in members if (e.name, e.file) in mix_executed]
        hit_all = [e for e in members if (e.name, e.file) in combined_executed]
        coverage_rows.append((
            directory,
            len(hit_mix) / len(members),
            len(hit_all) / len(members),
            sum(e.span for e in hit_mix) / total_lines,
            sum(e.span for e in hit_all) / total_lines,
        ))

    return FuzzReport(
        baseline_pairs=len(mix_pairs),
        combined_pairs=len(combined_pairs),
        baseline_sr=baseline_sr,
        combined_sr=combined_sr,
        coverage_rows=coverage_rows,
        corpus_entries=len(corpus.entries),
    )
