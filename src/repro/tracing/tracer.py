"""The tracer: records the ordered event stream.

One :class:`Tracer` instance exists per simulated run.  It

* assigns monotonically increasing timestamps,
* interns call stacks (a stack table keyed by id keeps the trace
  compact, like the ``stack_traces`` relation in the paper's database
  schema, Fig. 6), and
* collects summary statistics matching what the paper reports for its
  run (Sec. 7.2: counts of lock operations, memory accesses,
  allocations and deallocations).

The record methods are the hottest code in the repository (they run
once per trace event — hundreds of thousands of times per run), so they
are written for speed: events are ``NamedTuple``s constructed
positionally, the ``(stack_id, file, line)`` site of the current call
stack is memoized on the :class:`ExecutionContext` and only recomputed
when a frame is pushed or popped, and the clock increment is inlined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.kernel.context import ExecutionContext
from repro.kernel.locks import Lock, LockMode
from repro.kernel.memory import Allocation
from repro.tracing.events import (
    AccessEvent,
    AllocEvent,
    Event,
    FreeEvent,
    LockEvent,
)

StackFrames = Tuple[Tuple[str, str, int], ...]

#: Stack id used when a context has no frames pushed.
EMPTY_STACK_ID = 0

#: Optional event-sink factory (``factory(tracer) -> sink``).  When
#: installed, a newly constructed tracer's ``events`` attribute is
#: whatever the factory returns instead of a plain list.  A sink only
#: needs ``append`` (the record hot paths call nothing else), which is
#: how the streaming engine (:mod:`repro.stream`) subscribes to the
#: live event stream without adding a single branch to the hot loop.
_SINK_FACTORY = None


def install_sink_factory(factory):
    """Install (or with ``None`` clear) the tracer event-sink factory.

    Returns the previously installed factory so callers can restore it
    — the streaming engine does this in a try/finally around one
    workload run.
    """
    global _SINK_FACTORY
    previous = _SINK_FACTORY
    _SINK_FACTORY = factory
    return previous


@dataclass
class TraceStats:
    """Trace summary counters (the Sec. 7.2 numbers)."""

    lock_ops: int = 0
    accesses: int = 0
    allocs: int = 0
    frees: int = 0

    @property
    def total_events(self) -> int:
        return self.lock_ops + self.accesses + self.allocs + self.frees


class Tracer:
    """Records trace events in order.

    The tracer is deliberately dumb: it performs no analysis, no
    filtering and no address resolution — those are post-processing
    concerns.  ``enabled`` can be toggled to skip tracing (used to model
    the paper's untraced warm-up phases).
    """

    def __init__(self) -> None:
        self.events: List[Event] = (
            [] if _SINK_FACTORY is None else _SINK_FACTORY(self)
        )
        self.enabled = True
        self._n_lock_ops = 0
        self._n_accesses = 0
        self._n_allocs = 0
        self._n_frees = 0
        self._clock = 0
        self._stack_table: Dict[StackFrames, int] = {(): EMPTY_STACK_ID}
        self._stacks_by_id: List[StackFrames] = [()]

    # ------------------------------------------------------------------
    # Clock and stack interning
    # ------------------------------------------------------------------

    @property
    def stats(self) -> TraceStats:
        """Summary counters, assembled on demand (kept as plain ints on
        the tracer so the record hot path pays one attribute bump)."""
        return TraceStats(
            lock_ops=self._n_lock_ops,
            accesses=self._n_accesses,
            allocs=self._n_allocs,
            frees=self._n_frees,
        )

    def now(self) -> int:
        """Advance and return the trace clock."""
        self._clock += 1
        return self._clock

    @property
    def clock(self) -> int:
        return self._clock

    def intern_stack(self, frames: StackFrames) -> int:
        stack_id = self._stack_table.get(frames)
        if stack_id is None:
            stack_id = len(self._stacks_by_id)
            self._stack_table[frames] = stack_id
            self._stacks_by_id.append(frames)
        return stack_id

    def stack(self, stack_id: int) -> StackFrames:
        """Resolve an interned stack id back to its frames."""
        return self._stacks_by_id[stack_id]

    @property
    def stack_count(self) -> int:
        return len(self._stacks_by_id)

    def _site(self, ctx: ExecutionContext) -> Tuple[int, str, int]:
        """The interned (stack_id, file, line) of the context's stack.

        Memoized on the context and invalidated by push/pop_frame; the
        common case (several events from the same frame) is a single
        attribute load.
        """
        site = ctx.cached_site
        if site is None:
            frames = tuple(ctx.call_stack)
            stack_id = self._stack_table.get(frames)
            if stack_id is None:
                stack_id = len(self._stacks_by_id)
                self._stack_table[frames] = stack_id
                self._stacks_by_id.append(frames)
            if frames:
                _, file, frame_line = frames[-1]
                site = (stack_id, file, frame_line)
            else:
                site = (stack_id, "<unknown>", 0)
            ctx.cached_site = site
        return site

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record_alloc(self, ctx: ExecutionContext, allocation: Allocation) -> None:
        if not self.enabled:
            return
        self._n_allocs += 1
        self._clock += 1
        self.events.append(
            AllocEvent(
                self._clock,
                ctx.ctx_id,
                allocation.alloc_id,
                allocation.address,
                allocation.size,
                allocation.data_type,
                allocation.subclass,
            )
        )

    def record_free(self, ctx: ExecutionContext, allocation: Allocation) -> None:
        if not self.enabled:
            return
        self._n_frees += 1
        self._clock += 1
        self.events.append(
            FreeEvent(
                self._clock,
                ctx.ctx_id,
                allocation.alloc_id,
                allocation.address,
            )
        )

    def record_access(
        self,
        ctx: ExecutionContext,
        address: int,
        size: int,
        is_write: bool,
        line: Optional[int] = None,
    ) -> None:
        if not self.enabled:
            return
        site = ctx.cached_site
        stack_id, file, site_line = site if site is not None else self._site(ctx)
        self._n_accesses += 1
        self._clock += 1
        self.events.append(
            AccessEvent(
                self._clock,
                ctx.ctx_id,
                address,
                size,
                is_write,
                stack_id,
                file,
                site_line if line is None else line,
            )
        )

    def record_lock(
        self,
        ctx: ExecutionContext,
        lock: Lock,
        is_acquire: bool,
        mode: LockMode,
        line: Optional[int] = None,
    ) -> None:
        if not self.enabled:
            return
        site = ctx.cached_site
        stack_id, file, site_line = site if site is not None else self._site(ctx)
        self._n_lock_ops += 1
        self._clock += 1
        self.events.append(
            LockEvent(
                self._clock,
                ctx.ctx_id,
                lock.lock_id,
                lock.class_value,
                lock.name,
                lock.address,
                is_acquire,
                "w" if mode is LockMode.EXCLUSIVE else "r",
                stack_id,
                file,
                site_line if line is None else line,
            )
        )
