"""Monitoring/tracing phase (paper phase 1).

Replaces the Fail*/Bochs monitoring environment: the simulated kernel
reports allocations, frees, member accesses and lock operations to a
:class:`~repro.tracing.tracer.Tracer`, which produces the flat, ordered
event trace consumed by the post-processing importer.
"""

from repro.tracing.events import (
    AccessEvent,
    AllocEvent,
    Event,
    EventKind,
    FreeEvent,
    LockEvent,
)
from repro.tracing.tracer import Tracer, TraceStats

__all__ = [
    "AccessEvent",
    "AllocEvent",
    "Event",
    "EventKind",
    "FreeEvent",
    "LockEvent",
    "Tracer",
    "TraceStats",
]
