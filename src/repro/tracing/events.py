"""Trace event model.

The trace is a flat, time-ordered sequence of events mirroring what the
paper's Fail* experiment logs through the virtual I/O port (Sec. 6):

* ``AllocEvent`` / ``FreeEvent`` — lifetime of observed allocations,
* ``AccessEvent``                — one read or write to a raw address,
* ``LockEvent``                  — one acquire or release operation.

Every event carries a monotonically increasing timestamp ``ts`` and the
id of the execution context that caused it.  Access and lock events
also carry an interned call-stack id plus the immediate source location
(file, line) so the rule-violation finder can point at code (Sec. 5.5).

The event classes are ``NamedTuple``s: the tracer records hundreds of
thousands of them per run, and a positional tuple construction is ~4×
cheaper than a frozen-dataclass ``__init__``.  The four classes have
pairwise-distinct arities (7, 4, 8, 11 fields), so tuple equality can
never conflate events of different types.  ``Event`` remains as a
typing alias for "any trace event".
"""

from __future__ import annotations

import enum
from typing import NamedTuple, Optional, Union


class EventKind(enum.Enum):
    """Discriminator for the trace event types."""
    ALLOC = "alloc"
    FREE = "free"
    READ = "read"
    WRITE = "write"
    ACQUIRE = "acquire"
    RELEASE = "release"


class AllocEvent(NamedTuple):
    """Allocation event: a traced object came to life."""

    ts: int
    ctx_id: int
    alloc_id: int
    address: int
    size: int
    data_type: str
    subclass: Optional[str]

    kind = EventKind.ALLOC


class FreeEvent(NamedTuple):
    """Deallocation event: a traced object died."""

    ts: int
    ctx_id: int
    alloc_id: int
    address: int

    kind = EventKind.FREE


class AccessEvent(NamedTuple):
    """A single memory access to a raw byte address.

    The tracer does *not* resolve the address to an allocation or
    member — that is the importer's job, exactly as in the paper where
    the VM logs raw accesses and post-processing maps them to the
    type layout.
    """

    ts: int
    ctx_id: int
    address: int
    size: int
    is_write: bool
    stack_id: int
    file: str
    line: int

    @property
    def kind(self) -> EventKind:
        return EventKind.WRITE if self.is_write else EventKind.READ


class LockEvent(NamedTuple):
    """A lock acquire or release.

    ``mode`` is ``"r"`` for shared, ``"w"`` for exclusive acquisition —
    matching :class:`repro.kernel.locks.LockMode` values.
    """

    ts: int
    ctx_id: int
    lock_id: int
    lock_class: str
    lock_name: str
    address: Optional[int]
    is_acquire: bool
    mode: str
    stack_id: int
    file: str
    line: int

    @property
    def kind(self) -> EventKind:
        return EventKind.ACQUIRE if self.is_acquire else EventKind.RELEASE


#: Any trace event.  Kept as a typing alias so annotations that used
#: the old dataclass base keep reading naturally.
Event = Union[AllocEvent, FreeEvent, AccessEvent, LockEvent]
