"""Trace serialization.

The paper's pipeline writes the raw trace to disk, then imports several
generated CSV tables into a MariaDB database (Sec. 6).  This module
provides the equivalent archival step with two interchangeable formats:

* a **text format** (one tab-separated record per line, with a stack
  table section) — human-greppable, like the paper's CSV intermediates,
* a **binary format** (length-prefixed, ``struct``-packed) — compact,
  for large traces.

Both round-trip exactly: ``load(dump(trace)) == trace``.
"""

from __future__ import annotations

import io
import struct
from typing import BinaryIO, List, TextIO, Tuple

from repro.tracing.events import (
    AccessEvent,
    AllocEvent,
    Event,
    FreeEvent,
    LockEvent,
)
from repro.tracing.tracer import Tracer

_TEXT_MAGIC = "# lockdoc-trace v1"
_BIN_MAGIC = b"LDOC1\n"

_NONE_SUBCLASS = "-"


class TraceFormatError(ValueError):
    """Raised when a trace file is malformed."""


# ----------------------------------------------------------------------
# Text format
# ----------------------------------------------------------------------


def dump_text(tracer: Tracer, fp: TextIO) -> None:
    """Write the tracer's events and stack table as text."""
    fp.write(_TEXT_MAGIC + "\n")
    fp.write(f"stacks {tracer.stack_count}\n")
    for stack_id in range(tracer.stack_count):
        frames = tracer.stack(stack_id)
        encoded = ";".join(f"{fn}@{file}:{line}" for fn, file, line in frames)
        fp.write(f"S\t{stack_id}\t{encoded}\n")
    fp.write(f"events {len(tracer.events)}\n")
    for event in tracer.events:
        fp.write(_encode_text(event) + "\n")


def _encode_text(event: Event) -> str:
    if isinstance(event, AllocEvent):
        return "\t".join(
            [
                "A",
                str(event.ts),
                str(event.ctx_id),
                str(event.alloc_id),
                f"{event.address:#x}",
                str(event.size),
                event.data_type,
                event.subclass or _NONE_SUBCLASS,
            ]
        )
    if isinstance(event, FreeEvent):
        return "\t".join(
            ["F", str(event.ts), str(event.ctx_id), str(event.alloc_id), f"{event.address:#x}"]
        )
    if isinstance(event, AccessEvent):
        return "\t".join(
            [
                "W" if event.is_write else "R",
                str(event.ts),
                str(event.ctx_id),
                f"{event.address:#x}",
                str(event.size),
                str(event.stack_id),
                event.file,
                str(event.line),
            ]
        )
    if isinstance(event, LockEvent):
        return "\t".join(
            [
                "L+" if event.is_acquire else "L-",
                str(event.ts),
                str(event.ctx_id),
                str(event.lock_id),
                event.lock_class,
                event.lock_name,
                f"{event.address:#x}" if event.address is not None else _NONE_SUBCLASS,
                event.mode,
                str(event.stack_id),
                event.file,
                str(event.line),
            ]
        )
    raise TraceFormatError(f"unknown event type {type(event).__name__}")


def load_text(fp: TextIO) -> Tuple[List[Event], List[Tuple[Tuple[str, str, int], ...]]]:
    """Read a text trace; returns ``(events, stack_table)``."""
    header = fp.readline().rstrip("\n")
    if header != _TEXT_MAGIC:
        raise TraceFormatError(f"bad magic {header!r}")
    stacks_line = fp.readline().split()
    if len(stacks_line) != 2 or stacks_line[0] != "stacks":
        raise TraceFormatError("missing stack table header")
    stack_count = int(stacks_line[1])
    stacks: List[Tuple[Tuple[str, str, int], ...]] = []
    for _ in range(stack_count):
        parts = fp.readline().rstrip("\n").split("\t")
        if parts[0] != "S":
            raise TraceFormatError(f"expected stack record, got {parts[0]!r}")
        encoded = parts[2] if len(parts) > 2 else ""
        frames: List[Tuple[str, str, int]] = []
        if encoded:
            for item in encoded.split(";"):
                fn, _, loc = item.partition("@")
                file, _, line = loc.rpartition(":")
                frames.append((fn, file, int(line)))
        stacks.append(tuple(frames))
    events_line = fp.readline().split()
    if len(events_line) != 2 or events_line[0] != "events":
        raise TraceFormatError("missing events header")
    event_count = int(events_line[1])
    events: List[Event] = []
    for _ in range(event_count):
        line = fp.readline().rstrip("\n")
        events.append(_decode_text(line))
    return events, stacks


def _decode_text(line: str) -> Event:
    parts = line.split("\t")
    tag = parts[0]
    if tag == "A":
        return AllocEvent(
            ts=int(parts[1]),
            ctx_id=int(parts[2]),
            alloc_id=int(parts[3]),
            address=int(parts[4], 16),
            size=int(parts[5]),
            data_type=parts[6],
            subclass=None if parts[7] == _NONE_SUBCLASS else parts[7],
        )
    if tag == "F":
        return FreeEvent(
            ts=int(parts[1]),
            ctx_id=int(parts[2]),
            alloc_id=int(parts[3]),
            address=int(parts[4], 16),
        )
    if tag in ("R", "W"):
        return AccessEvent(
            ts=int(parts[1]),
            ctx_id=int(parts[2]),
            address=int(parts[3], 16),
            size=int(parts[4]),
            is_write=(tag == "W"),
            stack_id=int(parts[5]),
            file=parts[6],
            line=int(parts[7]),
        )
    if tag in ("L+", "L-"):
        return LockEvent(
            ts=int(parts[1]),
            ctx_id=int(parts[2]),
            lock_id=int(parts[3]),
            lock_class=parts[4],
            lock_name=parts[5],
            address=None if parts[6] == _NONE_SUBCLASS else int(parts[6], 16),
            is_acquire=(tag == "L+"),
            mode=parts[7],
            stack_id=int(parts[8]),
            file=parts[9],
            line=int(parts[10]),
        )
    raise TraceFormatError(f"unknown record tag {tag!r}")


# ----------------------------------------------------------------------
# Binary format
# ----------------------------------------------------------------------

_HDR = struct.Struct("<BQI")  # tag, ts, ctx_id


def _pack_str(value: str) -> bytes:
    raw = value.encode("utf-8")
    return struct.pack("<H", len(raw)) + raw


def _unpack_str(fp: BinaryIO) -> str:
    (length,) = struct.unpack("<H", fp.read(2))
    return fp.read(length).decode("utf-8")


_TAG_ALLOC, _TAG_FREE, _TAG_READ, _TAG_WRITE, _TAG_ACQ, _TAG_REL = range(6)


def dump_binary(tracer: Tracer, fp: BinaryIO) -> None:
    """Write the tracer's events and stack table in binary form."""
    fp.write(_BIN_MAGIC)
    fp.write(struct.pack("<I", tracer.stack_count))
    for stack_id in range(tracer.stack_count):
        frames = tracer.stack(stack_id)
        fp.write(struct.pack("<H", len(frames)))
        for fn, file, line in frames:
            fp.write(_pack_str(fn))
            fp.write(_pack_str(file))
            fp.write(struct.pack("<I", line))
    fp.write(struct.pack("<Q", len(tracer.events)))
    for event in tracer.events:
        _encode_binary(event, fp)


def _encode_binary(event: Event, fp: BinaryIO) -> None:
    if isinstance(event, AllocEvent):
        fp.write(_HDR.pack(_TAG_ALLOC, event.ts, event.ctx_id))
        fp.write(struct.pack("<QQI", event.alloc_id, event.address, event.size))
        fp.write(_pack_str(event.data_type))
        fp.write(_pack_str(event.subclass or _NONE_SUBCLASS))
    elif isinstance(event, FreeEvent):
        fp.write(_HDR.pack(_TAG_FREE, event.ts, event.ctx_id))
        fp.write(struct.pack("<QQ", event.alloc_id, event.address))
    elif isinstance(event, AccessEvent):
        tag = _TAG_WRITE if event.is_write else _TAG_READ
        fp.write(_HDR.pack(tag, event.ts, event.ctx_id))
        fp.write(struct.pack("<QIQ", event.address, event.size, event.stack_id))
        fp.write(_pack_str(event.file))
        fp.write(struct.pack("<I", event.line))
    elif isinstance(event, LockEvent):
        tag = _TAG_ACQ if event.is_acquire else _TAG_REL
        fp.write(_HDR.pack(tag, event.ts, event.ctx_id))
        address = event.address if event.address is not None else 0
        has_address = 1 if event.address is not None else 0
        fp.write(struct.pack("<QBQ", event.lock_id, has_address, address))
        fp.write(_pack_str(event.lock_class))
        fp.write(_pack_str(event.lock_name))
        fp.write(_pack_str(event.mode))
        fp.write(struct.pack("<Q", event.stack_id))
        fp.write(_pack_str(event.file))
        fp.write(struct.pack("<I", event.line))
    else:
        raise TraceFormatError(f"unknown event type {type(event).__name__}")


def load_binary(fp: BinaryIO) -> Tuple[List[Event], List[Tuple[Tuple[str, str, int], ...]]]:
    """Read a binary trace; returns ``(events, stack_table)``."""
    magic = fp.read(len(_BIN_MAGIC))
    if magic != _BIN_MAGIC:
        raise TraceFormatError(f"bad magic {magic!r}")
    (stack_count,) = struct.unpack("<I", fp.read(4))
    stacks: List[Tuple[Tuple[str, str, int], ...]] = []
    for _ in range(stack_count):
        (frame_count,) = struct.unpack("<H", fp.read(2))
        frames = []
        for _ in range(frame_count):
            fn = _unpack_str(fp)
            file = _unpack_str(fp)
            (line,) = struct.unpack("<I", fp.read(4))
            frames.append((fn, file, line))
        stacks.append(tuple(frames))
    (event_count,) = struct.unpack("<Q", fp.read(8))
    events: List[Event] = []
    for _ in range(event_count):
        events.append(_decode_binary(fp))
    return events, stacks


def _decode_binary(fp: BinaryIO) -> Event:
    tag, ts, ctx_id = _HDR.unpack(fp.read(_HDR.size))
    if tag == _TAG_ALLOC:
        alloc_id, address, size = struct.unpack("<QQI", fp.read(20))
        data_type = _unpack_str(fp)
        subclass = _unpack_str(fp)
        return AllocEvent(
            ts=ts,
            ctx_id=ctx_id,
            alloc_id=alloc_id,
            address=address,
            size=size,
            data_type=data_type,
            subclass=None if subclass == _NONE_SUBCLASS else subclass,
        )
    if tag == _TAG_FREE:
        alloc_id, address = struct.unpack("<QQ", fp.read(16))
        return FreeEvent(ts=ts, ctx_id=ctx_id, alloc_id=alloc_id, address=address)
    if tag in (_TAG_READ, _TAG_WRITE):
        address, size, stack_id = struct.unpack("<QIQ", fp.read(20))
        file = _unpack_str(fp)
        (line,) = struct.unpack("<I", fp.read(4))
        return AccessEvent(
            ts=ts,
            ctx_id=ctx_id,
            address=address,
            size=size,
            is_write=(tag == _TAG_WRITE),
            stack_id=stack_id,
            file=file,
            line=line,
        )
    if tag in (_TAG_ACQ, _TAG_REL):
        lock_id, has_address, address = struct.unpack("<QBQ", fp.read(17))
        lock_class = _unpack_str(fp)
        lock_name = _unpack_str(fp)
        mode = _unpack_str(fp)
        (stack_id,) = struct.unpack("<Q", fp.read(8))
        file = _unpack_str(fp)
        (line,) = struct.unpack("<I", fp.read(4))
        return LockEvent(
            ts=ts,
            ctx_id=ctx_id,
            lock_id=lock_id,
            lock_class=lock_class,
            lock_name=lock_name,
            address=address if has_address else None,
            is_acquire=(tag == _TAG_ACQ),
            mode=mode,
            stack_id=stack_id,
            file=file,
            line=line,
        )
    raise TraceFormatError(f"unknown binary tag {tag}")


# ----------------------------------------------------------------------
# Convenience wrappers
# ----------------------------------------------------------------------


def dumps_text(tracer: Tracer) -> str:
    """Serialize a tracer to the text format, returning a string."""
    buffer = io.StringIO()
    dump_text(tracer, buffer)
    return buffer.getvalue()


def loads_text(text: str):
    """Parse a text-format trace from a string."""
    return load_text(io.StringIO(text))


def dumps_binary(tracer: Tracer) -> bytes:
    """Serialize a tracer to the binary format, returning bytes."""
    buffer = io.BytesIO()
    dump_binary(tracer, buffer)
    return buffer.getvalue()


def loads_binary(data: bytes):
    """Parse a binary-format trace from bytes."""
    return load_binary(io.BytesIO(data))
