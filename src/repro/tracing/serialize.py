"""Trace serialization.

The paper's pipeline writes the raw trace to disk, then imports several
generated CSV tables into a MariaDB database (Sec. 6).  This module
provides the equivalent archival step with two interchangeable formats:

* a **text format** (one tab-separated record per line, with a stack
  table section) — human-greppable, like the paper's CSV intermediates,
* a **binary format** (length-prefixed, ``struct``-packed) — compact,
  for large traces.

Both round-trip exactly: ``load(dump(trace)) == trace``.

Ingestion contract
------------------

Real traces are killed mid-write, torn at record boundaries, and
mangled by transport.  Every loader therefore comes in two modes:

* **strict** (``load_text`` / ``load_binary``): the first malformed
  byte raises :class:`TraceFormatError` — always that class, never a
  bare ``KeyError``/``struct.error``/``IndexError`` — and the message
  carries the position (line number for text, byte offset for binary)
  plus the offending record.
* **lenient** (``load_text_lenient`` / ``load_binary_lenient``): never
  raises on malformed input; salvages every decodable record and
  returns a :class:`LoadReport` whose ``diagnostics`` list one
  :class:`Diagnostic` (position, reason, record snippet) per defect.

The text format resynchronizes per line, so a mangled line costs only
itself.  The binary format is length-prefixed without sync markers, so
a torn record loses framing: lenient mode salvages the clean prefix and
reports the tear offset.
"""

from __future__ import annotations

import io
import struct
from dataclasses import dataclass, field
from typing import BinaryIO, Iterator, List, Optional, Sequence, TextIO, Tuple

from repro.tracing.events import (
    AccessEvent,
    AllocEvent,
    Event,
    FreeEvent,
    LockEvent,
)
from repro.tracing.tracer import Tracer

_TEXT_MAGIC = "# lockdoc-trace v1"
_BIN_MAGIC = b"LDOC1\n"

#: Trace-format version tag (the binary magic without framing).  Cache
#: keys include it so a format change invalidates every cached trace.
FORMAT_VERSION = "LDOC1"

_NONE_SUBCLASS = "-"

StackFrames = Tuple[Tuple[str, str, int], ...]


class TraceFormatError(ValueError):
    """Raised when a trace file is malformed (strict mode only)."""


class _ShortRead(Exception):
    """Internal: a binary read hit EOF mid-record."""


@dataclass(frozen=True)
class Diagnostic:
    """One malformed-input finding from a lenient load.

    ``location`` is ``"line N"`` (text) or ``"offset 0xN"`` (binary).
    """

    location: str
    reason: str
    record: str = ""

    def format(self) -> str:
        suffix = f" in {self.record!r}" if self.record else ""
        return f"{self.location}: {self.reason}{suffix}"


@dataclass
class LoadReport:
    """Result of loading a trace: salvage plus per-record diagnostics."""

    events: List[Event] = field(default_factory=list)
    stacks: List[StackFrames] = field(default_factory=list)
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: Event count the file header declared (None if the header itself
    #: was unreadable).
    declared_events: Optional[int] = None

    @property
    def malformed_count(self) -> int:
        return len(self.diagnostics)

    @property
    def malformed_fraction(self) -> float:
        """Defects relative to the declared (or salvaged) record count."""
        denominator = max(self.declared_events or 0, len(self.events), 1)
        return len(self.diagnostics) / denominator

    def as_tuple(self) -> Tuple[List[Event], List[StackFrames]]:
        return self.events, self.stacks


def stacks_of(tracer: Tracer) -> List[StackFrames]:
    """Materialize a tracer's interned stack table."""
    return [tracer.stack(i) for i in range(tracer.stack_count)]


# ----------------------------------------------------------------------
# Text format
# ----------------------------------------------------------------------


def write_text(
    events: Sequence[Event], stacks: Sequence[StackFrames], fp: TextIO
) -> None:
    """Write an event stream and stack table as text."""
    fp.write(_TEXT_MAGIC + "\n")
    fp.write(f"stacks {len(stacks)}\n")
    for stack_id, frames in enumerate(stacks):
        encoded = ";".join(f"{fn}@{file}:{line}" for fn, file, line in frames)
        fp.write(f"S\t{stack_id}\t{encoded}\n")
    fp.write(f"events {len(events)}\n")
    for event in events:
        fp.write(_encode_text(event) + "\n")


def dump_text(tracer: Tracer, fp: TextIO) -> None:
    """Write the tracer's events and stack table as text."""
    write_text(tracer.events, stacks_of(tracer), fp)


def _encode_text(event: Event) -> str:
    if isinstance(event, AllocEvent):
        return "\t".join(
            [
                "A",
                str(event.ts),
                str(event.ctx_id),
                str(event.alloc_id),
                f"{event.address:#x}",
                str(event.size),
                event.data_type,
                event.subclass or _NONE_SUBCLASS,
            ]
        )
    if isinstance(event, FreeEvent):
        return "\t".join(
            ["F", str(event.ts), str(event.ctx_id), str(event.alloc_id), f"{event.address:#x}"]
        )
    if isinstance(event, AccessEvent):
        return "\t".join(
            [
                "W" if event.is_write else "R",
                str(event.ts),
                str(event.ctx_id),
                f"{event.address:#x}",
                str(event.size),
                str(event.stack_id),
                event.file,
                str(event.line),
            ]
        )
    if isinstance(event, LockEvent):
        return "\t".join(
            [
                "L+" if event.is_acquire else "L-",
                str(event.ts),
                str(event.ctx_id),
                str(event.lock_id),
                event.lock_class,
                event.lock_name,
                f"{event.address:#x}" if event.address is not None else _NONE_SUBCLASS,
                event.mode,
                str(event.stack_id),
                event.file,
                str(event.line),
            ]
        )
    raise TraceFormatError(f"unknown event type {type(event).__name__}")


def load_text(fp: TextIO) -> Tuple[List[Event], List[StackFrames]]:
    """Read a text trace strictly; returns ``(events, stack_table)``.

    Raises :class:`TraceFormatError` — with line number and offending
    record — on the first malformed input.
    """
    return _load_text(fp, lenient=False).as_tuple()


def load_text_lenient(fp: TextIO) -> LoadReport:
    """Read a text trace, salvaging around malformed records."""
    return _load_text(fp, lenient=True)


def _load_text(fp: TextIO, lenient: bool) -> LoadReport:
    report = LoadReport()
    lineno = 0

    def next_line() -> str:
        nonlocal lineno
        lineno += 1
        return fp.readline()

    def problem(reason: str, record: str = "") -> None:
        if not lenient:
            suffix = f": {record!r}" if record else ""
            raise TraceFormatError(f"line {lineno}: {reason}{suffix}")
        report.diagnostics.append(Diagnostic(f"line {lineno}", reason, record))

    header = next_line().rstrip("\n")
    if header != _TEXT_MAGIC:
        reason = "empty trace file" if header == "" else f"bad magic {header!r}"
        problem(reason)
        return report

    stacks_line = next_line().split()
    if len(stacks_line) != 2 or stacks_line[0] != "stacks":
        problem("missing stack table header")
        return report
    try:
        stack_count = int(stacks_line[1])
    except ValueError:
        problem(f"bad stack count {stacks_line[1]!r}")
        return report

    # Stack table.  A truncated table may run straight into the events
    # header; detect that and resynchronize instead of mis-parsing.
    events_header: Optional[str] = None
    for _ in range(max(stack_count, 0)):
        raw = next_line()
        if raw == "":
            problem(
                f"truncated stack table: expected {stack_count} stacks, "
                f"got {len(report.stacks)}"
            )
            return report
        line = raw.rstrip("\n")
        if line.startswith("events "):
            problem(
                f"truncated stack table: expected {stack_count} stacks, "
                f"got {len(report.stacks)}"
            )
            events_header = line
            break
        parts = line.split("\t")
        if parts[0] != "S":
            problem(f"expected stack record, got {parts[0]!r}", line)
            report.stacks.append(())
            continue
        encoded = parts[2] if len(parts) > 2 else ""
        frames: List[Tuple[str, str, int]] = []
        try:
            if encoded:
                for item in encoded.split(";"):
                    fn, _, loc = item.partition("@")
                    file, _, line_str = loc.rpartition(":")
                    frames.append((fn, file, int(line_str)))
        except ValueError:
            problem("malformed stack frame", line)
        report.stacks.append(tuple(frames))

    if events_header is None:
        events_header = next_line().rstrip("\n")
    events_line = events_header.split()
    if len(events_line) != 2 or events_line[0] != "events":
        problem("missing events header", events_header)
        return report
    try:
        event_count = int(events_line[1])
    except ValueError:
        problem(f"bad event count {events_line[1]!r}")
        return report
    report.declared_events = event_count

    for _ in range(max(event_count, 0)):
        raw = next_line()
        if raw == "":
            problem(
                f"truncated events: expected {event_count}, "
                f"got {len(report.events)}"
            )
            break
        line = raw.rstrip("\n")
        try:
            report.events.append(_decode_text(line))
        except (TraceFormatError, ValueError, IndexError) as exc:
            problem(_bare_reason(exc), line)
    return report


def _bare_reason(exc: Exception) -> str:
    if isinstance(exc, TraceFormatError):
        return str(exc)
    if isinstance(exc, IndexError):
        return "truncated record (missing fields)"
    return f"bad field value ({exc})"


def _decode_text(line: str) -> Event:
    parts = line.split("\t")
    tag = parts[0]
    if tag == "A":
        return AllocEvent(
            ts=int(parts[1]),
            ctx_id=int(parts[2]),
            alloc_id=int(parts[3]),
            address=int(parts[4], 16),
            size=int(parts[5]),
            data_type=parts[6],
            subclass=None if parts[7] == _NONE_SUBCLASS else parts[7],
        )
    if tag == "F":
        return FreeEvent(
            ts=int(parts[1]),
            ctx_id=int(parts[2]),
            alloc_id=int(parts[3]),
            address=int(parts[4], 16),
        )
    if tag in ("R", "W"):
        return AccessEvent(
            ts=int(parts[1]),
            ctx_id=int(parts[2]),
            address=int(parts[3], 16),
            size=int(parts[4]),
            is_write=(tag == "W"),
            stack_id=int(parts[5]),
            file=parts[6],
            line=int(parts[7]),
        )
    if tag in ("L+", "L-"):
        return LockEvent(
            ts=int(parts[1]),
            ctx_id=int(parts[2]),
            lock_id=int(parts[3]),
            lock_class=parts[4],
            lock_name=parts[5],
            address=None if parts[6] == _NONE_SUBCLASS else int(parts[6], 16),
            is_acquire=(tag == "L+"),
            mode=parts[7],
            stack_id=int(parts[8]),
            file=parts[9],
            line=int(parts[10]),
        )
    raise TraceFormatError(f"unknown record tag {tag!r}")


# ----------------------------------------------------------------------
# Binary format
# ----------------------------------------------------------------------

_HDR = struct.Struct("<BQI")  # tag, ts, ctx_id


def _read_exact(fp: BinaryIO, count: int) -> bytes:
    data = fp.read(count)
    if len(data) != count:
        raise _ShortRead(f"wanted {count} bytes, got {len(data)}")
    return data


def _pack_str(value: str) -> bytes:
    raw = value.encode("utf-8")
    return struct.pack("<H", len(raw)) + raw


def _unpack_str(fp: BinaryIO) -> str:
    (length,) = struct.unpack("<H", _read_exact(fp, 2))
    return _read_exact(fp, length).decode("utf-8")


_TAG_ALLOC, _TAG_FREE, _TAG_READ, _TAG_WRITE, _TAG_ACQ, _TAG_REL = range(6)


def write_binary(
    events: Sequence[Event], stacks: Sequence[StackFrames], fp: BinaryIO
) -> None:
    """Write an event stream and stack table in binary form."""
    fp.write(_BIN_MAGIC)
    fp.write(struct.pack("<I", len(stacks)))
    for frames in stacks:
        fp.write(struct.pack("<H", len(frames)))
        for fn, file, line in frames:
            fp.write(_pack_str(fn))
            fp.write(_pack_str(file))
            fp.write(struct.pack("<I", line))
    fp.write(struct.pack("<Q", len(events)))
    for event in events:
        _encode_binary(event, fp)


def dump_binary(tracer: Tracer, fp: BinaryIO) -> None:
    """Write the tracer's events and stack table in binary form."""
    write_binary(tracer.events, stacks_of(tracer), fp)


def _encode_binary(event: Event, fp: BinaryIO) -> None:
    if isinstance(event, AllocEvent):
        fp.write(_HDR.pack(_TAG_ALLOC, event.ts, event.ctx_id))
        fp.write(struct.pack("<QQI", event.alloc_id, event.address, event.size))
        fp.write(_pack_str(event.data_type))
        fp.write(_pack_str(event.subclass or _NONE_SUBCLASS))
    elif isinstance(event, FreeEvent):
        fp.write(_HDR.pack(_TAG_FREE, event.ts, event.ctx_id))
        fp.write(struct.pack("<QQ", event.alloc_id, event.address))
    elif isinstance(event, AccessEvent):
        tag = _TAG_WRITE if event.is_write else _TAG_READ
        fp.write(_HDR.pack(tag, event.ts, event.ctx_id))
        fp.write(struct.pack("<QIQ", event.address, event.size, event.stack_id))
        fp.write(_pack_str(event.file))
        fp.write(struct.pack("<I", event.line))
    elif isinstance(event, LockEvent):
        tag = _TAG_ACQ if event.is_acquire else _TAG_REL
        fp.write(_HDR.pack(tag, event.ts, event.ctx_id))
        address = event.address if event.address is not None else 0
        has_address = 1 if event.address is not None else 0
        fp.write(struct.pack("<QBQ", event.lock_id, has_address, address))
        fp.write(_pack_str(event.lock_class))
        fp.write(_pack_str(event.lock_name))
        fp.write(_pack_str(event.mode))
        fp.write(struct.pack("<Q", event.stack_id))
        fp.write(_pack_str(event.file))
        fp.write(struct.pack("<I", event.line))
    else:
        raise TraceFormatError(f"unknown event type {type(event).__name__}")


def load_binary(fp: BinaryIO) -> Tuple[List[Event], List[StackFrames]]:
    """Read a binary trace strictly; returns ``(events, stack_table)``.

    Raises :class:`TraceFormatError` — with the byte offset of the bad
    record — on the first malformed input.
    """
    return _load_binary(fp, lenient=False).as_tuple()


def load_binary_lenient(fp: BinaryIO) -> LoadReport:
    """Read a binary trace, salvaging the clean prefix of the stream."""
    return _load_binary(fp, lenient=True)


_DECODE_ERRORS = (_ShortRead, struct.error, UnicodeDecodeError, ValueError)


def _read_stack_table(fp: BinaryIO) -> Tuple[List[StackFrames], int]:
    """Read the stack table and the declared event count (post-magic)."""
    stacks: List[StackFrames] = []
    (stack_count,) = struct.unpack("<I", _read_exact(fp, 4))
    for _ in range(stack_count):
        (frame_count,) = struct.unpack("<H", _read_exact(fp, 2))
        frames = []
        for _ in range(frame_count):
            fn = _unpack_str(fp)
            file = _unpack_str(fp)
            (line,) = struct.unpack("<I", _read_exact(fp, 4))
            frames.append((fn, file, line))
        stacks.append(tuple(frames))
    (event_count,) = struct.unpack("<Q", _read_exact(fp, 8))
    return stacks, event_count


@dataclass
class BinaryTraceStream:
    """A binary trace opened for streaming consumption.

    The stack table sits before the events on disk, so it is read
    eagerly; ``events`` decodes records one at a time as the iterator
    is drained, so importing a cached trace never materializes the
    event list.  Decoding is strict — a malformed record raises
    :class:`TraceFormatError` from the iterator.
    """

    stacks: List[StackFrames]
    declared_events: int
    events: Iterator[Event]


def open_binary_stream(fp: BinaryIO) -> BinaryTraceStream:
    """Open *fp* (a binary trace) for streaming; strict decoding.

    *fp* must stay open while ``.events`` is consumed.  Use
    :func:`load_binary` for the materialized ``(events, stacks)`` form.
    """
    magic = fp.read(len(_BIN_MAGIC))
    if magic != _BIN_MAGIC:
        reason = "empty trace file" if magic == b"" else f"bad magic {magic!r}"
        raise TraceFormatError(f"offset 0x0: {reason}")
    try:
        stacks, event_count = _read_stack_table(fp)
    except _DECODE_ERRORS as exc:
        raise TraceFormatError(
            f"offset {fp.tell():#x}: corrupt stack table: {exc}"
        ) from exc

    def _iter_events() -> Iterator[Event]:
        for _ in range(event_count):
            start = fp.tell()
            try:
                yield _decode_binary(fp)
            except TraceFormatError:
                raise
            except _DECODE_ERRORS as exc:
                raise TraceFormatError(
                    f"offset {start:#x}: torn record ({exc})"
                ) from exc

    return BinaryTraceStream(stacks, event_count, _iter_events())


def _load_binary(fp: BinaryIO, lenient: bool) -> LoadReport:
    report = LoadReport()

    def problem(offset: int, reason: str) -> None:
        if not lenient:
            raise TraceFormatError(f"offset {offset:#x}: {reason}")
        report.diagnostics.append(Diagnostic(f"offset {offset:#x}", reason))

    magic = fp.read(len(_BIN_MAGIC))
    if magic != _BIN_MAGIC:
        reason = "empty trace file" if magic == b"" else f"bad magic {magic!r}"
        problem(0, reason)
        return report

    # Stack table: its framing carries the events offset, so a defect
    # here is unrecoverable even in lenient mode.
    try:
        stacks, event_count = _read_stack_table(fp)
        report.stacks.extend(stacks)
    except _DECODE_ERRORS as exc:
        problem(fp.tell(), f"corrupt stack table: {exc}")
        return report
    report.declared_events = event_count

    # Events are length-prefixed with no sync marker: a torn record
    # loses framing, so lenient mode keeps the clean prefix and stops.
    for _ in range(event_count):
        start = fp.tell()
        try:
            report.events.append(_decode_binary(fp))
        except TraceFormatError as exc:
            problem(start, str(exc))
            break
        except _DECODE_ERRORS as exc:
            problem(
                start,
                f"torn record after {len(report.events)} of "
                f"{event_count} events ({exc})",
            )
            break
    return report


def _decode_binary(fp: BinaryIO) -> Event:
    tag, ts, ctx_id = _HDR.unpack(_read_exact(fp, _HDR.size))
    if tag == _TAG_ALLOC:
        alloc_id, address, size = struct.unpack("<QQI", _read_exact(fp, 20))
        data_type = _unpack_str(fp)
        subclass = _unpack_str(fp)
        return AllocEvent(
            ts=ts,
            ctx_id=ctx_id,
            alloc_id=alloc_id,
            address=address,
            size=size,
            data_type=data_type,
            subclass=None if subclass == _NONE_SUBCLASS else subclass,
        )
    if tag == _TAG_FREE:
        alloc_id, address = struct.unpack("<QQ", _read_exact(fp, 16))
        return FreeEvent(ts=ts, ctx_id=ctx_id, alloc_id=alloc_id, address=address)
    if tag in (_TAG_READ, _TAG_WRITE):
        address, size, stack_id = struct.unpack("<QIQ", _read_exact(fp, 20))
        file = _unpack_str(fp)
        (line,) = struct.unpack("<I", _read_exact(fp, 4))
        return AccessEvent(
            ts=ts,
            ctx_id=ctx_id,
            address=address,
            size=size,
            is_write=(tag == _TAG_WRITE),
            stack_id=stack_id,
            file=file,
            line=line,
        )
    if tag in (_TAG_ACQ, _TAG_REL):
        lock_id, has_address, address = struct.unpack("<QBQ", _read_exact(fp, 17))
        lock_class = _unpack_str(fp)
        lock_name = _unpack_str(fp)
        mode = _unpack_str(fp)
        (stack_id,) = struct.unpack("<Q", _read_exact(fp, 8))
        file = _unpack_str(fp)
        (line,) = struct.unpack("<I", _read_exact(fp, 4))
        return LockEvent(
            ts=ts,
            ctx_id=ctx_id,
            lock_id=lock_id,
            lock_class=lock_class,
            lock_name=lock_name,
            address=address if has_address else None,
            is_acquire=(tag == _TAG_ACQ),
            mode=mode,
            stack_id=stack_id,
            file=file,
            line=line,
        )
    raise TraceFormatError(f"unknown binary tag {tag}")


# ----------------------------------------------------------------------
# Convenience wrappers
# ----------------------------------------------------------------------


def dumps_text(tracer: Tracer) -> str:
    """Serialize a tracer to the text format, returning a string."""
    buffer = io.StringIO()
    dump_text(tracer, buffer)
    return buffer.getvalue()


def dumps_events_text(events: Sequence[Event], stacks: Sequence[StackFrames]) -> str:
    """Serialize an event stream to the text format."""
    buffer = io.StringIO()
    write_text(events, stacks, buffer)
    return buffer.getvalue()


def loads_text(text: str):
    """Parse a text-format trace from a string (strict)."""
    return load_text(io.StringIO(text))


def loads_text_lenient(text: str) -> LoadReport:
    """Parse a text-format trace from a string (lenient)."""
    return load_text_lenient(io.StringIO(text))


def dumps_binary(tracer: Tracer) -> bytes:
    """Serialize a tracer to the binary format, returning bytes."""
    buffer = io.BytesIO()
    dump_binary(tracer, buffer)
    return buffer.getvalue()


def dumps_events_binary(
    events: Sequence[Event], stacks: Sequence[StackFrames]
) -> bytes:
    """Serialize an event stream to the binary format."""
    buffer = io.BytesIO()
    write_binary(events, stacks, buffer)
    return buffer.getvalue()


def loads_binary(data: bytes):
    """Parse a binary-format trace from bytes (strict)."""
    return load_binary(io.BytesIO(data))


def loads_binary_lenient(data: bytes) -> LoadReport:
    """Parse a binary-format trace from bytes (lenient)."""
    return load_binary_lenient(io.BytesIO(data))


def load_path(path: str, lenient: bool = False) -> LoadReport:
    """Load a trace file, sniffing the format from its content.

    Returns a :class:`LoadReport` in both modes; in strict mode the
    first defect raises :class:`TraceFormatError` instead.
    """
    with open(path, "rb") as fp:
        data = fp.read()
    if data.startswith(_BIN_MAGIC):
        return _load_binary(io.BytesIO(data), lenient)
    text = data.decode("utf-8", errors="replace")
    return _load_text(io.StringIO(text), lenient)
