"""Crash-safe file emission: atomic tmp-file + rename.

Every persistent artifact this repo emits — cache entries, fuzz
corpora, ``BENCH_*.json`` reports — goes through the same contract: the
payload is written to a temporary file in the destination directory and
published with :func:`os.replace`.  A process killed mid-write can
therefore never leave a torn file under the final name: readers see
either the complete old content or the complete new content, never a
prefix.

The temporary file is created with :func:`tempfile.mkstemp` in the
*destination* directory (rename is only atomic within one filesystem)
and unlinked on any failure, so crashes leak at most an
``.tmp``-suffixed orphan, never a half-written artifact.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Union

PathLike = Union[str, Path]


def atomic_write_bytes(path: PathLike, data: bytes) -> None:
    """Atomically publish *data* at *path* (tmp file + rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fp:
            fp.write(data)
            fp.flush()
            try:
                os.fsync(fp.fileno())
            except OSError:
                # Durability is best-effort (some filesystems refuse
                # fsync); atomicity comes from the rename either way.
                pass
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_text(path: PathLike, text: str) -> None:
    """Atomically publish *text* (UTF-8) at *path*."""
    atomic_write_bytes(path, text.encode("utf-8"))


def atomic_write_json(path: PathLike, obj, *, indent: int = 2) -> None:
    """Atomically publish *obj* as sorted, indented JSON at *path*."""
    atomic_write_text(
        path, json.dumps(obj, indent=indent, sort_keys=True) + "\n"
    )
