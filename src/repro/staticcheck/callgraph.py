"""Call graph and bounded upward context tracing.

The dynamic pipeline sees one lock context per *executed* access; the
static side must instead enumerate every *reaching* call path.  This
module builds the (reverse) call graph over parsed functions and, for
one member access, walks upward from the access to every root (a
function without callers), accumulating the held-lock snapshots of each
call site along the way into a :class:`PathContext`.

Two standard static-analysis guards keep the walk finite and honest:

* **bounded context strings** — chains longer than ``max_depth``
  are cut and marked ``truncated`` (k-CFA-style context bound), so
  the analyzer can report how much of the path space it saw;
* **cycle cuts** — a caller already on the current chain is not
  re-entered; if *all* callers of a function sit on the chain the
  path is emitted as truncated rather than silently dropped.

Held locks resolve to :class:`~repro.core.lockrefs.LockRef` exactly
like the dynamic tracer abstracts lock instances: a lock embedded in
the object the access targets is ES, one embedded elsewhere is EO, and
the *self* identity is re-bound at every call edge by mapping the
callee's parameter through the call-site argument (a non-identifier
argument loses the binding, conservatively demoting ES to EO).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.lockrefs import LockRef, dedup_refs
from repro.staticcheck.parser import CallSite, HeldLock, MemberAccess, ParsedFunction

#: Default context-string bound (call-chain length, access included).
DEFAULT_MAX_DEPTH = 8

_IDENTIFIER = re.compile(r"^[A-Za-z_]\w*$")


@dataclass(frozen=True)
class PathContext:
    """One static reaching path for a member access.

    ``chain`` runs root → … → accessing function; ``refs`` is the
    sorted union of lock references held anywhere along the path at
    the relevant program points.
    """

    chain: Tuple[str, ...]
    refs: Tuple[LockRef, ...]
    truncated: bool = False

    @property
    def root(self) -> str:
        return self.chain[0]


@dataclass
class CallGraph:
    """Functions plus the reverse (callee → callers) edge map."""

    functions: Dict[str, ParsedFunction]
    callers: Dict[str, List[Tuple[str, CallSite]]] = field(default_factory=dict)

    @property
    def edges(self) -> int:
        return sum(len(sites) for sites in self.callers.values())


def build_call_graph(functions: Sequence[ParsedFunction]) -> CallGraph:
    """Index *functions* and invert their call edges.

    Calls to functions outside the corpus (kernel API noise) carry no
    edge; duplicate definitions are rejected — the corpus planner
    guarantees globally unique names.
    """
    by_name: Dict[str, ParsedFunction] = {}
    for fn in functions:
        if fn.name in by_name:
            raise ValueError(f"duplicate function definition {fn.name!r}")
        by_name[fn.name] = fn
    callers: Dict[str, List[Tuple[str, CallSite]]] = {}
    for fn in functions:
        for site in fn.calls:
            if site.callee in by_name:
                callers.setdefault(site.callee, []).append((fn.name, site))
    for sites in callers.values():
        sites.sort(key=lambda entry: (entry[0], entry[1].line))
    return CallGraph(functions=by_name, callers=callers)


def resolve(held: HeldLock, self_var: Optional[str]) -> LockRef:
    """Abstract one held lock relative to the current *self* object."""
    if not held.owner_var:
        return LockRef.global_(held.name, held.mode)
    if self_var is not None and held.owner_var == self_var:
        return LockRef.es(held.name, held.owner_type, held.mode)
    return LockRef.eo(held.name, held.owner_type, held.mode)


def _bind_self(
    callee: ParsedFunction, site: CallSite, self_var: Optional[str]
) -> Optional[str]:
    """The caller-side variable playing *self* at this call site."""
    if self_var is None:
        return None
    index = callee.param_index(self_var)
    if index is None or index >= len(site.args):
        return None
    argument = site.args[index]
    if _IDENTIFIER.match(argument):
        return argument
    return None


def _emit(
    results: List[PathContext],
    chain: Tuple[str, ...],
    refs: Sequence[LockRef],
    truncated: bool,
) -> None:
    results.append(PathContext(
        chain=chain, refs=tuple(sorted(dedup_refs(refs))), truncated=truncated
    ))


def _walk(
    graph: CallGraph,
    fn: ParsedFunction,
    self_var: Optional[str],
    chain: Tuple[str, ...],
    refs: List[LockRef],
    results: List[PathContext],
    max_depth: int,
) -> None:
    callers = graph.callers.get(fn.name, ())
    if not callers:
        _emit(results, chain, refs, truncated=False)
        return
    if len(chain) >= max_depth:
        _emit(results, chain, refs, truncated=True)
        return
    progressed = False
    for caller_name, site in callers:
        if caller_name in chain:
            continue  # cycle cut
        caller = graph.functions[caller_name]
        caller_self = _bind_self(fn, site, self_var)
        site_refs = [resolve(held, caller_self) for held in site.held]
        _walk(
            graph, caller, caller_self, (caller_name,) + chain,
            refs + site_refs, results, max_depth,
        )
        progressed = True
    if not progressed:
        # Every caller is already on the chain: the only continuations
        # are cyclic, so record what we have rather than dropping it.
        _emit(results, chain, refs, truncated=True)


def trace_access(
    graph: CallGraph, access: MemberAccess, max_depth: int = DEFAULT_MAX_DEPTH
) -> List[PathContext]:
    """All bounded reaching paths for *access*, sorted by chain."""
    fn = graph.functions[access.function]
    base_refs = [resolve(held, access.var) for held in access.held]
    results: List[PathContext] = []
    _walk(
        graph, fn, access.var, (access.function,), base_refs, results, max_depth
    )
    results.sort(key=lambda path: path.chain)
    return results
