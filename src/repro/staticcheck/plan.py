"""Corpus planning: ground-truth spec → call-graph corpus + plants.

Turns :mod:`repro.kernel.vfs.groundtruth` into a *static* substrate:
for every ``(type, member, access)`` target the planner lays out call
chains (root → op → locked wrapper → raw accessor) whose lock
acquisitions realize the member's rule, and — where the spec injects
deviations — one additional *off-path* chain that reaches the accessor
without (all of) the rule locks.  The planted chains form the ground
truth the checker's precision/recall is scored against.

Path accounting is what makes the outlier analysis work:

* **clean targets** get ``k`` locked chains: every reaching path holds
  the rule context, no outliers;
* **planted targets** (``0 < skip ≤ skip_bound``) get ``k`` locked
  chains plus one deviant chain, so the rule context is the majority
  (``k/(k+1) ≥ threshold``) and exactly the deviant path is flagged;
* **ambivalent targets** (``skip > skip_bound`` or a legitimate
  lock-free read alternative) get enough unlocked chains that *no*
  context reaches the majority threshold — mirroring how the dynamic
  side treats ambivalently observed rules, nothing is flagged;
* **coverage-gap targets** (a rule exists but the runtime weight is 0,
  so no built-in workload ever performs the access) are planted like
  deviations — these are exactly the findings only a static analysis
  can make, and the fusion report classifies them *static-only*.

Everything is deterministic: types in sorted order, members in spec
order, path counts varied per target by a stable CRC of the target
name (never ``hash()``, which is per-process randomized).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.kernel.net.groundtruth import build_net_specs
from repro.kernel.vfs.groundtruth import build_all_specs
from repro.kernel.vfs.spec import LockTok, MemberSpec, TypeSpec
from repro.kernelsrc.model import SourceFunction

#: One corpus file per data type, placed where the real kernel keeps
#: the corresponding code.
_TYPE_FILES: Dict[str, str] = {
    "inode": "fs/vfs_inode_paths.c",
    "dentry": "fs/vfs_dentry_paths.c",
    "super_block": "fs/vfs_super_paths.c",
    "block_device": "fs/vfs_bdev_paths.c",
    "buffer_head": "fs/vfs_buffer_paths.c",
    "cdev": "fs/vfs_cdev_paths.c",
    "pipe_inode_info": "fs/vfs_pipe_paths.c",
    "backing_dev_info": "mm/backing_dev_paths.c",
    "journal_t": "fs/jbd2/journal_paths.c",
    "transaction_t": "fs/jbd2/transaction_paths.c",
    "journal_head": "fs/jbd2/journal_head_paths.c",
    "sock": "net/core/sock_paths.c",
    "sk_buff": "net/core/skbuff_paths.c",
    "socket_wq": "net/socket_paths.c",
    "net_device": "net/core/dev_paths.c",
}

#: Parameter variable naming per type (kernel idiom).
_PARAM_VARS: Dict[str, str] = {
    "inode": "inode",
    "dentry": "dentry",
    "super_block": "sb",
    "block_device": "bdev",
    "buffer_head": "bh",
    "cdev": "cdev",
    "pipe_inode_info": "pipe",
    "backing_dev_info": "bdi",
    "journal_t": "journal",
    "transaction_t": "txn",
    "journal_head": "jh",
    "sock": "sk",
    "sk_buff": "skb",
    "socket_wq": "wq",
    "net_device": "dev",
}

#: Local variable names for dereferenced ``via`` members.
_VIA_ALIASES: Dict[str, str] = {
    "i_bdi": "bdi",
    "i_sb": "sbp",
    "i_dir": "dir",
    "d_parent": "parent",
    "t_journal": "jrnl",
    "b_journal": "jrnl",
    "b_assoc_map": "mapping",
}

#: Lock names that are reader/writer semaphores or rwlocks without a
#: give-away substring in their name.
_RWSEM_NAMES = {"s_umount"}
_RWLOCK_NAMES = {"j_state_lock", "sk_callback_lock"}
_MUTEX_NAMES = {"j_barrier"}
_SEQLOCK_NAMES = {"rename_lock"}
_SEQCOUNT_NAMES = {"d_seq"}
#: Plain sleeping semaphores (the sk_lock owner-lock idiom).
_SEMAPHORE_NAMES = {"sk_lock"}

PLANT_SKIP = "skip"
PLANT_COVERAGE_GAP = "coverage-gap"


@dataclass(frozen=True)
class PlantedDeviation:
    """One ground-truth deviation the checker must find."""

    type_name: str
    member: str
    access_type: str
    function: str  # entry point (root) of the deviant chain
    reason: str  # PLANT_SKIP | PLANT_COVERAGE_GAP

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.type_name, self.member, self.access_type)


@dataclass(frozen=True)
class PlanConfig:
    """Shape knobs for the planned corpus.

    ``majority_threshold`` must mirror the analyzer's outlier
    threshold: it sizes the number of alternative unlocked chains for
    ambivalent targets so their locked fraction stays *below* the
    threshold, while planted targets stay above it
    (``locked_paths / (locked_paths + 1) ≥ threshold`` requires
    ``locked_paths ≥ 3`` at the default 0.7).
    """

    locked_paths: int = 3
    majority_threshold: float = 0.7
    skip_bound: float = 0.2
    lockfree_bound: float = 0.25

    def __post_init__(self) -> None:
        floor = self.majority_threshold / (1.0 - self.majority_threshold)
        if self.locked_paths < floor:
            raise ValueError(
                f"locked_paths={self.locked_paths} cannot carry a "
                f"majority at threshold {self.majority_threshold}"
            )


@dataclass
class CorpusPlan:
    """A planned corpus: renderable functions + the planted manifest."""

    functions: List[SourceFunction]
    planted: List[PlantedDeviation]
    targets: int
    config: PlanConfig = field(default_factory=PlanConfig)

    def planted_keys(self) -> List[Tuple[str, str, str]]:
        return sorted(p.key for p in self.planted)


def _stable_bit(name: str) -> int:
    return zlib.crc32(name.encode("ascii")) % 2


def _lock_pair(token: LockTok, expr: str) -> Tuple[List[str], List[str]]:
    """(acquire statements, release statements) realizing *token* on
    the lock denoted by C lvalue *expr* (already owner-resolved)."""
    if token.kind == "rcu":
        return ["rcu_read_lock();"], ["rcu_read_unlock();"]
    name = token.name
    short = name.rsplit(".", 1)[-1]
    if "rwsem" in short or short in _RWSEM_NAMES:
        if token.mode == "r":
            return [f"down_read(&{expr});"], [f"up_read(&{expr});"]
        return [f"down_write(&{expr});"], [f"up_write(&{expr});"]
    if "mutex" in short or short in _MUTEX_NAMES:
        return [f"mutex_lock(&{expr});"], [f"mutex_unlock(&{expr});"]
    if short in _SEMAPHORE_NAMES:
        return [f"down(&{expr});"], [f"up(&{expr});"]
    if short in _RWLOCK_NAMES:
        if token.mode == "r":
            return [f"read_lock(&{expr});"], [f"read_unlock(&{expr});"]
        return [f"write_lock(&{expr});"], [f"write_unlock(&{expr});"]
    if "seqcount" in short or short in _SEQCOUNT_NAMES:
        if token.mode == "r":
            return (
                [f"seq = read_seqcount_begin(&{expr});"],
                [f"(void)read_seqcount_retry(&{expr}, seq);"],
            )
        return (
            [f"write_seqcount_begin(&{expr});"],
            [f"write_seqcount_end(&{expr});"],
        )
    if short in _SEQLOCK_NAMES:
        return [f"write_seqlock(&{expr});"], [f"write_sequnlock(&{expr});"]
    # default: spinlock, honoring the irq/bh flavor
    suffix = {"irq": "_irq", "bh": "_bh"}.get(token.flavor or "", "")
    return (
        [f"spin_lock{suffix}(&{expr});"],
        [f"spin_unlock{suffix}(&{expr});"],
    )


def _locked_body(
    rule: Sequence[LockTok],
    spec: TypeSpec,
    param: str,
    inner_call: str,
) -> List[str]:
    """Body of a wrapper: via derefs, acquires in rule order, the
    inner call, releases in reverse order."""
    decls: List[str] = []
    aliases: Dict[str, str] = {}
    acquires: List[str] = []
    releases: List[str] = []
    for token in rule:
        if token.kind == "via" and token.via not in aliases:
            alias = _VIA_ALIASES.get(token.via, token.via.replace(".", "_"))
            ref_type = spec.ref_types[token.via]
            decls.append(f"struct {ref_type} *{alias} = {param}->{token.via};")
            aliases[token.via] = alias
    for token in rule:
        if token.kind == "global":
            expr = token.name
        elif token.kind == "es":
            expr = f"{param}->{token.name}"
        elif token.kind == "via":
            expr = f"{aliases[token.via]}->{token.name}"
        else:  # rcu
            expr = ""
        acquire, release = _lock_pair(token, expr)
        acquires.extend(acquire)
        releases[:0] = release  # releases in reverse acquisition order
    return decls + acquires + [inner_call] + releases


def _plan_target(
    spec: TypeSpec,
    member: MemberSpec,
    access: str,
    config: PlanConfig,
    functions: List[SourceFunction],
    planted: List[PlantedDeviation],
) -> None:
    """Emit the call chains for one ``(type, member, access)`` target."""
    type_name = spec.name
    param = _PARAM_VARS[type_name]
    path = _TYPE_FILES[type_name]
    params = ((type_name, param),)
    rule = member.rule_spec(access)
    weight = member.weight_for(access)
    skip = member.write_skip if access == "w" else member.read_skip
    verb = "set" if access == "w" else "get"
    flat = member.member.replace(".", "_")
    base = f"{type_name}_{verb}_{flat}"

    if access == "w":
        access_stmt = f"{param}->{member.member} = 0;"
    else:
        access_stmt = f"(void){param}->{member.member};"
    raw = f"{base}_raw"
    functions.append(SourceFunction(
        name=raw, file=path, params=params, body=(access_stmt,),
        comment=f"{type_name}.{member.member} [{access}] accessor",
    ))

    if not rule:
        # Lock-free target: one plain chain, nothing analyzable.
        functions.append(SourceFunction(
            name=f"{base}_sys0", file=path, params=params,
            body=(f"{raw}({param});",),
        ))
        return

    # k locked chains through one shared wrapper; chain 0 goes through
    # an extra op layer for depth variety.
    k = config.locked_paths + _stable_bit(base)
    wrapper = base
    functions.append(SourceFunction(
        name=wrapper, file=path, params=params,
        body=tuple(_locked_body(rule, spec, param, f"{raw}({param});")),
        comment=f"locks per rule, then {access} {member.member}",
    ))
    op = f"{base}_op"
    functions.append(SourceFunction(
        name=op, file=path, params=params, body=(f"{wrapper}({param});",),
    ))
    for i in range(k):
        callee = op if i == 0 else wrapper
        functions.append(SourceFunction(
            name=f"{base}_sys{i}", file=path, params=params,
            body=(f"{callee}({param});",),
        ))

    if weight == 0:
        reason: Optional[str] = PLANT_COVERAGE_GAP
    elif 0 < skip <= config.skip_bound:
        reason = PLANT_SKIP
    else:
        reason = None

    if reason is not None:
        # Deviant chain: root → helper → raw.  For multi-lock rules the
        # helper keeps the first lock (a realistic partial-locking bug);
        # single-lock rules are skipped entirely.
        partial = rule[:1] if len(rule) >= 2 else ()
        helper = f"{base}_unlocked"
        functions.append(SourceFunction(
            name=helper, file=path, params=params,
            body=tuple(_locked_body(partial, spec, param, f"{raw}({param});")),
        ))
        deviant_root = f"{base}_bg"
        functions.append(SourceFunction(
            name=deviant_root, file=path, params=params,
            body=(f"{helper}({param});",),
        ))
        planted.append(PlantedDeviation(
            type_name=type_name, member=member.member, access_type=access,
            function=deviant_root, reason=reason,
        ))
    elif skip > config.skip_bound or (
        access == "r" and member.lockfree_alt >= config.lockfree_bound
    ):
        # Ambivalent target: enough unlocked alternatives that the
        # locked context stays below the majority threshold.
        threshold = config.majority_threshold
        alternatives = int(k * (1.0 - threshold) / threshold) + 1
        for i in range(alternatives):
            functions.append(SourceFunction(
                name=f"{base}_fast{i}", file=path, params=params,
                body=(f"{raw}({param});",),
                comment="legitimate lock-free alternative path",
            ))


def _plan_cycle_demo(functions: List[SourceFunction]) -> None:
    """A deliberate recursion in the dentry tree walk — exercised by
    the bounded upward tracer's cycle cut, analysis-neutral (it only
    reaches a lock-free accessor)."""
    path = _TYPE_FILES["dentry"]
    params = (("dentry", "dentry"),)
    functions.append(SourceFunction(
        name="dentry_tree_walk", file=path, params=params,
        body=("dentry_tree_walk_step(dentry);",),
        comment="mutually recursive with dentry_tree_walk_step",
    ))
    functions.append(SourceFunction(
        name="dentry_tree_walk_step", file=path, params=params,
        body=("dentry_get_d_sb_raw(dentry);", "dentry_tree_walk(dentry);"),
    ))
    functions.append(SourceFunction(
        name="dentry_shrink_tree", file=path, params=params,
        body=("dentry_tree_walk(dentry);",),
    ))


def build_corpus_plan(
    specs: Optional[Dict[str, TypeSpec]] = None,
    config: Optional[PlanConfig] = None,
) -> CorpusPlan:
    """Plan the full call-graph corpus from the ground-truth specs.

    The default corpus merges the VFS and net slices, so the static
    outlier analysis covers both subsystems' planted deviations in one
    deterministic run (the net plants are all skip-path: the net specs
    have no zero-weight ruled members).
    """
    specs = specs if specs is not None else {
        **build_all_specs(), **build_net_specs(),
    }
    config = config or PlanConfig()
    functions: List[SourceFunction] = []
    planted: List[PlantedDeviation] = []
    targets = 0
    for type_name in sorted(specs):
        spec = specs[type_name]
        for member in spec.members:
            for access in ("r", "w"):
                rule = member.rule_spec(access)
                if not rule and member.weight_for(access) == 0:
                    continue  # the access does not exist in the code base
                targets += 1
                _plan_target(spec, member, access, config, functions, planted)
    if "dentry" in specs and specs["dentry"].has_member("d_sb"):
        _plan_cycle_demo(functions)
    return CorpusPlan(
        functions=functions, planted=planted, targets=targets, config=config
    )
