"""C parser for the call-graph corpus: per-function lock summaries.

A deliberately narrow parser for the kernel-style C the corpus
generator emits (one statement per line, function braces on their own
lines) — but honest about the parts that bite real tools: comments are
stripped with the scanner's literal-aware state machine (a ``"/*"``
inside a string does not open a comment), lock acquisition APIs map to
modes and irq/bh pseudo-locks exactly like the dynamic tracer's
instrumentation, and every call site and member access records the
*held-lock snapshot* at that program point.

The per-function summary is a classic gen/kill pair:

* **gen** — locks still held when the function returns (acquired and
  never released here),
* **kill** — locks released without a local acquisition (the caller
  must have held them).

The corpus functions are all balanced (empty gen/kill); the summaries
exist so the call-graph layer can refuse to propagate through
unbalanced functions and tests can assert balance.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.kernelsrc.scanner import _strip_comments

#: acquisition API -> (held mode, pseudo global acquired first or None).
ACQUIRE_OPS: Dict[str, Tuple[str, Optional[str]]] = {
    "spin_lock": ("w", None),
    "raw_spin_lock": ("w", None),
    "spin_lock_irq": ("w", "hardirq"),
    "spin_lock_irqsave": ("w", "hardirq"),
    "spin_lock_bh": ("w", "softirq"),
    "mutex_lock": ("w", None),
    "down": ("w", None),
    "down_read": ("r", None),
    "down_write": ("w", None),
    "read_lock": ("r", None),
    "write_lock": ("w", None),
    "write_seqlock": ("w", None),
    "read_seqbegin": ("r", None),
    "write_seqcount_begin": ("w", None),
    "read_seqcount_begin": ("r", None),
}

#: release API -> pseudo global released alongside (or None).
RELEASE_OPS: Dict[str, Optional[str]] = {
    "spin_unlock": None,
    "raw_spin_unlock": None,
    "spin_unlock_irq": "hardirq",
    "spin_unlock_irqrestore": "hardirq",
    "spin_unlock_bh": "softirq",
    "mutex_unlock": None,
    "up": None,
    "up_read": None,
    "up_write": None,
    "read_unlock": None,
    "write_unlock": None,
    "write_sequnlock": None,
    "read_seqretry": None,
    "write_seqcount_end": None,
    "read_seqcount_retry": None,
}

_SIG = re.compile(r"^(?:static\s+)?void\s+(\w+)\((.*)\)$")
_PARAM = re.compile(r"struct\s+(\w+)\s*\*\s*(\w+)")
_LOCAL_DECL = re.compile(r"^struct\s+(\w+)\s*\*\s*(\w+)\s*=\s*(.+);$")
_CALL = re.compile(r"\b([A-Za-z_]\w*)\s*\(([^()]*)\)")
_WRITE = re.compile(r"^(\w+)->([A-Za-z_]\w*(?:\.[A-Za-z_]\w*)*)\s*=(?!=)")
_MEMBER = re.compile(r"(&?)\b(\w+)->([A-Za-z_]\w*(?:\.[A-Za-z_]\w*)*)")
_LOCK_MEMBER_EXPR = re.compile(r"^&(\w+)->([A-Za-z_]\w*(?:\.[A-Za-z_]\w*)*)$")
_LOCK_GLOBAL_EXPR = re.compile(r"^&([A-Za-z_]\w*)$")


@dataclass(frozen=True)
class HeldLock:
    """One entry of a held-lock snapshot.

    ``owner_var`` is the local variable the lock was reached through
    ("" for globals and pseudo-locks); ``owner_type`` its struct type.
    """

    owner_var: str
    owner_type: str
    name: str
    mode: str


@dataclass(frozen=True)
class CallSite:
    """A call statement with the held locks at that point."""

    callee: str
    args: Tuple[str, ...]
    held: Tuple[HeldLock, ...]
    line: int


@dataclass(frozen=True)
class MemberAccess:
    """A typed member access with the held locks at that point."""

    function: str
    var: str
    var_type: str
    member: str
    access_type: str  # "r" | "w"
    held: Tuple[HeldLock, ...]
    file: str
    line: int


@dataclass
class ParsedFunction:
    """One parsed function: signature, lock summary, sites."""

    name: str
    file: str
    params: Tuple[Tuple[str, str], ...]  # (struct type, var)
    var_types: Dict[str, str] = field(default_factory=dict)
    calls: List[CallSite] = field(default_factory=list)
    accesses: List[MemberAccess] = field(default_factory=list)
    #: gen set: locks still held at exit (acquired, never released).
    gen: Tuple[HeldLock, ...] = ()
    #: kill set: lock names released without a local acquisition.
    kill: Tuple[str, ...] = ()

    @property
    def balanced(self) -> bool:
        return not self.gen and not self.kill

    def param_index(self, var: str) -> Optional[int]:
        for index, (_, name) in enumerate(self.params):
            if name == var:
                return index
        return None


class _FunctionBuilder:
    def __init__(self, name: str, params_text: str, file: str, line: int):
        params = tuple(
            (match.group(1), match.group(2))
            for match in _PARAM.finditer(params_text)
        )
        self.fn = ParsedFunction(name=name, file=file, params=params)
        self.fn.var_types.update({var: typ for typ, var in params})
        self.held: List[HeldLock] = []
        self.kill: List[str] = []
        self.start_line = line

    def _lock_target(self, expr: str, mode: str) -> Optional[HeldLock]:
        expr = expr.strip()
        member = _LOCK_MEMBER_EXPR.match(expr)
        if member:
            var, name = member.group(1), member.group(2)
            owner_type = self.fn.var_types.get(var, "?")
            return HeldLock(var, owner_type, name, mode)
        glob = _LOCK_GLOBAL_EXPR.match(expr)
        if glob:
            return HeldLock("", "", glob.group(1), mode)
        return None

    def _release(self, owner_var: str, name: str) -> None:
        for index in range(len(self.held) - 1, -1, -1):
            entry = self.held[index]
            if entry.owner_var == owner_var and entry.name == name:
                del self.held[index]
                return
        self.kill.append(name)

    def acquire(self, op: str, args: str) -> None:
        mode, pseudo = ACQUIRE_OPS[op]
        if pseudo is not None:
            self.held.append(HeldLock("", "", pseudo, "w"))
        first = args.split(",", 1)[0]
        target = self._lock_target(first, mode)
        if target is not None:
            self.held.append(target)

    def acquire_rcu(self) -> None:
        self.held.append(HeldLock("", "", "rcu", "r"))

    def release(self, op: str, args: str) -> None:
        pseudo = RELEASE_OPS[op]
        first = args.split(",", 1)[0]
        target = self._lock_target(first, "w")
        if target is not None:
            self._release(target.owner_var, target.name)
        if pseudo is not None:
            self._release("", pseudo)

    def release_rcu(self) -> None:
        self._release("", "rcu")

    def snapshot(self) -> Tuple[HeldLock, ...]:
        return tuple(self.held)

    def record_call(self, callee: str, args: str, line: int) -> None:
        arg_vars = tuple(a.strip() for a in args.split(",")) if args.strip() else ()
        self.fn.calls.append(
            CallSite(callee=callee, args=arg_vars, held=self.snapshot(), line=line)
        )

    def record_access(self, var: str, member: str, access: str, line: int) -> None:
        self.fn.accesses.append(MemberAccess(
            function=self.fn.name,
            var=var,
            var_type=self.fn.var_types.get(var, "?"),
            member=member,
            access_type=access,
            held=self.snapshot(),
            file=self.fn.file,
            line=line,
        ))

    def declare_local(self, struct_type: str, var: str) -> None:
        self.fn.var_types[var] = struct_type

    def finish(self) -> ParsedFunction:
        self.fn.gen = tuple(self.held)
        self.fn.kill = tuple(self.kill)
        return self.fn


def _scan_reads(builder: _FunctionBuilder, text: str, line: int) -> None:
    """Record every non-address-of member dereference in *text* as a
    read (``&x->lock`` is a lock address, not a data access)."""
    for match in _MEMBER.finditer(text):
        if match.group(1):
            continue
        builder.record_access(match.group(2), match.group(3), "r", line)


def _process_statement(builder: _FunctionBuilder, stmt: str, line: int) -> None:
    call = _CALL.search(stmt)
    if call is not None:
        op = call.group(1)
        if op == "rcu_read_lock":
            builder.acquire_rcu()
            return
        if op == "rcu_read_unlock":
            builder.release_rcu()
            return
        if op in ACQUIRE_OPS:
            builder.acquire(op, call.group(2))
            return
        if op in RELEASE_OPS:
            builder.release(op, call.group(2))
            return
    decl = _LOCAL_DECL.match(stmt)
    if decl is not None:
        struct_type, var, rhs = decl.group(1), decl.group(2), decl.group(3)
        builder.declare_local(struct_type, var)
        _scan_reads(builder, rhs, line)
        return
    write = _WRITE.match(stmt)
    if write is not None:
        builder.record_access(write.group(1), write.group(2), "w", line)
        _scan_reads(builder, stmt[write.end():], line)
        return
    if call is not None:
        builder.record_call(call.group(1), call.group(2), line)
        return
    _scan_reads(builder, stmt, line)


def parse_source(path: str, content: str) -> List[ParsedFunction]:
    """Parse one corpus file into function summaries."""
    functions: List[ParsedFunction] = []
    builder: Optional[_FunctionBuilder] = None
    pending: Optional[_FunctionBuilder] = None
    in_block = False
    for number, raw_line in enumerate(content.splitlines(), start=1):
        code, in_block = _strip_comments(raw_line, in_block)
        stmt = code.strip()
        if not stmt:
            continue
        if builder is None:
            if pending is not None and stmt == "{":
                builder = pending
                pending = None
                continue
            pending = None
            signature = _SIG.match(stmt)
            if signature is not None:  # prototypes end in ';' and don't match
                pending = _FunctionBuilder(
                    signature.group(1), signature.group(2), path, number
                )
            continue
        if stmt == "}":
            functions.append(builder.finish())
            builder = None
            continue
        _process_statement(builder, stmt, number)
    return functions


def parse_tree(tree: Mapping[str, str]) -> List[ParsedFunction]:
    """Parse a ``{path: content}`` corpus tree (sorted path order)."""
    functions: List[ParsedFunction] = []
    for path in sorted(tree):
        functions.extend(parse_source(path, tree[path]))
    return functions
