"""End-to-end static-analysis driver.

One call runs the whole static pipeline: plan the call-graph corpus
from the ground-truth specs, render it to C, parse it back, build the
call graph, trace every member access upward, run the outlier
analysis, and score the flagged targets against the planted
deviations.  Everything in the chain is deterministic, so two runs
produce identical findings in identical order — a property the bench
harness and CI assert.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.kernel.vfs.spec import TypeSpec
from repro.kernelsrc.generator import generate_subsystem_tree
from repro.staticcheck.callgraph import (
    DEFAULT_MAX_DEPTH,
    CallGraph,
    PathContext,
    build_call_graph,
    trace_access,
)
from repro.staticcheck.outliers import (
    Score,
    StaticReport,
    TargetKey,
    analyze,
    score_against_plan,
)
from repro.staticcheck.plan import CorpusPlan, PlanConfig, build_corpus_plan
from repro.staticcheck.parser import parse_tree

DEFAULT_THRESHOLD = 0.7


@dataclass
class StaticRunResult:
    """Everything a consumer may want from one run."""

    plan: CorpusPlan
    tree: Dict[str, str]
    graph: CallGraph
    report: StaticReport
    score: Score


def run_static_analysis(
    threshold: float = DEFAULT_THRESHOLD,
    max_depth: int = DEFAULT_MAX_DEPTH,
    locked_paths: Optional[int] = None,
    specs: Optional[Dict[str, TypeSpec]] = None,
) -> StaticRunResult:
    """Run plan → render → parse → trace → analyze → score."""
    if not 0.5 < threshold < 1.0:
        raise ValueError(f"threshold must be in (0.5, 1.0), got {threshold}")
    if max_depth < 2:
        raise ValueError(f"max_depth must be at least 2, got {max_depth}")
    # The corpus must be able to carry a majority at the chosen
    # threshold: k/(k+1) >= threshold requires k >= t/(1-t).
    floor = math.ceil(threshold / (1.0 - threshold))
    config = PlanConfig(
        locked_paths=max(locked_paths or 3, floor),
        majority_threshold=threshold,
    )
    plan = build_corpus_plan(specs=specs, config=config)
    tree = generate_subsystem_tree(plan.functions)
    functions = parse_tree(tree)
    graph = build_call_graph(functions)

    paths_by_target: Dict[TargetKey, List[PathContext]] = {}
    for fn in functions:  # sorted-file, definition order — deterministic
        for access in fn.accesses:
            target = (access.var_type, access.member, access.access_type)
            paths = trace_access(graph, access, max_depth)
            paths_by_target.setdefault(target, []).extend(paths)
    for paths in paths_by_target.values():
        paths.sort(key=lambda path: path.chain)

    report = analyze(
        paths_by_target, threshold, max_depth, functions=len(functions)
    )
    report.counters["call_edges"] = graph.edges
    score = score_against_plan(report, plan.planted_keys())
    return StaticRunResult(
        plan=plan, tree=tree, graph=graph, report=report, score=score
    )
