"""Outlier analysis over static reaching paths.

For every ``(type, member, access)`` target the tracer yields the set
of reaching paths with their lock-context reference sets.  Following
the outlier heuristic of context-sensitive lock checkers (and mirroring
the dynamic side's acceptance threshold), a reference belongs to the
target's **majority context** when at least ``threshold`` of the paths
satisfy it (holding the write side satisfies a read-side need, exactly
as in :func:`repro.core.lockrefs.satisfies`).  A path missing one or
more majority references is an **outlier** — statically, a call chain
that reaches the member without the locks most of the code base takes.

Targets where *no* reference clears the threshold have an ambivalent
discipline (e.g. a sanctioned lock-free fast path); nothing is flagged,
matching how the dynamic miner refuses sub-threshold hypotheses.

Scoring compares flagged targets against the corpus plan's planted
deviations at target granularity: precision = flagged ∩ planted /
flagged, recall = flagged ∩ planted / planted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.core.lockrefs import LockRef, satisfies
from repro.core.report import render_table
from repro.staticcheck.callgraph import PathContext

TargetKey = Tuple[str, str, str]  # (type, member, access)


@dataclass(frozen=True)
class StaticFinding:
    """One outlier path at one target."""

    target: TargetKey
    path: PathContext
    missing: Tuple[LockRef, ...]
    majority: Tuple[LockRef, ...]
    paths_total: int
    support: float  # fraction of paths carrying the full majority context

    @property
    def entry_point(self) -> str:
        return self.path.root


@dataclass(frozen=True)
class TargetSummary:
    """Per-target analysis outcome."""

    target: TargetKey
    majority: Tuple[LockRef, ...]
    paths_total: int
    truncated_paths: int
    outliers: int

    @property
    def key(self) -> str:
        type_name, member, access = self.target
        return f"{type_name}.{member}:{access}"


@dataclass
class StaticReport:
    """The full static-analysis result."""

    findings: List[StaticFinding]
    summaries: List[TargetSummary]
    threshold: float
    max_depth: int
    functions: int = 0
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def flagged_targets(self) -> List[TargetKey]:
        return sorted({finding.target for finding in self.findings})

    def render(self, limit: int = 0) -> str:
        rows = []
        findings = self.findings[:limit] if limit else self.findings
        for finding in findings:
            type_name, member, access = finding.target
            rows.append((
                f"{type_name}.{member}",
                access,
                " -> ".join(finding.path.chain),
                ", ".join(ref.format() for ref in finding.missing) or "-",
                f"{finding.support:.2f}",
            ))
        table = render_table(
            ("target", "a", "outlier path", "missing locks", "support"),
            rows,
            title=(
                f"Static outliers: {len(self.findings)} finding(s) over "
                f"{len(self.summaries)} target(s) "
                f"(threshold {self.threshold}, depth {self.max_depth})"
            ),
        )
        if limit and len(self.findings) > limit:
            table += f"\n... {len(self.findings) - limit} more finding(s)"
        return table

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "threshold": self.threshold,
            "max_depth": self.max_depth,
            "functions": self.functions,
            "counters": dict(sorted(self.counters.items())),
            "targets": [
                {
                    "target": summary.key,
                    "majority": [ref.format() for ref in summary.majority],
                    "paths": summary.paths_total,
                    "truncated_paths": summary.truncated_paths,
                    "outliers": summary.outliers,
                }
                for summary in self.summaries
            ],
            "findings": [
                {
                    "target": ".".join(finding.target[:2]) + f":{finding.target[2]}",
                    "chain": list(finding.path.chain),
                    "missing": [ref.format() for ref in finding.missing],
                    "majority": [ref.format() for ref in finding.majority],
                    "paths_total": finding.paths_total,
                    "support": round(finding.support, 4),
                }
                for finding in self.findings
            ],
        }


@dataclass(frozen=True)
class Score:
    """Target-level precision/recall against the planted ground truth."""

    tp: int
    fp: int
    fn: int
    found: Tuple[TargetKey, ...]
    missed: Tuple[TargetKey, ...]
    unexpected: Tuple[TargetKey, ...]

    @property
    def precision(self) -> float:
        flagged = self.tp + self.fp
        return 1.0 if flagged == 0 else self.tp / flagged

    @property
    def recall(self) -> float:
        planted = self.tp + self.fn
        return 1.0 if planted == 0 else self.tp / planted


def _majority_refs(
    paths: Sequence[PathContext], threshold: float
) -> Tuple[LockRef, ...]:
    """References satisfied on at least *threshold* of the paths."""
    universe: Set[LockRef] = set()
    for path in paths:
        universe.update(path.refs)
    total = len(paths)
    majority = []
    for ref in sorted(universe):
        supported = sum(
            1 for path in paths
            if any(satisfies(held, ref) for held in path.refs)
        )
        if supported / total >= threshold:
            majority.append(ref)
    return tuple(majority)


def analyze_target(
    target: TargetKey, paths: Sequence[PathContext], threshold: float
) -> Tuple[TargetSummary, List[StaticFinding]]:
    """Flag outlier paths of one target against its majority context."""
    majority = _majority_refs(paths, threshold)
    total = len(paths)
    truncated = sum(1 for path in paths if path.truncated)
    findings: List[StaticFinding] = []
    if majority:
        clean = sum(
            1 for path in paths
            if all(
                any(satisfies(held, ref) for held in path.refs)
                for ref in majority
            )
        )
        support = clean / total
        for path in paths:
            missing = tuple(
                ref for ref in majority
                if not any(satisfies(held, ref) for held in path.refs)
            )
            if missing:
                findings.append(StaticFinding(
                    target=target,
                    path=path,
                    missing=missing,
                    majority=majority,
                    paths_total=total,
                    support=support,
                ))
    findings.sort(key=lambda finding: finding.path.chain)
    summary = TargetSummary(
        target=target,
        majority=majority,
        paths_total=total,
        truncated_paths=truncated,
        outliers=len(findings),
    )
    return summary, findings


def analyze(
    paths_by_target: Dict[TargetKey, Sequence[PathContext]],
    threshold: float,
    max_depth: int,
    functions: int = 0,
) -> StaticReport:
    """Run the outlier analysis over all targets."""
    summaries: List[TargetSummary] = []
    findings: List[StaticFinding] = []
    total_paths = 0
    truncated_paths = 0
    for target in sorted(paths_by_target):
        summary, target_findings = analyze_target(
            target, paths_by_target[target], threshold
        )
        summaries.append(summary)
        findings.extend(target_findings)
        total_paths += summary.paths_total
        truncated_paths += summary.truncated_paths
    findings.sort(key=lambda finding: (finding.target, finding.path.chain))
    return StaticReport(
        findings=findings,
        summaries=summaries,
        threshold=threshold,
        max_depth=max_depth,
        functions=functions,
        counters={
            "targets": len(summaries),
            "paths": total_paths,
            "truncated_paths": truncated_paths,
            "flagged_targets": len({f.target for f in findings}),
        },
    )


def score_against_plan(
    report: StaticReport, planted_keys: Iterable[TargetKey]
) -> Score:
    """Score flagged targets against the planted deviation set."""
    planted = set(planted_keys)
    flagged = set(report.flagged_targets)
    found = tuple(sorted(flagged & planted))
    unexpected = tuple(sorted(flagged - planted))
    missed = tuple(sorted(planted - flagged))
    return Score(
        tp=len(found),
        fp=len(unexpected),
        fn=len(missed),
        found=found,
        missed=missed,
        unexpected=unexpected,
    )
