"""Static call-graph lock-context checker (the "staticcheck" side).

The dynamic pipeline mines locking rules from what a workload
*executed*; this package checks what the code *could* execute: it
plans and renders a call-graph-bearing C corpus from the ground-truth
specs, parses it into per-function lock summaries, traces every member
access upward through bounded call chains, flags reaching paths that
lack the majority lock context, and fuses the result with the
dynamically mined rules.
"""

from repro.staticcheck.callgraph import (
    CallGraph,
    DEFAULT_MAX_DEPTH,
    PathContext,
    build_call_graph,
    resolve,
    trace_access,
)
from repro.staticcheck.driver import (
    DEFAULT_THRESHOLD,
    StaticRunResult,
    run_static_analysis,
)
from repro.staticcheck.fusion import FusionEntry, FusionReport, fuse
from repro.staticcheck.outliers import (
    Score,
    StaticFinding,
    StaticReport,
    TargetSummary,
    analyze,
    score_against_plan,
)
from repro.staticcheck.parser import (
    HeldLock,
    MemberAccess,
    ParsedFunction,
    parse_source,
    parse_tree,
)
from repro.staticcheck.plan import (
    CorpusPlan,
    PlanConfig,
    PlantedDeviation,
    build_corpus_plan,
)
