"""Fusion of static findings with the dynamic mining results.

Static and dynamic analyses fail differently: the tracer only sees
paths the workload exercises (false negatives from coverage gaps), the
static tracer sees paths that may never execute (false positives from
imprecision).  The fusion report joins the static outliers against the
mined rules and the violation finder's output and classifies every
discrepancy:

* ``confirmed-by-trace`` — the static outlier corresponds to a target
  whose mined rule also has dynamic counterexamples (s_r < 1): both
  analyses agree something is off; highest confidence.
* ``static-only`` — flagged statically but dynamically silent.  Either
  the target was mined with full support (the deviant path exists in
  the code but the workload never drove it — a *coverage gap*) or it
  was never observed at all.  These are exactly the findings only a
  static analysis can make.
* ``dynamic-only`` — the trace shows violations but no static outlier
  path reaches the member without the majority locks; typically
  imprecision or a data-dependent path the call graph cannot separate.

Independently of findings, the per-target **rule agreement** compares
the static majority context against the mined rule's reference set
(best match across subclass rules): equal sets, static context strictly
stronger/weaker, or outright disagreement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.core.report import render_table
from repro.core.rulesio import ExportedRule
from repro.core.violations import Violation
from repro.staticcheck.outliers import StaticReport, TargetKey

CONFIRMED = "confirmed-by-trace"
STATIC_ONLY = "static-only"
DYNAMIC_ONLY = "dynamic-only"

AGREE_MATCH = "matches"
AGREE_STRONGER = "static-stronger"
AGREE_WEAKER = "static-weaker"
AGREE_DISAGREE = "disagrees"
AGREE_UNMINED = "unmined"

#: s_r at/above this counts as fully complied (float-rounding guard;
#: exports round s_r to 6 digits).
_FULL_SUPPORT = 0.999999


@dataclass(frozen=True)
class FusionEntry:
    """One fused finding."""

    target: TargetKey
    classification: str  # CONFIRMED | STATIC_ONLY | DYNAMIC_ONLY
    detail: str
    static_outliers: int = 0
    dynamic_s_r: Optional[float] = None
    dynamic_events: int = 0

    @property
    def key(self) -> str:
        type_name, member, access = self.target
        return f"{type_name}.{member}:{access}"


@dataclass
class FusionReport:
    """Joined static/dynamic result."""

    entries: List[FusionEntry]
    agreement: Dict[str, int] = field(default_factory=dict)

    def counts(self) -> Dict[str, int]:
        out = {CONFIRMED: 0, STATIC_ONLY: 0, DYNAMIC_ONLY: 0}
        for entry in self.entries:
            out[entry.classification] += 1
        return out

    def by_class(self, classification: str) -> List[FusionEntry]:
        return [e for e in self.entries if e.classification == classification]

    def render(self) -> str:
        counts = self.counts()
        rows = [
            (
                entry.key,
                entry.classification,
                entry.static_outliers,
                "-" if entry.dynamic_s_r is None else f"{entry.dynamic_s_r:.4f}",
                entry.dynamic_events,
                entry.detail,
            )
            for entry in self.entries
        ]
        table = render_table(
            ("target", "class", "outliers", "s_r", "events", "detail"),
            rows,
            title=(
                "Fusion report: "
                f"{counts[CONFIRMED]} confirmed, "
                f"{counts[STATIC_ONLY]} static-only, "
                f"{counts[DYNAMIC_ONLY]} dynamic-only"
            ),
        )
        agreement = ", ".join(
            f"{kind}={count}" for kind, count in sorted(self.agreement.items())
        )
        return table + f"\nRule agreement: {agreement}"

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "counts": self.counts(),
            "agreement": dict(sorted(self.agreement.items())),
            "entries": [
                {
                    "target": entry.key,
                    "class": entry.classification,
                    "static_outliers": entry.static_outliers,
                    "dynamic_s_r": entry.dynamic_s_r,
                    "dynamic_events": entry.dynamic_events,
                    "detail": entry.detail,
                }
                for entry in self.entries
            ],
        }


def _base_key(rule: ExportedRule) -> TargetKey:
    # Dynamic type keys carry subclassing ("inode:file"); the static
    # corpus knows only base types.
    return (rule.type_key.split(":")[0], rule.member, rule.access_type)


def _agreement(
    majority: Sequence, rules: Sequence[ExportedRule]
) -> str:
    """Best agreement of the static majority context across the mined
    (subclass) rules of one base target."""
    static_refs: Set = set(majority)
    rank = {
        AGREE_MATCH: 0,
        AGREE_STRONGER: 1,
        AGREE_WEAKER: 2,
        AGREE_DISAGREE: 3,
    }
    best = AGREE_DISAGREE
    for rule in rules:
        dynamic_refs = set(rule.rule.locks)
        if static_refs == dynamic_refs:
            kind = AGREE_MATCH
        elif static_refs > dynamic_refs:
            kind = AGREE_STRONGER
        elif static_refs < dynamic_refs:
            kind = AGREE_WEAKER
        else:
            kind = AGREE_DISAGREE
        if rank[kind] < rank[best]:
            best = kind
    return best


def fuse(
    report: StaticReport,
    rules: Sequence[ExportedRule],
    violations: Optional[Sequence[Violation]] = None,
) -> FusionReport:
    """Join a static report with mined rules (and, optionally, the
    violation finder's output for event counts)."""
    mined: Dict[TargetKey, List[ExportedRule]] = {}
    for rule in rules:
        mined.setdefault(_base_key(rule), []).append(rule)
    violating = {
        key for key, rule_list in mined.items()
        if any(rule.s_r < _FULL_SUPPORT for rule in rule_list)
    }
    events: Dict[TargetKey, int] = {}
    for violation in violations or ():
        key = (
            violation.type_key.split(":")[0],
            violation.member,
            violation.access_type,
        )
        events[key] = events.get(key, 0) + violation.events

    outliers_per_target: Dict[TargetKey, int] = {}
    for finding in report.findings:
        outliers_per_target[finding.target] = (
            outliers_per_target.get(finding.target, 0) + 1
        )

    entries: List[FusionEntry] = []
    for target in sorted(outliers_per_target):
        target_rules = mined.get(target, [])
        worst_s_r = min((r.s_r for r in target_rules), default=None)
        if target in violating:
            classification = CONFIRMED
            detail = "dynamic counterexamples exist for the mined rule"
        elif target_rules:
            classification = STATIC_ONLY
            detail = (
                "mined rule fully complied dynamically — "
                "deviant path unexercised (coverage gap)"
            )
        else:
            classification = STATIC_ONLY
            detail = "target unobserved dynamically"
        event_count = events.get(target, 0)
        if event_count:
            detail += f"; {event_count} violating event(s) in trace"
        entries.append(FusionEntry(
            target=target,
            classification=classification,
            detail=detail,
            static_outliers=outliers_per_target[target],
            dynamic_s_r=worst_s_r,
            dynamic_events=event_count,
        ))
    for target in sorted(violating - set(outliers_per_target)):
        worst_s_r = min(rule.s_r for rule in mined[target])
        event_count = events.get(target, 0)
        entries.append(FusionEntry(
            target=target,
            classification=DYNAMIC_ONLY,
            detail=(
                "trace violations without a static outlier path "
                "(imprecision or data-dependent locking)"
            ),
            static_outliers=0,
            dynamic_s_r=worst_s_r,
            dynamic_events=event_count,
        ))
    entries.sort(key=lambda entry: (entry.classification, entry.target))

    agreement: Dict[str, int] = {}
    for summary in report.summaries:
        if not summary.majority:
            continue
        target_rules = mined.get(summary.target)
        kind = (
            _agreement(summary.majority, target_rules)
            if target_rules
            else AGREE_UNMINED
        )
        agreement[kind] = agreement.get(kind, 0) + 1
    return FusionReport(entries=entries, agreement=agreement)
