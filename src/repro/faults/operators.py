"""Trace-corruption operators.

Each operator models one defect class that real kernel traces exhibit
(Fail*/Bochs runs killed mid-write, events dropped under tracing load,
releases missing at trace boundaries).  Operators are pure: they take a
``random.Random`` handed in by the :class:`~repro.faults.plan.FaultPlan`
and never keep state, so the same (seed, plan) always reproduces the
same corruption.

Two levels:

* **event level** (``apply_events``) — structural defects on the
  decoded stream: drop, duplicate, reorder-within-a-window, truncation
  (head/tail/random span), missing lock releases, unmatched frees.
* **encoded level** (``apply_text`` / ``apply_bytes``) — defects of the
  storage layer: torn/partial records at the byte level for the binary
  format, mangled lines for the text format.

An operator touches only its level; the other hooks are identity.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.tracing.events import AllocEvent, Event, LockEvent


class FaultOp:
    """Base operator: identity at every level."""

    name = "identity"

    def apply_events(
        self, events: Sequence[Event], rng: random.Random
    ) -> List[Event]:
        return list(events)

    def apply_text(self, text: str, rng: random.Random) -> str:
        return text

    def apply_bytes(self, data: bytes, rng: random.Random) -> bytes:
        return data

    def describe(self) -> str:
        return self.name


# ----------------------------------------------------------------------
# Event-level operators
# ----------------------------------------------------------------------


class DropEvents(FaultOp):
    """Drop each event independently with probability ``rate``."""

    name = "drop"

    def __init__(self, rate: float = 0.02) -> None:
        self.rate = rate

    def apply_events(self, events, rng):
        return [e for e in events if rng.random() >= self.rate]

    def describe(self):
        return f"drop({self.rate})"


class DuplicateEvents(FaultOp):
    """Emit each event twice with probability ``rate`` (replay defects)."""

    name = "dup"

    def __init__(self, rate: float = 0.02) -> None:
        self.rate = rate

    def apply_events(self, events, rng):
        out: List[Event] = []
        for event in events:
            out.append(event)
            if rng.random() < self.rate:
                out.append(event)
        return out

    def describe(self):
        return f"dup({self.rate})"


class ReorderWindow(FaultOp):
    """Jitter event order within a bounded window.

    Each event's position is perturbed by a uniform offset in
    ``[0, window)``; a stable sort by perturbed position yields a
    stream that is locally shuffled but globally ordered — the shape of
    per-CPU buffers flushed out of order.
    """

    name = "reorder"

    def __init__(self, window: int = 8) -> None:
        self.window = max(1, int(window))

    def apply_events(self, events, rng):
        keyed = [
            (index + rng.uniform(0, self.window), index)
            for index in range(len(events))
        ]
        keyed.sort()
        return [events[index] for _, index in keyed]

    def describe(self):
        return f"reorder(window={self.window})"


class TruncateHead(FaultOp):
    """Drop a prefix of up to ``fraction`` of the stream.

    Models tracing that starts mid-run: accesses hit unknown
    allocations, releases have no acquisition.
    """

    name = "truncate-head"

    def __init__(self, fraction: float = 0.2) -> None:
        self.fraction = fraction

    def apply_events(self, events, rng):
        bound = int(len(events) * self.fraction)
        cut = rng.randint(0, bound) if bound > 0 else 0
        return list(events[cut:])

    def describe(self):
        return f"truncate-head({self.fraction})"


class TruncateTail(FaultOp):
    """Drop a suffix of up to ``fraction`` — the killed-mid-write run."""

    name = "truncate-tail"

    def __init__(self, fraction: float = 0.2) -> None:
        self.fraction = fraction

    def apply_events(self, events, rng):
        bound = int(len(events) * self.fraction)
        cut = rng.randint(0, bound) if bound > 0 else 0
        return list(events[: len(events) - cut])

    def describe(self):
        return f"truncate-tail({self.fraction})"


class TruncateMid(FaultOp):
    """Drop one contiguous span of up to ``fraction`` of the stream."""

    name = "truncate-mid"

    def __init__(self, fraction: float = 0.1) -> None:
        self.fraction = fraction

    def apply_events(self, events, rng):
        if not events:
            return []
        bound = max(1, int(len(events) * self.fraction))
        span = rng.randint(1, bound)
        start = rng.randrange(max(1, len(events) - span))
        return list(events[:start]) + list(events[start + span:])

    def describe(self):
        return f"truncate-mid({self.fraction})"


class DropReleases(FaultOp):
    """Drop lock-release events with probability ``rate``.

    The canonical inaccurate-trace defect: the lock appears held
    forever afterwards, so downstream analyses must fence off the
    affected spans.
    """

    name = "drop-releases"

    def __init__(self, rate: float = 0.2) -> None:
        self.rate = rate

    def apply_events(self, events, rng):
        return [
            e
            for e in events
            if not (
                isinstance(e, LockEvent)
                and not e.is_acquire
                and rng.random() < self.rate
            )
        ]

    def describe(self):
        return f"drop-releases({self.rate})"


class DropAllocs(FaultOp):
    """Drop allocation events with probability ``rate``.

    Leaves unmatched frees and untyped accesses behind — the importer
    must quarantine the former and degrade the latter.
    """

    name = "drop-allocs"

    def __init__(self, rate: float = 0.2) -> None:
        self.rate = rate

    def apply_events(self, events, rng):
        return [
            e
            for e in events
            if not (isinstance(e, AllocEvent) and rng.random() < self.rate)
        ]

    def describe(self):
        return f"drop-allocs({self.rate})"


# ----------------------------------------------------------------------
# Encoded-level operators
# ----------------------------------------------------------------------


class TornTail(FaultOp):
    """Cut the serialized trace mid-record.

    The binary stream loses up to ``fraction`` of its bytes; the text
    stream is cut mid-line.  Both model a writer killed before flush.
    """

    name = "torn"

    def __init__(self, fraction: float = 0.05) -> None:
        self.fraction = fraction

    def _cut(self, length: int, floor: int, rng: random.Random) -> int:
        bound = max(1, int(length * self.fraction))
        return max(floor, length - rng.randint(1, bound))

    def apply_bytes(self, data, rng):
        if len(data) < 8:
            return data
        return data[: self._cut(len(data), 7, rng)]

    def apply_text(self, text, rng):
        if len(text) < 24:
            return text
        return text[: self._cut(len(text), 20, rng)]

    def describe(self):
        return f"torn({self.fraction})"


class MangleLines(FaultOp):
    """Mangle text-format lines with probability ``rate`` per line.

    Mutations: truncate the line, garble one tab-separated field, drop
    a field, or splice in garbage — the defects transport and log
    rotation inflict on line-oriented traces.  (Binary streams are
    handled by :class:`TornTail`; this operator leaves bytes alone.)
    """

    name = "mangle"

    def __init__(self, rate: float = 0.02) -> None:
        self.rate = rate

    def apply_text(self, text, rng):
        lines = text.split("\n")
        # Leave the two header lines alone: header corruption is total
        # loss, which TornTail already covers more honestly.
        for index in range(2, len(lines)):
            if lines[index] and rng.random() < self.rate:
                lines[index] = self._mutate(lines[index], rng)
        return "\n".join(lines)

    def _mutate(self, line: str, rng: random.Random) -> str:
        choice = rng.randrange(4)
        if choice == 0:  # truncate mid-line
            return line[: rng.randrange(len(line))]
        parts = line.split("\t")
        if choice == 1:  # garble one field
            victim = rng.randrange(len(parts))
            parts[victim] = "??" + parts[victim][:2]
            return "\t".join(parts)
        if choice == 2 and len(parts) > 1:  # lose one field
            del parts[rng.randrange(len(parts))]
            return "\t".join(parts)
        # splice garbage into the middle
        pos = rng.randrange(len(line))
        return line[:pos] + "\x00garbage\x00" + line[pos:]

    def describe(self):
        return f"mangle({self.rate})"


class FlipBytes(FaultOp):
    """Flip a per-byte ``rate`` share of bytes in the binary stream.

    Bit rot / DMA corruption: framing survives until the first flipped
    length prefix, after which the lenient loader must stop cleanly.
    (Text streams are handled by :class:`MangleLines`.)
    """

    name = "flip"

    def __init__(self, rate: float = 0.001) -> None:
        self.rate = rate

    def apply_bytes(self, data, rng):
        if len(data) < 8:
            return data
        mutable = bytearray(data)
        flips = max(1, int(len(data) * self.rate))
        for _ in range(flips):
            # Spare the magic so the file still identifies as a trace.
            position = rng.randrange(6, len(mutable))
            mutable[position] ^= 1 << rng.randrange(8)
        return bytes(mutable)

    def describe(self):
        return f"flip({self.rate})"
