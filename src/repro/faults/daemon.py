"""Daemon-level fault operators (chaos injection for ``repro.serve``).

The trace-level operators in :mod:`repro.faults.operators` corrupt
*data*; these corrupt the *service*: a worker process that dies
mid-computation, a worker that stalls past its deadline.  They run
**inside** the worker, armed by the server's ``--chaos`` spec, so the
chaos harness exercises exactly the production failure paths (pipe EOF
→ crashed-worker classification, deadline expiry → worker kill).

Determinism mirrors :class:`repro.faults.plan.FaultPlan`: every
decision draws from ``random.Random(f"{seed}/{key}/{attempt}")`` — the
request's content-addressed key plus the re-execution attempt — so a
gauntlet failure replays exactly, and a crash-on-first-attempt can be
configured to succeed on the bounded retry (rates < 1) or to exhaust
it (rate = 1).

Spec syntax (the ``corrupt --ops`` convention)::

    crash:0.5,stall:2.0     # die with p=.5, then sleep 2 s if alive
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: Exit code of a chaos-crashed worker (distinguishable from signals).
CHAOS_EXIT = 70


@dataclass(frozen=True)
class ChaosOp:
    """One daemon-level fault: ``kind`` with a numeric parameter."""

    kind: str  # "crash" | "stall" | "stall-sometimes"
    param: float

    def describe(self) -> str:
        return f"{self.kind}({self.param})"


_KNOWN: Dict[str, Callable[[Optional[float]], ChaosOp]] = {
    # Die instantly with probability p (default 0.5).
    "crash": lambda p: ChaosOp("crash", p if p is not None else 0.5),
    # Always sleep s seconds before computing (default 2.0).
    "stall": lambda p: ChaosOp("stall", p if p is not None else 2.0),
    # Sleep s seconds with probability 0.5 (slow-request injection
    # that leaves the other half of requests fast).
    "stall-sometimes": lambda p: ChaosOp(
        "stall-sometimes", p if p is not None else 2.0
    ),
}


def operator_names() -> List[str]:
    return sorted(_KNOWN)


@dataclass(frozen=True)
class ChaosPlan:
    """A seeded, ordered composition of daemon-level faults."""

    operators: Tuple[ChaosOp, ...]
    seed: int = 0

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "ChaosPlan":
        operators: List[ChaosOp] = []
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            name, _, raw = token.partition(":")
            factory = _KNOWN.get(name)
            if factory is None:
                known = ", ".join(operator_names())
                raise ValueError(
                    f"unknown chaos operator {name!r} (known: {known})"
                )
            param: Optional[float] = None
            if raw:
                try:
                    param = float(raw)
                except ValueError:
                    raise ValueError(
                        f"bad parameter {raw!r} for chaos operator {name!r}"
                    ) from None
            operators.append(factory(param))
        if not operators:
            raise ValueError(f"empty chaos spec {spec!r}")
        return cls(tuple(operators), seed=seed)

    def describe(self) -> str:
        chain = " -> ".join(op.describe() for op in self.operators)
        return f"{chain} @seed={self.seed}"

    # ------------------------------------------------------------------
    # Injection (runs inside the worker process)
    # ------------------------------------------------------------------

    def decisions(self, key: str, attempt: int) -> Sequence[Tuple[str, float]]:
        """The (action, param) sequence this (key, attempt) will take —
        pure, so tests and the harness can predict worker fate."""
        rng = random.Random(f"{self.seed}/{key}/{attempt}")
        taken: List[Tuple[str, float]] = []
        for op in self.operators:
            if op.kind == "crash":
                if rng.random() < op.param:
                    taken.append(("crash", op.param))
                    break  # nothing executes after death
            elif op.kind == "stall":
                taken.append(("stall", op.param))
            elif op.kind == "stall-sometimes":
                if rng.random() < 0.5:
                    taken.append(("stall", op.param))
        return taken

    def inject(self, key: str, attempt: int) -> None:
        """Apply this plan inside the current (worker) process."""
        for action, param in self.decisions(key, attempt):
            if action == "crash":
                # A real crash: no cleanup, no exception propagation —
                # the parent sees pipe EOF + a dead process, exactly
                # like a segfault or an OOM kill.
                os._exit(CHAOS_EXIT)
            elif action == "stall":
                time.sleep(param)
