"""Deterministic composition of fault operators.

A :class:`FaultPlan` is an ordered list of operators plus a seed.
Every operator receives its own ``random.Random`` derived from
``(seed, position, operator name)``, so

* the same plan and seed always produce byte-identical corruption
  (every failure found by the gauntlet is replayable), and
* inserting or removing one operator does not silently reshuffle the
  randomness of the others.

Plans are parseable from a compact spec string — the CLI's
``corrupt --ops`` syntax::

    drop:0.05,reorder:8,torn          # three operators, two with params
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.faults.operators import (
    DropAllocs,
    DropEvents,
    DropReleases,
    DuplicateEvents,
    FaultOp,
    FlipBytes,
    MangleLines,
    ReorderWindow,
    TornTail,
    TruncateHead,
    TruncateMid,
    TruncateTail,
)
from repro.tracing import serialize
from repro.tracing.events import Event

StackFrames = Tuple[Tuple[str, str, int], ...]

#: name -> factory taking the optional spec parameter.
_REGISTRY: Dict[str, Callable[[Optional[float]], FaultOp]] = {
    "drop": lambda p: DropEvents(p if p is not None else 0.02),
    "dup": lambda p: DuplicateEvents(p if p is not None else 0.02),
    "reorder": lambda p: ReorderWindow(int(p) if p is not None else 8),
    "truncate-head": lambda p: TruncateHead(p if p is not None else 0.2),
    "truncate-tail": lambda p: TruncateTail(p if p is not None else 0.2),
    "truncate-mid": lambda p: TruncateMid(p if p is not None else 0.1),
    "drop-releases": lambda p: DropReleases(p if p is not None else 0.2),
    "drop-allocs": lambda p: DropAllocs(p if p is not None else 0.2),
    "torn": lambda p: TornTail(p if p is not None else 0.05),
    "mangle": lambda p: MangleLines(p if p is not None else 0.02),
    "flip": lambda p: FlipBytes(p if p is not None else 0.001),
}


def operator_names() -> List[str]:
    """All spec-addressable operator names."""
    return sorted(_REGISTRY)


def make_operator(name: str, param: Optional[float] = None) -> FaultOp:
    """Instantiate one operator by spec name."""
    factory = _REGISTRY.get(name)
    if factory is None:
        known = ", ".join(operator_names())
        raise ValueError(f"unknown fault operator {name!r} (known: {known})")
    return factory(param)


class FaultPlan:
    """A seeded, ordered composition of fault operators."""

    def __init__(self, operators: Sequence[FaultOp], seed: int = 0) -> None:
        self.operators: Tuple[FaultOp, ...] = tuple(operators)
        self.seed = seed

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Parse ``"name[:param],name[:param],..."`` into a plan."""
        operators: List[FaultOp] = []
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            name, _, raw_param = token.partition(":")
            param: Optional[float] = None
            if raw_param:
                try:
                    param = float(raw_param)
                except ValueError:
                    raise ValueError(
                        f"bad parameter {raw_param!r} for operator {name!r}"
                    ) from None
            operators.append(make_operator(name, param))
        if not operators:
            raise ValueError(f"empty fault spec {spec!r}")
        return cls(operators, seed=seed)

    def describe(self) -> str:
        chain = " -> ".join(op.describe() for op in self.operators)
        return f"{chain} @seed={self.seed}"

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------

    def _rng(self, index: int, op: FaultOp) -> random.Random:
        return random.Random(f"{self.seed}/{index}/{op.name}")

    def apply_events(self, events: Sequence[Event]) -> List[Event]:
        """Run the event-level side of every operator, in order."""
        out = list(events)
        for index, op in enumerate(self.operators):
            out = op.apply_events(out, self._rng(index, op))
        return out

    def apply_text(self, text: str) -> str:
        """Run the text-level side of every operator, in order."""
        for index, op in enumerate(self.operators):
            text = op.apply_text(text, self._rng(index, op))
        return text

    def apply_bytes(self, data: bytes) -> bytes:
        """Run the byte-level side of every operator, in order."""
        for index, op in enumerate(self.operators):
            data = op.apply_bytes(data, self._rng(index, op))
        return data

    # ------------------------------------------------------------------
    # Whole-trace corruption (event level, then storage level)
    # ------------------------------------------------------------------

    def corrupt_text(self, text: str) -> str:
        """Corrupt a text-format trace end-to-end.

        The clean input is decoded strictly, event-level operators are
        applied, the stream is re-encoded, and encoded-level operators
        mangle the result.
        """
        events, stacks = serialize.loads_text(text)
        encoded = serialize.dumps_events_text(self.apply_events(events), stacks)
        return self.apply_text(encoded)

    def corrupt_binary(self, data: bytes) -> bytes:
        """Corrupt a binary-format trace end-to-end (see corrupt_text)."""
        events, stacks = serialize.loads_binary(data)
        encoded = serialize.dumps_events_binary(self.apply_events(events), stacks)
        return self.apply_bytes(encoded)
