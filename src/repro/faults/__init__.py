"""Fault injection for trace robustness testing.

A seeded, composable trace-corruption engine: :mod:`operators` define
defect classes (drop, duplicate, reorder, truncate, missing releases,
unmatched frees, torn records, mangled lines), :mod:`plan` composes
them deterministically so every injected failure is replayable.

The corruption gauntlet (``tests/test_gauntlet.py``, CI job
``fault-injection``) drives every operator through the full
``trace -> import -> derive -> races`` pipeline in lenient mode and
asserts that no exception escapes and that the
:class:`~repro.db.health.TraceHealth` report accounts for every input
event.
"""

from repro.faults.operators import (
    DropAllocs,
    DropEvents,
    DropReleases,
    DuplicateEvents,
    FaultOp,
    FlipBytes,
    MangleLines,
    ReorderWindow,
    TornTail,
    TruncateHead,
    TruncateMid,
    TruncateTail,
)
from repro.faults.plan import FaultPlan, make_operator, operator_names

#: One representative spec per operator — what the gauntlet sweeps.
ALL_OPERATOR_SPECS = (
    "drop:0.05",
    "dup:0.05",
    "reorder:6",
    "truncate-head:0.3",
    "truncate-tail:0.3",
    "truncate-mid:0.2",
    "drop-releases:0.3",
    "drop-allocs:0.3",
    "torn:0.1",
    "mangle:0.05",
    "flip:0.002",
)

#: A kitchen-sink composition exercising operator interaction.
COMPOSED_SPEC = "drop:0.03,dup:0.02,reorder:4,drop-releases:0.1,mangle:0.02"

__all__ = [
    "ALL_OPERATOR_SPECS",
    "COMPOSED_SPEC",
    "DropAllocs",
    "DropEvents",
    "DropReleases",
    "DuplicateEvents",
    "FaultOp",
    "FaultPlan",
    "FlipBytes",
    "MangleLines",
    "ReorderWindow",
    "TornTail",
    "TruncateHead",
    "TruncateMid",
    "TruncateTail",
    "make_operator",
    "operator_names",
]
