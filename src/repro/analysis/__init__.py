"""Dynamic race analysis over LockDoc traces.

LockDoc's violation finder (Sec. 5.5) flags accesses that break the
*derived* locking rule, but a rule violation alone cannot say whether
the access can actually race — init-phase accesses, for example,
legitimately skip locking because nothing runs concurrently yet.  This
package adds the classic dynamic-race toolbox on top of the same trace
substrate:

* :mod:`repro.analysis.lockset`     — Eraser-style lockset algorithm
  with the virgin → exclusive → shared → shared-modified state machine,
* :mod:`repro.analysis.vectorclock` — sparse vector clocks,
* :mod:`repro.analysis.happens`     — happens-before order built from
  program order plus lock release→acquire edges in the trace,
* :mod:`repro.analysis.racedetect`  — the driver joining lockset
  candidates, happens-before, and LockDoc's derived winning rules into
  classified race reports.

The combination is strictly stronger than either side alone: the
lockset pass finds members with no consistent lock, happens-before
prunes the candidates that are totally ordered anyway, and the derived
rules say which surviving candidates contradict the locking discipline
the rest of the system follows.
"""

from repro.analysis.happens import AccessStamp, HappensBeforeIndex, happens_before
from repro.analysis.lockset import LocksetResult, MemberState, run_lockset
from repro.analysis.racedetect import (
    RaceClass,
    RaceFinding,
    RaceReport,
    classify_candidates,
    detect_races,
)
from repro.analysis.vectorclock import VectorClock

__all__ = [
    "AccessStamp",
    "HappensBeforeIndex",
    "LocksetResult",
    "MemberState",
    "RaceClass",
    "RaceFinding",
    "RaceReport",
    "VectorClock",
    "classify_candidates",
    "detect_races",
    "happens_before",
    "run_lockset",
]
