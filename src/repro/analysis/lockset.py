"""Eraser-style lockset analysis over the trace database.

For every ``(allocation, member)`` pair the algorithm maintains the
classic Eraser state machine

    VIRGIN → EXCLUSIVE → SHARED → SHARED_MODIFIED

together with the *candidate lockset* ``C(v)``: the intersection of the
locks held across all accesses (reads intersect every held lock, writes
intersect only write-mode-held locks, since a reader-held lock cannot
order two writers).  A pair whose state reaches SHARED_MODIFIED with an
empty lockset has no lock that consistently protected it — a race
*candidate*.

One deliberate deviation from Eraser: refinement here is **eager** —
``C(v)`` starts at the *first* access's held set instead of being armed
only once a second thread shows up.  Eraser's delayed start exists to
suppress init-phase false positives inside the lockset algorithm
itself; this pipeline wants those candidates *surfaced*, because the
happens-before layer (:mod:`repro.analysis.happens`) prunes them with
an actual ordering proof rather than a heuristic, and the pruned ones
become the report class "ordered violation" that LockDoc's Tab. 7
finder cannot distinguish from bugs.

Lock identity is the lock *instance* (``lock_id``), not the abstract
:class:`~repro.core.lockrefs.LockRef`: two threads holding two
different instances of ``inode.i_lock`` protect nothing between them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.db.database import TraceDatabase
from repro.db.schema import AccessRow

#: Held-lock sets of one transaction: (all modes, write-mode only).
_HeldSets = Tuple[FrozenSet[int], FrozenSet[int]]

_EMPTY: FrozenSet[int] = frozenset()


class MemberState(enum.Enum):
    """Eraser state of one (allocation, member) pair."""

    VIRGIN = "virgin"
    EXCLUSIVE = "exclusive"
    SHARED = "shared"
    SHARED_MODIFIED = "shared-modified"


@dataclass
class MemberTrack:
    """Lockset bookkeeping for one (allocation, member) pair."""

    alloc_id: int
    member: str
    type_key: str
    state: MemberState = MemberState.VIRGIN
    lockset: FrozenSet[int] = _EMPTY
    first_ctx: Optional[int] = None
    ctx_ids: Set[int] = field(default_factory=set)
    write_ctx_ids: Set[int] = field(default_factory=set)
    accesses: List[AccessRow] = field(default_factory=list)

    @property
    def is_candidate(self) -> bool:
        return self.state == MemberState.SHARED_MODIFIED and not self.lockset

    def apply(self, access: AccessRow, held: _HeldSets) -> None:
        """Advance the state machine and refine the lockset."""
        all_held, write_held = held
        protecting = write_held if access.access_type == "w" else all_held
        if self.state == MemberState.VIRGIN:
            self.state = MemberState.EXCLUSIVE
            self.first_ctx = access.ctx_id
            self.lockset = protecting
        else:
            self.lockset &= protecting
            if access.ctx_id != self.first_ctx or self.state != MemberState.EXCLUSIVE:
                if access.access_type == "w":
                    self.state = MemberState.SHARED_MODIFIED
                elif self.state == MemberState.EXCLUSIVE:
                    self.state = MemberState.SHARED
        self.ctx_ids.add(access.ctx_id)
        if access.access_type == "w":
            self.write_ctx_ids.add(access.ctx_id)
        self.accesses.append(access)


@dataclass
class LocksetResult:
    """All tracked members plus the surviving candidates."""

    tracks: Dict[Tuple[int, str], MemberTrack]
    candidates: List[MemberTrack]

    def state_counts(self) -> Dict[MemberState, int]:
        counts: Dict[MemberState, int] = {}
        for track in self.tracks.values():
            counts[track.state] = counts.get(track.state, 0) + 1
        return counts


def held_sets_by_txn(db: TraceDatabase) -> Dict[Optional[int], _HeldSets]:
    """Per-transaction held-lock-instance sets (all-mode, write-mode)."""
    held: Dict[Optional[int], _HeldSets] = {None: (_EMPTY, _EMPTY)}
    for txn in db.txns.values():
        all_ids = frozenset(h.lock_id for h in txn.held)
        write_ids = frozenset(h.lock_id for h in txn.held if h.mode == "w")
        held[txn.txn_id] = (all_ids, write_ids)
    return held


def run_lockset(db: TraceDatabase) -> LocksetResult:
    """Run the lockset algorithm over every kept access of *db*.

    Accesses arrive in trace order (``db.accesses`` preserves it), so
    state transitions replay the execution faithfully.
    """
    held = held_sets_by_txn(db)
    none_held = (_EMPTY, _EMPTY)
    tracks: Dict[Tuple[int, str], MemberTrack] = {}
    for access in db.accesses:
        if not access.kept:
            continue
        key = (access.alloc_id, access.member)
        track = tracks.get(key)
        if track is None:
            track = MemberTrack(
                alloc_id=access.alloc_id,
                member=access.member,
                type_key=access.type_key,
            )
            tracks[key] = track
        track.apply(access, held.get(access.txn_id, none_held))
    candidates = sorted(
        (t for t in tracks.values() if t.is_candidate),
        key=lambda t: (t.type_key, t.member, t.alloc_id),
    )
    return LocksetResult(tracks=tracks, candidates=candidates)
