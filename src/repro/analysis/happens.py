"""Happens-before over a LockDoc trace.

The happens-before relation used here is the standard one for lock-based
race prediction (Sulzmann & Stadtmüller, arXiv:1905.10855):

* **program order** — events of one execution context are totally
  ordered, and
* **release→acquire edges** — releasing a lock instance publishes the
  releasing context's knowledge to the next context acquiring the same
  instance,

closed under transitivity.  Deliberately *not* included are the
scheduler's context switches: the simulated kernel runs on a single
core, so switch edges would totally order the whole trace and hide
every race the interleaving merely failed to express.  What remains is
exactly the order the *synchronization operations* guarantee — the
order that still holds when the scheduler makes different choices.

The builder is a single forward pass over the event stream keeping one
sparse clock per context (see :mod:`repro.analysis.vectorclock` for the
semantics).  Two representation tricks keep it linear-ish on traces
with hundreds of thousands of events and thousands of contexts:

* a release is an O(1) snapshot ``(ctx, own_index, knowledge_ref)`` —
  no clock copy, because per-context knowledge dicts are copy-on-write,
* an acquire joins the snapshot into the acquirer's knowledge only when
  it actually learns something new.

Since every edge points forward in trace time, ordering two accesses
``a``, ``b`` with ``a.ts < b.ts`` needs only the one-directional test
"does b know a's context at least up to a's index?" — see
:func:`happens_before`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.vectorclock import VectorClock
from repro.tracing.events import AccessEvent, Event, LockEvent

#: Shared empty knowledge map (never mutated).
_NO_KNOWLEDGE: Mapping[int, int] = {}


@dataclass(frozen=True)
class AccessStamp:
    """The happens-before coordinates of one access event.

    ``index`` is the per-context event index (program order);
    ``knows`` maps *other* context ids to the highest event index of
    theirs this context had transitively learned about when the access
    happened.
    """

    ts: int
    ctx_id: int
    index: int
    knows: Mapping[int, int]

    def knows_of(self, ctx_id: int) -> int:
        """Highest known event index of *ctx_id* (own context: own index)."""
        if ctx_id == self.ctx_id:
            return self.index
        return self.knows.get(ctx_id, 0)

    @property
    def clock(self) -> VectorClock:
        """The stamp as a full vector clock (reference representation)."""
        merged = dict(self.knows)
        merged[self.ctx_id] = self.index
        return VectorClock(merged)


def happens_before(a: AccessStamp, b: AccessStamp) -> bool:
    """True iff *a* happens-before *b*.

    Precondition: ``a.ts < b.ts``.  All happens-before edges point
    forward in trace time, so the reverse direction cannot hold and a
    single knowledge lookup decides the question.
    """
    if a.ctx_id == b.ctx_id:
        return True
    return b.knows.get(a.ctx_id, 0) >= a.index


def unordered(a: AccessStamp, b: AccessStamp) -> bool:
    """True iff neither access happens-before the other (*a* earlier)."""
    return not happens_before(a, b)


class HappensBeforeIndex:
    """Stamps for (a subset of) the access events of one trace."""

    def __init__(self, stamps: Dict[int, AccessStamp]) -> None:
        self._stamps = stamps

    @classmethod
    def build(
        cls,
        events: Sequence[Event],
        needed_ts: Optional[Iterable[int]] = None,
    ) -> "HappensBeforeIndex":
        """One pass over *events*; stamps are recorded for every access
        event, or only those with a timestamp in *needed_ts* (the race
        detector passes just its candidate accesses, which keeps the
        index small on big traces)."""
        wanted: Optional[Set[int]] = None if needed_ts is None else set(needed_ts)
        stamps: Dict[int, AccessStamp] = {}
        index: Dict[int, int] = {}
        knowledge: Dict[int, Mapping[int, int]] = {}
        # lock_id -> (releasing ctx, its index, its knowledge) at release.
        releases: Dict[int, Tuple[int, int, Mapping[int, int]]] = {}

        for event in events:
            ctx = event.ctx_id
            own = index.get(ctx, 0) + 1
            index[ctx] = own
            if isinstance(event, LockEvent):
                if event.is_acquire:
                    snapshot = releases.get(event.lock_id)
                    if snapshot is not None:
                        _learn(knowledge, ctx, snapshot)
                else:
                    releases[event.lock_id] = (
                        ctx, own, knowledge.get(ctx, _NO_KNOWLEDGE)
                    )
            elif isinstance(event, AccessEvent):
                if wanted is None or event.ts in wanted:
                    stamps[event.ts] = AccessStamp(
                        ts=event.ts,
                        ctx_id=ctx,
                        index=own,
                        knows=knowledge.get(ctx, _NO_KNOWLEDGE),
                    )
        return cls(stamps)

    def stamp(self, ts: int) -> AccessStamp:
        return self._stamps[ts]

    def get(self, ts: int) -> Optional[AccessStamp]:
        return self._stamps.get(ts)

    def __len__(self) -> int:
        return len(self._stamps)


def _learn(
    knowledge: Dict[int, Mapping[int, int]],
    ctx: int,
    snapshot: Tuple[int, int, Mapping[int, int]],
) -> None:
    """Join a release snapshot into *ctx*'s knowledge, copy-on-write."""
    source_ctx, source_index, source_knows = snapshot
    base = knowledge.get(ctx, _NO_KNOWLEDGE)
    fresh: Dict[int, int] = {}
    for other, count in source_knows.items():
        if other != ctx and base.get(other, 0) < count:
            fresh[other] = count
    if source_ctx != ctx and base.get(source_ctx, 0) < source_index:
        fresh[source_ctx] = source_index
    if fresh:
        merged = dict(base)
        merged.update(fresh)
        knowledge[ctx] = merged
