"""Sparse vector clocks.

A vector clock maps an execution context id to the number of events of
that context "known" at a point in the trace.  Clocks here are *sparse*:
a benchmark-mix trace contains thousands of contexts (every injected
interrupt handler is a fresh one), but any individual clock only ever
names the contexts it actually synchronized with — absent entries read
as zero.

Instances are immutable; :meth:`VectorClock.join` and
:meth:`VectorClock.advanced` return new clocks (or ``self``/``other``
unchanged when the result would be identical, so chained joins of
already-dominated clocks stay allocation-free).  The happens-before
builder (:mod:`repro.analysis.happens`) implements the same algebra on
flattened dicts for speed; this class is the reference semantics it is
tested against, and the form analysis results expose.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional, Tuple


class VectorClock:
    """An immutable, sparse ``{ctx_id: count}`` clock."""

    __slots__ = ("_clocks",)

    def __init__(self, clocks: Optional[Mapping[int, int]] = None) -> None:
        # Zero entries are dropped so equal clocks are structurally equal.
        self._clocks: Dict[int, int] = (
            {k: v for k, v in clocks.items() if v > 0} if clocks else {}
        )

    @classmethod
    def of(cls, **entries: int) -> "VectorClock":
        """Literal constructor for tests: ``VectorClock.of(c1=3, c2=1)``
        with ``cN`` meaning context id N."""
        return cls({int(name.lstrip("c")): value for name, value in entries.items()})

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def get(self, ctx_id: int) -> int:
        return self._clocks.get(ctx_id, 0)

    def items(self) -> Iterator[Tuple[int, int]]:
        return iter(self._clocks.items())

    def __len__(self) -> int:
        return len(self._clocks)

    def __bool__(self) -> bool:
        return bool(self._clocks)

    # ------------------------------------------------------------------
    # Order
    # ------------------------------------------------------------------

    def leq(self, other: "VectorClock") -> bool:
        """Pointwise ``<=`` — the happens-before partial order."""
        if self is other:
            return True
        clocks = other._clocks
        return all(clocks.get(ctx, 0) >= count for ctx, count in self._clocks.items())

    def concurrent(self, other: "VectorClock") -> bool:
        """Neither clock dominates the other."""
        return not self.leq(other) and not other.leq(self)

    # ------------------------------------------------------------------
    # Updates (persistent)
    # ------------------------------------------------------------------

    def advanced(self, ctx_id: int, count: Optional[int] = None) -> "VectorClock":
        """This clock with *ctx_id* ticked (or set to *count*)."""
        value = self.get(ctx_id) + 1 if count is None else count
        if value == self.get(ctx_id):
            return self
        merged = dict(self._clocks)
        merged[ctx_id] = value
        return VectorClock(merged)

    def join(self, other: "VectorClock") -> "VectorClock":
        """Pointwise max; returns an operand unchanged when it dominates."""
        if not other._clocks or other.leq(self):
            return self
        if not self._clocks or self.leq(other):
            return other
        merged = dict(self._clocks)
        for ctx, count in other._clocks.items():
            if merged.get(ctx, 0) < count:
                merged[ctx] = count
        return VectorClock(merged)

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return self._clocks == other._clocks

    def __hash__(self) -> int:
        return hash(frozenset(self._clocks.items()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        entries = ", ".join(f"{k}:{v}" for k, v in sorted(self._clocks.items()))
        return f"<VectorClock {{{entries}}}>"


#: The zero clock (shared; VectorClock is immutable).
EMPTY_CLOCK = VectorClock()
