"""The race-detection driver: lockset × happens-before × derived rules.

Pipeline per trace:

1. :func:`repro.analysis.lockset.run_lockset` yields the *candidates* —
   ``(allocation, member)`` pairs written from multiple contexts with no
   consistently held lock instance,
2. :class:`repro.analysis.happens.HappensBeforeIndex` stamps exactly the
   candidate accesses, and a per-context running-maxima sweep finds
   *unordered conflicting pairs* (write/write or read/write from
   different contexts with no happens-before path),
3. each candidate is joined with LockDoc's **derived winning rules**:
   does any access in the group violate the rule the rest of the system
   supports?

The cross product classifies every candidate:

=====================  ===========  ============  =======================
class                  unordered?   violates rule  meaning
=====================  ===========  ============  =======================
rule-confirmed race    yes          yes           the statistically mined
                                                  discipline *and* the
                                                  ordering analysis agree
                                                  this access races
lockset race           yes          no            no consistent lock and
                                                  no ordering, but also no
                                                  mined rule against it
ordered violation      no           yes           breaks the rule, but a
                                                  synchronization chain
                                                  orders every pair —
                                                  the classic init-phase
                                                  Tab. 7 false positive
benign                 no           no            consistently unlocked
                                                  and totally ordered
=====================  ===========  ============  =======================

Findings carry interned stack/context witnesses exactly like the Tab. 8
violation reports (:mod:`repro.core.violations`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.happens import AccessStamp, HappensBeforeIndex, happens_before
from repro.analysis.lockset import LocksetResult, MemberTrack, run_lockset
from repro.core.derivator import DerivationResult
from repro.core.report import render_counts, render_table
from repro.core.rules import LockingRule, complies
from repro.db.database import TraceDatabase
from repro.db.filters import REASON_STALE_LOCK, REASON_SYNTHETIC_TXN
from repro.db.schema import AccessRow
from repro.tracing.events import Event


class RaceClass(enum.Enum):
    """Classification of one race candidate (most severe first)."""

    RULE_CONFIRMED_RACE = "rule-confirmed race"
    LOCKSET_RACE = "lockset race"
    ORDERED_VIOLATION = "ordered violation"
    BENIGN = "benign"


#: Render/sort order of the classes.
_SEVERITY = {
    RaceClass.RULE_CONFIRMED_RACE: 0,
    RaceClass.LOCKSET_RACE: 1,
    RaceClass.ORDERED_VIOLATION: 2,
    RaceClass.BENIGN: 3,
}

#: The classes that are actual races (unordered conflicting pairs).
RACE_CLASSES = (RaceClass.RULE_CONFIRMED_RACE, RaceClass.LOCKSET_RACE)


@dataclass
class RaceFinding:
    """All same-class candidates of one ``(type_key, member)`` target."""

    race_class: RaceClass
    type_key: str
    member: str
    allocs: int = 0
    events: int = 0
    pairs: int = 0
    contexts: Set[int] = field(default_factory=set)  # execution contexts
    stacks: Set[int] = field(default_factory=set)  # interned stack ids
    locations: Set[Tuple[str, int]] = field(default_factory=set)
    rules: Dict[str, LockingRule] = field(default_factory=dict)
    #: First unordered conflicting pair (race classes only).
    sample_pair: Optional[Tuple[AccessRow, AccessRow]] = None
    #: First rule-violating access (violation classes only).
    sample_violation: Optional[AccessRow] = None

    @property
    def is_race(self) -> bool:
        return self.race_class in RACE_CLASSES

    def rule_text(self) -> str:
        if not self.rules:
            return "no lock needed"
        return "; ".join(
            f"[{access_type}] {rule.format()}"
            for access_type, rule in sorted(self.rules.items())
        )

    def format(self) -> str:
        lines = [
            f"{self.race_class.value}: {self.type_key}.{self.member} "
            f"({self.events} events, {len(self.contexts)} contexts, "
            f"{self.allocs} object(s); rule {self.rule_text()})"
        ]
        if self.sample_pair is not None:
            a, b = self.sample_pair
            lines.append(
                f"  unordered pair: [{a.access_type}] {a.file}:{a.line} "
                f"(ctx {a.ctx_id})  <-?->  [{b.access_type}] "
                f"{b.file}:{b.line} (ctx {b.ctx_id})"
            )
        elif self.sample_violation is not None:
            v = self.sample_violation
            held = " -> ".join(ref.format() for ref in v.lockseq) or "(none)"
            lines.append(
                f"  violating access: [{v.access_type}] {v.file}:{v.line} "
                f"(ctx {v.ctx_id}) held [{held}]"
            )
        return "\n".join(lines)


@dataclass
class RaceReport:
    """The classified race findings of one trace."""

    findings: List[RaceFinding]
    tracked_members: int
    candidate_count: int
    state_counts: Dict[str, int]
    #: Accesses excluded because their transaction was closed by a
    #: synthesized release (quarantine flag from the importer) — race
    #: verdicts are computed only over salvaged-clean spans.
    synthetic_excluded: int = 0

    def races(self) -> List[RaceFinding]:
        """Findings with an actual unordered conflicting pair."""
        return [f for f in self.findings if f.is_race]

    def by_class(self, race_class: RaceClass) -> List[RaceFinding]:
        return [f for f in self.findings if f.race_class == race_class]

    def get(self, type_key: str, member: str) -> Optional[RaceFinding]:
        for finding in self.findings:
            if (finding.type_key, finding.member) == (type_key, member):
                return finding
        return None

    def class_counts(self) -> Dict[RaceClass, int]:
        counts = {cls: 0 for cls in RaceClass}
        for finding in self.findings:
            counts[finding.race_class] += 1
        return counts

    def render(self, examples: int = 0) -> str:
        lines = [
            f"race detection: {self.tracked_members} (object, member) pairs "
            f"tracked, {self.candidate_count} lockset candidates",
        ]
        if self.synthetic_excluded:
            lines.append(
                f"{self.synthetic_excluded} access(es) with untrusted lock "
                f"state excluded (synthetic close / stale-lock span)"
            )
        lines += [
            render_counts(
                self.state_counts,
                title="lockset states",
                headers=("state", "members"),
            ),
        ]
        rows = [
            [
                f.race_class.value,
                f"{f.type_key}.{f.member}",
                f.allocs,
                f.events,
                len(f.contexts),
                f.rule_text(),
            ]
            for f in self.findings
        ]
        lines.append(
            render_table(
                ["class", "target", "objects", "events", "ctxs", "winning rule"],
                rows,
                title="classified lockset candidates",
            )
        )
        races = self.races()
        if races:
            lines.append(f"{len(races)} racy target(s):")
        else:
            lines.append("no unordered conflicting accesses found")
        for finding in self.findings[:examples] if examples else races:
            lines.append(finding.format())
        return "\n".join(lines)


def detect_races(
    events: Sequence[Event],
    db: TraceDatabase,
    derivation: DerivationResult,
    lockset: Optional[LocksetResult] = None,
) -> RaceReport:
    """Run the full race-detection pipeline over one trace.

    *events* must be the raw event stream the *db* was imported from
    (the happens-before edges live in the lock events, which the
    database's transaction view folds away).
    """
    if lockset is None:
        lockset = run_lockset(db)
    needed = {access.ts for track in lockset.candidates for access in track.accesses}
    hb = HappensBeforeIndex.build(events, needed)
    return classify_candidates(
        lockset,
        hb,
        derivation,
        synthetic_excluded=sum(
            1
            for a in db.accesses
            if a.filter_reason in (REASON_SYNTHETIC_TXN, REASON_STALE_LOCK)
        ),
    )


def classify_candidates(
    lockset: LocksetResult,
    hb: HappensBeforeIndex,
    derivation: DerivationResult,
    synthetic_excluded: int = 0,
) -> RaceReport:
    """Classify lockset candidates against *hb* and the derived rules.

    The shared back half of race detection: :func:`detect_races` calls
    it after a post-mortem lockset/HB pass, and the streaming engine
    (:mod:`repro.stream`) calls it with its incrementally built state —
    both produce the same report given the same inputs.  *hb* must hold
    a stamp for every access of every candidate track.
    """
    grouped: Dict[Tuple[RaceClass, str, str], RaceFinding] = {}
    for track in lockset.candidates:
        pair, pairs = _first_unordered_pair(track, hb)
        violations = _violating_accesses(track, derivation)
        if pair is not None:
            race_class = (
                RaceClass.RULE_CONFIRMED_RACE if violations else RaceClass.LOCKSET_RACE
            )
        else:
            race_class = (
                RaceClass.ORDERED_VIOLATION if violations else RaceClass.BENIGN
            )
        key = (race_class, track.type_key, track.member)
        finding = grouped.get(key)
        if finding is None:
            finding = RaceFinding(
                race_class=race_class, type_key=track.type_key, member=track.member
            )
            grouped[key] = finding
        _account(finding, track, derivation, pair, pairs, violations)

    findings = sorted(
        grouped.values(),
        key=lambda f: (_SEVERITY[f.race_class], -f.events, f.type_key, f.member),
    )
    return RaceReport(
        findings=findings,
        tracked_members=len(lockset.tracks),
        candidate_count=len(lockset.candidates),
        state_counts={
            state.value: count for state, count in lockset.state_counts().items()
        },
        synthetic_excluded=synthetic_excluded,
    )


# ----------------------------------------------------------------------
# Per-candidate machinery
# ----------------------------------------------------------------------


def _first_unordered_pair(
    track: MemberTrack, hb: HappensBeforeIndex
) -> Tuple[Optional[Tuple[AccessRow, AccessRow]], int]:
    """Find unordered conflicting pairs in one candidate group.

    Walks the group in trace order keeping, per context, the latest
    access and the latest write.  Program order and transitivity make
    the latest conflicting access per context a sufficient witness: if
    it happens-before the current access, every earlier one does too.
    Returns the first pair found plus the number of detections.
    """
    last_any: Dict[int, Tuple[AccessStamp, AccessRow]] = {}
    last_write: Dict[int, Tuple[AccessStamp, AccessRow]] = {}
    first: Optional[Tuple[AccessRow, AccessRow]] = None
    pairs = 0
    for row in track.accesses:
        stamp = hb.stamp(row.ts)
        conflicting = last_any if row.access_type == "w" else last_write
        for ctx, (other_stamp, other_row) in conflicting.items():
            if ctx == row.ctx_id:
                continue
            if not happens_before(other_stamp, stamp):
                pairs += 1
                if first is None:
                    first = (other_row, row)
        last_any[row.ctx_id] = (stamp, row)
        if row.access_type == "w":
            last_write[row.ctx_id] = (stamp, row)
    return first, pairs


def _violating_accesses(
    track: MemberTrack, derivation: DerivationResult
) -> List[AccessRow]:
    """Accesses in the group that violate their derived winning rule."""
    out = []
    for row in track.accesses:
        derived = derivation.get(row.type_key, row.member, row.access_type)
        if derived is None or derived.rule.is_no_lock:
            continue
        if not complies(row.lockseq, derived.rule):
            out.append(row)
    return out


def _account(
    finding: RaceFinding,
    track: MemberTrack,
    derivation: DerivationResult,
    pair: Optional[Tuple[AccessRow, AccessRow]],
    pairs: int,
    violations: List[AccessRow],
) -> None:
    finding.allocs += 1
    finding.events += len(track.accesses)
    finding.pairs += pairs
    finding.contexts.update(track.ctx_ids)
    for row in track.accesses:
        finding.stacks.add(row.stack_id)
        finding.locations.add((row.file, row.line))
        derived = derivation.get(row.type_key, row.member, row.access_type)
        if derived is not None and not derived.rule.is_no_lock:
            finding.rules.setdefault(row.access_type, derived.rule)
    if finding.sample_pair is None:
        finding.sample_pair = pair
    if finding.sample_violation is None and violations:
        finding.sample_violation = violations[0]
