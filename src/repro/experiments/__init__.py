"""Experiment reproductions: one module per paper table/figure.

Every module exposes ``run(scale=..., seed=...)`` returning a result
object with ``render()`` (paper-style text table) and ``data``
(machine-readable rows).  The expensive benchmark-mix pipeline is
shared and cached per ``(seed, scale)`` by
:mod:`repro.experiments.common`.

==========  =====================================================
module      reproduces
==========  =====================================================
``fig1``    lock-usage / LoC growth across releases
``tab1``    clock-example access matrix (observed/folded/WoR)
``tab2``    clock-example hypotheses with s_a / s_r
``tab3``    benchmark code coverage
``tab4``    documented-rule validation summary
``tab5``    struct inode rule-check detail
``tab6``    mined-rule summary per data type
``fig7``    "no lock" fraction vs. accept threshold
``tab7``    rule-violation summary
``tab8``    rule-violation examples
``fig8``    generated locking documentation
``stats``   Sec. 7.2 trace statistics
==========  =====================================================
"""
