"""Shared experiment pipeline.

Runs the benchmark mix once per ``(seed, scale)`` and derives the
artifacts every experiment needs: the trace database, the (split and
merged) observation tables, and the rule-derivation results.  Results
are cached at two levels:

* **in-process** — one :class:`Pipeline` per ``(workload, seed,
  scale)``, so a pytest/benchmark session that regenerates every table
  reuses one trace, exactly like the paper's pipeline ran on one
  recorded trace;
* **on disk** — the content-addressed trace cache
  (:mod:`repro.cache`): traces and pickled artifacts persist across
  processes, keyed by the workload tuple plus the source revision, so
  a second ``lockdoc derive`` run skips both the simulation and the
  (dominant) database import.

Pipeline artifacts are **lazy**: ``db``/``table``/``merged_table``
compute on first access — from a disk artifact when one exists, from
the run result otherwise — so a consumer that needs only the split
table (``derive``) never loads the much larger database.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro import cache
from repro.core.derivator import DerivationResult, Derivator
from repro.core.observations import ObservationTable
from repro.core.selection import DEFAULT_ACCEPT_THRESHOLD
from repro.db.database import TraceDatabase
from repro.workloads import registry  # noqa: F401  (re-export for monkeypatching)

#: Default workload scale for experiments; large enough for stable
#: statistics, small enough for a laptop-scale pytest run.
DEFAULT_SCALE = 18.0
DEFAULT_SEED = 0
DEFAULT_WORKLOAD = "mix"

#: Process-level default for derivation worker processes (``--jobs``).
#: None means serial.  Parallel and serial derivation produce identical
#: results, so this only affects wall-clock time.
_DEFAULT_JOBS: Optional[int] = None


def set_default_jobs(jobs: Optional[int]) -> None:
    """Set the derivation worker-process default (CLI ``--jobs``)."""
    global _DEFAULT_JOBS
    _DEFAULT_JOBS = jobs


def get_default_jobs() -> Optional[int]:
    return _DEFAULT_JOBS


class Pipeline:
    """One fully processed workload run (artifacts computed lazily).

    ``mix`` keeps its historical name but holds whichever registered
    workload's run result the pipeline was built from (the common
    contract: ``.tracer`` + ``.to_database()``) — possibly a
    :class:`repro.cache.CachedRun` when the disk cache hit.
    """

    def __init__(
        self,
        seed: int,
        scale: float,
        mix: object,
        workload: str = DEFAULT_WORKLOAD,
    ) -> None:
        self.seed = seed
        self.scale = scale
        self.mix = mix
        self.workload = workload
        self._db: Optional[TraceDatabase] = None
        self._table: Optional[ObservationTable] = None
        self._merged_table: Optional[ObservationTable] = None
        self._derivations: Dict[float, DerivationResult] = {}

    def _artifact(self, name: str, compute):
        """Disk-cached artifact: load if present, else compute + store."""
        value = cache.load_artifact(self.workload, self.seed, self.scale, name)
        if value is None:
            value = compute()
            cache.store_artifact(self.workload, self.seed, self.scale, name, value)
        return value

    @property
    def db(self) -> TraceDatabase:
        """The imported trace database (the dominant pipeline cost)."""
        if self._db is None:
            self._db = self._artifact("db", self.mix.to_database)
        return self._db

    @property
    def table(self) -> ObservationTable:
        """Subclass-split observation table (the paper's default)."""
        if self._table is None:
            self._table = self._artifact(
                "table-split",
                lambda: ObservationTable.from_database(
                    self.db, split_subclasses=True
                ),
            )
        return self._table

    @property
    def merged_table(self) -> ObservationTable:
        """Subclasses-merged observation table (checker view)."""
        if self._merged_table is None:
            self._merged_table = self._artifact(
                "table-merged",
                lambda: ObservationTable.from_database(
                    self.db, split_subclasses=False
                ),
            )
        return self._merged_table

    def derive(
        self,
        accept_threshold: float = DEFAULT_ACCEPT_THRESHOLD,
        jobs: Optional[int] = None,
    ) -> DerivationResult:
        # Cached per threshold only: parallel derivation is bit-identical
        # to serial, so the jobs count never changes the payload.
        result = self._derivations.get(accept_threshold)
        if result is None:

            def compute() -> DerivationResult:
                effective_jobs = jobs if jobs is not None else _DEFAULT_JOBS
                return Derivator(accept_threshold).derive(
                    self.table, jobs=effective_jobs
                )

            result = self._artifact(f"derivation-t{accept_threshold!r}", compute)
            self._derivations[accept_threshold] = result
        return result


_CACHE: Dict[Tuple[str, int, float], Pipeline] = {}


def get_pipeline(
    seed: int = DEFAULT_SEED,
    scale: float = DEFAULT_SCALE,
    workload: str = DEFAULT_WORKLOAD,
) -> Pipeline:
    """The cached pipeline for ``(workload, seed, scale)``.

    *workload* is any name the registry resolves — a built-in
    (``mix``, ``racer``, ``racer-safe``) or a fuzzed corpus
    (``fuzz:<corpus-id>`` / ``fuzz:<path>``).  The run is served from
    the on-disk trace cache when possible (see :mod:`repro.cache`).
    """
    key = (workload, seed, scale)
    pipeline = _CACHE.get(key)
    if pipeline is None:
        result = cache.cached_run(workload, seed=seed, scale=scale)
        pipeline = Pipeline(seed=seed, scale=scale, mix=result, workload=workload)
        _CACHE[key] = pipeline
    return pipeline


def clear_cache() -> None:
    """Drop cached **in-process** pipelines (test isolation / memory
    pressure).

    Contract: this touches only the process-local memo.  The on-disk
    trace cache (:mod:`repro.cache`) is deliberately left intact — a
    pipeline rebuilt after ``clear_cache()`` may therefore be served
    from disk, byte-identical to the original.  Use
    :func:`repro.cache.clear` (CLI: ``lockdoc cache clear``) to drop
    the disk tier too.
    """
    _CACHE.clear()
