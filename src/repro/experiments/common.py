"""Shared experiment pipeline.

Runs the benchmark mix once per ``(seed, scale)`` and derives the
artifacts every experiment needs: the trace database, the (split and
merged) observation tables, and the rule-derivation results.  Results
are cached process-wide, so a pytest/benchmark session that regenerates
every table reuses one trace, exactly like the paper's pipeline ran on
one recorded trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.derivator import DerivationResult, Derivator
from repro.core.observations import ObservationTable
from repro.core.selection import DEFAULT_ACCEPT_THRESHOLD
from repro.db.database import TraceDatabase
from repro.workloads import registry

#: Default workload scale for experiments; large enough for stable
#: statistics, small enough for a laptop-scale pytest run.
DEFAULT_SCALE = 18.0
DEFAULT_SEED = 0
DEFAULT_WORKLOAD = "mix"

#: Process-level default for derivation worker processes (``--jobs``).
#: None means serial.  Parallel and serial derivation produce identical
#: results, so this only affects wall-clock time.
_DEFAULT_JOBS: Optional[int] = None


def set_default_jobs(jobs: Optional[int]) -> None:
    """Set the derivation worker-process default (CLI ``--jobs``)."""
    global _DEFAULT_JOBS
    _DEFAULT_JOBS = jobs


def get_default_jobs() -> Optional[int]:
    return _DEFAULT_JOBS


@dataclass
class Pipeline:
    """One fully processed workload run.

    ``mix`` keeps its historical name but holds whichever registered
    workload's run result the pipeline was built from (the common
    contract: ``.tracer`` + ``.to_database()``).
    """

    seed: int
    scale: float
    mix: object  # run result of the selected workload
    db: TraceDatabase
    table: ObservationTable  # subclass-split (the paper's default)
    merged_table: ObservationTable  # subclasses merged (checker view)
    workload: str = DEFAULT_WORKLOAD
    _derivations: Dict[float, DerivationResult] = field(default_factory=dict)

    def derive(
        self,
        accept_threshold: float = DEFAULT_ACCEPT_THRESHOLD,
        jobs: Optional[int] = None,
    ) -> DerivationResult:
        # Cached per threshold only: parallel derivation is bit-identical
        # to serial, so the jobs count never changes the payload.
        result = self._derivations.get(accept_threshold)
        if result is None:
            effective_jobs = jobs if jobs is not None else _DEFAULT_JOBS
            result = Derivator(accept_threshold).derive(
                self.table, jobs=effective_jobs
            )
            self._derivations[accept_threshold] = result
        return result


_CACHE: Dict[Tuple[str, int, float], Pipeline] = {}


def get_pipeline(
    seed: int = DEFAULT_SEED,
    scale: float = DEFAULT_SCALE,
    workload: str = DEFAULT_WORKLOAD,
) -> Pipeline:
    """The cached pipeline for ``(workload, seed, scale)``.

    *workload* is any name the registry resolves — a built-in
    (``mix``, ``racer``, ``racer-safe``) or a fuzzed corpus
    (``fuzz:<corpus-id>`` / ``fuzz:<path>``).
    """
    key = (workload, seed, scale)
    pipeline = _CACHE.get(key)
    if pipeline is None:
        result = registry.run(workload, seed=seed, scale=scale)
        db = result.to_database()
        pipeline = Pipeline(
            seed=seed,
            scale=scale,
            mix=result,
            db=db,
            table=ObservationTable.from_database(db, split_subclasses=True),
            merged_table=ObservationTable.from_database(db, split_subclasses=False),
            workload=workload,
        )
        _CACHE[key] = pipeline
    return pipeline


def clear_cache() -> None:
    """Drop cached pipelines (test isolation / memory pressure)."""
    _CACHE.clear()
