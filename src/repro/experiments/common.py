"""Shared experiment pipeline.

Runs the benchmark mix once per ``(seed, scale)`` and derives the
artifacts every experiment needs: the trace database, the (split and
merged) observation tables, and the rule-derivation results.  Results
are cached at two levels:

* **in-process** — one :class:`Pipeline` per ``(workload, seed,
  scale)``, so a pytest/benchmark session that regenerates every table
  reuses one trace, exactly like the paper's pipeline ran on one
  recorded trace;
* **on disk** — the content-addressed trace cache
  (:mod:`repro.cache`): traces and pickled artifacts persist across
  processes, keyed by the workload tuple plus the source revision, so
  a second ``lockdoc derive`` run skips both the simulation and the
  (dominant) database import.

Pipeline artifacts are **lazy**: ``db``/``table``/``merged_table``
compute on first access — from a disk artifact when one exists, from
the run result otherwise — so a consumer that needs only the split
table (``derive``) never loads the much larger database.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro import cache
from repro.core.derivator import DerivationResult, Derivator
from repro.core.observations import ObservationTable
from repro.core.selection import DEFAULT_ACCEPT_THRESHOLD
from repro.db.database import TraceDatabase
from repro.workloads import registry  # noqa: F401  (re-export for monkeypatching)

#: Default workload scale for experiments; large enough for stable
#: statistics, small enough for a laptop-scale pytest run.
DEFAULT_SCALE = 18.0
DEFAULT_SEED = 0
DEFAULT_WORKLOAD = "mix"

#: Trace query backends: the in-memory ``TraceDatabase`` and the
#: out-of-core sharded SQLite store.  Both produce byte-identical
#: analysis output; they differ only in resident memory and build
#: strategy.
BACKENDS = ("memory", "sqlite")
DEFAULT_BACKEND = "memory"

#: Process-level default for derivation worker processes (``--jobs``).
#: None means serial.  Parallel and serial derivation produce identical
#: results, so this only affects wall-clock time.
_DEFAULT_JOBS: Optional[int] = None


def set_default_jobs(jobs: Optional[int]) -> None:
    """Set the derivation worker-process default (CLI ``--jobs``)."""
    global _DEFAULT_JOBS
    _DEFAULT_JOBS = jobs


def get_default_jobs() -> Optional[int]:
    return _DEFAULT_JOBS


class Pipeline:
    """One fully processed workload run (artifacts computed lazily).

    ``mix`` keeps its historical name but holds whichever registered
    workload's run result the pipeline was built from (the common
    contract: ``.tracer`` + ``.to_database()``) — possibly a
    :class:`repro.cache.CachedRun` when the disk cache hit.
    """

    def __init__(
        self,
        seed: int,
        scale: float,
        mix: object,
        workload: str = DEFAULT_WORKLOAD,
    ) -> None:
        self.seed = seed
        self.scale = scale
        self.mix = mix
        self.workload = workload
        self._db: Optional[TraceDatabase] = None
        self._table: Optional[ObservationTable] = None
        self._merged_table: Optional[ObservationTable] = None
        self._derivations: Dict[float, DerivationResult] = {}
        self._store = None
        #: Separate memo for sqlite-backed derivations: sharing the
        #: memory-backend entry would make backend-parity checks
        #: vacuous (both sides would read one cached payload).
        self._derivations_sqlite: Dict[float, DerivationResult] = {}
        self._store_tmp = None

    def _artifact(self, name: str, compute):
        """Disk-cached artifact: load if present, else compute + store."""
        value = cache.load_artifact(self.workload, self.seed, self.scale, name)
        if value is None:
            value = compute()
            cache.store_artifact(self.workload, self.seed, self.scale, name, value)
        return value

    @property
    def db(self) -> TraceDatabase:
        """The imported trace database (the dominant pipeline cost)."""
        if self._db is None:
            self._db = self._artifact("db", self.mix.to_database)
        return self._db

    @property
    def table(self) -> ObservationTable:
        """Subclass-split observation table (the paper's default)."""
        if self._table is None:
            self._table = self._artifact(
                "table-split",
                lambda: ObservationTable.from_database(
                    self.db, split_subclasses=True
                ),
            )
        return self._table

    @property
    def merged_table(self) -> ObservationTable:
        """Subclasses-merged observation table (checker view)."""
        if self._merged_table is None:
            self._merged_table = self._artifact(
                "table-merged",
                lambda: ObservationTable.from_database(
                    self.db, split_subclasses=False
                ),
            )
        return self._merged_table

    # ------------------------------------------------------------------
    # SQLite backend
    # ------------------------------------------------------------------

    def store(self):
        """The out-of-core SQLite trace store for this run.

        Lives in the artifact cache tier when the workload is cacheable
        and caching is on (built sharded from the cached trace file);
        otherwise built serially into a private temp directory from the
        run's tracer.  A torn/corrupt cached store is quarantined and
        rebuilt — same contract as every other cache tier.
        """
        if self._store is None:
            from repro.db import sqlstore

            self._store = self._open_or_build_store(sqlstore)
        return self._store

    def _open_or_build_store(self, sqlstore):
        recipe = registry.db_recipe(self.workload)
        cached = cache.is_enabled() and cache.is_cacheable(self.workload)
        if cached:
            path = cache.store_path(self.workload, self.seed, self.scale)
            if path.exists():
                try:
                    return sqlstore.SqliteTraceStore(path)
                except sqlstore.StoreCorrupt:
                    cache.quarantine_file(path)
        else:
            import tempfile

            self._store_tmp = tempfile.TemporaryDirectory(prefix="lockdoc-store-")
            path = f"{self._store_tmp.name}/store.sqlite"
        meta = {
            "recipe": recipe,
            "workload": self.workload,
            "seed": str(self.seed),
            "scale": repr(self.scale),
        }
        trace_file = (
            cache.trace_path(self.workload, self.seed, self.scale)
            if cached
            else None
        )
        if trace_file is not None and trace_file.exists():
            # Sharded parallel build, streaming the cached trace file.
            sqlstore.build_store_from_trace(
                str(path), str(trace_file), recipe, meta_extra=meta
            )
        else:
            # No trace file to fan out over: serial in-process build
            # straight from the run's event stream.
            tracer = self.mix.tracer
            stacks = [tracer.stack(i) for i in range(tracer.stack_count)]
            structs, filters = registry.database_inputs(recipe)
            sqlstore.build_store(
                str(path), tracer.events, stacks, structs, filters,
                meta_extra=meta,
            )
        return sqlstore.SqliteTraceStore(path)

    def sqlite_table(self, split_subclasses: bool = True):
        """The store's streaming observation fold (duck-types
        :class:`ObservationTable` for derive/check/violations)."""
        return self.store().fold(split_subclasses)

    def derive(
        self,
        accept_threshold: float = DEFAULT_ACCEPT_THRESHOLD,
        jobs: Optional[int] = None,
        backend: str = DEFAULT_BACKEND,
    ) -> DerivationResult:
        # Cached per threshold only: parallel derivation is bit-identical
        # to serial, so the jobs count never changes the payload.  The
        # sqlite backend caches under its own artifact name so the two
        # backends never serve each other's results.
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}")
        memo = (
            self._derivations if backend == "memory" else self._derivations_sqlite
        )
        result = memo.get(accept_threshold)
        if result is None:

            def compute() -> DerivationResult:
                effective_jobs = jobs if jobs is not None else _DEFAULT_JOBS
                table = (
                    self.table if backend == "memory" else self.sqlite_table()
                )
                return Derivator(accept_threshold).derive(
                    table, jobs=effective_jobs
                )

            suffix = "" if backend == "memory" else "-sqlite"
            result = self._artifact(
                f"derivation{suffix}-t{accept_threshold!r}", compute
            )
            memo[accept_threshold] = result
        return result


_CACHE: Dict[Tuple[str, int, float], Pipeline] = {}


def get_pipeline(
    seed: int = DEFAULT_SEED,
    scale: float = DEFAULT_SCALE,
    workload: str = DEFAULT_WORKLOAD,
) -> Pipeline:
    """The cached pipeline for ``(workload, seed, scale)``.

    *workload* is any name the registry resolves — a built-in
    (``mix``, ``racer``, ``racer-safe``) or a fuzzed corpus
    (``fuzz:<corpus-id>`` / ``fuzz:<path>``).  The run is served from
    the on-disk trace cache when possible (see :mod:`repro.cache`).
    """
    key = (workload, seed, scale)
    pipeline = _CACHE.get(key)
    if pipeline is None:
        result = cache.cached_run(workload, seed=seed, scale=scale)
        pipeline = Pipeline(seed=seed, scale=scale, mix=result, workload=workload)
        _CACHE[key] = pipeline
    return pipeline


def clear_cache() -> None:
    """Drop cached **in-process** pipelines (test isolation / memory
    pressure).

    Contract: this touches only the process-local memo.  The on-disk
    trace cache (:mod:`repro.cache`) is deliberately left intact — a
    pipeline rebuilt after ``clear_cache()`` may therefore be served
    from disk, byte-identical to the original.  Use
    :func:`repro.cache.clear` (CLI: ``lockdoc cache clear``) to drop
    the disk tier too.
    """
    _CACHE.clear()
