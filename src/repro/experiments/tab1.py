"""Tab. 1: the clock-counter example's access matrix.

Rebuilds Fig. 4's shared time structure, runs 1000 correct executions
plus one faulty one (missing ``min_lock``), and reports per variable and
access type: observed access counts, folded counts, and write-over-read
counts, separated by transaction kind (a = only ``sec_lock`` held,
b = both locks held) — exactly the Tab. 1 columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Tuple

from repro.core.observations import ObservationTable
from repro.core.report import render_table
from repro.db.database import TraceDatabase
from repro.db.importer import import_tracer
from repro.kernel.context import ExecutionContext
from repro.kernel.runtime import KernelRuntime, KObject
from repro.kernel.structs import Member, StructDef, StructRegistry

#: Tab. 1 reference values: {(variable, access, txn): (observed, folded, wor)}
PAPER_TAB1 = {
    ("seconds", "r", "a"): (2, 1, 0),
    ("seconds", "r", "b"): (0, 0, 0),
    ("seconds", "w", "a"): (1, 1, 1),
    ("seconds", "w", "b"): (1, 1, 1),
    ("minutes", "r", "a"): (0, 0, 0),
    ("minutes", "r", "b"): (1, 1, 0),
    ("minutes", "w", "a"): (0, 0, 0),
    ("minutes", "w", "b"): (1, 1, 1),
}


def build_clock_struct() -> StructDef:
    """The Fig. 4 shared time structure's layout."""
    return StructDef(
        "clock",
        [
            Member.scalar("seconds", 8),
            Member.scalar("minutes", 8),
            Member.lock("sec_lock", "spinlock_t"),
            Member.lock("min_lock", "spinlock_t"),
        ],
    )


def clock_tick(
    rt: KernelRuntime,
    ctx: ExecutionContext,
    clock: KObject,
    buggy: bool = False,
) -> Generator:
    """One execution of Fig. 4's counter (the faulty variant forgets
    ``min_lock``)."""
    with rt.function(ctx, "clock_tick", "clock.c", 1):
        yield from rt.spin_lock(ctx, clock.lock("sec_lock"))
        # Fig. 4 line 2: seconds = seconds + 1  (read + write in txn a)
        seconds = (rt.read(ctx, clock, "seconds", line=2) or 0) + 1
        rt.write(ctx, clock, "seconds", seconds, line=2)
        # Fig. 4 line 3: if (seconds == 60)    (second read in txn a)
        rt.read(ctx, clock, "seconds", line=3)
        if seconds == 60:
            if not buggy:
                yield from rt.spin_lock(ctx, clock.lock("min_lock"))
            rt.write(ctx, clock, "seconds", 0, line=5)
            minutes = rt.read(ctx, clock, "minutes", line=6) or 0
            rt.write(ctx, clock, "minutes", minutes + 1, line=6)
            if not buggy:
                rt.spin_unlock(ctx, clock.lock("min_lock"))
        rt.spin_unlock(ctx, clock.lock("sec_lock"))


@dataclass
class ClockTrace:
    """A recorded clock run with its imported database."""

    runtime: KernelRuntime
    clock: KObject
    db: TraceDatabase
    table: ObservationTable


def record_clock_trace(iterations: int = 1000, faulty: int = 1) -> ClockTrace:
    """Run the Fig. 4 scenario: *iterations* correct ticks + *faulty*
    executions that forget ``min_lock`` on the minute rollover."""
    registry = StructRegistry([build_clock_struct()])
    rt = KernelRuntime(registry)
    ctx = rt.new_task("timer")
    clock = rt.new_object(ctx, "clock")
    for _ in range(iterations):
        rt.run(clock_tick(rt, ctx, clock))
    for _ in range(faulty):
        clock.values["seconds"] = 59
        rt.run(clock_tick(rt, ctx, clock, buggy=True))
    db = import_tracer(rt.tracer, registry)
    table = ObservationTable.from_database(db)
    return ClockTrace(runtime=rt, clock=clock, db=db, table=table)


@dataclass
class Tab1Result:
    #: {(variable, access, txn_kind): (observed, folded, wor)} for ONE
    #: execution of transactions a and b (the Tab. 1 scope).
    """Tab. 1 access matrix (observed/folded/WoR) with render()."""
    matrix: Dict[Tuple[str, str, str], Tuple[int, int, int]]
    trace: ClockTrace

    @property
    def data(self):
        return {f"{v}/{a}/{t}": counts for (v, a, t), counts in self.matrix.items()}

    def render(self) -> str:
        headers = ["Variable", "Type", "Obs a", "Obs b", "Fold a", "Fold b",
                   "WoR a", "WoR b"]
        rows = []
        for variable in ("seconds", "minutes"):
            for access in ("r", "w"):
                oa, fa, wa = self.matrix[(variable, access, "a")]
                ob, fb, wb = self.matrix[(variable, access, "b")]
                rows.append([variable, access, oa, ob, fa, fb, wa, wb])
        return render_table(headers, rows, title="Tab. 1 — clock example accesses")


def run(iterations: int = 1000) -> Tab1Result:
    """Reproduce Tab. 1 from one rollover execution within a recorded
    trace of *iterations* ticks."""
    trace = record_clock_trace(iterations)
    db = trace.db
    # Find one rollover execution: a txn holding both locks (txn b)
    # and its enclosing txn a.
    matrix: Dict[Tuple[str, str, str], Tuple[int, int, int]] = {
        key: (0, 0, 0) for key in PAPER_TAB1
    }
    rollover_b = None
    for txn in db.txns.values():
        if len(txn.held) == 2 and not txn.no_locks:
            rollover_b = txn
            break
    assert rollover_b is not None, "no rollover transaction recorded"
    # txn a fragments: the single-lock txns immediately around b in the
    # same context (the lock event closing a opens b).
    # txn a's fragments surround b exactly: a1 closes when min_lock's
    # acquisition opens b, a2 opens when its release closes b.
    a_txns = [
        txn.txn_id
        for txn in db.txns.values()
        if txn.ctx_id == rollover_b.ctx_id
        and len(txn.held) == 1
        and (txn.end_ts == rollover_b.start_ts
             or txn.start_ts == rollover_b.end_ts)
    ]
    scopes = {"b": [rollover_b.txn_id], "a": a_txns}
    for kind, txn_ids in scopes.items():
        for txn_id in txn_ids:
            by_member: Dict[Tuple[str, str], int] = {}
            for access in db.accesses_in_txn(txn_id):
                by_member[(access.member, access.access_type)] = (
                    by_member.get((access.member, access.access_type), 0) + 1
                )
            for (member, access_type), observed in by_member.items():
                key = (member, access_type, kind)
                if key not in matrix:
                    continue
                prev_obs, prev_fold, prev_wor = matrix[key]
                folded = 1
                wrote = (member, "w") in by_member
                wor = 1 if (access_type == "w" and wrote) else 0
                matrix[key] = (prev_obs + observed, prev_fold + folded, prev_wor + wor)
    # Reads folded away by write-over-read: the WoR column zeroes reads
    # in mixed transactions (Tab. 1 semantics).
    for (member, access_type, kind), (obs, fold, wor) in list(matrix.items()):
        if access_type == "r" and (member, "w", kind) in matrix:
            if matrix[(member, "w", kind)][2]:
                matrix[(member, access_type, kind)] = (obs, fold, 0)
    return Tab1Result(matrix=matrix, trace=trace)
