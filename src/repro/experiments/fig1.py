"""Fig. 1: lock usage and lines of code from Linux 3.0 to 4.18.

Generates the synthetic source corpus per release, scans it with the
lock-usage scanner, and reports the growth series.  The shape to hold
(paper text): mutexes +81 %, spinlocks +45 % with a dip after ~v4.13,
LoC +73 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.report import render_table
from repro.kernelsrc.generator import generate_tree
from repro.kernelsrc.model import KERNEL_VERSIONS, KernelVersion
from repro.kernelsrc.scanner import scan_tree

#: Paper-stated growth factors between v3.0 and v4.18.
PAPER_GROWTH = {"mutex": 1.81, "spinlock": 1.45, "loc": 1.73}


@dataclass
class Fig1Result:
    """Fig. 1 series with growth helpers and a paper-style render()."""
    series: List[Dict[str, int]]  # one row per release

    @property
    def data(self) -> List[Dict[str, int]]:
        return self.series

    def growth(self, metric: str) -> float:
        """v4.18 / v3.0 ratio for *metric*."""
        return self.series[-1][metric] / self.series[0][metric]

    def peak_version(self, metric: str) -> str:
        best = max(self.series, key=lambda row: row[metric])
        return best["version"]

    def render(self) -> str:
        headers = ["version", "loc", "spinlock", "mutex", "rcu"]
        rows = [
            [row["version"], row["loc"], row["spinlock"], row["mutex"], row["rcu"]]
            for row in self.series
        ]
        table = render_table(headers, rows, title="Fig. 1 — lock usage and LoC (scaled corpus)")
        growth = ", ".join(
            f"{metric} x{self.growth(metric):.2f} (paper x{target:.2f})"
            for metric, target in PAPER_GROWTH.items()
        )
        return f"{table}\n\ngrowth v3.0 -> v4.18: {growth}"


def run(
    versions: List[KernelVersion] = KERNEL_VERSIONS,
    stride: int = 1,
) -> Fig1Result:
    """Scan every *stride*-th release (stride > 1 speeds up smoke runs)."""
    series = []
    picked = list(versions[::stride])
    if versions and picked[-1] is not versions[-1]:
        picked.append(versions[-1])  # growth ratios need the endpoint
    for version in picked:
        usage = scan_tree(generate_tree(version))
        row = usage.as_dict()
        row["version"] = version.name
        series.append(row)
    return Fig1Result(series=series)
