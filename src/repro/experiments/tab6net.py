"""Tab. 6, second column: mined locking rules per networking type.

The paper's Tab. 6 counts, per data type, the members with a derived
read/write rule and how many of those rules are "no lock needed".
This is the net-slice analogue over the four observed networking types
(``sock``, ``sk_buff``, ``socket_wq``, ``net_device``), mined from a
netbench trace.  Shapes to hold: every type yields rules; the
``sk_lock``/queue-spinlock disciplines dominate ``sock``; the
stats/scratch members surface as genuine no-lock rules; and the mean
winning-rule support stays high (the accept threshold is 90 %), with
the planted skip-path deviations pulling their targets' ``s_r`` just
below 100 % rather than flipping the winner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.derivator import DerivationResult
from repro.core.report import render_table
from repro.experiments.common import DEFAULT_SCALE, DEFAULT_SEED, get_pipeline
from repro.kernel.net.groundtruth import NET_MEMBER_BLACKLIST
from repro.kernel.net.layouts import build_net_struct_registry

#: The four observed networking types (Tab. 6 net rows).
NET_TYPES = ("net_device", "sk_buff", "sock", "socket_wq")


@dataclass
class Tab6NetRow:
    """One net-slice Tab. 6 row (member/rule/no-lock counts)."""
    type_key: str
    members: int
    blacklisted: int
    rules_r: int
    rules_w: int
    no_lock_r: int
    no_lock_w: int
    mean_s_r: float


def _static_counts() -> Dict[str, Tuple[int, int]]:
    """(#M, #Bl) per net type from the layouts + filter config."""
    registry = build_net_struct_registry()
    counts = {}
    for struct in registry.all():
        data_members = struct.data_members()
        atomic = sum(1 for m in data_members if m.kind.value == "atomic")
        blacklist = sum(
            1 for m in data_members
            if (struct.name, m.name) in NET_MEMBER_BLACKLIST
        )
        counts[struct.name] = (len(data_members), atomic + blacklist)
    return counts


@dataclass
class Tab6NetResult:
    """Net-slice Tab. 6 mined-rule rows with lookup helpers."""
    rows: List[Tab6NetRow]
    derivation: DerivationResult

    @property
    def data(self):
        return [
            {
                "type": r.type_key,
                "members": r.members,
                "blacklisted": r.blacklisted,
                "rules_r": r.rules_r,
                "rules_w": r.rules_w,
                "no_lock_r": r.no_lock_r,
                "no_lock_w": r.no_lock_w,
                "mean_s_r": round(r.mean_s_r, 4),
            }
            for r in self.rows
        ]

    def row(self, type_key: str) -> Tab6NetRow:
        for r in self.rows:
            if r.type_key == type_key:
                return r
        raise KeyError(type_key)

    def render(self) -> str:
        headers = ["Data Type", "#M", "#Bl", "#Rules r", "#Rules w",
                   "#Nl r", "#Nl w", "mean s_r"]
        table_rows = [
            [r.type_key, r.members, r.blacklisted, r.rules_r, r.rules_w,
             r.no_lock_r, r.no_lock_w, f"{r.mean_s_r:.2%}"]
            for r in self.rows
        ]
        return render_table(
            headers, table_rows,
            title="Tab. 6 (net column) — mined locking rules",
        )


def run(seed: int = DEFAULT_SEED, scale: float = DEFAULT_SCALE) -> Tab6NetResult:
    """Regenerate this experiment; see the module docstring for the paper reference."""
    pipeline = get_pipeline(seed, scale, workload="netbench")
    derivation = pipeline.derive()
    static = _static_counts()
    rows = []
    for type_key in NET_TYPES:
        members, blacklisted = static[type_key]
        per_type = derivation.for_type(type_key)
        mean_s_r = (
            sum(d.winner.s_r for d in per_type) / len(per_type)
            if per_type else 0.0
        )
        rows.append(
            Tab6NetRow(
                type_key=type_key,
                members=members,
                blacklisted=blacklisted,
                rules_r=derivation.rule_count(type_key, "r"),
                rules_w=derivation.rule_count(type_key, "w"),
                no_lock_r=derivation.no_lock_count(type_key, "r"),
                no_lock_w=derivation.no_lock_count(type_key, "w"),
                mean_s_r=mean_s_r,
            )
        )
    return Tab6NetResult(rows=rows, derivation=derivation)
