"""Sec. 7.2: tracing and derivation statistics.

The paper reports, for its 34-minute Fail* run: ~27.4 M events (13 M
lock operations, 14.4 M memory accesses of which 13.9 M survive the
filters, 33 606 allocations, 18 660 deallocations), 41 589 locks (821
static, 40 768 embedded).  The reproduction's run is scaled down ~2
orders of magnitude; the *proportions* (accesses vs. lock ops, the
small filtered share outside init/teardown, static vs. embedded locks)
are the shape to hold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.report import render_table
from repro.experiments.common import (
    DEFAULT_SCALE,
    DEFAULT_SEED,
    DEFAULT_WORKLOAD,
    get_pipeline,
)


@dataclass
class StatsResult:
    """Sec. 7.2 statistics bundle (trace / db / filtered views)."""
    trace: Dict[str, int]
    db: Dict[str, int]
    filtered: Dict[str, int]

    @property
    def data(self):
        return {"trace": self.trace, "db": self.db, "filtered": self.filtered}

    def render(self) -> str:
        rows = [["events (total)", self.trace["total"]]]
        rows += [[k, v] for k, v in self.trace.items() if k != "total"]
        rows += [[f"db.{k}", v] for k, v in self.db.items()]
        # Sorted: the memory backend accumulates reasons in trace order,
        # the SQLite backend GROUPs BY — byte parity needs one order.
        rows += [[f"filtered.{k}", v] for k, v in sorted(self.filtered.items())]
        return render_table(["metric", "value"], rows, title="Sec. 7.2 — trace statistics")


def run(
    seed: int = DEFAULT_SEED,
    scale: float = DEFAULT_SCALE,
    workload: str = DEFAULT_WORKLOAD,
) -> StatsResult:
    """Regenerate this experiment; see the module docstring for the paper reference."""
    pipeline = get_pipeline(seed, scale, workload)
    trace_stats = pipeline.mix.tracer.stats
    return StatsResult(
        trace={
            "total": trace_stats.total_events,
            "lock_ops": trace_stats.lock_ops,
            "accesses": trace_stats.accesses,
            "allocs": trace_stats.allocs,
            "frees": trace_stats.frees,
        },
        db=pipeline.db.stats(),
        filtered=pipeline.db.filtered_counts(),
    )
