"""Tab. 2: locking-rule hypotheses for writing ``minutes``.

From the Tab. 1 clock trace (1000 correct executions, one forgetting
``min_lock``), enumerate all hypotheses for write access to
``minutes`` and report absolute and relative support.  The paper's
values — and the selection lesson they teach:

====  =========================  ====  ========
id    hypothesis                 s_a   s_r
====  =========================  ====  ========
#0    no lock needed              17   100 %
#1    sec_lock                    17   100 %
#2    sec_lock -> min_lock        16   94.12 %
#3    min_lock                    16   94.12 %
#4    min_lock -> sec_lock         0   0 %
====  =========================  ====  ========

A naive highest-support pick chooses #1 (or #0); LockDoc's
lowest-support-above-threshold pick chooses the true rule #2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.hypotheses import Hypothesis, enumerate_and_score
from repro.core.report import render_table
from repro.core.selection import Selection, select_naive, select_winner
from repro.experiments.tab1 import ClockTrace, record_clock_trace

#: (rule text, s_a, s_r%) in the paper's order.
PAPER_TAB2 = [
    ("no lock needed", 17, 100.0),
    ("ES(sec_lock in clock)", 17, 100.0),
    ("ES(sec_lock in clock) -> ES(min_lock in clock)", 16, 94.12),
    ("ES(min_lock in clock)", 16, 94.12),
    ("ES(min_lock in clock) -> ES(sec_lock in clock)", 0, 0.0),
]


@dataclass
class Tab2Result:
    """Tab. 2 hypothesis list plus both selection outcomes."""
    hypotheses: List[Hypothesis]
    selection: Selection
    naive: Optional[Hypothesis]
    trace: ClockTrace

    @property
    def data(self):
        return [
            {"rule": h.rule.format(), "s_a": h.s_a, "s_r": round(h.s_r, 4)}
            for h in self.hypotheses
        ]

    def render(self) -> str:
        headers = ["Locking Hypothesis", "s_a", "s_r"]
        rows = [
            [h.rule.format(), h.s_a, f"{h.s_r:.2%}"] for h in self.hypotheses
        ]
        table = render_table(headers, rows, title="Tab. 2 — hypotheses for writing `minutes`")
        return (
            f"{table}\n"
            f"LockDoc winner: {self.selection.winner.rule.format()}\n"
            f"naive winner:   {self.naive.rule.format() if self.naive else '-'}"
        )


def run(iterations: int = 1000) -> Tab2Result:
    """Regenerate this experiment; see the module docstring for the paper reference."""
    trace = record_clock_trace(iterations)
    sequences = trace.table.sequences("clock", "minutes", "w")
    hypotheses = enumerate_and_score(sequences)
    selection = select_winner(hypotheses)
    naive = select_naive(hypotheses)
    return Tab2Result(
        hypotheses=hypotheses, selection=selection, naive=naive, trace=trace
    )
