"""Tab. 7: summary of locking-rule violations.

For each data type: number of violating memory-access events, distinct
members involved, and distinct contexts (stack traces).  Shapes to hold
vs. the paper: ``buffer_head`` dominates by an order of magnitude;
``journal_t`` and the churn-heavy inode subclasses follow;
``cdev``, ``journal_head``, ``transaction_t`` and the clean inode
subclasses (anon_inodefs, debugfs, pipefs, proc, sockfs) report zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.report import render_table
from repro.core.violations import (
    Violation,
    ViolationFinder,
    ViolationSummary,
    summarize,
)
from repro.experiments.common import DEFAULT_SCALE, DEFAULT_SEED, get_pipeline

#: Paper event counts per type (total: 52 452 events at 986 contexts).
PAPER_TAB7: Dict[str, int] = {
    "backing_dev_info": 267,
    "block_device": 1,
    "buffer_head": 45325,
    "cdev": 0,
    "dentry": 749,
    "inode:anon_inodefs": 0,
    "inode:bdev": 5,
    "inode:debugfs": 0,
    "inode:devtmpfs": 29,
    "inode:ext4": 355,
    "inode:pipefs": 0,
    "inode:proc": 0,
    "inode:rootfs": 1720,
    "inode:sockfs": 0,
    "inode:sysfs": 57,
    "inode:tmpfs": 59,
    "journal_head": 0,
    "journal_t": 3845,
    "pipe_inode_info": 9,
    "super_block": 31,
    "transaction_t": 0,
}

#: Types the paper reports with zero violating events.
PAPER_ZERO_TYPES = tuple(sorted(t for t, e in PAPER_TAB7.items() if e == 0))


@dataclass
class Tab7Result:
    """Tab. 7 violation summaries with lookup helpers."""
    violations: List[Violation]
    summaries: List[ViolationSummary]

    @property
    def data(self):
        return [
            {
                "type": s.type_key,
                "events": s.events,
                "members": s.members,
                "contexts": s.contexts,
            }
            for s in self.summaries
        ]

    def events_for(self, type_key: str) -> int:
        for summary in self.summaries:
            if summary.type_key == type_key:
                return summary.events
        return 0

    @property
    def total_events(self) -> int:
        return sum(s.events for s in self.summaries)

    def render(self) -> str:
        headers = ["Data Type", "Events", "Members", "Contexts"]
        rows = [
            [s.type_key, s.events, s.members, s.contexts] for s in self.summaries
        ]
        table = render_table(headers, rows, title="Tab. 7 — locking-rule violations")
        return f"{table}\ntotal: {self.total_events} events"


def run(seed: int = DEFAULT_SEED, scale: float = DEFAULT_SCALE) -> Tab7Result:
    """Regenerate this experiment; see the module docstring for the paper reference."""
    pipeline = get_pipeline(seed, scale)
    derivation = pipeline.derive()
    finder = ViolationFinder(derivation, pipeline.table)
    violations = finder.find()
    summaries = summarize(violations, list(PAPER_TAB7))
    return Tab7Result(violations=violations, summaries=summaries)
