"""Fig. 7: fraction of "no lock" winning hypotheses vs. the accept
threshold t_ac, per data type and access kind.

Shapes to hold (Sec. 7.4): the fraction grows (weakly) monotonically
with t_ac, levels off towards t_ac -> 1, and does not reach 100 % for
all types (members with fully-supported lock rules keep their locks
even at t_ac = 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.report import render_table
from repro.experiments.common import DEFAULT_SCALE, DEFAULT_SEED, get_pipeline

#: The ten base data types plotted by Fig. 7 (inode subclasses excluded
#: "for clarity", as in the paper).
FIG7_TYPES = (
    "backing_dev_info",
    "block_device",
    "buffer_head",
    "cdev",
    "dentry",
    "journal_head",
    "journal_t",
    "pipe_inode_info",
    "super_block",
    "transaction_t",
)

#: The swept thresholds (paper: 0.7 .. 1.0).
DEFAULT_THRESHOLDS = (0.70, 0.75, 0.80, 0.85, 0.90, 0.95, 1.00)


@dataclass
class Fig7Result:
    #: {(type, access): [(threshold, fraction or None), ...]}
    """Fig. 7 threshold-sweep series with render()/data views."""
    series: Dict[Tuple[str, str], List[Tuple[float, Optional[float]]]]

    @property
    def data(self):
        return {
            f"{tk}/{at}": [(t, None if f is None else round(f, 4)) for t, f in pts]
            for (tk, at), pts in self.series.items()
        }

    def fractions(self, type_key: str, access: str) -> List[Optional[float]]:
        return [f for _, f in self.series[(type_key, access)]]

    def render(self) -> str:
        thresholds = [t for t, _ in next(iter(self.series.values()))]
        headers = ["type", "r/w"] + [f"t={t:.2f}" for t in thresholds]
        rows = []
        for (tk, at), pts in sorted(self.series.items()):
            rows.append(
                [tk, at]
                + [("-" if f is None else f"{f:.0%}") for _, f in pts]
            )
        return render_table(
            headers, rows, title="Fig. 7 — fraction of 'no lock' winners vs t_ac"
        )


def run(
    seed: int = DEFAULT_SEED,
    scale: float = DEFAULT_SCALE,
    thresholds=DEFAULT_THRESHOLDS,
) -> Fig7Result:
    """Regenerate this experiment; see the module docstring for the paper reference."""
    pipeline = get_pipeline(seed, scale)
    series: Dict[Tuple[str, str], List[Tuple[float, Optional[float]]]] = {}
    for threshold in thresholds:
        derivation = pipeline.derive(threshold)
        for type_key in FIG7_TYPES:
            for access in ("r", "w"):
                fraction = derivation.no_lock_fraction(type_key, access)
                series.setdefault((type_key, access), []).append(
                    (threshold, fraction)
                )
    return Fig7Result(series=series)
