"""Tab. 6: mined locking rules per data type (and inode subclass).

For every type: total members (#M), black-listed/filtered members
(#Bl), members with a derived read/write rule (#Rules r/w), and how
many of those rules are "no lock needed" (#Nl r/w).  Shapes to hold
vs. the paper: read rules outnumber write rules' no-lock share by far;
ext4 inodes are the best covered subclass, debugfs barely appears.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.derivator import DerivationResult
from repro.core.report import render_table
from repro.experiments.common import DEFAULT_SCALE, DEFAULT_SEED, get_pipeline
from repro.kernel.vfs.groundtruth import MEMBER_BLACKLIST
from repro.kernel.vfs.layouts import build_struct_registry

#: Paper values: {type_key: (#M, #Bl, rules_r, rules_w, nl_r, nl_w)}.
PAPER_TAB6: Dict[str, Tuple[int, int, int, int, int, int]] = {
    "backing_dev_info": (43, 2, 25, 20, 11, 3),
    "block_device": (21, 2, 14, 15, 6, 6),
    "buffer_head": (13, 0, 10, 8, 7, 5),
    "cdev": (6, 0, 2, 6, 2, 4),
    "dentry": (21, 1, 19, 18, 13, 6),
    "inode:anon_inodefs": (65, 5, 11, 2, 8, 0),
    "inode:bdev": (65, 5, 24, 18, 14, 6),
    "inode:debugfs": (65, 5, 0, 1, 0, 0),
    "inode:devtmpfs": (65, 5, 32, 24, 26, 5),
    "inode:ext4": (65, 5, 45, 30, 36, 4),
    "inode:pipefs": (65, 5, 30, 7, 29, 3),
    "inode:proc": (65, 5, 33, 10, 31, 2),
    "inode:rootfs": (65, 5, 38, 19, 35, 3),
    "inode:sockfs": (65, 5, 19, 3, 17, 0),
    "inode:sysfs": (65, 5, 30, 14, 26, 1),
    "inode:tmpfs": (65, 5, 37, 20, 29, 3),
    "journal_head": (15, 0, 13, 12, 6, 0),
    "journal_t": (58, 11, 34, 20, 21, 1),
    "pipe_inode_info": (16, 1, 13, 7, 4, 0),
    "super_block": (56, 3, 35, 8, 21, 2),
    "transaction_t": (27, 1, 20, 16, 9, 1),
}


@dataclass
class Tab6Row:
    """One Tab. 6 row (member/rule/no-lock counts)."""
    type_key: str
    members: int
    blacklisted: int
    rules_r: int
    rules_w: int
    no_lock_r: int
    no_lock_w: int


def _static_counts() -> Dict[str, Tuple[int, int]]:
    """(#M, #Bl) per base type from the layouts + filter config."""
    registry = build_struct_registry()
    counts = {}
    for struct in registry.all():
        data_members = struct.data_members()
        atomic = sum(1 for m in data_members if m.kind.value == "atomic")
        blacklist = sum(
            1 for m in data_members if (struct.name, m.name) in MEMBER_BLACKLIST
        )
        counts[struct.name] = (len(data_members), atomic + blacklist)
    return counts


@dataclass
class Tab6Result:
    """Tab. 6 mined-rule rows with lookup helpers."""
    rows: List[Tab6Row]
    derivation: DerivationResult

    @property
    def data(self):
        return [
            {
                "type": r.type_key,
                "members": r.members,
                "blacklisted": r.blacklisted,
                "rules_r": r.rules_r,
                "rules_w": r.rules_w,
                "no_lock_r": r.no_lock_r,
                "no_lock_w": r.no_lock_w,
            }
            for r in self.rows
        ]

    def row(self, type_key: str) -> Tab6Row:
        for r in self.rows:
            if r.type_key == type_key:
                return r
        raise KeyError(type_key)

    def render(self) -> str:
        headers = ["Data Type", "#M", "#Bl", "#Rules r", "#Rules w", "#Nl r", "#Nl w"]
        table_rows = [
            [r.type_key, r.members, r.blacklisted, r.rules_r, r.rules_w,
             r.no_lock_r, r.no_lock_w]
            for r in self.rows
        ]
        return render_table(headers, table_rows, title="Tab. 6 — mined locking rules")


def run(seed: int = DEFAULT_SEED, scale: float = DEFAULT_SCALE) -> Tab6Result:
    """Regenerate this experiment; see the module docstring for the paper reference."""
    pipeline = get_pipeline(seed, scale)
    derivation = pipeline.derive()
    static = _static_counts()
    rows = []
    for type_key in sorted(PAPER_TAB6):
        base = type_key.split(":", 1)[0]
        members, blacklisted = static[base]
        rows.append(
            Tab6Row(
                type_key=type_key,
                members=members,
                blacklisted=blacklisted,
                rules_r=derivation.rule_count(type_key, "r"),
                rules_w=derivation.rule_count(type_key, "w"),
                no_lock_r=derivation.no_lock_count(type_key, "r"),
                no_lock_w=derivation.no_lock_count(type_key, "w"),
            )
        )
    return Tab6Result(rows=rows, derivation=derivation)
