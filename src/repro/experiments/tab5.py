"""Tab. 5: per-rule check detail for ``struct inode``.

Paper values (support of the documented rule, verdict):

=============  ==  ================================  ======  ===
member         rw  documented rule                   s_r     ok?
=============  ==  ================================  ======  ===
i_bytes        w   ES(i_lock)                        100 %   ✓
i_state        w   ES(i_lock)                        100 %   ✓
i_hash         w   inode_hash_lock -> ES(i_lock)     98.1 %  ~
i_blocks       w   ES(i_lock)                        93.56%  ~
i_lru          r   ES(i_lock)                        50.6 %  ~
i_lru          w   ES(i_lock)                        50.39%  ~
i_state        r   ES(i_lock)                        19.78%  ~
i_size         r   ES(i_lock)                        0 %     ✗
i_hash         r   inode_hash_lock -> ES(i_lock)     0 %     ✗
i_blocks       r   ES(i_lock)                        0 %     ✗
i_size         w   ES(i_lock)                        0 %     ✗
=============  ==  ================================  ======  ===
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.checker import CheckResult, RuleStatus, check_rules
from repro.core.report import render_table
from repro.doc.corpus import inode_rules
from repro.experiments.common import DEFAULT_SCALE, DEFAULT_SEED, get_pipeline

#: Paper verdicts per (member, access).
PAPER_TAB5: Dict[Tuple[str, str], str] = {
    ("i_bytes", "w"): "correct",
    ("i_state", "w"): "correct",
    ("i_hash", "w"): "ambivalent",
    ("i_blocks", "w"): "ambivalent",
    ("i_lru", "r"): "ambivalent",
    ("i_lru", "w"): "ambivalent",
    ("i_state", "r"): "ambivalent",
    ("i_size", "r"): "incorrect",
    ("i_hash", "r"): "incorrect",
    ("i_blocks", "r"): "incorrect",
    ("i_size", "w"): "incorrect",
}


@dataclass
class Tab5Result:
    """Tab. 5 per-rule inode check results."""
    results: List[CheckResult]

    @property
    def observed(self) -> List[CheckResult]:
        return [r for r in self.results if r.status != RuleStatus.UNOBSERVED]

    @property
    def data(self):
        return [
            {
                "member": r.documented.member,
                "access": r.access_type,
                "rule": r.rule.format(),
                "s_r": round(r.s_r, 4),
                "status": r.status.value,
            }
            for r in self.results
        ]

    def verdict(self, member: str, access: str) -> str:
        for r in self.results:
            if r.documented.member == member and r.access_type == access:
                return r.status.value
        raise KeyError((member, access))

    def render(self) -> str:
        headers = ["Member", "r/w", "Locking Rule", "s_r", "OK?"]
        ordered = sorted(self.observed, key=lambda r: -r.s_r)
        rows = [
            [
                r.documented.member,
                r.access_type,
                r.rule.format(),
                f"{r.s_r:.2%}",
                r.status.symbol,
            ]
            for r in ordered
        ]
        return render_table(headers, rows, title="Tab. 5 — check rules for struct inode")


def run(seed: int = DEFAULT_SEED, scale: float = DEFAULT_SCALE) -> Tab5Result:
    """Regenerate this experiment; see the module docstring for the paper reference."""
    pipeline = get_pipeline(seed, scale)
    results = check_rules(pipeline.table, inode_rules())
    return Tab5Result(results=results)
