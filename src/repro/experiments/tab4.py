"""Tab. 4: validation of the documented locking rules.

Checks the documented-rule corpus against the trace and summarizes per
data type: total rules (#R), unobserved members (#No), observed (#Ob),
and the correct / ambivalent / incorrect shares.  Paper values:

=============  ===  ===  ===  ======  ======  ======
type           #R   #No  #Ob  ✓ %     ~ %     ✗ %
=============  ===  ===  ===  ======  ======  ======
inode           14    3   11  18.18   45.45   36.36
journal_head    26    3   23  56.52   17.39   26.09
transaction_t   42   13   29  79.31   13.79    6.90
journal_t       38    8   30  56.67   33.33   10.00
dentry          22    0   22  27.27   63.64    9.09
=============  ===  ===  ===  ======  ======  ======

Across the five structs only ~53 % of the observed documented rules are
consistently followed — the paper's headline documentation finding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.checker import CheckResult, CheckSummary, check_rules, summarize
from repro.core.report import percentage, render_table
from repro.doc.corpus import documented_rules
from repro.experiments.common import DEFAULT_SCALE, DEFAULT_SEED, get_pipeline

#: Paper reference: {type: (#R, #No, #Ob, correct, ambivalent, incorrect)}.
PAPER_TAB4 = {
    "inode": (14, 3, 11, 2, 5, 4),
    "journal_head": (26, 3, 23, 13, 4, 6),
    "transaction_t": (42, 13, 29, 23, 4, 2),
    "journal_t": (38, 8, 30, 17, 10, 3),
    "dentry": (22, 0, 22, 6, 14, 2),
}

#: Tab. 4 row order.
ROW_ORDER = ("inode", "journal_head", "transaction_t", "journal_t", "dentry")


@dataclass
class Tab4Result:
    """Tab. 4 check results and per-type summaries."""
    results: List[CheckResult]
    summaries: List[CheckSummary]

    @property
    def data(self):
        return [
            {
                "type": s.data_type,
                "rules": s.rules,
                "unobserved": s.unobserved,
                "observed": s.observed,
                "correct": s.correct,
                "ambivalent": s.ambivalent,
                "incorrect": s.incorrect,
            }
            for s in self.summaries
        ]

    def summary_for(self, data_type: str) -> CheckSummary:
        for summary in self.summaries:
            if summary.data_type == data_type:
                return summary
        raise KeyError(data_type)

    def overall_correct_fraction(self) -> float:
        observed = sum(s.observed for s in self.summaries)
        correct = sum(s.correct for s in self.summaries)
        return correct / observed if observed else 0.0

    def render(self) -> str:
        headers = ["Data Type", "#R", "#No", "#Ob", "ok (%)", "~ (%)", "x (%)"]
        ordered = sorted(
            self.summaries, key=lambda s: ROW_ORDER.index(s.data_type)
        )
        rows = []
        for s in ordered:
            rows.append(
                [
                    s.data_type,
                    s.rules,
                    s.unobserved,
                    s.observed,
                    percentage(s.correct / s.observed if s.observed else 0),
                    percentage(s.ambivalent / s.observed if s.observed else 0),
                    percentage(s.incorrect / s.observed if s.observed else 0),
                ]
            )
        table = render_table(headers, rows, title="Tab. 4 — validated documented rules")
        return (
            f"{table}\n"
            f"overall consistently-followed share: "
            f"{percentage(self.overall_correct_fraction())} "
            f"(paper: ~53% counting correct+much of ambivalent as partially held)"
        )


def run(seed: int = DEFAULT_SEED, scale: float = DEFAULT_SCALE) -> Tab4Result:
    """Regenerate this experiment; see the module docstring for the paper reference."""
    pipeline = get_pipeline(seed, scale)
    results = check_rules(pipeline.table, documented_rules())
    return Tab4Result(results=results, summaries=summarize(results))
