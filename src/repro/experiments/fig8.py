"""Fig. 8: generated locking documentation for ``fs/inode.c``.

Runs the documentation generator on the mined inode rules and renders
the kernel-comment-style block.  Shapes to hold: a "no locks needed"
paragraph, ES rules for ``i_lock``-protected members, the EO rules for
``wb.list_lock`` (writeback lists), the parent-directory ``i_rwsem``
(ops tables) and ``s_umount`` (writeback index).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.docgen import DocOptions, generate_doc
from repro.experiments.common import DEFAULT_SCALE, DEFAULT_SEED, get_pipeline

#: Phrases the generated inode documentation must contain to match the
#: Fig. 8 structure.
EXPECTED_FRAGMENTS = (
    "No locks needed for:",
    "ES(i_lock in inode)",
    "EO(wb.list_lock in backing_dev_info)",
    "EO(i_rwsem in inode)",
)


@dataclass
class Fig8Result:
    """Generated-documentation result with structure checks."""
    documentation: str
    per_type: Dict[str, str]

    @property
    def data(self):
        return {"inode:ext4": self.documentation}

    def contains_expected(self) -> bool:
        return all(fragment in self.documentation for fragment in EXPECTED_FRAGMENTS)

    def render(self) -> str:
        return self.documentation


def run(
    seed: int = DEFAULT_SEED,
    scale: float = DEFAULT_SCALE,
    type_key: str = "inode:ext4",
) -> Fig8Result:
    """Regenerate this experiment; see the module docstring for the paper reference."""
    pipeline = get_pipeline(seed, scale)
    derivation = pipeline.derive()
    options = DocOptions(comment_style=True)
    documentation = generate_doc(derivation, type_key, options)
    per_type = {type_key: documentation}
    return Fig8Result(documentation=documentation, per_type=per_type)
