"""Tab. 8: locking-rule violation examples.

The paper's three examples, all of which this reproduction surfaces
with identical expected/held lock shapes:

=============================  =================================  ==================
member                         locks held                         location
=============================  =================================  ==================
inode:ext4.i_hash              inode_hash_lock -> EO(i_lock)      fs/inode.c:507
journal_t.j_committing_        EO(i_rwsem):r -> ES(j_state_       fs/ext4/inode.c:
transaction                    lock):r                            4685
dentry.d_subdirs               EO(i_rwsem):r -> rcu               fs/libfs.c:104
=============================  =================================  ==================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.report import render_table
from repro.core.violations import Violation, ViolationFinder
from repro.experiments.common import DEFAULT_SCALE, DEFAULT_SEED, get_pipeline

#: The paper's example rows: (member suffix to match, expected file).
PAPER_EXAMPLES: List[Tuple[str, str, str]] = [
    ("inode:ext4", "i_hash", "fs/inode.c"),
    ("journal_t", "j_committing_transaction", "fs/ext4/inode.c"),
    ("dentry", "d_subdirs", "fs/libfs.c"),
]


@dataclass
class Tab8Result:
    """Tab. 8 example violations aligned with the paper's rows."""
    violations: List[Violation]
    examples: List[Optional[Violation]]  # aligned with PAPER_EXAMPLES

    @property
    def data(self):
        return [
            None
            if v is None
            else {
                "member": f"{v.type_key}.{v.member}",
                "rule": v.rule.format(),
                "held": " -> ".join(r.format() for r in v.held) or "(none)",
                "location": f"{v.sample.file}:{v.sample.line}" if v.sample else "?",
                "events": v.events,
            }
            for v in self.examples
        ]

    def found_all(self) -> bool:
        return all(v is not None for v in self.examples)

    def render(self) -> str:
        headers = ["Data Type/Member", "Locks held", "Location"]
        rows = []
        for violation in self.examples:
            if violation is None:
                rows.append(["<not reproduced>", "-", "-"])
                continue
            held = " -> ".join(r.format() for r in violation.held) or "(none)"
            location = (
                f"{violation.sample.file}:{violation.sample.line}"
                if violation.sample
                else "?"
            )
            rows.append(
                [f"{violation.type_key}.{violation.member}", held, location]
            )
        return render_table(headers, rows, title="Tab. 8 — violation examples")


def run(seed: int = DEFAULT_SEED, scale: float = DEFAULT_SCALE) -> Tab8Result:
    """Regenerate this experiment; see the module docstring for the paper reference."""
    pipeline = get_pipeline(seed, scale)
    derivation = pipeline.derive()
    violations = ViolationFinder(derivation, pipeline.table).find()
    examples: List[Optional[Violation]] = []
    for type_key, member, file in PAPER_EXAMPLES:
        match = None
        for violation in violations:
            if (
                violation.type_key == type_key
                and violation.member == member
                and violation.sample is not None
                and violation.sample.file == file
            ):
                match = violation
                break
        examples.append(match)
    return Tab8Result(violations=violations, examples=examples)
