"""Tab. 3, second column: code coverage of the netbench workload.

The paper's Tab. 3 reports GCOV coverage of ``fs/``, ``fs/ext4/`` and
``fs/jbd2/`` under the VFS benchmark mix.  This is the net-slice
analogue: the same catalog accounting (synthesized ops + hand-written
kernel functions + never-executed cold paths) over the ``net/``,
``net/core/`` and ``net/ipv4/`` directory buckets, measured against a
netbench trace.  The shape to hold mirrors the paper's observation:
partial coverage — a single benchmark exercises well under half of the
subsystem it targets, which is exactly why Sec. 7 treats the mined
rules as hypotheses rather than ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.report import render_table
from repro.experiments.common import DEFAULT_SCALE, DEFAULT_SEED, get_pipeline
from repro.workloads.coverage import CoverageRow, coverage_report

#: Coverage band the netbench run should land in (fractions, per
#: directory bucket): strictly partial like the paper's fs rows, with
#: net/core by far the best covered (that is where the hot sock/skb
#: paths live) and net/ipv4 barely touched — netbench only reaches the
#: tcp.c/tcp_output.c helpers through the fuzzer's handwritten paths.
NET_COVERAGE_BAND = (0.01, 0.80)


@dataclass
class Tab3NetResult:
    """Net-slice Tab. 3 coverage rows with render()/data views."""
    rows: List[CoverageRow]

    @property
    def data(self):
        return [
            {
                "directory": row.directory,
                "line_coverage": round(row.line_coverage, 4),
                "function_coverage": round(row.function_coverage, 4),
            }
            for row in self.rows
        ]

    def render(self) -> str:
        headers = ["Directory", "Line Coverage", "Function Coverage"]
        table_rows = [
            [
                row.directory,
                f"{row.line_coverage:.2%} ({row.lines_hit}/{row.lines_total})",
                f"{row.function_coverage:.2%} ({row.functions_hit}/{row.functions_total})",
            ]
            for row in self.rows
        ]
        return render_table(
            headers, table_rows,
            title="Tab. 3 (net column) — netbench code coverage",
        )


def run(seed: int = DEFAULT_SEED, scale: float = DEFAULT_SCALE) -> Tab3NetResult:
    """Regenerate this experiment; see the module docstring for the paper reference."""
    pipeline = get_pipeline(seed, scale, workload="netbench")
    rows = coverage_report(pipeline.mix.world, pipeline.db, subsystem="net")
    return Tab3NetResult(rows=rows)
