"""Ground-truth locking rules for the 4 observed networking types.

The net slice deliberately exercises locking idioms the VFS slice does
not have:

* ``sk_lock`` — the socket *owner* lock, a sleeping semaphore taken by
  every process-context socket operation (``lock_sock`` in the real
  kernel).  Nothing in the VFS model uses the semaphore class.
* ``sk_receive_queue.lock`` / ``sk_write_queue.lock`` — spinlocks taken
  with the ``_bh`` flavor because packet delivery runs in softirq
  context, so the mined rules include the synthetic ``softirq``
  pseudo-lock (the VFS analogue, buffer heads, uses ``_irq``).
* ``net_device`` configuration — RCU-protected reads with writes
  serialized by the global ``rtnl_mutex`` (a *mutex-class* global; all
  VFS globals are spinlocks/seqlocks).
* ``net_family_lock`` — a global spinlock guarding the per-family sock
  list; the sockstress workload deliberately orders it against the VFS
  ``sb_lock`` both ways to plant a cross-subsystem lock-order
  inversion.

Planted deviations (the injected bugs LockDoc must surface) are all
kept below the 10 % accept-threshold complement so the true rules still
win:

=============  ======================  =====================
type           member                  skip
=============  ======================  =====================
sock           sk_sndbuf               ``write_skip=0.06``
sock           sk_receive_queue.qlen   ``read_skip=0.05``
sk_buff        len                     ``write_skip=0.055``
net_device     flags                   ``write_skip=0.05``
=============  ======================  =====================
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.db.filters import FilterConfig
from repro.kernel.vfs.spec import LockTok, MemberSpec, TypeSpec

ES = LockTok.es
VIA = LockTok.via_
GLOBAL = LockTok.global_
RCU = LockTok.rcu

#: Global (static) locks the net model uses: name -> lock class.
NET_GLOBAL_LOCKS: Dict[str, str] = {
    "net_family_lock": "spinlock_t",
    "rtnl_mutex": "mutex",
}

#: Functions whose dynamic extent is object construction/teardown.
NET_INIT_TEARDOWN_FUNCTIONS = {
    "sk_alloc",
    "sock_init_data",
    "sk_free",
    "sk_destruct",
    "alloc_skb",
    "skb_release_all",
    "kfree_skbmem",
    "alloc_netdev",
    "free_netdev",
    "sock_alloc_wq",
    "sock_free_wq",
}

#: (type, member) pairs excluded from analysis (wait queues etc.).
NET_MEMBER_BLACKLIST = {
    ("socket_wq", "wait"),
    ("sock", "sk_backlog"),
}

#: The planted deviations, as (type, member, access_type) — tests and
#: bench_net assert each one surfaces as a rule violation.
NET_PLANTED_DEVIATIONS = (
    ("sock", "sk_sndbuf", "w"),
    ("sock", "sk_receive_queue.qlen", "r"),
    ("sk_buff", "len", "w"),
    ("net_device", "flags", "w"),
)


def _m(
    member: str,
    read: Tuple[LockTok, ...] = (),
    write: Tuple[LockTok, ...] = (),
    group: str = "",
    weight: float = 1.0,
    rw: float = None,  # type: ignore[assignment]  # read_weight override
    ww: float = None,  # type: ignore[assignment]  # write_weight override
    read_skip: float = 0.0,
    write_skip: float = 0.0,
    lockfree_alt: float = 0.0,
) -> MemberSpec:
    return MemberSpec(
        member=member,
        read=read,
        write=write,
        read_skip=read_skip,
        write_skip=write_skip,
        weight=weight,
        read_weight=rw,
        write_weight=ww,
        group=group,
        lockfree_alt=lockfree_alt,
    )


# ----------------------------------------------------------------------
# struct sock
# ----------------------------------------------------------------------


def build_sock_spec() -> TypeSpec:
    """Ground truth for ``struct sock``.

    ``sk_lock`` (the owner semaphore) covers connection state and buffer
    limits; the receive/write queue heads take their own ``_bh``
    spinlocks; ``sk_dst_cache`` is RCU-read / ``sk_dst_lock``-write;
    callback plumbing uses the ``sk_callback_lock`` rwlock; the
    per-family membership node takes the global ``net_family_lock``.
    """
    sk = (ES("sk_lock"),)
    rxq = (ES("sk_receive_queue.lock", flavor="bh"),)
    # The write queue is only ever touched by the socket owner, so the
    # documented discipline is sk_lock *plus* the queue spinlock — the
    # two-token rule sendmsg actually exhibits (unlike the receive
    # queue, whose softirq delivery path can never take sk_lock).
    txq = (ES("sk_lock"), ES("sk_write_queue.lock", flavor="bh"))
    cb_r = (ES("sk_callback_lock", mode="r"),)
    cb_w = (ES("sk_callback_lock", mode="w"),)
    t = [
        # -- identity, immutable after sock_init_data.
        _m("sk_family", weight=2.0, ww=0),
        _m("sk_type", weight=1.5, ww=0),
        _m("sk_protocol", weight=1.5, ww=0),
        _m("sk_prot", weight=1.0, ww=0),
        # -- connection state under the owner lock; sk_state has a
        #    legitimate lock-free peek path (tcp_poll-style), which
        #    makes the documented read rule ambivalent.
        _m("sk_state", read=sk, write=sk, group="state", weight=6.0,
           lockfree_alt=0.55),
        _m("sk_shutdown", read=sk, write=sk, group="state", weight=3.0),
        _m("sk_err", read=sk, write=sk, group="state", weight=2.5),
        _m("sk_err_soft", write=sk, group="state", weight=1.5, rw=0),
        # -- buffer limits: sk_sndbuf writes deviate (planted bug: a
        #    setsockopt fast path skips lock_sock).
        _m("sk_rcvbuf", read=sk, write=sk, group="buffers", weight=4.0),
        _m("sk_sndbuf", read=sk, write=sk, group="buffers", weight=4.0,
           write_skip=0.06),
        _m("sk_rcvtimeo", write=sk, group="timeo", weight=1.5),
        _m("sk_sndtimeo", write=sk, group="timeo", weight=1.5),
        # -- receive queue head: _bh spinlock, shared with softirq
        #    delivery; qlen reads deviate (planted bug: a poll fast
        #    path peeks at the queue length without the lock).
        _m("sk_receive_queue.next", read=rxq, write=rxq, group="rxq",
           weight=5.0),
        _m("sk_receive_queue.prev", read=rxq, write=rxq, group="rxq",
           weight=4.0),
        _m("sk_receive_queue.qlen", read=rxq, write=rxq, group="rxq",
           weight=5.0, read_skip=0.05),
        # -- write queue head: owner lock then queue spinlock, clean.
        _m("sk_write_queue.next", read=txq, write=txq, group="txq",
           weight=3.0),
        _m("sk_write_queue.prev", read=txq, write=txq, group="txq",
           weight=2.5),
        _m("sk_write_queue.qlen", read=txq, write=txq, group="txq",
           weight=3.0),
        # -- route cache: RCU readers, spinlock writers.
        _m("sk_dst_cache", read=(RCU(),), write=(ES("sk_dst_lock"),),
           group="dst", weight=3.0),
        # -- callback plumbing: rwlock, read-mostly.
        _m("sk_socket", read=cb_r, write=cb_w, group="callbacks", weight=2.0),
        _m("sk_wq", read=cb_r, write=cb_w, group="callbacks", weight=2.0),
        _m("sk_user_data", read=cb_r, write=cb_w, group="callbacks",
           weight=1.0),
        # -- per-family sock list: global lock.
        _m("sk_node", read=(GLOBAL("net_family_lock"),),
           write=(GLOBAL("net_family_lock"),), group="family", weight=2.0),
        _m("sk_backlog", group="state", weight=0.5),  # blacklisted member
        _m("sk_priority", weight=1.0, group="misc"),  # lock-free r+w
        _m("sk_mark", weight=0.8, group="misc"),  # lock-free r+w
        # -- atomics: traced but filtered (Sec. 5.3).
        _m("sk_refcnt", group="refs", weight=1.0),
        _m("sk_wmem_alloc", weight=0.5),
        _m("sk_rmem_alloc", weight=0.5),
        _m("sk_drops", weight=0.4),
    ]
    return TypeSpec(
        name="sock",
        members=t,
        ref_types={},
        blacklist=("sk_backlog",),
    )


# ----------------------------------------------------------------------
# struct sk_buff
# ----------------------------------------------------------------------


def build_sk_buff_spec() -> TypeSpec:
    """``struct sk_buff``: list linkage under the *owning sock's* queue
    lock (an EO rule through the ``sk`` back-reference — the net
    analogue of Fig. 8), payload geometry under the owner ``sk_lock``,
    ``dev`` read under RCU.  ``len`` writes deviate (planted bug: a
    trim helper edits the length without the socket lock)."""
    links = (VIA("sk", "sk_receive_queue.lock", flavor="bh"),)
    payload = (VIA("sk", "sk_lock"),)
    t = [
        _m("next", read=links, write=links, group="links", weight=5.0),
        _m("prev", read=links, write=links, group="links", weight=4.0),
        _m("sk", weight=1.5, ww=0),
        _m("dev", read=(RCU(),), group="route", weight=2.0, ww=0),
        _m("len", read=payload, write=payload, group="payload", weight=5.0,
           write_skip=0.055),
        _m("data_len", read=payload, write=payload, group="payload",
           weight=3.0),
        _m("truesize", weight=1.5, ww=0),
        _m("protocol", weight=1.5, ww=0),
        _m("data", read=payload, write=payload, group="geometry", weight=3.0),
        _m("head", weight=1.0, ww=0),
        _m("tail", read=payload, write=payload, group="geometry", weight=3.0),
        _m("end", weight=1.0, ww=0),
        _m("cb", weight=1.5, group="misc"),  # lock-free r+w scratch
        _m("queue_mapping", weight=0.8, group="misc"),  # lock-free r+w
        _m("hash", weight=0.8, group="misc"),  # lock-free r+w
        _m("users", group="refs", weight=0.8),  # atomic
    ]
    return TypeSpec(
        name="sk_buff",
        members=t,
        ref_types={"sk": "sock"},
        blacklist=(),
    )


# ----------------------------------------------------------------------
# struct socket_wq
# ----------------------------------------------------------------------


def build_socket_wq_spec() -> TypeSpec:
    """``struct socket_wq``: written under the owning sock's
    ``sk_callback_lock``; ``flags`` has an RCU read path.  Clean —
    zero planted deviations."""
    cb_r = (VIA("sk", "sk_callback_lock", mode="r"),)
    cb_w = (VIA("sk", "sk_callback_lock", mode="w"),)
    t = [
        _m("wait", weight=0.5, ww=0),  # blacklisted member
        _m("fasync_list", read=cb_r, write=cb_w, group="fasync", weight=1.5),
        _m("flags", read=(RCU(),), write=cb_w, group="flags", weight=2.5),
        _m("sk", weight=1.0, ww=0),
    ]
    return TypeSpec(
        name="socket_wq",
        members=t,
        ref_types={"sk": "sock"},
        blacklist=("wait",),
    )


# ----------------------------------------------------------------------
# struct net_device
# ----------------------------------------------------------------------


def build_net_device_spec() -> TypeSpec:
    """``struct net_device``: configuration is RCU-read with writes
    under the global ``rtnl_mutex``; address lists take the embedded
    ``addr_list_lock`` spinlock; per-cpu-style stats are lock-free.
    ``flags`` writes deviate (planted bug: a flag-toggle path skips
    rtnl)."""
    rtnl = (GLOBAL("rtnl_mutex", lock_class="mutex"),)
    addrs = (ES("addr_list_lock"),)
    t = [
        _m("name", weight=2.0, ww=0),
        _m("ifindex", weight=2.0, ww=0),
        _m("state", read=(RCU(),), write=rtnl, group="cfg", weight=4.0),
        _m("flags", read=(RCU(),), write=rtnl, group="cfg", weight=4.0,
           write_skip=0.05),
        _m("mtu", read=(RCU(),), write=rtnl, group="cfg", weight=3.0),
        _m("type", weight=1.0, ww=0),
        _m("operstate", read=(RCU(),), write=rtnl, group="cfg", weight=2.0),
        _m("dev_addr", read=addrs, write=rtnl + addrs, group="addrs",
           weight=2.0),
        _m("broadcast", weight=0.8, ww=0),
        _m("features", weight=1.5, ww=0),
        _m("uc", read=addrs, write=addrs, group="addrlist", weight=2.0),
        _m("mc", read=addrs, write=addrs, group="addrlist", weight=2.0),
        _m("promiscuity", write=addrs, group="addrlist", weight=1.0, rw=0),
        _m("qdisc", read=(RCU(),), write=rtnl, group="cfg", weight=1.5),
        _m("refcnt", group="refs", weight=1.0),  # atomic
        _m("rx_packets", weight=2.0, group="stats"),  # lock-free r+w
        _m("tx_packets", weight=2.0, group="stats"),  # lock-free r+w
        _m("rx_bytes", weight=1.5, group="stats"),  # lock-free r+w
        _m("tx_bytes", weight=1.5, group="stats"),  # lock-free r+w
        _m("rx_dropped", weight=0.8, group="stats"),  # lock-free r+w
    ]
    return TypeSpec(
        name="net_device",
        members=t,
        ref_types={},
        blacklist=(),
    )


# ----------------------------------------------------------------------
# Assembly
# ----------------------------------------------------------------------

_NET_BUILDERS = {
    "net_device": build_net_device_spec,
    "sk_buff": build_sk_buff_spec,
    "sock": build_sock_spec,
    "socket_wq": build_socket_wq_spec,
}


def build_net_specs() -> Dict[str, TypeSpec]:
    """Fresh ground-truth specs for the 4 net types."""
    return {name: builder() for name, builder in _NET_BUILDERS.items()}


def build_net_filter_config() -> FilterConfig:
    """Filter configuration matching the net ground truth."""
    return FilterConfig(
        init_teardown_functions=set(NET_INIT_TEARDOWN_FUNCTIONS),
        global_function_blacklist=set(),
        per_type_function_blacklist={},
        member_blacklist=set(NET_MEMBER_BLACKLIST),
    )
