"""Struct layouts of the 4 observed networking data types.

Member names follow the real Linux structs.  ``sk_lock`` is modelled as
a semaphore — the real ``struct sock``'s ``sk_lock`` is the hand-rolled
"socket lock" (a spinlock-protected owner flag plus a wait queue whose
process-context side *sleeps*), which maps onto the simulator's
counting-semaphore class: sleeping, exclusive, not owner-tracked the
way a mutex is.  The receive/write queues embed their own spinlocks
(``sk_buff_head``), flattened to dotted members exactly like the VFS
``i_data`` nesting.

=============  ===  ====================================
type           #M   embedded locks
=============  ===  ====================================
net_device      20  addr_list_lock
sk_buff         16  (queue lock lives in the owning sock)
sock            30  sk_lock, sk_callback_lock, sk_dst_lock,
                    sk_receive_queue.lock, sk_write_queue.lock
socket_wq        4  (sk_callback_lock of the owning sock)
=============  ===  ====================================
"""

from __future__ import annotations

from typing import Dict, List

from repro.kernel.structs import Member, StructDef, StructRegistry

S = Member.scalar
A = Member.atomic
L = Member.lock


def _scalars(*names: str) -> List[Member]:
    return [S(name) for name in names]


def build_sk_buff_head() -> StructDef:
    """``struct sk_buff_head`` — nested into sock twice (rx/tx queues)."""
    return StructDef(
        "sk_buff_head",
        [
            S("next"),
            S("prev"),
            S("qlen"),
            L("lock", "spinlock_t"),
        ],
    )


def build_sock() -> StructDef:
    """``struct sock`` — 30 data members, 5 embedded locks."""
    return StructDef(
        "sock",
        _scalars("sk_family", "sk_type", "sk_protocol", "sk_prot")
        + [L("sk_lock", "semaphore")]
        + _scalars("sk_state", "sk_shutdown", "sk_err", "sk_err_soft")
        + [
            Member.struct("sk_receive_queue", build_sk_buff_head()),
            Member.struct("sk_write_queue", build_sk_buff_head()),
            L("sk_callback_lock", "rwlock_t"),
            L("sk_dst_lock", "spinlock_t"),
        ]
        + _scalars(
            "sk_rcvbuf",
            "sk_sndbuf",
            "sk_rcvtimeo",
            "sk_sndtimeo",
            "sk_dst_cache",
            "sk_socket",
            "sk_wq",
            "sk_user_data",
            "sk_node",
            "sk_backlog",
            "sk_priority",
            "sk_mark",
        )
        + [A("sk_refcnt"), A("sk_wmem_alloc"), A("sk_rmem_alloc"), A("sk_drops")],
    )


def build_sk_buff() -> StructDef:
    """``struct sk_buff`` — 16 data members, no embedded lock (list
    linkage is guarded by the owning sock's queue lock)."""
    return StructDef(
        "sk_buff",
        _scalars(
            "next",
            "prev",
            "sk",
            "dev",
            "len",
            "data_len",
            "truesize",
            "protocol",
            "data",
            "head",
            "tail",
            "end",
            "cb",
            "queue_mapping",
            "hash",
        )
        + [A("users")],
    )


def build_socket_wq() -> StructDef:
    """``struct socket_wq`` — 4 data members, guarded by the owning
    sock's ``sk_callback_lock`` (plus RCU on the reader side)."""
    return StructDef(
        "socket_wq",
        _scalars("wait", "fasync_list", "flags", "sk"),
    )


def build_net_device() -> StructDef:
    """``struct net_device`` — 20 data members, 1 embedded lock."""
    return StructDef(
        "net_device",
        _scalars(
            "name",
            "ifindex",
            "state",
            "flags",
            "mtu",
            "type",
            "operstate",
            "dev_addr",
            "broadcast",
            "features",
        )
        + [L("addr_list_lock", "spinlock_t")]
        + _scalars("uc", "mc", "promiscuity", "qdisc")
        + [A("refcnt")]
        + _scalars(
            "rx_packets",
            "tx_packets",
            "rx_bytes",
            "tx_bytes",
            "rx_dropped",
        ),
    )


#: Builders for every observed net type, keyed by type name.
NET_BUILDERS = {
    "net_device": build_net_device,
    "sk_buff": build_sk_buff,
    "sock": build_sock,
    "socket_wq": build_socket_wq,
}

#: Expected data-member counts — validated by tests.
EXPECTED_NET_MEMBER_COUNTS: Dict[str, int] = {
    "net_device": 20,
    "sk_buff": 16,
    "sock": 30,
    "socket_wq": 4,
}


def build_net_struct_registry() -> StructRegistry:
    """Fresh registry with the 4 observed networking types."""
    return StructRegistry([builder() for builder in NET_BUILDERS.values()])
