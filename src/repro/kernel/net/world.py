"""The net world: socket lifecycle and high-level network operations.

:class:`NetWorld` owns the simulated networking object graph — net
devices, socks with their receive/write queues, socket wait-queue
heads, in-flight sk_buffs — and provides the kernel-entry-point
functions the net workloads drive (``sock_create``, ``sock_sendmsg``,
``sock_recvmsg``, ``sock_close``, and the softirq-side
``netif_receive``).

The locking idioms deliberately mirror the real net core rather than
the VFS slice: process-context paths take the sleeping ``sk_lock``
owner semaphore first (``lock_sock``), queue surgery always goes
through ``spin_lock_bh`` so the softirq delivery path and the syscall
path serialize on the same discipline, and device configuration is
RCU-read / rtnl-write.

Like :class:`~repro.kernel.vfs.fs.VfsWorld`, object constructors run
inside the init/teardown functions of
:data:`repro.kernel.net.groundtruth.NET_INIT_TEARDOWN_FUNCTIONS`, so
the importer filters their unlocked initialization writes.
"""

from __future__ import annotations

import random
from typing import Dict, Generator, List, Optional

from repro.kernel.context import ExecutionContext
from repro.kernel.runtime import KernelRuntime, KObject, pinned
from repro.kernel.net.groundtruth import build_net_specs
from repro.kernel.net.layouts import build_net_struct_registry
from repro.kernel.vfs.ops import OpEngine
from repro.kernel.vfs.spec import TypeSpec

#: Simulated network interfaces brought up at boot.
DEFAULT_DEVICES = ("lo", "eth0", "eth1")


class NetWorld:
    """The simulated networking object graph."""

    def __init__(
        self,
        runtime: Optional[KernelRuntime] = None,
        seed: int = 0,
        specs: Optional[Dict[str, TypeSpec]] = None,
    ) -> None:
        self.rt = runtime or KernelRuntime(build_net_struct_registry())
        self.rng = random.Random(seed)
        self.specs = specs or build_net_specs()
        self.engine = OpEngine(
            self.rt, self.specs, random.Random(seed + 1), combo_rate=0.0
        )
        self.boot_ctx = self.rt.new_task("netd/0")
        self.devices: List[KObject] = []
        self.socks: List[KObject] = []
        self.wqs: List[KObject] = []
        self.skbs: List[KObject] = []
        # Deterministic counters driving the planted skip-path bugs.
        self._setsockopt_calls = 0
        self._flag_writes = 0

    # ------------------------------------------------------------------
    # Object constructors (init functions -> filtered accesses)
    # ------------------------------------------------------------------

    def new_netdev(self, ctx: ExecutionContext, name: str) -> KObject:
        with self.rt.function(ctx, "alloc_netdev", "net/core/dev.c", 10450):
            dev = self.rt.new_object(ctx, "net_device")
            for member in ("name", "ifindex", "mtu", "type", "flags",
                           "features", "dev_addr", "broadcast"):
                self.rt.write(ctx, dev, member)
            dev.values["name"] = name
        self.devices.append(dev)
        return dev

    def new_sock(self, ctx: ExecutionContext) -> KObject:
        with self.rt.function(ctx, "sk_alloc", "net/core/sock.c", 1930):
            sk = self.rt.new_object(ctx, "sock")
            with self.rt.function(ctx, "sock_init_data", "net/core/sock.c", 3150):
                for member in ("sk_family", "sk_type", "sk_protocol",
                               "sk_state", "sk_rcvbuf", "sk_sndbuf",
                               "sk_rcvtimeo", "sk_sndtimeo",
                               "sk_receive_queue.next", "sk_receive_queue.prev",
                               "sk_receive_queue.qlen",
                               "sk_write_queue.next", "sk_write_queue.prev",
                               "sk_write_queue.qlen"):
                    self.rt.write(ctx, sk, member)
            sk.values["sk_state"] = "TCP_CLOSE"
        self.socks.append(sk)
        self.new_wq(ctx, sk)
        return sk

    def new_wq(self, ctx: ExecutionContext, sk: KObject) -> KObject:
        with self.rt.function(ctx, "sock_alloc_wq", "net/socket.c", 600):
            wq = self.rt.new_object(ctx, "socket_wq")
            for member in ("wait", "flags", "fasync_list"):
                self.rt.write(ctx, wq, member)
            wq.refs["sk"] = sk
        self.wqs.append(wq)
        return wq

    def new_skb(self, ctx: ExecutionContext, sk: KObject) -> KObject:
        with self.rt.function(ctx, "alloc_skb", "net/core/skbuff.c", 200):
            skb = self.rt.new_object(ctx, "sk_buff")
            for member in ("len", "data_len", "truesize", "protocol",
                           "data", "head", "tail", "end"):
                self.rt.write(ctx, skb, member)
            skb.refs["sk"] = sk
            if self.devices:
                skb.refs["dev"] = self.rng.choice(self.devices)
        self.skbs.append(skb)
        return skb

    # ------------------------------------------------------------------
    # Destructors (teardown functions -> filtered accesses)
    # ------------------------------------------------------------------

    def _destroyable(self, obj: KObject) -> bool:
        if not obj.live or obj.pinned:
            return False
        return all(lock.is_free() for lock in obj.locks.values())

    def destroy_skb(self, ctx: ExecutionContext, skb: KObject) -> bool:
        if not self._destroyable(skb):
            return False
        with self.rt.function(ctx, "skb_release_all", "net/core/skbuff.c", 870):
            self.rt.write(ctx, skb, "len")
            self.rt.delete_object(ctx, skb)
        if skb in self.skbs:
            self.skbs.remove(skb)
        return True

    def destroy_sock(self, ctx: ExecutionContext, sk: KObject) -> bool:
        if not self._destroyable(sk):
            return False
        # In-flight skbs keep the sock alive (refcount model).
        if any(skb.live and skb.refs.get("sk") is sk for skb in self.skbs):
            return False
        with self.rt.function(ctx, "sk_free", "net/core/sock.c", 2120):
            self.rt.write(ctx, sk, "sk_state")
            self.rt.delete_object(ctx, sk)
        if sk in self.socks:
            self.socks.remove(sk)
        for wq in [w for w in self.wqs if w.refs.get("sk") is sk]:
            if wq.live and not wq.pinned:
                with self.rt.function(ctx, "sock_free_wq", "net/socket.c", 640):
                    self.rt.write(ctx, wq, "flags")
                    self.rt.delete_object(ctx, wq)
                self.wqs.remove(wq)
        return True

    # ------------------------------------------------------------------
    # Boot
    # ------------------------------------------------------------------

    def boot(self, sockets: int = 6) -> None:
        """Bring up the devices and pre-open a socket pool."""
        ctx = self.boot_ctx
        for name in DEFAULT_DEVICES:
            self.new_netdev(ctx, name)
        for _ in range(sockets):
            sk = self.new_sock(ctx)
            self.rt.run(self.sock_register(ctx, sk))

    # ------------------------------------------------------------------
    # Lock helpers (lock_sock / release_sock idiom)
    # ------------------------------------------------------------------

    def lock_sock(self, ctx: ExecutionContext, sk: KObject) -> Generator:
        yield from self.rt.down(ctx, sk.lock("sk_lock"))

    def release_sock(self, ctx: ExecutionContext, sk: KObject) -> None:
        self.rt.up(ctx, sk.lock("sk_lock"))

    # ------------------------------------------------------------------
    # High-level kernel entry points (generators)
    # ------------------------------------------------------------------

    def sock_register(self, ctx: ExecutionContext, sk: KObject) -> Generator:
        """Publish a sock: family-list insert under the global
        ``net_family_lock``, callback pointers under ``sk_callback_lock``."""
        rt = self.rt
        family_lock = rt.static_lock("net_family_lock", "spinlock_t")
        with pinned(sk), rt.function(ctx, "sk_add_node", "net/core/sock.c", 2600):
            yield from rt.spin_lock(ctx, family_lock)
            rt.write(ctx, sk, "sk_node", line=2604)
            rt.spin_unlock(ctx, family_lock)
            yield from rt.write_lock(ctx, sk.lock("sk_callback_lock"))
            rt.write(ctx, sk, "sk_socket", line=2610)
            rt.write(ctx, sk, "sk_wq", line=2611)
            rt.write_unlock(ctx, sk.lock("sk_callback_lock"))

    def sock_create(self, ctx: ExecutionContext) -> Generator:
        """``socket(2)``: allocate, then connect — state moves under the
        owner lock."""
        rt = self.rt
        sk = self.new_sock(ctx)
        yield from self.sock_register(ctx, sk)
        with pinned(sk), rt.function(ctx, "tcp_connect", "net/ipv4/tcp_output.c", 3880):
            yield from self.lock_sock(ctx, sk)
            rt.write(ctx, sk, "sk_state", value="TCP_ESTABLISHED", line=3890)
            rt.read(ctx, sk, "sk_err", line=3891)
            self.release_sock(ctx, sk)
        return sk

    def sock_sendmsg(self, ctx: ExecutionContext, sk: KObject) -> Generator:
        """``sendmsg(2)``: owner lock, skb fill, tx-queue append, then a
        loopback transmit that charges the device stats."""
        rt = self.rt
        if not sk.live:
            return
        with pinned(sk), rt.function(ctx, "sock_sendmsg", "net/socket.c", 730):
            yield from self.lock_sock(ctx, sk)
            rt.read(ctx, sk, "sk_sndbuf", line=738)
            skb = self.new_skb(ctx, sk)
            with pinned(skb):
                # Payload geometry under the owner lock (EO rule).
                rt.write(ctx, skb, "len", line=745)
                rt.write(ctx, skb, "data_len", line=746)
                rt.write(ctx, skb, "tail", line=747)
                yield from rt.spin_lock_bh(ctx, sk.lock("sk_write_queue.lock"))
                rt.write(ctx, sk, "sk_write_queue.next", line=752)
                rt.write(ctx, sk, "sk_write_queue.prev", line=753)
                rt.write(ctx, sk, "sk_write_queue.qlen", line=754)
                rt.spin_unlock_bh(ctx, sk.lock("sk_write_queue.lock"))
                self.release_sock(ctx, sk)
                yield from self._dev_xmit(ctx, skb)

    def _dev_xmit(self, ctx: ExecutionContext, skb: KObject) -> Generator:
        """Loopback transmit: per-cpu-style stats, lock-free."""
        rt = self.rt
        if not self.devices:
            return
        dev = skb.refs.get("dev") or self.rng.choice(self.devices)
        with pinned(dev), rt.function(ctx, "dev_queue_xmit", "net/core/dev.c", 4210):
            yield None
            rt.write(ctx, dev, "tx_packets", line=4215)
            rt.write(ctx, dev, "tx_bytes", line=4216)

    def sock_setsockopt(self, ctx: ExecutionContext, sk: KObject) -> Generator:
        """``setsockopt(2)``: buffer-limit writes under the owner lock —
        except every 12th call, which takes the planted unlocked fast
        path (the ``sock.sk_sndbuf`` write deviation)."""
        rt = self.rt
        if not sk.live:
            return
        self._setsockopt_calls += 1
        deviant = self._setsockopt_calls % 12 == 0
        with pinned(sk), rt.function(ctx, "sock_setsockopt", "net/core/sock.c", 1040):
            yield None
            if deviant:
                rt.write(ctx, sk, "sk_sndbuf", line=1052)
            else:
                yield from self.lock_sock(ctx, sk)
                rt.write(ctx, sk, "sk_sndbuf", line=1060)
                rt.write(ctx, sk, "sk_rcvbuf", line=1061)
                rt.write(ctx, sk, "sk_sndtimeo", line=1062)
                self.release_sock(ctx, sk)

    def sock_recvmsg(
        self, ctx: ExecutionContext, sk: KObject, datagram: bool = False
    ) -> Generator:
        """``recvmsg(2)``: owner lock, rx-queue pop under the bh
        spinlock, payload reads, skb free.

        With ``datagram=True`` the UDP-style path runs instead: the
        dequeue takes only the queue spinlock (no ``lock_sock``), and
        payload reads happen lock-free — the dequeued skb is
        thread-owned by refcount, the classic ownership-transfer idiom
        the benchmark mix never exercises (fuzzing finds it)."""
        rt = self.rt
        if not sk.live:
            return
        if datagram:
            with pinned(sk), rt.function(
                ctx, "skb_recv_datagram", "net/core/datagram.c", 300
            ):
                yield None
                rt.read(ctx, sk, "sk_rcvtimeo", line=306)  # READ_ONCE
                yield from rt.spin_lock_bh(ctx, sk.lock("sk_receive_queue.lock"))
                rt.read(ctx, sk, "sk_receive_queue.next", line=308)
                rt.write(ctx, sk, "sk_receive_queue.next", line=309)
                rt.write(ctx, sk, "sk_receive_queue.qlen", line=310)
                rt.spin_unlock_bh(ctx, sk.lock("sk_receive_queue.lock"))
                skb = self._queued_skb(sk)
                if skb is not None:
                    with pinned(skb):
                        # Unlinked skb is thread-owned: lock-free reads.
                        rt.read(ctx, skb, "len", line=318)
                        rt.read(ctx, skb, "data", line=319)
                    self.destroy_skb(ctx, skb)
            return
        with pinned(sk), rt.function(ctx, "sock_recvmsg", "net/socket.c", 960):
            yield from self.lock_sock(ctx, sk)
            yield from rt.spin_lock_bh(ctx, sk.lock("sk_receive_queue.lock"))
            rt.read(ctx, sk, "sk_receive_queue.next", line=968)
            rt.read(ctx, sk, "sk_receive_queue.qlen", line=969)
            rt.write(ctx, sk, "sk_receive_queue.next", line=970)
            rt.write(ctx, sk, "sk_receive_queue.qlen", line=971)
            rt.spin_unlock_bh(ctx, sk.lock("sk_receive_queue.lock"))
            skb = self._queued_skb(sk)
            if skb is not None:
                with pinned(skb):
                    rt.read(ctx, skb, "len", line=976)
                    rt.read(ctx, skb, "data_len", line=977)
                    rt.read(ctx, skb, "data", line=978)
            self.release_sock(ctx, sk)
            if skb is not None:
                self.destroy_skb(ctx, skb)

    def _queued_skb(self, sk: KObject) -> Optional[KObject]:
        pool = [s for s in self.skbs if s.live and s.refs.get("sk") is sk]
        if not pool:
            return None
        return self.rng.choice(pool)

    def sock_close(self, ctx: ExecutionContext, sk: KObject) -> Generator:
        """``close(2)``: shutdown under the owner lock, callback teardown
        under the rwlock, family-list removal, then free."""
        rt = self.rt
        if not sk.live:
            return
        family_lock = rt.static_lock("net_family_lock", "spinlock_t")
        with pinned(sk):
            with rt.function(ctx, "sock_close", "net/socket.c", 1320):
                yield from self.lock_sock(ctx, sk)
                rt.write(ctx, sk, "sk_state", value="TCP_CLOSE", line=1327)
                rt.write(ctx, sk, "sk_shutdown", line=1328)
                self.release_sock(ctx, sk)
                yield from rt.write_lock(ctx, sk.lock("sk_callback_lock"))
                rt.write(ctx, sk, "sk_socket", line=1333)
                rt.write(ctx, sk, "sk_wq", line=1334)
                rt.write_unlock(ctx, sk.lock("sk_callback_lock"))
                yield from rt.spin_lock(ctx, family_lock)
                rt.write(ctx, sk, "sk_node", line=1338)
                rt.spin_unlock(ctx, family_lock)
        for skb in [s for s in self.skbs if s.refs.get("sk") is sk]:
            self.destroy_skb(ctx, skb)
        self.destroy_sock(ctx, sk)

    def sock_poll(
        self, ctx: ExecutionContext, sk: KObject, busy: bool = False
    ) -> Generator:
        """``poll(2)``: RCU peek at the wait queue flags plus a locked
        queue-length read.

        ``busy=True`` adds the busy-poll tail: lock-free ``READ_ONCE``
        reads of the connection state, as ``tcp_poll`` does — another
        path only the fuzzer reaches."""
        rt = self.rt
        if not sk.live:
            return
        wq = next((w for w in self.wqs if w.live and w.refs.get("sk") is sk), None)
        with pinned(sk), rt.function(ctx, "sock_poll", "net/socket.c", 1180):
            yield None
            if wq is not None:
                with pinned(wq):
                    rt.rcu_read_lock(ctx)
                    rt.read(ctx, wq, "flags", line=1186)
                    rt.rcu_read_unlock(ctx)
            yield from rt.spin_lock_bh(ctx, sk.lock("sk_receive_queue.lock"))
            rt.read(ctx, sk, "sk_receive_queue.qlen", line=1191)
            rt.spin_unlock_bh(ctx, sk.lock("sk_receive_queue.lock"))
            if busy:
                with rt.function(ctx, "tcp_poll", "net/ipv4/tcp.c", 510):
                    rt.read(ctx, sk, "sk_state", line=516)
                    rt.read(ctx, sk, "sk_err", line=517)

    def sock_fasync(self, ctx: ExecutionContext, sk: KObject) -> Generator:
        """``fcntl(F_SETFL, O_ASYNC)``: owner lock, then the callback
        rwlock write-side around the fasync list surgery — a nested
        lockset no synthesized op produces."""
        rt = self.rt
        if not sk.live:
            return
        wq = next((w for w in self.wqs if w.live and w.refs.get("sk") is sk), None)
        if wq is None:
            return
        with pinned(sk, wq), rt.function(ctx, "sock_fasync", "net/socket.c", 1420):
            yield from self.lock_sock(ctx, sk)
            yield from rt.write_lock(ctx, sk.lock("sk_callback_lock"))
            rt.read(ctx, wq, "fasync_list", line=1428)
            rt.write(ctx, wq, "fasync_list", line=1429)
            rt.write(ctx, wq, "flags", line=1430)
            rt.write_unlock(ctx, sk.lock("sk_callback_lock"))
            self.release_sock(ctx, sk)

    def tcp_retransmit(self, ctx: ExecutionContext, sk: KObject) -> Generator:
        """Retransmit probe: walk the tx queue under owner lock + queue
        spinlock, peeking at in-flight skb payload while both are held."""
        rt = self.rt
        if not sk.live:
            return
        with pinned(sk), rt.function(
            ctx, "tcp_retransmit_skb", "net/ipv4/tcp_output.c", 3330
        ):
            yield from self.lock_sock(ctx, sk)
            yield from rt.spin_lock_bh(ctx, sk.lock("sk_write_queue.lock"))
            rt.read(ctx, sk, "sk_write_queue.next", line=3340)
            rt.read(ctx, sk, "sk_write_queue.prev", line=3341)
            rt.read(ctx, sk, "sk_write_queue.qlen", line=3342)
            skb = self._queued_skb(sk)
            if skb is not None:
                rt.read(ctx, skb, "len", line=3345)
                rt.read(ctx, skb, "data_len", line=3346)
                rt.read(ctx, skb, "truesize", line=3347)
            rt.spin_unlock_bh(ctx, sk.lock("sk_write_queue.lock"))
            self.release_sock(ctx, sk)

    def sock_diag_dump(self, ctx: ExecutionContext) -> Generator:
        """Diag-style dump: walk the family list under the global lock,
        reading each sock's identity fields while it is held."""
        rt = self.rt
        live = [s for s in self.socks if s.live][:3]
        if not live:
            return
        family_lock = rt.static_lock("net_family_lock", "spinlock_t")
        with pinned(*live), rt.function(
            ctx, "sock_diag_dump", "net/core/sock_diag.c", 180
        ):
            yield from rt.spin_lock(ctx, family_lock)
            for sk in live:
                rt.read(ctx, sk, "sk_family", line=188)
                rt.read(ctx, sk, "sk_state", line=189)
            rt.spin_unlock(ctx, family_lock)

    def dev_set_mtu(self, ctx: ExecutionContext) -> Generator:
        """MTU reconfiguration under rtnl, reading the device state it
        depends on while the mutex is held."""
        rt = self.rt
        if not self.devices:
            return
        dev = self.rng.choice(self.devices)
        rtnl = rt.static_lock("rtnl_mutex", "mutex")
        with pinned(dev), rt.function(ctx, "dev_set_mtu", "net/core/dev.c", 8860):
            yield from rt.mutex_lock(ctx, rtnl)
            rt.read(ctx, dev, "flags", line=8868)
            rt.read(ctx, dev, "features", line=8869)
            rt.write(ctx, dev, "mtu", line=8870)
            rt.mutex_unlock(ctx, rtnl)

    def sock_wake_async(self, ctx: ExecutionContext, sk: KObject) -> Generator:
        """Wakeup delivery: the read side of ``sk_callback_lock`` (the
        benchmark mix only ever write-locks it) plus an RCU peek at the
        wait-queue head."""
        rt = self.rt
        if not sk.live:
            return
        wq = next((w for w in self.wqs if w.live and w.refs.get("sk") is sk), None)
        with pinned(sk), rt.function(ctx, "sock_wake_async", "net/core/sock.c", 3010):
            yield from rt.read_lock(ctx, sk.lock("sk_callback_lock"))
            rt.read(ctx, sk, "sk_socket", line=3015)
            rt.read(ctx, sk, "sk_wq", line=3016)
            rt.read(ctx, sk, "sk_err", line=3017)  # error-report callback
            rt.read_unlock(ctx, sk.lock("sk_callback_lock"))
            if wq is not None:
                with pinned(wq):
                    rt.rcu_read_lock(ctx)
                    rt.read(ctx, wq, "flags", line=3021)
                    rt.rcu_read_unlock(ctx)

    def netif_receive(self, ctx: ExecutionContext) -> Generator:
        """Softirq-side packet delivery: allocate an skb, link it into a
        random sock's receive queue under the bh spinlock, charge the
        device rx stats.  Runs as a scheduler softirq source body."""
        rt = self.rt
        live = [s for s in self.socks if s.live]
        if not live or not self.devices:
            return
        sk = self.rng.choice(live)
        dev = self.rng.choice(self.devices)
        with pinned(sk, dev):
            with rt.function(ctx, "netif_receive_skb", "net/core/dev.c", 5630):
                skb = self.new_skb(ctx, sk)
                with pinned(skb):
                    yield from rt.spin_lock_bh(ctx, sk.lock("sk_receive_queue.lock"))
                    rt.write(ctx, sk, "sk_receive_queue.next", line=5640)
                    rt.write(ctx, sk, "sk_receive_queue.prev", line=5641)
                    rt.write(ctx, sk, "sk_receive_queue.qlen", line=5642)
                    rt.write(ctx, skb, "next", line=5643)
                    rt.write(ctx, skb, "prev", line=5644)
                    rt.spin_unlock_bh(ctx, sk.lock("sk_receive_queue.lock"))
                    rt.write(ctx, dev, "rx_packets", line=5648)
                    rt.write(ctx, dev, "rx_bytes", line=5649)

    def dev_ioctl(self, ctx: ExecutionContext) -> Generator:
        """Device reconfiguration: rtnl-write / RCU-read discipline."""
        rt = self.rt
        if not self.devices:
            return
        dev = self.rng.choice(self.devices)
        rtnl = rt.static_lock("rtnl_mutex", "mutex")
        with pinned(dev):
            if self.rng.random() < 0.5:
                self._flag_writes += 1
                with rt.function(ctx, "dev_change_flags", "net/core/dev.c", 8740):
                    if self._flag_writes % 13 == 0:
                        # Planted bug: a notifier fast path flips the
                        # flags without taking the rtnl mutex.
                        yield None
                        rt.write(ctx, dev, "flags", line=8752)
                        return
                    yield from rt.mutex_lock(ctx, rtnl)
                    rt.write(ctx, dev, "flags", line=8745)
                    rt.write(ctx, dev, "state", line=8746)
                    rt.mutex_unlock(ctx, rtnl)
            else:
                with rt.function(ctx, "dev_get_flags", "net/core/dev.c", 8700):
                    yield None
                    rt.rcu_read_lock(ctx)
                    rt.read(ctx, dev, "flags", line=8705)
                    rt.read(ctx, dev, "mtu", line=8706)
                    rt.rcu_read_unlock(ctx)

    # ------------------------------------------------------------------
    # Spec-driven long-tail coverage
    # ------------------------------------------------------------------

    def exercise(
        self, ctx: ExecutionContext, type_name: str, obj: KObject
    ) -> Generator:
        """Run one synthesized spec op on *obj* (long-tail coverage)."""
        op = self.engine.pick_op(type_name)
        if op is None:
            return
        yield from self.engine.run_op(ctx, obj, op)

    def _pool_of(self, type_name: str) -> List[Optional[KObject]]:
        if type_name == "sock":
            return self.socks
        if type_name == "sk_buff":
            return self.skbs
        if type_name == "socket_wq":
            return self.wqs
        if type_name == "net_device":
            return self.devices
        return []

    def random_object(self, type_name: str) -> Optional[KObject]:
        """A random live object of *type_name* (None if none exist)."""
        pool = [o for o in self._pool_of(type_name) if o is not None and o.live]
        if not pool:
            return None
        return self.rng.choice(pool)
