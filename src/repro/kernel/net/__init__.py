"""Simulated networking subsystem (sock / sk_buff slice).

A second traced subsystem next to :mod:`repro.kernel.vfs`: four
observed data types (``sock``, ``sk_buff``, ``socket_wq``,
``net_device``) with their own struct layouts, ground-truth locking
spec, and a :class:`~repro.kernel.net.world.NetWorld` driving the
shared runtime/tracer/scheduler.  The locking idioms are deliberately
different from anything in the VFS slice: ``sk_lock`` is a sleeping
owner semaphore, receive queues use ``_bh``-flavored spinlocks,
``net_device`` configuration is RCU-read / rtnl-write.
"""

from repro.kernel.net.groundtruth import (  # noqa: F401
    build_net_filter_config,
    build_net_specs,
)
from repro.kernel.net.layouts import build_net_struct_registry  # noqa: F401
from repro.kernel.net.world import NetWorld  # noqa: F401
