"""The VFS world: object lifecycle and high-level file operations.

:class:`VfsWorld` owns the simulated kernel's object graph — super
blocks (one per mounted filesystem type), inodes with their filesystem
subclass, dentries, buffer heads, the ext4 journal, pipes, character
and block devices — and provides the kernel-entry-point functions the
workloads drive (``vfs_create``, ``vfs_write``, ``vfs_rename``, ...).

Object constructors run inside the init/teardown functions of
:data:`repro.kernel.vfs.groundtruth.INIT_TEARDOWN_FUNCTIONS`, writing
initial member values without locks; the importer filters those
accesses exactly as the paper does (Sec. 5.3, item 2).
"""

from __future__ import annotations

import random
from typing import Dict, Generator, List, Optional

from repro.kernel.context import ExecutionContext
from repro.kernel.runtime import KernelRuntime, KObject, pinned
from repro.kernel.vfs import bufferhead, dentry as dops, inode as iops, jbd2
from repro.kernel.vfs.groundtruth import INODE_SUBCLASSES, build_all_specs
from repro.kernel.vfs.layouts import build_struct_registry
from repro.kernel.vfs.ops import OpEngine
from repro.kernel.vfs.spec import TypeSpec

#: Which filesystem types get mounted by default, mapping to the inode
#: subclass their inodes carry.
DEFAULT_FILESYSTEMS = list(INODE_SUBCLASSES)


class VfsWorld:
    """The simulated kernel's living object graph."""

    def __init__(
        self,
        runtime: Optional[KernelRuntime] = None,
        seed: int = 0,
        specs: Optional[Dict[str, TypeSpec]] = None,
    ) -> None:
        self.rt = runtime or KernelRuntime(build_struct_registry())
        self.rng = random.Random(seed)
        self.specs = specs or build_all_specs()
        self.engine = OpEngine(
            self.rt, self.specs, random.Random(seed + 1), combo_rate=0.0
        )
        self.boot_ctx = self.rt.new_task("swapper/0")
        self.supers: Dict[str, KObject] = {}
        self.bdis: Dict[str, KObject] = {}
        self.root_inodes: Dict[str, KObject] = {}
        self.root_dentries: Dict[str, KObject] = {}
        self.inodes: Dict[str, List[KObject]] = {}
        self.dentries: List[KObject] = []
        self.buffer_heads: List[KObject] = []
        self.pipes: List[KObject] = []
        self.cdevs: List[KObject] = []
        self.bdevs: List[KObject] = []
        self.journal: Optional[KObject] = None
        self.transactions: List[KObject] = []
        self.journal_heads: List[KObject] = []
        # Inode hash chains, bucketed per filesystem: adjacency in a
        # chain (and thus neighbour writes on unhash) stays fs-local.
        self.hash_chains: Dict[str, List[List[KObject]]] = {}

    # ------------------------------------------------------------------
    # Object constructors (init functions -> filtered accesses)
    # ------------------------------------------------------------------

    def new_bdi(self, ctx: ExecutionContext, name: str) -> KObject:
        with self.rt.function(ctx, "bdi_alloc", "mm/backing-dev.c", 880):
            bdi = self.rt.new_object(ctx, "backing_dev_info")
            for member in ("name", "ra_pages", "min_ratio", "max_ratio", "wb.state"):
                self.rt.write(ctx, bdi, member)
            bdi.values["name"] = name
        return bdi

    def new_super(self, ctx: ExecutionContext, fstype: str) -> KObject:
        bdi = self.new_bdi(ctx, f"bdi-{fstype}")
        with self.rt.function(ctx, "alloc_super", "fs/super.c", 190):
            sb = self.rt.new_object(ctx, "super_block")
            for member in ("s_type", "s_blocksize", "s_magic", "s_id", "s_flags",
                           "s_maxbytes", "s_op", "s_bdi"):
                self.rt.write(ctx, sb, member)
            sb.refs["s_bdi"] = bdi
            sb.values["fstype"] = fstype
        self.supers[fstype] = sb
        self.bdis[fstype] = bdi
        self.inodes.setdefault(fstype, [])
        self.hash_chains.setdefault(fstype, [[] for _ in range(4)])
        return sb

    def new_inode(
        self,
        ctx: ExecutionContext,
        fstype: str,
        directory: Optional[KObject] = None,
    ) -> KObject:
        sb = self.supers[fstype]
        with self.rt.function(ctx, "alloc_inode", "fs/inode.c", 230):
            inode = self.rt.new_object(ctx, "inode", subclass=fstype)
            with self.rt.function(ctx, "inode_init_always", "fs/inode.c", 140):
                for member in ("i_ino", "i_sb", "i_mode", "i_state",
                               "i_data.host", "i_flags"):
                    self.rt.write(ctx, inode, member)
            inode.refs["i_sb"] = sb
            inode.refs["i_bdi"] = sb.refs["s_bdi"]
            if directory is not None:
                inode.refs["i_dir"] = directory
            inode.values["i_ino"] = self.rng.getrandbits(32)
        self.inodes[fstype].append(inode)
        return inode

    def new_dentry(
        self,
        ctx: ExecutionContext,
        inode: KObject,
        parent: Optional[KObject] = None,
    ) -> KObject:
        sb = inode.refs["i_sb"]
        with self.rt.function(ctx, "d_alloc", "fs/dcache.c", 1760):
            d = self.rt.new_object(ctx, "dentry")
            for member in ("d_name", "d_iname", "d_flags", "d_inode", "d_sb",
                           "d_parent"):
                self.rt.write(ctx, d, member)
            d.refs["d_inode"] = inode
            d.refs["d_sb"] = sb
            # Root dentries carry no parent ref: ops that need the
            # parent's lock bail out, like kernel code checking IS_ROOT().
            if parent is not None:
                d.refs["d_parent"] = parent
        self.dentries.append(d)
        return d

    def new_buffer_head(self, ctx: ExecutionContext, inode: KObject) -> KObject:
        with self.rt.function(ctx, "alloc_buffer_head", "fs/buffer.c", 3340):
            bh = self.rt.new_object(ctx, "buffer_head")
            for member in ("b_state", "b_size", "b_blocknr", "b_bdev", "b_data"):
                self.rt.write(ctx, bh, member)
            bh.refs["b_assoc_map"] = inode
        self.buffer_heads.append(bh)
        return bh

    def new_journal(self, ctx: ExecutionContext, fstype: str = "ext4") -> KObject:
        with self.rt.function(ctx, "journal_init_common", "fs/jbd2/journal.c", 1150):
            journal = self.rt.new_object(ctx, "journal_t")
            for member in ("j_flags", "j_blocksize", "j_maxlen", "j_head",
                           "j_tail", "j_free", "j_commit_interval"):
                self.rt.write(ctx, journal, member)
        self.journal = journal
        return journal

    def new_transaction(self, ctx: ExecutionContext) -> KObject:
        assert self.journal is not None, "journal must exist first"
        with self.rt.function(ctx, "jbd2_journal_init_transaction",
                              "fs/jbd2/transaction.c", 60):
            txn = self.rt.new_object(ctx, "transaction_t")
            for member in ("t_journal", "t_tid", "t_state", "t_start_time"):
                self.rt.write(ctx, txn, member)
            txn.refs["t_journal"] = self.journal
        self.transactions.append(txn)
        return txn

    def new_journal_head(self, ctx: ExecutionContext, bh: KObject) -> KObject:
        assert self.journal is not None, "journal must exist first"
        with self.rt.function(ctx, "journal_alloc_journal_head",
                              "fs/jbd2/journal.c", 2450):
            jh = self.rt.new_object(ctx, "journal_head")
            for member in ("b_bh", "b_jcount", "b_jlist"):
                self.rt.write(ctx, jh, member)
            jh.refs["b_bh"] = bh
            jh.refs["b_journal"] = self.journal
        self.journal_heads.append(jh)
        return jh

    def new_pipe(self, ctx: ExecutionContext) -> KObject:
        with self.rt.function(ctx, "alloc_pipe_info", "fs/pipe.c", 780):
            pipe = self.rt.new_object(ctx, "pipe_inode_info")
            for member in ("buffers", "readers", "writers", "bufs", "user"):
                self.rt.write(ctx, pipe, member)
        self.pipes.append(pipe)
        return pipe

    def new_cdev(self, ctx: ExecutionContext) -> KObject:
        with self.rt.function(ctx, "cdev_alloc", "fs/char_dev.c", 580):
            cdev = self.rt.new_object(ctx, "cdev")
            for member in ("kobj", "owner", "ops", "dev"):
                self.rt.write(ctx, cdev, member)
        self.cdevs.append(cdev)
        return cdev

    def new_block_device(self, ctx: ExecutionContext, fstype: str = "bdev") -> KObject:
        bdi = self.bdis.get(fstype) or next(iter(self.bdis.values()))
        with self.rt.function(ctx, "bdev_alloc", "fs/block_dev.c", 900):
            bdev = self.rt.new_object(ctx, "block_device")
            for member in ("bd_dev", "bd_inode", "bd_block_size", "bd_partno",
                           "bd_disk"):
                self.rt.write(ctx, bdev, member)
            bdev.refs["bd_bdi"] = bdi
        self.bdevs.append(bdev)
        return bdev

    # ------------------------------------------------------------------
    # Destructors (teardown functions -> filtered accesses)
    # ------------------------------------------------------------------

    def _destroyable(self, obj: KObject) -> bool:
        """An object may be freed only when nothing references it: no
        pins (refcount model) and no embedded lock held."""
        if not obj.live or obj.pinned:
            return False
        return all(lock.is_free() for lock in obj.locks.values())

    def destroy_inode(self, ctx: ExecutionContext, inode: KObject) -> bool:
        if not self._destroyable(inode):
            return False
        with self.rt.function(ctx, "destroy_inode", "fs/inode.c", 280):
            self.rt.write(ctx, inode, "i_state")
            self.rt.write(ctx, inode, "i_hash")
            self.rt.delete_object(ctx, inode)
        fstype = inode.subclass or ""
        if fstype in self.inodes and inode in self.inodes[fstype]:
            self.inodes[fstype].remove(inode)
        for chain in self.hash_chains.get(fstype, []):
            if inode in chain:
                chain.remove(inode)
        return True

    def destroy_dentry(self, ctx: ExecutionContext, d: KObject) -> None:
        with self.rt.function(ctx, "dentry_free", "fs/dcache.c", 320):
            self.rt.write(ctx, d, "d_flags")
            self.rt.delete_object(ctx, d)
        if d in self.dentries:
            self.dentries.remove(d)

    def destroy_buffer_head(self, ctx: ExecutionContext, bh: KObject) -> bool:
        if not self._destroyable(bh):
            return False
        with self.rt.function(ctx, "free_buffer_head", "fs/buffer.c", 3360):
            self.rt.write(ctx, bh, "b_state")
            self.rt.delete_object(ctx, bh)
        if bh in self.buffer_heads:
            self.buffer_heads.remove(bh)
        return True

    # ------------------------------------------------------------------
    # Boot
    # ------------------------------------------------------------------

    def boot(self, filesystems: Optional[List[str]] = None) -> None:
        """Mount the filesystems and create the initial object graph.

        Runs in the boot task; everything here happens before the
        workloads start (and the constructors' accesses are filtered as
        init-phase accesses anyway).
        """
        ctx = self.boot_ctx
        filesystems = filesystems if filesystems is not None else DEFAULT_FILESYSTEMS
        for fstype in filesystems:
            self.new_super(ctx, fstype)
            root = self.new_inode(ctx, fstype, directory=None)
            self.root_inodes[fstype] = root
            self.root_dentries[fstype] = self.new_dentry(ctx, root, parent=None)
        if "ext4" in self.supers:
            self.new_journal(ctx)
            for _ in range(3):
                self.new_transaction(ctx)
        if "bdev" in self.supers:
            for _ in range(2):
                self.new_block_device(ctx)
        for _ in range(2):
            self.new_cdev(ctx)
        # Pre-populate a small inode pool per filesystem so read-mostly
        # subclasses (proc, sockfs, ...) have live objects without the
        # workloads ever running creation paths on them.
        for fstype in filesystems:
            for _ in range(5):
                self.new_inode(ctx, fstype, directory=self.root_inodes[fstype])

    # ------------------------------------------------------------------
    # High-level kernel entry points (generators)
    # ------------------------------------------------------------------

    def vfs_create(
        self, ctx: ExecutionContext, fstype: str, directory: Optional[KObject] = None
    ) -> Generator:
        """Create a file: allocate inode + dentry, hash the inode, set
        up ops tables under the parent directory's ``i_rwsem``."""
        rt = self.rt
        directory = directory or self.root_inodes[fstype]
        with rt.function(ctx, "vfs_create", "fs/namei.c", 3000):
            yield from rt.down_write(ctx, directory.lock("i_rwsem"))
            inode = self.new_inode(ctx, fstype, directory=directory)
            d = self.new_dentry(ctx, inode, parent=self.root_dentries[fstype])
            # Publishing the inode in the dir: parent's rwsem held (EO
            # rule for the ops group).
            rt.write(ctx, inode, "i_op", line=3010)
            rt.write(ctx, inode, "i_fop", line=3011)
            rt.write(ctx, inode, "i_private", line=3012)
            # The new inode stays pinned until it is hashed; a concurrent
            # unlink must not free it under our feet.
            with pinned(inode):
                rt.up_write(ctx, directory.lock("i_rwsem"))
                yield from iops.insert_inode_hash(rt, ctx, inode)
        chain = self.rng.choice(self.hash_chains[fstype])
        chain.append(inode)
        return

    def vfs_unlink(self, ctx: ExecutionContext, fstype: str) -> Generator:
        """Remove a random file of *fstype*: unhash + destroy."""
        roots = set(self.root_inodes.values())
        pool = [i for i in self.inodes.get(fstype, []) if i.live
                and i not in roots]
        if len(pool) < 2:
            return
        rt = self.rt
        victim = self.rng.choice(pool)
        directory = victim.refs.get("i_dir") or self.root_inodes[fstype]
        with pinned(victim):
            with rt.function(ctx, "vfs_unlink", "fs/namei.c", 4010):
                yield from rt.down_write(ctx, directory.lock("i_rwsem"))
                if victim.live:
                    # Unhashing touches a neighbour's pointer only when
                    # the victim is not alone in its chain bucket; model
                    # the observed adjacency rate directly.
                    neighbors = self._hash_neighbors(victim)[:1]
                    if self.rng.random() >= 0.15:
                        neighbors = []
                    yield from iops.remove_inode_hash(rt, ctx, victim, neighbors)
                rt.up_write(ctx, directory.lock("i_rwsem"))
        self.destroy_inode(ctx, victim)

    def _hash_neighbors(self, inode: KObject) -> List[KObject]:
        for chain in self.hash_chains.get(inode.subclass or "", []):
            if inode in chain:
                index = chain.index(inode)
                neighbors = []
                if index > 0:
                    neighbors.append(chain[index - 1])
                if index + 1 < len(chain):
                    neighbors.append(chain[index + 1])
                return neighbors
        return []

    def vfs_write(self, ctx: ExecutionContext, inode: KObject) -> Generator:
        """Write to a file: size update, accounting, dirtying, and —
        for ext4 — journalling through buffer heads."""
        rt = self.rt
        if not inode.live:
            return
        with pinned(inode), rt.function(ctx, "vfs_write", "fs/read_write.c", 540):
            yield from iops.i_size_write(rt, ctx, inode)
            locked = not (
                inode.subclass in ("ext4", "rootfs", "tmpfs", "sysfs")
                and self.rng.random() < 0.065
            )
            yield from iops.inode_add_bytes(rt, ctx, inode, locked=locked)
            yield from iops.mark_inode_dirty(rt, ctx, inode)
            if inode.subclass == "ext4" and self.journal is not None:
                if self.buffer_heads and self.rng.random() < 0.7:
                    bh = self.rng.choice(self.buffer_heads)
                    if bh.live:
                        with pinned(bh):
                            yield from bufferhead.mark_buffer_dirty(
                                rt, ctx, bh, locked=self.rng.random() > 0.07
                            )
                if self.transactions and self.rng.random() < 0.5:
                    txn = self.rng.choice(self.transactions)
                    if txn.live:
                        yield from jbd2.jbd2_journal_start(rt, ctx, self.journal, txn)

    def vfs_read(self, ctx: ExecutionContext, inode: KObject) -> Generator:
        """Read a file: size read, buffer touching."""
        rt = self.rt
        if not inode.live:
            return
        with pinned(inode), rt.function(ctx, "vfs_read", "fs/read_write.c", 450):
            yield from iops.i_size_read(rt, ctx, inode)
            if self.buffer_heads and self.rng.random() < 0.05:
                bh = self.rng.choice(self.buffer_heads)
                if bh.live:
                    with pinned(bh):
                        yield from bufferhead.touch_buffer(rt, ctx, bh)

    def vfs_rename(self, ctx: ExecutionContext) -> Generator:
        """Rename a dentry (rename_lock + d_lock); a rename that stays
        within a directory only rehashes."""
        live = [d for d in self.dentries if d.live]
        if not live:
            return
        d = self.rng.choice(live)
        if self.rng.random() < 0.3:
            yield from dops.d_rehash(self.rt, ctx, d)
        else:
            yield from dops.d_move(self.rt, ctx, d)

    def exercise(
        self, ctx: ExecutionContext, type_name: str, obj: KObject
    ) -> Generator:
        """Run one synthesized spec op on *obj* (long-tail coverage)."""
        spec = self.specs[type_name]
        profile = None
        skip_scale = 1.0
        if spec.subclass_profiles is not None and obj.subclass:
            profile = spec.subclass_profiles.get(obj.subclass)
            if profile is None:
                return
            skip_scale = profile.get("_skips", 1.0)
            # "_rate" is the absolute probability that this subclass is
            # exercised at all — without it, a near-zero profile would
            # still funnel every call into its one remaining group.
            if self.rng.random() >= profile.get("_rate", 1.0):
                return
        op = self.engine.pick_op(type_name, profile)
        if op is None:
            return
        yield from self.engine.run_op(
            ctx, obj, op, skip_scale=skip_scale, profile=profile
        )

    def _pool_of(self, type_name: str) -> List[Optional[KObject]]:
        """The raw candidate pool for *type_name* (may contain dead
        objects); only the requested pool is materialized."""
        if type_name == "inode":
            return [i for pool in self.inodes.values() for i in pool]
        if type_name == "dentry":
            return self.dentries
        if type_name == "super_block":
            return list(self.supers.values())
        if type_name == "backing_dev_info":
            return list(self.bdis.values())
        if type_name == "buffer_head":
            return self.buffer_heads
        if type_name == "pipe_inode_info":
            return self.pipes
        if type_name == "cdev":
            return self.cdevs
        if type_name == "block_device":
            return self.bdevs
        if type_name == "journal_t":
            return [self.journal] if self.journal else []
        if type_name == "transaction_t":
            return self.transactions
        if type_name == "journal_head":
            return self.journal_heads
        return []

    def random_object(self, type_name: str) -> Optional[KObject]:
        """A random live object of *type_name* (None if none exist)."""
        pool = [o for o in self._pool_of(type_name) if o is not None and o.live]
        if not pool:
            return None
        return self.rng.choice(pool)
