"""Simulated VFS + JBD2 subsystem (the paper's system under test).

Provides the 11 observed data types of Tab. 6 with realistic layouts
(:mod:`repro.kernel.vfs.layouts`), a ground-truth locking specification
(:mod:`repro.kernel.vfs.groundtruth`), a spec-driven operation engine
(:mod:`repro.kernel.vfs.ops`), hand-written kernel functions for the
paper's famous cases (:mod:`repro.kernel.vfs.inode`,
:mod:`repro.kernel.vfs.bufferhead`, :mod:`repro.kernel.vfs.jbd2`,
:mod:`repro.kernel.vfs.pipe`, :mod:`repro.kernel.vfs.dentry`), and a
filesystem facade (:mod:`repro.kernel.vfs.fs`) the workloads drive.
"""

from repro.kernel.vfs.layouts import build_struct_registry
from repro.kernel.vfs.spec import LockTok, MemberSpec, TypeSpec

__all__ = ["LockTok", "MemberSpec", "TypeSpec", "build_struct_registry"]
