"""Spec-driven kernel-operation engine.

Real kernel code accesses several related members of a structure inside
one critical section.  The engine synthesizes such kernel functions
from the ground-truth spec: members sharing a ``group`` *and* an
identical lock rule are accessed together by one generated function
(one transaction), under the locks the rule prescribes.

Deviations — the injected bugs LockDoc is supposed to surface — are
realized as *deviant twin* functions: with the member's configured skip
probability, the access runs through a twin with its own function
name/line that drops the tail of the lock sequence (or all locks),
exactly like a real buggy call path would appear at a distinct source
location.

All generated functions are generators (kthread bodies); drive them
with ``yield from`` inside a scheduler thread or ``runtime.run`` for
single-context execution.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from repro.kernel.context import ExecutionContext
from repro.kernel.locks import Lock, LockClass
from repro.kernel.runtime import KernelRuntime, KObject, pinned
from repro.kernel.vfs.spec import LockTok, MemberSpec, TypeSpec


@dataclass(frozen=True)
class OpDef:
    """One synthesized kernel function."""

    type_name: str
    group: str
    access_type: str  # "r" or "w"
    members: Tuple[MemberSpec, ...]
    tokens: Tuple[LockTok, ...]
    weight: float
    func_name: str
    file: str
    line: int
    deviant_name: str
    deviant_line: int
    skip: float  # probability of running the deviant twin
    lockfree_alt: float = 0.0  # probability of the legit lock-free path


class _Released:
    """Token for the release plan recorded while acquiring."""

    __slots__ = ("kind", "lock", "mode", "flavor")

    def __init__(self, kind: str, lock: Optional[Lock], mode: str, flavor: Optional[str]):
        self.kind = kind
        self.lock = lock
        self.mode = mode
        self.flavor = flavor


class OpEngine:
    """Synthesizes and executes spec-driven operations."""

    def __init__(
        self,
        runtime: KernelRuntime,
        specs: Dict[str, TypeSpec],
        rng: Optional[random.Random] = None,
        combo_rate: float = 0.15,
    ) -> None:
        self.runtime = runtime
        self.specs = specs
        self.rng = rng or random.Random(0)
        self.combo_rate = combo_rate
        self.ops_by_type: Dict[str, List[OpDef]] = {}
        self.executed = 0
        self.deviated = 0
        for name, spec in specs.items():
            self.ops_by_type[name] = self._synthesize(spec)
        # Memoized per-(type, profile) weighted op lists and nested-op
        # candidate lists.  Both are pure functions of their inputs, so
        # caching cannot perturb the RNG draw sequence.  Keys use
        # id(profile); _profile_refs pins the dicts so ids stay unique.
        self._weighted_cache: Dict[
            Tuple[str, Optional[int]], Tuple[List[Tuple[OpDef, float]], float]
        ] = {}
        self._nested_cache: Dict[Tuple[int, Optional[int]], Optional[List[OpDef]]] = {}
        self._profile_refs: Dict[int, object] = {}

    # ------------------------------------------------------------------
    # Synthesis
    # ------------------------------------------------------------------

    def _synthesize(self, spec: TypeSpec) -> List[OpDef]:
        ops: List[OpDef] = []
        line = 100
        for group, members in sorted(spec.groups().items()):
            for access_type in ("r", "w"):
                # Bucket by (rule, skip): members only share a generated
                # function when both their lock rule *and* their deviation
                # rate agree, so per-member calibration holds exactly.
                buckets: Dict[
                    Tuple[Tuple[LockTok, ...], float], List[MemberSpec]
                ] = {}
                for member in members:
                    if member.weight_for(access_type) <= 0:
                        continue
                    rule = tuple(member.rule_spec(access_type))
                    skip = member.read_skip if access_type == "r" else member.write_skip
                    alt = member.lockfree_alt if access_type == "r" else 0.0
                    buckets.setdefault((rule, skip, alt), []).append(member)
                for index, ((rule, skip, alt), bucket) in enumerate(sorted(
                    buckets.items(), key=lambda item: str(item[0])
                )):
                    weight = sum(m.weight_for(access_type) for m in bucket)
                    if weight <= 0:
                        continue
                    skips = [skip]
                    verb = "get" if access_type == "r" else "update"
                    suffix = f"_{index}" if index else ""
                    clean_group = group.lstrip("_")
                    func = f"{spec.name}_{verb}_{clean_group}{suffix}"
                    file = _FILE_OVERRIDES.get(
                        (spec.name, group), _file_of(spec.name)
                    )
                    ops.append(
                        OpDef(
                            type_name=spec.name,
                            group=group,
                            access_type=access_type,
                            members=tuple(bucket),
                            tokens=rule,
                            weight=weight,
                            func_name=func,
                            file=file,
                            line=line,
                            deviant_name=func + "_fastpath",
                            deviant_line=line + 40,
                            skip=max(skips) if skips else 0.0,
                            lockfree_alt=alt,
                        )
                    )
                    line += 80
        return ops

    # ------------------------------------------------------------------
    # Lock plumbing
    # ------------------------------------------------------------------

    def _resolve_lock(self, obj: KObject, token: LockTok) -> Optional[Lock]:
        if token.kind == "es":
            return obj.lock(token.name)
        if token.kind == "via":
            target = obj.refs.get(token.via)
            if not isinstance(target, KObject) or not target.live:
                return None
            return target.lock(token.name)
        if token.kind == "global":
            return self.runtime.static_lock(token.name, token.lock_class)
        return None  # rcu handled separately

    def acquire(
        self, ctx: ExecutionContext, obj: KObject, token: LockTok
    ) -> Generator:
        """Acquire one lock token; yields while blocked.  Returns (via
        StopIteration value) the release record, or None if the token
        could not be resolved (dangling ``via`` reference)."""
        rt = self.runtime
        if token.kind == "rcu":
            rt.rcu_read_lock(ctx)
            return _Released("rcu", None, "r", None)
        lock = self._resolve_lock(obj, token)
        if lock is None:
            return None
        cls = lock.lock_class
        if cls is LockClass.SPINLOCK:
            if token.flavor == "irq":
                yield from rt.spin_lock_irq(ctx, lock)
            elif token.flavor == "bh":
                yield from rt.spin_lock_bh(ctx, lock)
            else:
                yield from rt.spin_lock(ctx, lock)
        elif cls is LockClass.RWLOCK:
            if token.mode == "r":
                yield from rt.read_lock(ctx, lock)
            else:
                yield from rt.write_lock(ctx, lock)
        elif cls is LockClass.MUTEX:
            yield from rt.mutex_lock(ctx, lock)
        elif cls is LockClass.RW_SEMAPHORE:
            if token.mode == "r":
                yield from rt.down_read(ctx, lock)
            else:
                yield from rt.down_write(ctx, lock)
        elif cls is LockClass.SEQLOCK:
            if token.mode == "r":
                yield from rt.read_seqbegin(ctx, lock)
            else:
                yield from rt.write_seqlock(ctx, lock)
        elif cls is LockClass.SEMAPHORE:
            yield from rt.down(ctx, lock)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unsupported lock class {cls}")
        return _Released("lock", lock, token.mode, token.flavor)

    def release(self, ctx: ExecutionContext, record: _Released) -> None:
        rt = self.runtime
        if record.kind == "rcu":
            rt.rcu_read_unlock(ctx)
            return
        lock = record.lock
        assert lock is not None
        cls = lock.lock_class
        if cls is LockClass.SPINLOCK:
            if record.flavor == "irq":
                rt.spin_unlock_irq(ctx, lock)
            elif record.flavor == "bh":
                rt.spin_unlock_bh(ctx, lock)
            else:
                rt.spin_unlock(ctx, lock)
        elif cls is LockClass.RWLOCK:
            if record.mode == "r":
                rt.read_unlock(ctx, lock)
            else:
                rt.write_unlock(ctx, lock)
        elif cls is LockClass.MUTEX:
            rt.mutex_unlock(ctx, lock)
        elif cls is LockClass.RW_SEMAPHORE:
            if record.mode == "r":
                rt.up_read(ctx, lock)
            else:
                rt.up_write(ctx, lock)
        elif cls is LockClass.SEQLOCK:
            if record.mode == "r":
                rt.read_seqend(ctx, lock)
            else:
                rt.write_sequnlock(ctx, lock)
        elif cls is LockClass.SEMAPHORE:
            rt.up(ctx, lock)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run_op(
        self,
        ctx: ExecutionContext,
        obj: KObject,
        op: OpDef,
        depth: int = 0,
        skip_scale: float = 1.0,
        profile: Optional[Dict[str, float]] = None,
    ) -> Generator:
        """Execute one synthesized kernel function on *obj*.

        *skip_scale* scales the op's deviation probability; subclass
        profiles use it to make e.g. proc/sockfs inodes deviation-free
        (zero violations in Tab. 7).
        """
        rt = self.runtime
        if not obj.live:
            return
        # Kernel code bails out on NULL back-references; ops whose `via`
        # lock target is missing are skipped entirely so they neither
        # under-lock nor pollute the observation statistics.  Targets are
        # pinned for the op's duration (refcount model).
        pins = [obj]
        for token in op.tokens:
            if token.kind == "via":
                target = obj.refs.get(token.via)
                if not isinstance(target, KObject) or not target.live:
                    return
                pins.append(target)
        deviate = op.skip > 0 and self.rng.random() < op.skip * skip_scale
        if deviate:
            name, file, line = op.deviant_name, op.file, op.deviant_line
            tokens = self._deviant_tokens(op.tokens)
            self.deviated += 1
        elif op.lockfree_alt > 0 and self.rng.random() < op.lockfree_alt:
            # The legitimate lock-free fast path (e.g. an RCU reader);
            # distinct source location, no locks, not a deviation.
            name, file, line = op.func_name + "_rcu", op.file, op.line + 60
            tokens = ()
        else:
            name, file, line = op.func_name, op.file, op.line
            tokens = op.tokens
        self.executed += 1
        with pinned(*pins), rt.function(ctx, name, file, line):
            released: List[_Released] = []
            try:
                for token in tokens:
                    record = yield from self.acquire(ctx, obj, token)
                    if record is not None:
                        released.append(record)
                for offset, member in enumerate(op.members):
                    if op.access_type == "r":
                        rt.read(ctx, obj, member.member, line=line + 1 + offset)
                    else:
                        rt.write(
                            ctx, obj, member.member,
                            value=self.rng.random(),
                            line=line + 1 + offset,
                        )
                if depth == 0 and not deviate and self.rng.random() < self.combo_rate:
                    nested = self._pick_nested(obj, op, profile)
                    if nested is not None:
                        yield from self.run_op(
                            ctx, obj, nested, depth + 1, skip_scale, profile
                        )
            finally:
                for record in reversed(released):
                    self.release(ctx, record)

    def _deviant_tokens(self, tokens: Tuple[LockTok, ...]) -> Tuple[LockTok, ...]:
        """A buggy path drops the tail lock of a multi-lock rule, or the
        only lock of a single-lock rule.  Multi-lock deviants thus still
        comply with the weaker prefix rule — they make documented full
        rules *ambivalent* without necessarily producing violations."""
        if not tokens:
            return tokens
        if len(tokens) > 1:
            return tokens[:-1]
        return ()

    def _pick_nested(
        self,
        obj: KObject,
        outer: OpDef,
        profile: Optional[Dict[str, float]] = None,
    ) -> Optional[OpDef]:
        """A compatible op to nest inside *outer* (same type, different
        group, no conflicting lock tokens, allowed by the profile).

        The candidate list is a pure function of (outer, profile), so it
        is computed once and memoized; only the weighted draw runs per
        call.  Profiles must not be mutated after first use.
        """
        profile_key = None if profile is None else id(profile)
        if profile is not None:
            self._profile_refs[profile_key] = profile
        key = (id(outer), profile_key)
        try:
            candidates = self._nested_cache[key]
        except KeyError:
            outer_locks = {(t.kind, t.name, t.via) for t in outer.tokens}
            pool = [
                op
                for op in self.ops_by_type[outer.type_name]
                if op.group != outer.group
                and not any((t.kind, t.name, t.via) in outer_locks for t in op.tokens)
                and not _sleeping_tokens(self.specs[outer.type_name], op.tokens)
                and self._profile_scale(op, profile) > 0
            ]
            # Holding a spinlock forbids nesting sleeping locks; to keep
            # things simple, atomic outer sections don't nest at all.
            candidates = None if (not pool or _atomic_tokens(outer.tokens)) else pool
            self._nested_cache[key] = candidates
        if candidates is None:
            return None
        return self._weighted_choice(candidates)

    @staticmethod
    def _profile_scale(op: OpDef, profile: Optional[Dict[str, float]]) -> float:
        if profile is None:
            return 1.0
        default = profile.get("_default", 1.0)
        scale = profile.get(op.group.lstrip("_"), profile.get(op.group, default))
        scale *= profile.get("_reads" if op.access_type == "r" else "_writes", 1.0)
        return scale

    def _weighted_choice(self, ops: Sequence[OpDef]) -> Optional[OpDef]:
        total = sum(op.weight for op in ops)
        if total <= 0:
            return None
        point = self.rng.random() * total
        acc = 0.0
        for op in ops:
            acc += op.weight
            if point <= acc:
                return op
        return ops[-1]

    def pick_op(
        self,
        type_name: str,
        profile: Optional[Dict[str, float]] = None,
    ) -> Optional[OpDef]:
        """Pick a random op for *type_name*, honoring a subclass profile.

        The scaled weight list is a pure function of (type, profile) and
        is memoized, so each call costs one RNG draw plus the weighted
        scan.  Profiles must not be mutated after first use.
        """
        profile_key = None if profile is None else id(profile)
        key = (type_name, profile_key)
        cached = self._weighted_cache.get(key)
        if cached is None:
            ops = self.ops_by_type.get(type_name, [])
            if profile is None:
                weighted = [(op, op.weight) for op in ops]
            else:
                self._profile_refs[profile_key] = profile
                weighted = [
                    (op, op.weight * scale)
                    for op in ops
                    if (scale := self._profile_scale(op, profile)) > 0
                ]
            cached = (weighted, sum(w for _, w in weighted))
            self._weighted_cache[key] = cached
        weighted, total = cached
        if not weighted or total <= 0:
            return None
        point = self.rng.random() * total
        acc = 0.0
        for op, weight in weighted:
            acc += weight
            if point <= acc:
                return op
        return weighted[-1][0]


#: Some op groups live in filesystem-specific files (size/allocation
#: management is ext4 code in the simulated kernel), which Tab. 3's
#: per-directory coverage accounting relies on.
_FILE_OVERRIDES = {
    ("inode", "size"): "fs/ext4/inode.c",
    ("inode", "bytes"): "fs/ext4/inode.c",
    ("inode", "pagecache"): "fs/ext4/inode.c",
    ("inode", "wbindex"): "fs/ext4/super.c",
    ("inode", "ops"): "fs/ext4/namei.c",
}


def _file_of(type_name: str) -> str:
    """Full source path for a type's synthesized functions.

    Paths are rooted per subsystem (``fs/`` for the VFS slice, ``net/``
    for the networking slice) so the per-directory coverage accounting
    (Tab. 3 and its net analogue) buckets them correctly."""
    return {
        "inode": "fs/inode.c",
        "dentry": "fs/dcache.c",
        "super_block": "fs/super.c",
        "block_device": "fs/block_dev.c",
        "buffer_head": "fs/buffer.c",
        "cdev": "fs/char_dev.c",
        "backing_dev_info": "fs/backing-dev.c",
        "pipe_inode_info": "fs/pipe.c",
        "journal_t": "fs/jbd2/journal.c",
        "transaction_t": "fs/jbd2/transaction.c",
        "journal_head": "fs/jbd2/journal-head.c",
        "sock": "net/core/sock.c",
        "sk_buff": "net/core/skbuff.c",
        "socket_wq": "net/socket.c",
        "net_device": "net/core/dev.c",
    }.get(type_name, f"fs/{type_name}.c")


def _atomic_tokens(tokens: Tuple[LockTok, ...]) -> bool:
    """True if the token list contains a non-sleeping (atomic) lock."""
    for token in tokens:
        if token.kind == "rcu" or token.flavor in ("irq", "bh"):
            return True
        if token.lock_class in ("spinlock_t", "rwlock_t", "seqlock_t"):
            # es/via tokens: class is determined by the layout, but the
            # VFS layouts only embed these three atomic classes plus
            # mutexes/rwsems, which we detect via the name heuristic in
            # _sleeping_tokens; globals carry lock_class directly.
            if token.kind == "global":
                return True
    return False


_SLEEPING_LOCK_MEMBERS = {
    "sk_lock",
    "i_rwsem",
    "i_data.i_mmap_rwsem",
    "s_umount",
    "s_vfs_rename_mutex",
    "bd_mutex",
    "bd_fsfreeze_mutex",
    "mutex",
    "j_checkpoint_mutex",
    "j_barrier",
}


def _sleeping_tokens(spec: TypeSpec, tokens: Tuple[LockTok, ...]) -> bool:
    """True if the token list contains a sleeping lock."""
    return any(
        token.kind in ("es", "via") and token.name in _SLEEPING_LOCK_MEMBERS
        for token in tokens
    )
