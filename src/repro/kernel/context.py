"""Execution contexts of the simulated kernel.

The Linux kernel distinguishes the execution context a control flow runs
in: a *task* (process/kthread), a *bottom half* (softirq), or a
*hardirq* handler.  Which locking primitive is legal depends on the
context (Sec. 2.2 of the paper).  The simulator models contexts
explicitly; every trace event carries the id of the context that caused
it, which the post-processing step uses to maintain per-context
transaction stacks.

The class is slotted and keeps two derived quantities up to date as the
held stack changes — the number of held atomic-class locks (spinlocks,
rwlocks, seqlock writers, the irq/bh/preempt pseudo-locks) and the
number of held spinlocks — so the scheduler's is-this-context-atomic
probe and the runtime's might-sleep check are O(1) instead of scanning
the held stack on every scheduling decision.  All held-stack mutation
must go through :meth:`push_held` / :meth:`remove_held_at`.
"""

from __future__ import annotations

import enum
import itertools
from typing import List, Optional, Tuple


class ContextKind(enum.Enum):
    """What kind of control flow a context represents."""

    TASK = "task"
    SOFTIRQ = "softirq"
    HARDIRQ = "hardirq"


_context_ids = itertools.count(1)


def reset_context_ids() -> None:
    """Restart the context-id counter (trace reproducibility helper)."""
    global _context_ids
    _context_ids = itertools.count(1)


class ExecutionContext:
    """A single kernel control flow.

    Attributes:
        kind: task / softirq / hardirq.
        name: human-readable name, e.g. ``"fsstress/3"``.
        ctx_id: unique id; appears in every trace event.
        held: stack of ``(lock, mode)`` pairs in acquisition order.
        call_stack: stack of ``(function, file, line)`` frames.
        irq_disable_depth / bh_disable_depth / preempt_disable_depth:
            nesting counters for the pseudo-lock primitives.
        atomic_held / spin_held: running counts of held atomic-class
            locks and held spinlocks (see module docstring).
    """

    __slots__ = (
        "kind",
        "name",
        "ctx_id",
        "held",
        "call_stack",
        "irq_disable_depth",
        "bh_disable_depth",
        "preempt_disable_depth",
        "interrupted",
        "atomic_held",
        "spin_held",
        "cached_site",
    )

    def __init__(
        self,
        kind: ContextKind,
        name: str,
        ctx_id: Optional[int] = None,
        interrupted: Optional["ExecutionContext"] = None,
    ) -> None:
        self.kind = kind
        self.name = name
        self.ctx_id = next(_context_ids) if ctx_id is None else ctx_id
        self.held: List[Tuple[object, object]] = []
        self.call_stack: List[Tuple[str, str, int]] = []
        self.irq_disable_depth = 0
        self.bh_disable_depth = 0
        self.preempt_disable_depth = 0
        # Parent context when a hardirq/softirq interrupted another flow.
        self.interrupted = interrupted
        self.atomic_held = 0
        self.spin_held = 0
        # Memoized (stack_id, file, line) for the current call stack;
        # owned by the Tracer, invalidated whenever the stack changes.
        self.cached_site: Optional[Tuple[int, str, int]] = None

    def holds(self, lock: object) -> bool:
        """Return True if this context currently holds *lock* (any mode)."""
        return any(l is lock for l, _ in self.held)

    def held_locks(self) -> List[object]:
        """The locks held by this context, in acquisition order."""
        return [l for l, _ in self.held]

    def push_held(self, lock, mode) -> None:
        """Record that *lock* was acquired (keeps the counters in sync)."""
        self.held.append((lock, mode))
        if lock.is_atomic_class:
            self.atomic_held += 1
            self.spin_held += lock.is_spinlock

    def remove_held_at(self, index: int) -> None:
        """Drop the held entry at *index* (keeps the counters in sync)."""
        lock = self.held[index][0]
        del self.held[index]
        if lock.is_atomic_class:
            self.atomic_held -= 1
            self.spin_held -= lock.is_spinlock

    def is_atomic(self) -> bool:
        """True while this context must not be preempted or sleep.

        Relies on the invariant that the irq/bh/preempt pseudo-locks
        stay on the held stack while their disable depth is non-zero,
        so a positive ``atomic_held`` covers the depth counters too.
        """
        return self.atomic_held > 0

    def push_frame(self, function: str, file: str, line: int) -> None:
        self.call_stack.append((function, file, line))
        self.cached_site = None

    def pop_frame(self) -> Tuple[str, str, int]:
        self.cached_site = None
        return self.call_stack.pop()

    def stack_snapshot(self) -> Tuple[Tuple[str, str, int], ...]:
        """An immutable copy of the current call stack (outermost first)."""
        return tuple(self.call_stack)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ctx {self.ctx_id} {self.kind.value}:{self.name}>"


def make_task(name: str) -> ExecutionContext:
    """Create a task context."""
    return ExecutionContext(ContextKind.TASK, name)


def make_softirq(name: str, interrupted: Optional[ExecutionContext] = None) -> ExecutionContext:
    """Create a softirq (bottom-half) context."""
    return ExecutionContext(ContextKind.SOFTIRQ, name, interrupted=interrupted)


def make_hardirq(name: str, interrupted: Optional[ExecutionContext] = None) -> ExecutionContext:
    """Create a hardirq (first-level interrupt handler) context."""
    return ExecutionContext(ContextKind.HARDIRQ, name, interrupted=interrupted)
