"""The kernel runtime: typed objects, lock API, trace emission.

:class:`KernelRuntime` is the glue of the simulated kernel.  It owns the
allocator, the tracer, the struct registry and all live lock instances,
and offers the *instrumented kernel API* that workload code programs
against:

* object lifecycle  — :meth:`KernelRuntime.new_object`, :meth:`KernelRuntime.delete_object`
* member accesses   — :meth:`KernelRuntime.read`, :meth:`KernelRuntime.write`
* lock operations   — kernel-named methods (``spin_lock``, ``mutex_lock``,
  ``down_read``, ``rcu_read_lock``, ...)

Lock-acquiring methods are **generators**: they yield :class:`Wait`
tokens while the lock is contended, so the cooperative scheduler can
deschedule the calling kthread.  Code composes them with ``yield from``.
Single-context code (unit tests, the clock example) runs them through
:meth:`KernelRuntime.run`, which asserts that no blocking occurs.

Everything the runtime does is reported to the tracer, producing the
phase-1 event trace of the paper.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from repro.kernel.context import ContextKind, ExecutionContext, make_task
from repro.kernel.errors import KernelError, LockUsageError
from repro.kernel.locks import Lock, LockClass, LockMode, PseudoLocks
from repro.kernel.memory import Allocation, Allocator
from repro.kernel.structs import StructDef, StructRegistry
from repro.tracing.events import AccessEvent, LockEvent
from repro.tracing.tracer import Tracer


class Wait:
    """Yielded by lock-acquiring generators while contended."""

    __slots__ = ("lock", "mode", "_want_shared")

    def __init__(self, lock: Lock, mode: LockMode) -> None:
        self.lock = lock
        self.mode = mode
        self._want_shared = mode is LockMode.SHARED

    def ready(self, ctx: ExecutionContext) -> bool:
        """Cheap readiness probe used by the scheduler (non-mutating)."""
        lock = self.lock
        if lock.is_semaphore:
            return lock._sem_count > 0  # noqa: SLF001 - scheduler fast path
        if self._want_shared:
            return lock._owner is None  # noqa: SLF001
        return lock._owner is None and not lock._readers  # noqa: SLF001

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Wait {self.lock.name} mode={self.mode.value}>"


KGen = Generator[Wait, None, None]


class KObject:
    """A typed, traced kernel object.

    Wraps a live allocation plus its struct layout.  Embedded lock
    members have been instantiated as :class:`Lock` objects; data
    members can carry simulation state in :attr:`values` (a plain dict —
    the analysis never looks at values, only at access events).
    """

    __slots__ = (
        "runtime",
        "allocation",
        "struct",
        "locks",
        "values",
        "refs",
        "pin_count",
        "live",
        "address",
    )

    def __init__(
        self,
        runtime: "KernelRuntime",
        allocation: Allocation,
        struct: StructDef,
        locks: Dict[str, Lock],
    ) -> None:
        self.runtime = runtime
        self.allocation = allocation
        self.struct = struct
        self.locks = locks
        self.values: Dict[str, object] = {}
        # Object-graph references (i_sb, d_parent, ...) live separately
        # from member values: traced writes store arbitrary simulated
        # values into `values` and must not clobber the graph wiring.
        self.refs: Dict[str, "KObject"] = {}
        # Reference count: a pinned object must not be freed.  Models
        # the kernel's refcounting, which keeps objects alive while a
        # control flow holds a reference across a blocking point.
        self.pin_count = 0
        # Mirrors allocation.live; a plain attribute because workload
        # pool filters test it millions of times per run.  The only
        # code allowed to flip it is KernelRuntime.delete_object (the
        # sole path that frees a traced object).
        self.live = True
        # An allocation's address never changes; denormalized here so
        # the per-access hot path skips the property indirection.
        self.address = allocation.address

    def pin(self) -> None:
        self.pin_count += 1

    def unpin(self) -> None:
        if self.pin_count <= 0:
            raise KernelError(f"unbalanced unpin of {self!r}")
        self.pin_count -= 1

    @property
    def pinned(self) -> bool:
        return self.pin_count > 0

    @property
    def data_type(self) -> str:
        return self.struct.name

    @property
    def subclass(self) -> Optional[str]:
        return self.allocation.subclass

    def lock(self, member: str) -> Lock:
        """The embedded lock instance stored in *member*."""
        try:
            return self.locks[member]
        except KeyError:
            raise LockUsageError(
                f"{self.data_type} has no embedded lock {member!r}"
            ) from None

    def addr_of(self, member: str) -> int:
        return self.allocation.address + self.struct.offset_of(member)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sub = f":{self.subclass}" if self.subclass else ""
        return f"<{self.data_type}{sub} @{self.address:#x}>"


class pinned:
    """Pin objects for the duration of a block (refcount guard).

    A hand-rolled context manager: the ``contextlib`` generator
    machinery costs several function calls per use, and ops enter one
    of these per operation.
    """

    __slots__ = ("objects",)

    def __init__(self, *objects: "KObject") -> None:
        self.objects = objects

    def __enter__(self) -> None:
        for obj in self.objects:
            obj.pin_count += 1

    def __exit__(self, exc_type, exc, tb) -> None:
        for obj in self.objects:
            count = obj.pin_count
            if count <= 0:
                raise KernelError(f"unbalanced unpin of {obj!r}")
            obj.pin_count = count - 1


class _FunctionFrame:
    """Push a call frame for the duration of a kernel function body."""

    __slots__ = ("ctx", "name", "file", "line")

    def __init__(self, ctx: ExecutionContext, name: str, file: str, line: int) -> None:
        self.ctx = ctx
        self.name = name
        self.file = file
        self.line = line

    def __enter__(self) -> None:
        # Inlined ExecutionContext.push_frame: one method call per kernel
        # function entry adds up across a trace.
        ctx = self.ctx
        ctx.call_stack.append((self.name, self.file, self.line))
        ctx.cached_site = None

    def __exit__(self, exc_type, exc, tb) -> None:
        ctx = self.ctx
        ctx.call_stack.pop()
        ctx.cached_site = None


class KernelRuntime:
    """The simulated, instrumented kernel."""

    def __init__(
        self,
        structs: Optional[StructRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.structs = structs or StructRegistry()
        self.tracer = tracer or Tracer()
        self.allocator = Allocator()
        self.pseudo = PseudoLocks()
        self.locks_by_id: Dict[int, Lock] = {}
        self.static_locks: Dict[str, Lock] = {}
        self.objects_by_alloc_id: Dict[int, KObject] = {}
        for pseudo_lock in self.pseudo.all():
            self.locks_by_id[pseudo_lock.lock_id] = pseudo_lock

    # ------------------------------------------------------------------
    # Contexts
    # ------------------------------------------------------------------

    def new_task(self, name: str) -> ExecutionContext:
        return make_task(name)

    def function(
        self, ctx: ExecutionContext, name: str, file: str, line: int
    ) -> _FunctionFrame:
        """Push a call frame for the duration of a kernel function body."""
        return _FunctionFrame(ctx, name, file, line)

    # ------------------------------------------------------------------
    # Object lifecycle
    # ------------------------------------------------------------------

    def new_object(
        self,
        ctx: ExecutionContext,
        type_name: str,
        subclass: Optional[str] = None,
    ) -> KObject:
        """Allocate and register a traced instance of *type_name*."""
        struct = self.structs.get(type_name)
        allocation = self.allocator.alloc(
            struct.size, type_name, subclass, timestamp=self.tracer.clock
        )
        locks: Dict[str, Lock] = {}
        for member in struct.lock_members():
            lock = Lock(
                member.lock_class,
                member.name,
                address=allocation.address + member.offset,
            )
            locks[member.name] = lock
            self.locks_by_id[lock.lock_id] = lock
        obj = KObject(self, allocation, struct, locks)
        self.objects_by_alloc_id[allocation.alloc_id] = obj
        self.tracer.record_alloc(ctx, allocation)
        return obj

    def delete_object(self, ctx: ExecutionContext, obj: KObject) -> None:
        """Free a traced object; its embedded locks die with it."""
        for lock in obj.locks.values():
            if not lock.is_free():
                raise LockUsageError(
                    f"freeing {obj!r} while embedded lock {lock.name} is held"
                )
            del self.locks_by_id[lock.lock_id]
        self.tracer.record_free(ctx, obj.allocation)
        self.allocator.free(obj.allocation, timestamp=self.tracer.clock)
        obj.live = False
        del self.objects_by_alloc_id[obj.allocation.alloc_id]

    def static_lock(self, name: str, lock_class: "LockClass | str") -> Lock:
        """Create (or fetch) a global/static lock such as ``inode_hash_lock``."""
        if name in self.static_locks:
            return self.static_locks[name]
        if isinstance(lock_class, str):
            lock_class = LockClass(lock_class)
        from repro.kernel.structs import LOCK_SIZES

        address = self.allocator.alloc_static(LOCK_SIZES.get(lock_class, 8))
        lock = Lock(lock_class, name, address=address, is_static=True)
        self.static_locks[name] = lock
        self.locks_by_id[lock.lock_id] = lock
        return lock

    # ------------------------------------------------------------------
    # Member accesses
    # ------------------------------------------------------------------

    def read(
        self,
        ctx: ExecutionContext,
        obj: KObject,
        member: str,
        line: Optional[int] = None,
    ) -> object:
        """Emit a traced read of ``obj.member``; returns the simulated value.

        The tracer's ``record_access`` body is inlined here (and in
        :meth:`write`): member accesses dominate the trace, and the extra
        call per event is measurable.  Any change must be mirrored in
        :meth:`~repro.tracing.tracer.Tracer.record_access`.
        """
        try:
            laid_out = obj.struct._by_name[member]  # noqa: SLF001 - hot path
        except KeyError:
            laid_out = obj.struct.member(member)  # descriptive KeyError
        tracer = self.tracer
        if tracer.enabled:
            site = ctx.cached_site
            if site is None:
                site = tracer._site(ctx)  # noqa: SLF001 - hot path
            tracer._n_accesses += 1  # noqa: SLF001
            tracer._clock += 1  # noqa: SLF001
            # tuple.__new__ bypasses the namedtuple's generated __new__
            # (one Python call per event, ~310k events per trace).
            tracer.events.append(
                tuple.__new__(
                    AccessEvent,
                    (
                        tracer._clock,  # noqa: SLF001
                        ctx.ctx_id,
                        obj.address + laid_out.offset,
                        laid_out.size,
                        False,
                        site[0],
                        site[1],
                        site[2] if line is None else line,
                    ),
                )
            )
        return obj.values.get(member)

    def write(
        self,
        ctx: ExecutionContext,
        obj: KObject,
        member: str,
        value: object = None,
        line: Optional[int] = None,
    ) -> None:
        """Emit a traced write of ``obj.member`` and store the value."""
        try:
            laid_out = obj.struct._by_name[member]  # noqa: SLF001 - hot path
        except KeyError:
            laid_out = obj.struct.member(member)  # descriptive KeyError
        tracer = self.tracer
        if tracer.enabled:
            site = ctx.cached_site
            if site is None:
                site = tracer._site(ctx)  # noqa: SLF001 - hot path
            tracer._n_accesses += 1  # noqa: SLF001
            tracer._clock += 1  # noqa: SLF001
            tracer.events.append(
                tuple.__new__(
                    AccessEvent,
                    (
                        tracer._clock,  # noqa: SLF001
                        ctx.ctx_id,
                        obj.address + laid_out.offset,
                        laid_out.size,
                        True,
                        site[0],
                        site[1],
                        site[2] if line is None else line,
                    ),
                )
            )
        obj.values[member] = value

    def atomic_read(self, ctx: ExecutionContext, obj: KObject, member: str) -> object:
        """An ``atomic_read()``-style access.

        It *does* emit a trace event (the VM sees the load), but the
        importer filters accesses to ``atomic_t`` members by layout kind
        (Sec. 5.3, item 3), so this never reaches rule derivation.
        """
        return self.read(ctx, obj, member)

    def atomic_write(
        self, ctx: ExecutionContext, obj: KObject, member: str, value: object = None
    ) -> None:
        self.write(ctx, obj, member, value)

    # ------------------------------------------------------------------
    # Core acquire/release plumbing
    # ------------------------------------------------------------------

    def _record_lock_event(
        self,
        ctx: ExecutionContext,
        lock: Lock,
        is_acquire: bool,
        mode: LockMode,
        line: Optional[int],
    ) -> None:
        """Inlined twin of :meth:`Tracer.record_lock` (kept as one local
        helper for the five lock-op call sites; any change must be
        mirrored in the tracer)."""
        tracer = self.tracer
        if not tracer.enabled:
            return
        site = ctx.cached_site
        if site is None:
            site = tracer._site(ctx)  # noqa: SLF001 - hot path
        tracer._n_lock_ops += 1  # noqa: SLF001
        tracer._clock += 1  # noqa: SLF001
        tracer.events.append(
            tuple.__new__(
                LockEvent,
                (
                    tracer._clock,  # noqa: SLF001
                    ctx.ctx_id,
                    lock.lock_id,
                    lock.class_value,
                    lock.name,
                    lock.address,
                    is_acquire,
                    "w" if mode is LockMode.EXCLUSIVE else "r",
                    site[0],
                    site[1],
                    site[2] if line is None else line,
                ),
            )
        )

    def _acquire(
        self,
        ctx: ExecutionContext,
        lock: Lock,
        mode: LockMode,
        line: Optional[int] = None,
    ) -> KGen:
        # Every lock operation is a scheduling opportunity (the kernel may
        # deschedule a task right before it takes a lock).
        yield None
        while True:
            already_held = (lock._owner is ctx) or (  # noqa: SLF001
                ctx.ctx_id in lock._readers  # noqa: SLF001
            )
            if lock.try_acquire(ctx, mode):
                break
            yield Wait(lock, mode)
        if not already_held:
            ctx.push_held(lock, mode)
            self._record_lock_event(ctx, lock, True, mode, line)

    def _release(
        self,
        ctx: ExecutionContext,
        lock: Lock,
        mode: LockMode,
        line: Optional[int] = None,
    ) -> None:
        lock.release(ctx, mode)
        if lock._owner is ctx or ctx.ctx_id in lock._readers:  # noqa: SLF001
            return  # still held (recursive/nested); no release event yet
        for index in range(len(ctx.held) - 1, -1, -1):
            if ctx.held[index][0] is lock:
                ctx.remove_held_at(index)
                break
        else:
            raise LockUsageError(
                f"{ctx!r} released {lock.name} not in its held list"
            )
        self._record_lock_event(ctx, lock, False, mode, line)

    def run(self, gen: KGen) -> None:
        """Inline trampoline for single-context code.

        Drives a kernel-function generator to completion; raises if it
        would block (impossible without concurrent contexts).
        """
        for token in gen:
            if isinstance(token, Wait):
                raise KernelError(
                    f"inline execution blocked on {token.lock.name}; "
                    "use the Scheduler for concurrent workloads"
                )

    # ------------------------------------------------------------------
    # Kernel-named lock API (generators unless noted)
    # ------------------------------------------------------------------

    def spin_lock(self, ctx: ExecutionContext, lock: Lock, line: Optional[int] = None) -> KGen:
        self._expect(lock, LockClass.SPINLOCK, "spin_lock")
        return self._acquire(ctx, lock, LockMode.EXCLUSIVE, line)

    def spin_unlock(self, ctx: ExecutionContext, lock: Lock, line: Optional[int] = None) -> None:
        self._release(ctx, lock, LockMode.EXCLUSIVE, line)

    def spin_trylock(self, ctx: ExecutionContext, lock: Lock, line: Optional[int] = None) -> bool:
        """Non-blocking spinlock attempt (plain method, returns success)."""
        self._expect(lock, LockClass.SPINLOCK, "spin_trylock")
        if lock.try_acquire(ctx, LockMode.EXCLUSIVE):
            ctx.push_held(lock, LockMode.EXCLUSIVE)
            self._record_lock_event(ctx, lock, True, LockMode.EXCLUSIVE, line)
            return True
        return False

    def spin_lock_irq(self, ctx: ExecutionContext, lock: Lock, line: Optional[int] = None) -> KGen:
        """``spin_lock_irq``: disable interrupts, then take the spinlock."""
        self.local_irq_disable(ctx, line)
        return self.spin_lock(ctx, lock, line)

    def spin_unlock_irq(self, ctx: ExecutionContext, lock: Lock, line: Optional[int] = None) -> None:
        self.spin_unlock(ctx, lock, line)
        self.local_irq_enable(ctx, line)

    def spin_lock_bh(self, ctx: ExecutionContext, lock: Lock, line: Optional[int] = None) -> KGen:
        """``spin_lock_bh``: disable bottom halves, then take the spinlock."""
        self.local_bh_disable(ctx, line)
        return self.spin_lock(ctx, lock, line)

    def spin_unlock_bh(self, ctx: ExecutionContext, lock: Lock, line: Optional[int] = None) -> None:
        self.spin_unlock(ctx, lock, line)
        self.local_bh_enable(ctx, line)

    def read_lock(self, ctx: ExecutionContext, lock: Lock, line: Optional[int] = None) -> KGen:
        self._expect(lock, LockClass.RWLOCK, "read_lock")
        return self._acquire(ctx, lock, LockMode.SHARED, line)

    def read_unlock(self, ctx: ExecutionContext, lock: Lock, line: Optional[int] = None) -> None:
        self._release(ctx, lock, LockMode.SHARED, line)

    def write_lock(self, ctx: ExecutionContext, lock: Lock, line: Optional[int] = None) -> KGen:
        self._expect(lock, LockClass.RWLOCK, "write_lock")
        return self._acquire(ctx, lock, LockMode.EXCLUSIVE, line)

    def write_unlock(self, ctx: ExecutionContext, lock: Lock, line: Optional[int] = None) -> None:
        self._release(ctx, lock, LockMode.EXCLUSIVE, line)

    def mutex_lock(self, ctx: ExecutionContext, lock: Lock, line: Optional[int] = None) -> KGen:
        self._expect(lock, LockClass.MUTEX, "mutex_lock")
        self._no_sleep_check(ctx, lock)
        return self._acquire(ctx, lock, LockMode.EXCLUSIVE, line)

    def mutex_unlock(self, ctx: ExecutionContext, lock: Lock, line: Optional[int] = None) -> None:
        self._release(ctx, lock, LockMode.EXCLUSIVE, line)

    def down(self, ctx: ExecutionContext, lock: Lock, line: Optional[int] = None) -> KGen:
        self._expect(lock, LockClass.SEMAPHORE, "down")
        self._no_sleep_check(ctx, lock)
        return self._acquire(ctx, lock, LockMode.EXCLUSIVE, line)

    def up(self, ctx: ExecutionContext, lock: Lock, line: Optional[int] = None) -> None:
        self._release(ctx, lock, LockMode.EXCLUSIVE, line)

    def down_read(self, ctx: ExecutionContext, lock: Lock, line: Optional[int] = None) -> KGen:
        self._expect(lock, LockClass.RW_SEMAPHORE, "down_read")
        self._no_sleep_check(ctx, lock)
        return self._acquire(ctx, lock, LockMode.SHARED, line)

    def up_read(self, ctx: ExecutionContext, lock: Lock, line: Optional[int] = None) -> None:
        self._release(ctx, lock, LockMode.SHARED, line)

    def down_write(self, ctx: ExecutionContext, lock: Lock, line: Optional[int] = None) -> KGen:
        self._expect(lock, LockClass.RW_SEMAPHORE, "down_write")
        self._no_sleep_check(ctx, lock)
        return self._acquire(ctx, lock, LockMode.EXCLUSIVE, line)

    def up_write(self, ctx: ExecutionContext, lock: Lock, line: Optional[int] = None) -> None:
        self._release(ctx, lock, LockMode.EXCLUSIVE, line)

    def write_seqlock(self, ctx: ExecutionContext, lock: Lock, line: Optional[int] = None) -> KGen:
        self._expect(lock, LockClass.SEQLOCK, "write_seqlock")
        return self._acquire(ctx, lock, LockMode.EXCLUSIVE, line)

    def write_sequnlock(self, ctx: ExecutionContext, lock: Lock, line: Optional[int] = None) -> None:
        self._release(ctx, lock, LockMode.EXCLUSIVE, line)

    def read_seqbegin(self, ctx: ExecutionContext, lock: Lock, line: Optional[int] = None) -> KGen:
        """Model a seqlock read section as a shared hold (see locks.py)."""
        self._expect(lock, LockClass.SEQLOCK, "read_seqbegin")
        return self._acquire(ctx, lock, LockMode.SHARED, line)

    def read_seqend(self, ctx: ExecutionContext, lock: Lock, line: Optional[int] = None) -> None:
        self._release(ctx, lock, LockMode.SHARED, line)

    # -- pseudo-locks (never block; plain methods) ----------------------

    def rcu_read_lock(self, ctx: ExecutionContext, line: Optional[int] = None) -> None:
        lock = self.pseudo.rcu
        already_held = lock.held_by(ctx)
        assert lock.try_acquire(ctx, LockMode.SHARED)
        if not already_held:
            ctx.push_held(lock, LockMode.SHARED)
            self._record_lock_event(ctx, lock, True, LockMode.SHARED, line)

    def rcu_read_unlock(self, ctx: ExecutionContext, line: Optional[int] = None) -> None:
        self._release(ctx, self.pseudo.rcu, LockMode.SHARED, line)

    def _pseudo_disable(
        self, ctx: ExecutionContext, lock: Lock, attr: str, line: Optional[int]
    ) -> None:
        depth = getattr(ctx, attr)
        setattr(ctx, attr, depth + 1)
        if depth == 0:
            assert lock.try_acquire(ctx, LockMode.EXCLUSIVE)
            ctx.push_held(lock, LockMode.EXCLUSIVE)
            self._record_lock_event(ctx, lock, True, LockMode.EXCLUSIVE, line)
        else:
            assert lock.try_acquire(ctx, LockMode.EXCLUSIVE)

    def _pseudo_enable(
        self, ctx: ExecutionContext, lock: Lock, attr: str, line: Optional[int]
    ) -> None:
        depth = getattr(ctx, attr)
        if depth <= 0:
            raise LockUsageError(f"unbalanced enable of {lock.name} in {ctx!r}")
        setattr(ctx, attr, depth - 1)
        self._release(ctx, lock, LockMode.EXCLUSIVE, line)

    def local_irq_disable(self, ctx: ExecutionContext, line: Optional[int] = None) -> None:
        self._pseudo_disable(ctx, self.pseudo.hardirq, "irq_disable_depth", line)

    def local_irq_enable(self, ctx: ExecutionContext, line: Optional[int] = None) -> None:
        self._pseudo_enable(ctx, self.pseudo.hardirq, "irq_disable_depth", line)

    def local_bh_disable(self, ctx: ExecutionContext, line: Optional[int] = None) -> None:
        self._pseudo_disable(ctx, self.pseudo.softirq, "bh_disable_depth", line)

    def local_bh_enable(self, ctx: ExecutionContext, line: Optional[int] = None) -> None:
        self._pseudo_enable(ctx, self.pseudo.softirq, "bh_disable_depth", line)

    def preempt_disable(self, ctx: ExecutionContext, line: Optional[int] = None) -> None:
        self._pseudo_disable(ctx, self.pseudo.preempt, "preempt_disable_depth", line)

    def preempt_enable(self, ctx: ExecutionContext, line: Optional[int] = None) -> None:
        self._pseudo_enable(ctx, self.pseudo.preempt, "preempt_disable_depth", line)

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------

    @staticmethod
    def _expect(lock: Lock, lock_class: LockClass, api: str) -> None:
        if lock.lock_class != lock_class:
            raise LockUsageError(
                f"{api}() on a {lock.lock_class.value} ({lock.name})"
            )

    @staticmethod
    def _no_sleep_check(ctx: ExecutionContext, lock: Lock) -> None:
        """Sleeping primitives are illegal in atomic context."""
        if ctx.kind != ContextKind.TASK:
            raise LockUsageError(
                f"sleeping lock {lock.name} taken from {ctx.kind.value} context"
            )
        if ctx.irq_disable_depth or ctx.bh_disable_depth or ctx.preempt_disable_depth:
            raise LockUsageError(
                f"sleeping lock {lock.name} taken with irqs/bh/preemption disabled"
            )
        if ctx.spin_held:
            raise LockUsageError(
                f"sleeping lock {lock.name} taken while holding a spinlock"
            )
