"""Lock primitives of the simulated kernel.

The Linux kernel offers a zoo of synchronization primitives (Sec. 2.2 of
the paper).  This module models the ones LockDoc instruments:

* ``spinlock_t``      — non-sleeping, exclusive
* ``rwlock_t``        — non-sleeping, reader/writer
* ``mutex``           — sleeping, exclusive
* ``semaphore``       — sleeping, counting (``down``/``up``)
* ``rw_semaphore``    — sleeping, reader/writer (``i_rwsem``, ``s_umount``)
* ``seqlock_t``       — writer side is a spinlock; readers retry
* ``rcu``             — global read-side pseudo-lock
* synthetic ``softirq`` / ``hardirq`` / ``preempt`` pseudo-locks that
  model ``local_bh_disable``, ``local_irq_disable`` and
  ``preempt_disable`` (the paper records lock/release events for the
  synthetic softirq and hardirq locks, Sec. 7.1)

A :class:`Lock` is a passive state machine: the
:class:`~repro.kernel.runtime.KernelRuntime` drives ``try_acquire`` /
``release`` and emits trace events; blocking is realized by the
cooperative scheduler re-polling ``try_acquire``.

Single-core note: the simulator — like the paper's Bochs setup — runs on
one virtual CPU, so acquiring a spinlock that another context holds
means the current context must be descheduled until the holder releases
it.  Attempting to take a non-recursive lock twice *from the same
context* is a self-deadlock and raises :class:`LockUsageError`.
"""

from __future__ import annotations

import enum
import itertools
from typing import Dict, List, Optional

from repro.kernel.context import ExecutionContext
from repro.kernel.errors import LockUsageError


class LockClass(enum.Enum):
    """The kind of a lock; mirrors the instrumented kernel lock APIs."""

    SPINLOCK = "spinlock_t"
    RWLOCK = "rwlock_t"
    MUTEX = "mutex"
    SEMAPHORE = "semaphore"
    RW_SEMAPHORE = "rw_semaphore"
    SEQLOCK = "seqlock_t"
    RCU = "rcu"
    SOFTIRQ = "softirq"
    HARDIRQ = "hardirq"
    PREEMPT = "preempt"

    @property
    def sleeping(self) -> bool:
        """True for primitives that may sleep while waiting."""
        return self in (LockClass.MUTEX, LockClass.SEMAPHORE, LockClass.RW_SEMAPHORE)

    @property
    def pseudo(self) -> bool:
        """True for the synthetic context-disabling pseudo-locks and RCU."""
        return self in (LockClass.RCU, LockClass.SOFTIRQ, LockClass.HARDIRQ, LockClass.PREEMPT)

    @property
    def reader_writer(self) -> bool:
        """True if the primitive distinguishes shared and exclusive mode."""
        return self in (
            LockClass.RWLOCK,
            LockClass.RW_SEMAPHORE,
            LockClass.SEQLOCK,
            LockClass.RCU,
        )


class LockMode(enum.Enum):
    """How a lock is being held."""

    EXCLUSIVE = "w"
    SHARED = "r"


_lock_ids = itertools.count(1)

#: Lock classes whose holders are atomic (non-preemptable on the single
#: simulated CPU).  The scheduler and the execution context's held
#: counters derive their O(1) atomicity checks from this set.
ATOMIC_LOCK_CLASSES = frozenset(
    (
        LockClass.SPINLOCK,
        LockClass.RWLOCK,
        LockClass.SEQLOCK,
        LockClass.SOFTIRQ,
        LockClass.HARDIRQ,
        LockClass.PREEMPT,
    )
)

#: Per-class hot-path flags, precomputed once at import time:
#: (is_atomic_class, is_spinlock, class_value, has_shared, is_semaphore,
#:  is_seqlock, recursive_shared, nests_exclusive).  ``recursive_shared``
#: marks read sides that nest freely (RCU, rwlock, seqlock readers);
#: ``nests_exclusive`` marks the disable-depth pseudo-locks whose
#: exclusive side nests per context instead of self-deadlocking.
_CLASS_FLAGS = {
    cls: (
        cls in ATOMIC_LOCK_CLASSES,
        cls is LockClass.SPINLOCK,
        cls.value,
        cls.reader_writer,
        cls is LockClass.SEMAPHORE,
        cls is LockClass.SEQLOCK,
        cls in (LockClass.RCU, LockClass.RWLOCK, LockClass.SEQLOCK),
        cls in (LockClass.SOFTIRQ, LockClass.HARDIRQ, LockClass.PREEMPT),
    )
    for cls in LockClass
}


class Lock:
    """A single lock instance.

    Attributes:
        lock_id: unique id, stable across the lock's lifetime.
        lock_class: which primitive this instance is.
        name: the variable name the kernel source would use
            (``"i_lock"``, ``"inode_hash_lock"``, ...).
        address: the byte address of the lock variable.  Embedded locks
            get an address inside their containing allocation; static
            (global) locks get an address from the allocator's static
            segment; pseudo-locks have address ``None``.
        is_static: True for global/static lock variables.
    """

    __slots__ = (
        "lock_id",
        "lock_class",
        "name",
        "address",
        "is_static",
        "_owner",
        "_exclusive_depth",
        "_readers",
        "_sem_count",
        "_sem_capacity",
        "seq",
        "is_atomic_class",
        "is_spinlock",
        "class_value",
        "has_shared",
        "is_semaphore",
        "is_seqlock",
        "recursive_shared",
        "nests_exclusive",
    )

    def __init__(
        self,
        lock_class: LockClass,
        name: str,
        address: Optional[int] = None,
        is_static: bool = False,
        capacity: int = 1,
    ) -> None:
        self.lock_id = next(_lock_ids)
        self.lock_class = lock_class
        self.name = name
        self.address = address
        self.is_static = is_static
        self._owner: Optional[ExecutionContext] = None
        self._exclusive_depth = 0
        self._readers: Dict[int, int] = {}  # ctx_id -> nesting depth
        self._sem_capacity = capacity
        self._sem_count = capacity
        self.seq = 0  # sequence counter for seqlocks
        # Precomputed hot-path facts: one table lookup instead of enum
        # property calls per event (and per Lock construction — embedded
        # locks are created once per allocated object).
        (
            self.is_atomic_class,
            self.is_spinlock,
            self.class_value,
            self.has_shared,
            self.is_semaphore,
            self.is_seqlock,
            self.recursive_shared,
            self.nests_exclusive,
        ) = _CLASS_FLAGS[lock_class]

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------

    @property
    def owner(self) -> Optional[ExecutionContext]:
        """The exclusive holder, if any."""
        return self._owner

    @property
    def reader_count(self) -> int:
        """Number of shared holders (counting nesting once per context)."""
        return len(self._readers)

    def held_by(self, ctx: ExecutionContext) -> bool:
        """True if *ctx* holds this lock in any mode."""
        return (self._owner is ctx) or (ctx.ctx_id in self._readers)

    def is_free(self) -> bool:
        """True if nobody holds the lock in any mode."""
        if self.is_semaphore:
            return self._sem_count == self._sem_capacity
        return self._owner is None and not self._readers

    # ------------------------------------------------------------------
    # Acquisition / release
    # ------------------------------------------------------------------

    def try_acquire(self, ctx: ExecutionContext, mode: LockMode) -> bool:
        """Attempt to take the lock; True on success, False if contended.

        Raises :class:`LockUsageError` for self-deadlocks and illegal
        mode/primitive combinations rather than wedging the simulation.
        """
        if mode is LockMode.SHARED:
            if not self.has_shared:
                self._check_mode(mode)
            return self._try_acquire_shared(ctx)

        if self.is_semaphore:
            if self._sem_count > 0:
                self._sem_count -= 1
                return True
            return False

        return self._try_acquire_exclusive(ctx)

    def release(self, ctx: ExecutionContext, mode: LockMode) -> None:
        """Release a previously acquired lock."""
        if mode is LockMode.SHARED:
            if not self.has_shared:
                self._check_mode(mode)
            depth = self._readers.get(ctx.ctx_id)
            if depth is None:
                raise LockUsageError(
                    f"{ctx!r} releases {self.name} (shared) without holding it"
                )
            if depth == 1:
                del self._readers[ctx.ctx_id]
            else:
                self._readers[ctx.ctx_id] = depth - 1
            return

        if self.is_semaphore:
            if self._sem_count >= self._sem_capacity:
                raise LockUsageError(f"up() on non-held semaphore {self.name}")
            self._sem_count += 1
            return

        if self._owner is not ctx:
            raise LockUsageError(
                f"{ctx!r} releases {self.name} (exclusive) held by {self._owner!r}"
            )
        self._exclusive_depth -= 1
        if self._exclusive_depth == 0:
            self._owner = None
            if self.is_seqlock:
                self.seq += 1  # write_sequnlock bumps to an even value

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _check_mode(self, mode: LockMode) -> None:
        if mode is LockMode.SHARED and not self.has_shared:
            raise LockUsageError(
                f"{self.lock_class.value} {self.name} has no shared mode"
            )

    def _try_acquire_shared(self, ctx: ExecutionContext) -> bool:
        if self._owner is not None:
            if self._owner is ctx:
                raise LockUsageError(
                    f"{ctx!r} read-acquires {self.name} while write-holding it"
                )
            # Seqlock readers never block: read_seqbegin just samples the
            # sequence counter.  We model an in-flight writer as a failed
            # (retried) read section, i.e. the reader spins.
            return False
        if ctx.ctx_id in self._readers:
            if not self.recursive_shared:
                raise LockUsageError(
                    f"recursive read of non-recursive {self.name} by {ctx!r}"
                )
            self._readers[ctx.ctx_id] += 1
            return True
        self._readers[ctx.ctx_id] = 1
        return True

    def _try_acquire_exclusive(self, ctx: ExecutionContext) -> bool:
        if self.nests_exclusive:
            # Disabling bottom halves / interrupts / preemption nests per
            # context and never contends in the single-core model.
            if self._owner is None:
                self._owner = ctx
                self._exclusive_depth = 1
            elif self._owner is ctx:
                self._exclusive_depth += 1
            else:
                # A different context disabling irqs is fine on the single
                # simulated CPU: the previous context cannot be running.
                # Model it as independent nesting by transferring ownership
                # only when free; otherwise treat as recursion error.
                raise LockUsageError(
                    f"pseudo-lock {self.name} crossed contexts "
                    f"({self._owner!r} -> {ctx!r})"
                )
            return True

        if self._readers:
            if ctx.ctx_id in self._readers:
                raise LockUsageError(
                    f"{ctx!r} write-acquires {self.name} while read-holding it"
                )
            return False
        if self._owner is None:
            self._owner = ctx
            self._exclusive_depth = 1
            if self.is_seqlock:
                self.seq += 1  # write_seqlock bumps to an odd value
            return True
        if self._owner is ctx:
            raise LockUsageError(
                f"self-deadlock: {ctx!r} re-acquires {self.name} "
                f"({self.class_value}) it already holds"
            )
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = "static" if self.is_static else f"@{self.address}"
        return f"<{self.lock_class.value} {self.name} id={self.lock_id} {where}>"


class PseudoLocks:
    """The per-system pseudo-lock singletons.

    The paper records synthetic ``softirq`` and ``hardirq`` lock events
    (Sec. 7.1); RCU's read side is likewise modelled as one global
    shared lock.  One instance of this class exists per
    :class:`~repro.kernel.runtime.KernelRuntime`.
    """

    def __init__(self) -> None:
        self.rcu = Lock(LockClass.RCU, "rcu", is_static=True)
        self.softirq = Lock(LockClass.SOFTIRQ, "softirq", is_static=True)
        self.hardirq = Lock(LockClass.HARDIRQ, "hardirq", is_static=True)
        self.preempt = Lock(LockClass.PREEMPT, "preempt", is_static=True)

    def all(self) -> List[Lock]:
        return [self.rcu, self.softirq, self.hardirq, self.preempt]


def reset_lock_ids() -> None:
    """Restart the global lock-id counter (test isolation helper)."""
    global _lock_ids
    _lock_ids = itertools.count(1)
