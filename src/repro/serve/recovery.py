"""Startup recovery sweep: quarantine torn/corrupt cache entries.

The daemon owns the cache; a previous process killed mid-write (or a
disk hiccup) may have left damage behind.  Before serving, the sweep
walks the cache directory and **quarantines** — renames with the
:data:`repro.cache.QUARANTINE_SUFFIX` — every entry that fails its
structural invariant, so a torn file is set aside for post-mortems
instead of being served:

* ``*.meta.json`` must parse as a JSON object;
* ``*.trace.bin`` must carry the binary magic, have a parseable meta
  sidecar, and match the sidecar's recorded byte count (the sidecar is
  written *after* the trace, so a matching pair proves both completed);
* ``*.pkl`` artifacts must be non-empty and end with the pickle STOP
  opcode (``b"."``) — a truncated pickle almost surely loses it, and
  an entry this check misses still cannot be served wrong, because
  ``pickle.loads`` of a torn stream raises and the cache treats any
  load failure as a miss;
* orphaned ``*.tmp`` spool files from :mod:`repro.atomicio` are
  deleted outright (they were never published).

The sweep is best-effort and race-tolerant: entries that vanish
mid-sweep (a concurrent ``cache clear``) are skipped, never raised.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro import cache

_BIN_MAGIC = b"LDOC1\n"


@dataclass
class SweepReport:
    """What the startup sweep found and did."""

    scanned: int = 0
    ok: int = 0
    #: (file name, reason) for every quarantined entry.
    quarantined: List[Tuple[str, str]] = field(default_factory=list)
    tmp_removed: int = 0

    def to_json_dict(self) -> Dict:
        return {
            "scanned": self.scanned,
            "ok": self.ok,
            "quarantined": [
                {"file": name, "reason": reason}
                for name, reason in self.quarantined
            ],
            "tmp_removed": self.tmp_removed,
        }


def _read_prefix(path: Path, count: int) -> Optional[bytes]:
    try:
        with open(path, "rb") as fp:
            return fp.read(count)
    except OSError:
        return None


def _read_tail_byte(path: Path) -> Optional[bytes]:
    try:
        with open(path, "rb") as fp:
            fp.seek(0, 2)
            size = fp.tell()
            if size == 0:
                return b""
            fp.seek(size - 1)
            return fp.read(1)
    except OSError:
        return None


def _check_meta(path: Path) -> Optional[str]:
    """Reason the meta sidecar is corrupt, or None when sound."""
    try:
        payload = json.loads(path.read_text())
    except OSError:
        return None  # vanished mid-sweep: nothing to do
    except ValueError:
        return "unparseable JSON (torn write)"
    if not isinstance(payload, dict):
        return "meta is not a JSON object"
    return None


def _check_trace(path: Path, directory: Path) -> Optional[str]:
    prefix = _read_prefix(path, len(_BIN_MAGIC))
    if prefix is None:
        return None  # vanished mid-sweep
    if prefix != _BIN_MAGIC:
        return "missing binary trace magic"
    key = path.name[: -len(".trace.bin")]
    meta_path = directory / f"{key}.meta.json"
    try:
        meta = json.loads(meta_path.read_text())
        declared = meta.get("bytes")
    except (OSError, ValueError, AttributeError):
        return "no readable meta sidecar (trace may predate its write)"
    try:
        actual = path.stat().st_size
    except OSError:
        return None  # vanished mid-sweep
    if not isinstance(declared, int) or declared != actual:
        return f"size {actual} != declared {declared} (truncated)"
    return None


def _check_artifact(path: Path) -> Optional[str]:
    tail = _read_tail_byte(path)
    if tail is None:
        return None  # vanished mid-sweep
    if tail == b"":
        return "empty artifact"
    if tail != b".":
        return "missing pickle STOP opcode (truncated)"
    return None


def sweep(directory: Optional[Path] = None) -> SweepReport:
    """Run the recovery sweep over *directory* (default: the cache)."""
    directory = directory if directory is not None else cache.cache_dir()
    report = SweepReport()
    if not directory.is_dir():
        return report
    checks = (
        ("*.meta.json", lambda p: _check_meta(p)),
        ("*.trace.bin", lambda p: _check_trace(p, directory)),
        ("*.pkl", lambda p: _check_artifact(p)),
    )
    for pattern, check in checks:
        for path in sorted(directory.glob(pattern)):
            report.scanned += 1
            reason = check(path)
            if reason is None:
                report.ok += 1
                continue
            if cache.quarantine_file(path) is not None:
                report.quarantined.append((path.name, reason))
            # else: vanished between check and rename — nothing served
    for path in directory.glob("*.tmp"):
        try:
            path.unlink()
            report.tmp_removed += 1
        except OSError:
            pass
    return report
