"""Daemon lifecycle management for ``repro serve run/status/stop``.

``run`` serves in the foreground (supervisors and the test harness
background it themselves); ``status`` asks a live daemon for its
counters and falls back to pidfile forensics; ``stop`` prefers a
graceful in-protocol shutdown and escalates to SIGTERM via the pidfile
only when the socket no longer answers.
"""

from __future__ import annotations

import json
import os
import signal
import time
from pathlib import Path
from typing import Any, Dict, Optional

from repro.serve import paths
from repro.serve.client import DaemonUnreachable, RemoteClient, RemoteError
from repro.serve.server import ServerConfig, serve_forever


def build_config(
    socket_path: Optional[str] = None,
    workers: Optional[int] = None,
    max_inflight: Optional[int] = None,
    bucket_rate: Optional[float] = None,
    bucket_burst: Optional[float] = None,
    default_deadline: Optional[float] = None,
    max_retries: Optional[int] = None,
    chaos_spec: Optional[str] = None,
    chaos_seed: int = 0,
    log_path: Optional[str] = None,
    skip_sweep: bool = False,
) -> ServerConfig:
    """Assemble a :class:`ServerConfig` from CLI args + runtime defaults."""
    config = ServerConfig(
        socket_path=Path(socket_path) if socket_path else paths.socket_path(),
        pidfile=paths.pidfile_path(),
        log_path=Path(log_path) if log_path else paths.log_path(),
        chaos_spec=chaos_spec,
        chaos_seed=chaos_seed,
        skip_sweep=skip_sweep,
    )
    if workers is not None:
        if workers < 1:
            raise ValueError(f"--workers must be >= 1, got {workers}")
        config.workers = workers
    if max_inflight is not None:
        if max_inflight < 1:
            raise ValueError(f"--max-inflight must be >= 1, got {max_inflight}")
        config.max_inflight = max_inflight
    if bucket_rate is not None:
        if bucket_rate <= 0:
            raise ValueError(f"--rate must be > 0, got {bucket_rate}")
        config.bucket_rate = bucket_rate
    if bucket_burst is not None:
        if bucket_burst < 1:
            raise ValueError(f"--burst must be >= 1, got {bucket_burst}")
        config.bucket_burst = bucket_burst
    if default_deadline is not None:
        if default_deadline <= 0:
            raise ValueError(
                f"--deadline must be > 0, got {default_deadline}"
            )
        config.default_deadline = default_deadline
    if max_retries is not None:
        if max_retries < 0:
            raise ValueError(f"--max-retries must be >= 0, got {max_retries}")
        config.max_retries = max_retries
    return config


def read_pidfile(path: Optional[Path] = None) -> Optional[Dict[str, Any]]:
    """Parse the pidfile; None when absent or torn."""
    path = path if path is not None else paths.pidfile_path()
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict) or "pid" not in payload:
        return None
    return payload


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    return True


def run(config: ServerConfig) -> int:
    """Serve in the foreground until signalled. Returns an exit code."""
    serve_forever(config)
    return 0


def status(socket_path: Optional[str] = None) -> Dict[str, Any]:
    """Status dict: ``{"running": bool, ...}``.

    When a daemon answers on the socket its own ``status_payload`` is
    embedded; otherwise the pidfile (if any) is reported as forensics.
    """
    client = RemoteClient(socket_path=socket_path, attempts=1)
    try:
        payload = client.status()
    except (DaemonUnreachable, RemoteError):
        payload = None
    if payload is not None:
        return {"running": True, "socket": str(client.socket_path), **payload}
    info = read_pidfile()
    if info and _pid_alive(int(info["pid"])):
        return {
            "running": False,
            "socket": str(client.socket_path),
            "note": (
                f"pid {info['pid']} is alive but the socket did not answer "
                "(starting up, or serving a different socket)"
            ),
            "pidfile": info,
        }
    return {"running": False, "socket": str(client.socket_path)}


def stop(socket_path: Optional[str] = None, timeout: float = 10.0) -> bool:
    """Stop a running daemon; True when one was running and is now gone.

    Graceful first (in-protocol ``shutdown``), then SIGTERM via the
    pidfile, polling until the pid dies or *timeout* expires.
    """
    client = RemoteClient(socket_path=socket_path, attempts=1)
    asked = client.shutdown()

    def gone() -> bool:
        # A clean shutdown unlinks pidfile and socket.  Checking the
        # pidfile (re-read every poll) rather than pid liveness also
        # handles a daemon lingering as an unreaped zombie of some
        # other parent, which still "answers" ``kill(pid, 0)``.
        info = read_pidfile()
        if info is None:
            return not client.ping()
        return not _pid_alive(int(info["pid"]))

    deadline = time.monotonic() + timeout
    if asked:
        while time.monotonic() < deadline:
            if gone():
                return True
            time.sleep(0.05)
    info = read_pidfile()
    if info is not None and _pid_alive(int(info["pid"])):
        try:
            os.kill(int(info["pid"]), signal.SIGTERM)
        except OSError:
            return False
        while time.monotonic() < deadline:
            if gone():
                return True
            time.sleep(0.05)
        return gone()
    # Nothing answered the socket and no live pid in the pidfile:
    # there was no daemon to stop — report that, don't claim success.
    return False
