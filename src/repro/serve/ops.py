"""The daemon's operation registry.

One table maps each remote-able pipeline operation (``derive``,
``check``, ``violations``, ``races``, ``stats``, ``health``) to a
**validator**
(raw request params → canonical params, raising ``ValueError`` on
anything unknown or mistyped — classified ``BAD_REQUEST`` at the
envelope) and a **runner** (canonical params → JSON-able result dict
with the rendered ``text`` and an ``exit_code``).

The CLI's local path and the daemon's workers call the *same* runner
functions, so ``lockdoc derive`` and ``lockdoc derive --remote`` print
byte-identical output — remote mode changes where the computation
happens, never what it answers.  Canonical params also feed
:func:`repro.serve.protocol.request_key`, so validation doubles as the
coalescing normalizer: two requests that differ only in param spelling
(``seed: "0"`` vs ``seed: 0``) share one in-flight execution.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, Optional, Tuple

from repro.experiments import common as experiments_common

#: field -> (coercer, default); a default of ``_REQUIRED`` must be given.
_REQUIRED = object()


def _as_int(value: Any) -> int:
    if isinstance(value, bool):
        raise ValueError(f"expected an integer, got {value!r}")
    return int(value)


def _as_float(value: Any) -> float:
    if isinstance(value, bool):
        raise ValueError(f"expected a number, got {value!r}")
    return float(value)


def _as_str(value: Any) -> str:
    if not isinstance(value, str):
        raise ValueError(f"expected a string, got {value!r}")
    return value


def _as_bool(value: Any) -> bool:
    if not isinstance(value, bool):
        raise ValueError(f"expected a boolean, got {value!r}")
    return value


def _as_jobs(value: Any) -> Optional[int]:
    if value is None:
        return None
    jobs = _as_int(value)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def _as_backend(value: Any) -> str:
    backend = _as_str(value)
    if backend not in experiments_common.BACKENDS:
        known = ", ".join(experiments_common.BACKENDS)
        raise ValueError(f"unknown backend {backend!r} (known: {known})")
    return backend


_PIPELINE_FIELDS: Dict[str, Tuple[Callable[[Any], Any], Any]] = {
    "workload": (_as_str, "mix"),
    "seed": (_as_int, 0),
    "scale": (_as_float, experiments_common.DEFAULT_SCALE),
    "backend": (_as_backend, experiments_common.DEFAULT_BACKEND),
}

_SPECS: Dict[str, Dict[str, Tuple[Callable[[Any], Any], Any]]] = {
    "derive": {
        **_PIPELINE_FIELDS,
        "threshold": (_as_float, 0.9),
        "type": (_as_str, ""),
        "jobs": (_as_jobs, None),
        "want_rules_json": (_as_bool, False),
    },
    "check": {**_PIPELINE_FIELDS, "jobs": (_as_jobs, None)},
    "violations": {
        **_PIPELINE_FIELDS,
        "examples": (_as_int, 0),
        "jobs": (_as_jobs, None),
    },
    "races": {
        **_PIPELINE_FIELDS,
        "threshold": (_as_float, 0.9),
        "examples": (_as_int, 0),
        "jobs": (_as_jobs, None),
    },
    "stats": dict(_PIPELINE_FIELDS),
    "health": {
        "trace": (_as_str, _REQUIRED),
        "registry": (_as_str, "vfs"),
        "budget": (_as_float, 0.25),
        "diagnostics": (_as_int, 10),
        "backend": (_as_backend, experiments_common.DEFAULT_BACKEND),
    },
}


def operation_names() -> Tuple[str, ...]:
    return tuple(sorted(_SPECS))


def validate(op: str, params: Dict[str, Any]) -> Dict[str, Any]:
    """Canonicalize *params* for *op*; raises ``ValueError`` on junk."""
    spec = _SPECS.get(op)
    if spec is None:
        known = ", ".join(operation_names())
        raise ValueError(f"unknown operation {op!r} (known: {known})")
    unknown = sorted(set(params) - set(spec))
    if unknown:
        raise ValueError(f"unknown parameter(s) for {op!r}: {', '.join(unknown)}")
    canonical: Dict[str, Any] = {}
    for name, (coerce, default) in spec.items():
        if name in params:
            try:
                canonical[name] = coerce(params[name])
            except (TypeError, ValueError) as exc:
                raise ValueError(f"bad parameter {name!r} for {op!r}: {exc}") from None
        elif default is _REQUIRED:
            raise ValueError(f"missing required parameter {name!r} for {op!r}")
        else:
            canonical[name] = default
    if op == "health" and canonical["registry"] not in ("vfs", "racer", "net"):
        raise ValueError(f"unknown registry {canonical['registry']!r}")
    return canonical


# ---------------------------------------------------------------------
# Runners (execute in worker processes; also the CLI's local path)
# ---------------------------------------------------------------------

def _pipeline(params: Dict[str, Any]):
    return experiments_common.get_pipeline(
        params["seed"], params["scale"], workload=params["workload"]
    )


def _table_for(pipeline, params: Dict[str, Any]):
    """The split observation table under the requested backend."""
    if params["backend"] == "sqlite":
        return pipeline.sqlite_table()
    return pipeline.table


def _run_derive(params: Dict[str, Any]) -> Dict[str, Any]:
    from repro.core.report import render_table

    pipeline = _pipeline(params)
    derivation = pipeline.derive(
        params["threshold"], jobs=params["jobs"], backend=params["backend"]
    )
    rows = []
    for d in derivation.all():
        if params["type"] and d.type_key != params["type"]:
            continue
        rows.append(
            [d.type_key, d.member, d.access_type, d.rule.format(),
             f"{d.winner.s_r:.2%}", d.observation_count]
        )
    text = render_table(
        ["type", "member", "r/w", "winning rule", "s_r", "n"], rows,
        title=f"derived locking rules (t_ac={params['threshold']})",
    )
    result: Dict[str, Any] = {"text": text, "exit_code": 0, "rules": len(rows)}
    if params["want_rules_json"]:
        from repro.core.rulesio import rules_to_json

        result["rules_json"] = rules_to_json(derivation)
    return result


def _run_check(params: Dict[str, Any]) -> Dict[str, Any]:
    from repro.core.checker import check_rules, summarize as summarize_checks
    from repro.core.report import render_table
    from repro.doc.corpus import documented_rules

    pipeline = _pipeline(params)
    results = check_rules(_table_for(pipeline, params), documented_rules())
    rows = [
        [s.data_type, s.rules, s.unobserved, s.observed, s.correct,
         s.ambivalent, s.incorrect]
        for s in summarize_checks(results)
    ]
    text = render_table(
        ["type", "#R", "#No", "#Ob", "correct", "ambivalent", "incorrect"],
        rows, title="documented-rule check (Tab. 4)",
    )
    return {"text": text, "exit_code": 0, "types": len(rows)}


def _run_violations(params: Dict[str, Any]) -> Dict[str, Any]:
    from repro.core.report import render_table
    from repro.core.violations import (
        ViolationFinder,
        summarize as summarize_violations,
    )

    pipeline = _pipeline(params)
    derivation = pipeline.derive(jobs=params["jobs"], backend=params["backend"])
    violations = ViolationFinder(derivation, _table_for(pipeline, params)).find()
    rows = [
        [s.type_key, s.events, s.members, s.contexts]
        for s in summarize_violations(violations)
    ]
    parts = [render_table(
        ["type", "events", "members", "contexts"], rows,
        title="locking-rule violations (Tab. 7)",
    )]
    for violation in violations[: params["examples"]]:
        parts.append(violation.format())
    return {
        "text": "\n".join(parts),
        "exit_code": 0,
        "violations": len(violations),
    }


def _run_races(params: Dict[str, Any]) -> Dict[str, Any]:
    from repro.analysis import detect_races

    sqlite = params["backend"] == "sqlite"
    if params["workload"] not in ("racer", "racer-safe"):
        pipeline = _pipeline(params)
        events = pipeline.mix.tracer.events
        db = pipeline.store().load_database() if sqlite else pipeline.db
        derivation = pipeline.derive(
            params["threshold"], backend=params["backend"]
        )
    else:
        from repro.workloads.racer import run_racer

        result = run_racer(
            seed=params["seed"],
            scale=params["scale"],
            racy=params["workload"] == "racer",
        )
        events = result.tracer.events
        db = (
            _racer_store_database(result) if sqlite else result.to_database()
        )
        derivation = result.derive(params["threshold"], jobs=params["jobs"])
    text = detect_races(events, db, derivation).render(
        examples=params["examples"]
    )
    return {"text": text, "exit_code": 0}


def _racer_store_database(result):
    """Round-trip a racer run through a (temporary) SQLite store.

    Racer runs are tiny and never disk-cached as stores; building the
    store in a temp dir keeps the backend semantics — spool import, SQL
    schema, validated reload — without a cache tier for throwaways.
    """
    import tempfile

    from repro.db import sqlstore
    from repro.workloads.registry import database_inputs

    structs, filters = database_inputs("racer")
    tracer = result.tracer
    stacks = [tracer.stack(i) for i in range(tracer.stack_count)]
    with tempfile.TemporaryDirectory(prefix="lockdoc-racer-store-") as tmp:
        path = os.path.join(tmp, "racer.store.sqlite")
        sqlstore.build_store(
            path, tracer.events, stacks, structs, filters,
            meta_extra={"recipe": "racer"},
        )
        store = sqlstore.SqliteTraceStore(path)
        try:
            return store.load_database(structs)
        finally:
            store.close()


def _run_stats(params: Dict[str, Any]) -> Dict[str, Any]:
    from repro.experiments.stats import StatsResult

    pipeline = _pipeline(params)
    trace_stats = pipeline.mix.tracer.stats
    trace = {
        "total": trace_stats.total_events,
        "lock_ops": trace_stats.lock_ops,
        "accesses": trace_stats.accesses,
        "allocs": trace_stats.allocs,
        "frees": trace_stats.frees,
    }
    if params["backend"] == "sqlite":
        db_stats, filtered = _sqlite_stats(pipeline.store())
    else:
        db_stats = pipeline.db.stats()
        filtered = pipeline.db.filtered_counts()
    result = StatsResult(trace=trace, db=db_stats, filtered=filtered)
    return {"text": result.render(), "exit_code": 0}


def _sqlite_stats(store):
    """``TraceDatabase.stats()``/``filtered_counts()`` straight from a
    SQLite trace store — same keys, same values, no reconstruction."""

    def one(sql: str) -> int:
        return int(store.connection.execute(sql).fetchone()[0])

    db_stats = {
        "allocations": one("SELECT COUNT(*) FROM allocations"),
        "frees": one(
            "SELECT COUNT(*) FROM allocations WHERE free_ts IS NOT NULL"
        ),
        "locks": one("SELECT COUNT(*) FROM locks"),
        "static_locks": one("SELECT COUNT(*) FROM locks WHERE is_static != 0"),
        "embedded_locks": one(
            "SELECT COUNT(*) FROM locks WHERE is_static = 0"
        ),
        "txns": one("SELECT COUNT(*) FROM txns"),
        "accesses": one("SELECT COUNT(*) FROM accesses"),
        "kept_accesses": one(
            "SELECT COUNT(*) FROM accesses WHERE filter_reason IS NULL"
        ),
        "stacks": max(int(store.meta.get("stack_count", "1")), 1),
    }
    filtered = {
        reason: int(count)
        for reason, count in store.connection.execute(
            "SELECT filter_reason, COUNT(*) FROM accesses "
            "WHERE filter_reason IS NOT NULL GROUP BY filter_reason"
        )
    }
    return db_stats, filtered


def _run_health(params: Dict[str, Any]) -> Dict[str, Any]:
    from repro.db.health import ingest_path, render_diagnostics
    from repro.db.importer import ImportPolicy
    from repro.workloads.registry import database_inputs

    trace = params["trace"]
    if os.path.getsize(trace) == 0:
        raise ValueError(f"empty trace file {trace!r}")
    structs, filters = database_inputs(params["registry"])
    policy = ImportPolicy(lenient=True, max_malformed_fraction=params["budget"])
    if params["backend"] == "sqlite":
        import tempfile

        from repro.db import sqlstore

        with tempfile.TemporaryDirectory(prefix="lockdoc-health-store-") as tmp:
            health, report = sqlstore.ingest_path_spooled(
                trace, os.path.join(tmp, "health.store.sqlite"),
                structs, filters, policy,
            )
    else:
        _db, health, report = ingest_path(trace, structs, filters, policy)
    parts = []
    if report.diagnostics:
        parts.append(
            render_diagnostics(report.diagnostics, limit=params["diagnostics"])
        )
    parts.append(health.render())
    return {
        "text": "\n".join(parts),
        "exit_code": 1 if health.budget_exceeded else 0,
    }


_RUNNERS: Dict[str, Callable[[Dict[str, Any]], Dict[str, Any]]] = {
    "derive": _run_derive,
    "check": _run_check,
    "violations": _run_violations,
    "races": _run_races,
    "stats": _run_stats,
    "health": _run_health,
}


def execute(op: str, params: Dict[str, Any]) -> Dict[str, Any]:
    """Run one validated operation; returns the JSON-able result."""
    canonical = validate(op, params)
    return _RUNNERS[op](canonical)
