"""JSON-lines structured log for the analysis daemon.

Production debuggability (the "Sense of Logging" posture): every
lifecycle event, request and classified outcome is one self-describing
JSON object per line — greppable, parseable, append-only.  The logger
is **fail-silent**: a full disk or unwritable path degrades to no
logging, never to a crashed daemon.
"""

from __future__ import annotations

import io
import json
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union


class StructuredLog:
    """Append-only JSON-lines event log (one object per line)."""

    def __init__(self, path: Optional[Union[str, Path]]) -> None:
        self.path = Path(path) if path is not None else None
        self._fp: Optional[io.TextIOWrapper] = None
        if self.path is not None:
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._fp = open(self.path, "a", encoding="utf-8")
            except OSError:
                self._fp = None  # fail-silent: keep serving, unlogged

    def emit(self, event: str, **fields: Any) -> None:
        """Append one event; never raises."""
        if self._fp is None:
            return
        record: Dict[str, Any] = {"ts": round(time.time(), 6), "event": event}
        record.update(fields)
        try:
            self._fp.write(json.dumps(record, sort_keys=True, default=str) + "\n")
            self._fp.flush()
        except (OSError, ValueError):
            pass

    def close(self) -> None:
        if self._fp is not None:
            try:
                self._fp.close()
            except OSError:
                pass
            self._fp = None


def read_events(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a structured log back into event dicts (tolerating a torn
    final line from a killed writer)."""
    events: List[Dict[str, Any]] = []
    try:
        with open(path, encoding="utf-8") as fp:
            for line in fp:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue  # torn tail
                if isinstance(record, dict):
                    events.append(record)
    except OSError:
        return []
    return events
