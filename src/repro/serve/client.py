"""Synchronous daemon client with fault-tolerant retry behaviour.

Used by the CLI's ``--remote`` mode.  Transport is one request per
connection over the daemon's unix socket.  The client owns the retry
policy:

* transport failures (daemon not running, connection reset, socket
  timeout) retry under **exponential backoff with jitter**; when every
  attempt fails, :class:`DaemonUnreachable` is raised and the caller
  degrades to local computation (explicitly flagged);
* ``RETRY_AFTER`` / ``SHUTTING_DOWN`` replies retry after
  ``max(server hint, backoff)`` — the server's hint always wins over
  an eager client;
* every other classified error (``BAD_REQUEST``, ``DEADLINE``,
  ``WORKER_CRASH``, ``INTERNAL``) is **not** retried — the server
  already performed bounded re-execution for crashes, and re-sending a
  bad request cannot fix it — and surfaces as :class:`RemoteError`.
"""

from __future__ import annotations

import os
import random
import socket
import time
import uuid
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Union

from repro.serve import paths
from repro.serve.protocol import (
    MAX_LINE,
    ProtocolError,
    Request,
    Response,
    RETRYABLE_KINDS,
)


class DaemonUnreachable(ConnectionError):
    """The daemon could not be reached after every retry."""


class RemoteError(RuntimeError):
    """The daemon answered with a classified, non-retryable error."""

    def __init__(self, kind: str, message: str,
                 retry_after: Optional[float] = None) -> None:
        super().__init__(f"[{kind}] {message}")
        self.kind = kind
        self.message = message
        self.retry_after = retry_after


class RemoteClient:
    """One client identity talking to one daemon socket."""

    def __init__(
        self,
        socket_path: Optional[Union[str, Path]] = None,
        attempts: int = 4,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        client_id: Optional[str] = None,
        connect_timeout: float = 5.0,
        rng: Optional[random.Random] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {attempts}")
        self.socket_path = Path(socket_path) if socket_path else paths.socket_path()
        self.attempts = attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.client_id = client_id or f"cli-{os.getpid()}"
        self.connect_timeout = connect_timeout
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _call_once(self, request: Request) -> Response:
        io_timeout = self.connect_timeout
        if request.deadline is not None:
            # The socket read must outlive the server-side deadline, or
            # a slow-but-in-budget request would be misread as a
            # transport failure.
            io_timeout = max(io_timeout, request.deadline + 5.0)
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(self.connect_timeout)
            sock.connect(str(self.socket_path))
            sock.settimeout(io_timeout)
            sock.sendall(request.to_wire())
            chunks = []
            total = 0
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
                total += len(chunk)
                if chunk.endswith(b"\n"):
                    break
                if total > MAX_LINE * 4:
                    raise ProtocolError("oversized response")
        line = b"".join(chunks)
        if not line:
            raise ConnectionError("daemon closed the connection without a reply")
        return Response.from_wire(line)

    def _backoff(self, attempt: int) -> float:
        delay = min(self.max_delay, self.base_delay * (2 ** attempt))
        return delay * (0.5 + self._rng.random())  # jitter in [0.5, 1.5)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def request(
        self,
        op: str,
        params: Optional[Dict[str, Any]] = None,
        deadline: Optional[float] = None,
    ) -> Response:
        """Send one operation; returns the ``ok`` response.

        Raises :class:`RemoteError` on a classified failure and
        :class:`DaemonUnreachable` when the daemon never answered.
        """
        req = Request(
            op=op,
            params=params or {},
            request_id=uuid.uuid4().hex[:12],
            client=self.client_id,
            deadline=deadline,
        )
        transport_error: Optional[Exception] = None
        last_retryable: Optional[RemoteError] = None
        for attempt in range(self.attempts):
            try:
                response = self._call_once(req)
            except ProtocolError:
                raise
            except (ConnectionError, FileNotFoundError, socket.timeout,
                    OSError) as exc:
                transport_error = exc
                if attempt + 1 < self.attempts:
                    self._sleep(self._backoff(attempt))
                continue
            if response.status == "ok":
                return response
            kind = response.error_kind or "INTERNAL"
            if kind in RETRYABLE_KINDS and attempt + 1 < self.attempts:
                last_retryable = RemoteError(
                    kind, response.error_message, response.retry_after
                )
                hint = response.retry_after or 0.0
                self._sleep(max(hint, self._backoff(attempt)))
                continue
            raise RemoteError(kind, response.error_message, response.retry_after)
        if transport_error is not None:
            raise DaemonUnreachable(
                f"analysis daemon unreachable at {self.socket_path} "
                f"after {self.attempts} attempts ({transport_error})"
            )
        assert last_retryable is not None
        raise last_retryable

    def ping(self) -> bool:
        """True when a daemon answers on the socket (no retries)."""
        try:
            probe = RemoteClient(
                self.socket_path, attempts=1, client_id=self.client_id,
                connect_timeout=self.connect_timeout,
            )
            return probe.request("ping").result == {"pong": True}
        except (DaemonUnreachable, RemoteError, ProtocolError):
            return False

    def status(self) -> Dict[str, Any]:
        response = self.request("status")
        return response.result or {}

    def shutdown(self) -> bool:
        try:
            response = self.request("shutdown")
        except (DaemonUnreachable, RemoteError):
            return False
        return bool(response.result and response.result.get("stopping"))
