"""Where one daemon instance keeps its runtime state.

The socket, pidfile and structured log live together in one runtime
directory under the cache (the daemon's primary state), overridable
with ``LOCKDOC_SERVE_DIR`` — the test suites and the chaos harness
point it at short-lived private directories.  The socket path alone is
additionally overridable with ``LOCKDOC_SERVE_SOCKET`` so ``--remote``
clients can target a non-default daemon without relocating its state.
"""

from __future__ import annotations

import os
from pathlib import Path

ENV_DIR = "LOCKDOC_SERVE_DIR"
ENV_SOCKET = "LOCKDOC_SERVE_SOCKET"


def runtime_dir() -> Path:
    override = os.environ.get(ENV_DIR)
    if override:
        return Path(override).expanduser()
    from repro import cache

    return cache.cache_dir() / "serve"


def socket_path() -> Path:
    override = os.environ.get(ENV_SOCKET)
    if override:
        return Path(override).expanduser()
    return runtime_dir() / "serve.sock"


def pidfile_path() -> Path:
    return runtime_dir() / "serve.pid"


def log_path() -> Path:
    return runtime_dir() / "serve.log.jsonl"
