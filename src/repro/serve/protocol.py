"""The fault-tolerant request envelope.

Transport is deliberately minimal: one JSON object per line over a
unix-domain socket, one request per connection.  Every reply carries a
machine-readable **classification** — a request can end three ways:

* ``status == "ok"`` — the result is correct (recomputed if the cache
  was damaged, coalesced if a twin was already in flight);
* ``status == "error"`` with ``error.kind`` in :data:`ERROR_KINDS` — a
  clean, classified failure the client can act on (``RETRY_AFTER``
  carries a retry hint, ``DEADLINE`` means the worker was killed at the
  requested deadline, ``WORKER_CRASH`` means bounded re-execution was
  exhausted);
* transport failure — the daemon is unreachable; the client degrades
  to local computation, explicitly flagged.

Requests are content-addressed: :func:`request_key` digests the
canonical ``(op, params)`` so the server can coalesce duplicate
in-flight requests and the chaos operators can inject deterministically
per request.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: Wire-format version; bump on incompatible envelope changes.
PROTOCOL_VERSION = 1

#: Largest accepted request line (bytes) — a flooded or garbage client
#: cannot make the server buffer unboundedly.
MAX_LINE = 1 << 20

# ---------------------------------------------------------------------
# Error classification
# ---------------------------------------------------------------------

#: Malformed envelope, unknown op, or invalid params.  Not retryable.
E_BAD_REQUEST = "BAD_REQUEST"
#: Load was shed (queue full) or the client's token budget is empty.
#: Retryable after ``error.retry_after`` seconds.
E_RETRY_AFTER = "RETRY_AFTER"
#: The per-request deadline expired; the worker was killed.
E_DEADLINE = "DEADLINE"
#: The worker process died (crash, OOM-kill, chaos); bounded
#: re-execution was exhausted.
E_WORKER_CRASH = "WORKER_CRASH"
#: The operation itself raised; message carries the classified cause.
E_INTERNAL = "INTERNAL"
#: The daemon is draining for shutdown; retry against a new instance.
E_SHUTTING_DOWN = "SHUTTING_DOWN"

ERROR_KINDS = frozenset({
    E_BAD_REQUEST,
    E_RETRY_AFTER,
    E_DEADLINE,
    E_WORKER_CRASH,
    E_INTERNAL,
    E_SHUTTING_DOWN,
})

#: Error kinds a client may transparently retry.  ``WORKER_CRASH`` is
#: deliberately absent: the server already performed bounded
#: re-execution, so a client retry would multiply the damage.
RETRYABLE_KINDS = frozenset({E_RETRY_AFTER, E_SHUTTING_DOWN})


class ProtocolError(ValueError):
    """A malformed request/response envelope."""


def request_key(op: str, params: Dict[str, Any]) -> str:
    """Content-addressed key of one request: sha256 of the canonical
    ``(op, params)`` JSON.  Two requests with the same key are the same
    computation and may share one in-flight execution."""
    blob = json.dumps({"op": op, "params": params}, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:24]


@dataclass
class Request:
    """One client request."""

    op: str
    params: Dict[str, Any] = field(default_factory=dict)
    request_id: str = ""
    client: str = "anon"
    deadline: Optional[float] = None  # seconds, wall-clock budget

    def to_wire(self) -> bytes:
        payload = {
            "v": PROTOCOL_VERSION,
            "id": self.request_id,
            "op": self.op,
            "params": self.params,
            "client": self.client,
            "deadline": self.deadline,
        }
        return json.dumps(payload, sort_keys=True).encode() + b"\n"

    @classmethod
    def from_wire(cls, line: bytes) -> "Request":
        try:
            payload = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ProtocolError(f"unparseable request line: {exc}") from None
        if not isinstance(payload, dict):
            raise ProtocolError("request is not a JSON object")
        if payload.get("v") != PROTOCOL_VERSION:
            raise ProtocolError(
                f"unsupported protocol version {payload.get('v')!r} "
                f"(expected {PROTOCOL_VERSION})"
            )
        op = payload.get("op")
        if not isinstance(op, str) or not op:
            raise ProtocolError("request has no op")
        params = payload.get("params") or {}
        if not isinstance(params, dict):
            raise ProtocolError("request params must be an object")
        deadline = payload.get("deadline")
        if deadline is not None:
            try:
                deadline = float(deadline)
            except (TypeError, ValueError):
                raise ProtocolError(
                    f"bad deadline {payload.get('deadline')!r}"
                ) from None
            if deadline <= 0:
                raise ProtocolError(f"deadline must be positive, got {deadline}")
        return cls(
            op=op,
            params=params,
            request_id=str(payload.get("id") or ""),
            client=str(payload.get("client") or "anon"),
            deadline=deadline,
        )


@dataclass
class Response:
    """One server reply: ``ok(result)`` or a classified error."""

    status: str  # "ok" | "error"
    request_id: str = ""
    result: Optional[Dict[str, Any]] = None
    error_kind: Optional[str] = None
    error_message: str = ""
    retry_after: Optional[float] = None
    #: Envelope metadata: coalesced, attempts, latency_ms, ...
    meta: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def ok(cls, request_id: str, result: Dict[str, Any], **meta) -> "Response":
        return cls(status="ok", request_id=request_id, result=result, meta=meta)

    @classmethod
    def error(
        cls,
        request_id: str,
        kind: str,
        message: str,
        retry_after: Optional[float] = None,
        **meta,
    ) -> "Response":
        assert kind in ERROR_KINDS, kind
        return cls(
            status="error",
            request_id=request_id,
            error_kind=kind,
            error_message=message,
            retry_after=retry_after,
            meta=meta,
        )

    def to_wire(self) -> bytes:
        payload: Dict[str, Any] = {
            "v": PROTOCOL_VERSION,
            "id": self.request_id,
            "status": self.status,
            "meta": self.meta,
        }
        if self.status == "ok":
            payload["result"] = self.result
        else:
            error: Dict[str, Any] = {
                "kind": self.error_kind,
                "message": self.error_message,
            }
            if self.retry_after is not None:
                error["retry_after"] = round(self.retry_after, 4)
            payload["error"] = error
        return json.dumps(payload, sort_keys=True).encode() + b"\n"

    @classmethod
    def from_wire(cls, line: bytes) -> "Response":
        try:
            payload = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ProtocolError(f"unparseable response line: {exc}") from None
        if not isinstance(payload, dict) or payload.get("v") != PROTOCOL_VERSION:
            raise ProtocolError("unsupported response envelope")
        status = payload.get("status")
        if status == "ok":
            result = payload.get("result")
            if not isinstance(result, dict):
                raise ProtocolError("ok response carries no result object")
            return cls(
                status="ok",
                request_id=str(payload.get("id") or ""),
                result=result,
                meta=payload.get("meta") or {},
            )
        if status == "error":
            error = payload.get("error") or {}
            kind = error.get("kind")
            if kind not in ERROR_KINDS:
                raise ProtocolError(f"unknown error kind {kind!r}")
            retry_after = error.get("retry_after")
            return cls(
                status="error",
                request_id=str(payload.get("id") or ""),
                error_kind=kind,
                error_message=str(error.get("message") or ""),
                retry_after=float(retry_after) if retry_after is not None else None,
                meta=payload.get("meta") or {},
            )
        raise ProtocolError(f"unknown response status {status!r}")
