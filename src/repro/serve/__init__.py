"""Always-on analysis service (``lockdoc serve`` + ``--remote``).

One long-lived daemon owns the content-addressed trace/artifact cache
and answers ``derive`` / ``races`` / ``violations`` / ``health`` /
``check`` requests from many concurrent clients — the "one shared warm
store, N cheap clients" refactor of the ROADMAP.  The package is split
by concern:

==============  =====================================================
``protocol``    the fault-tolerant request envelope (JSON lines,
                classified error kinds, content-addressed request keys)
``ops``         the operation registry: validated params → rendered
                result, shared verbatim by local and remote execution
``envelope``    robustness primitives: deadlines, token buckets,
                admission counters
``pool``        per-request worker processes with kill-on-deadline and
                crashed-worker classification
``recovery``    startup sweep quarantining torn/corrupt cache entries
``server``      the asyncio front end: coalescing, budgets, shedding,
                bounded re-execution, structured logging
``client``      sync client: retries with exponential backoff +
                jitter, server retry hints, degraded local fallback
``daemon``      run/status/stop management (socket, pidfile, log)
``slog``        JSON-lines structured log
==============  =====================================================

Every request terminates in a correct result or a clean, classified
error — never a hang, a traceback, or a silently-wrong artifact.
"""

from repro.serve.client import DaemonUnreachable, RemoteClient, RemoteError
from repro.serve.protocol import ERROR_KINDS, Request, Response, request_key
from repro.serve.server import ServerConfig, serve_forever

__all__ = [
    "DaemonUnreachable",
    "RemoteClient",
    "RemoteError",
    "ERROR_KINDS",
    "Request",
    "Response",
    "request_key",
    "ServerConfig",
    "serve_forever",
]
