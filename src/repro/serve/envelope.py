"""Robustness-envelope primitives: deadlines, budgets, admission.

These are plain synchronous objects (the asyncio server drives them
from one thread) with injectable clocks for deterministic tests.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Tuple


class Deadline:
    """A wall-clock budget for one request."""

    def __init__(
        self, seconds: Optional[float], clock: Callable[[], float] = time.monotonic
    ) -> None:
        self._clock = clock
        self.seconds = seconds
        self._expires = clock() + seconds if seconds is not None else None

    def remaining(self) -> Optional[float]:
        """Seconds left (>= 0), or None for an unbounded request."""
        if self._expires is None:
            return None
        return max(0.0, self._expires - self._clock())

    def expired(self) -> bool:
        remaining = self.remaining()
        return remaining is not None and remaining <= 0.0


class TokenBucket:
    """Per-client request budget: *rate* tokens/s, *burst* capacity.

    ``try_take`` either spends one token or returns the seconds until
    the next token accrues — the server forwards that as the
    ``RETRY_AFTER`` hint, so a flooding client backs off instead of
    queueing unboundedly.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0 or burst < 1:
            raise ValueError(f"bad bucket shape rate={rate} burst={burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._updated = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._updated)
        self._updated = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    def try_take(self) -> Tuple[bool, float]:
        """(granted, retry_after_seconds)."""
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True, 0.0
        return False, (1.0 - self._tokens) / self.rate


class ClientBudgets:
    """One :class:`TokenBucket` per client id (bounded client table)."""

    #: Hard cap on tracked clients; beyond it the least-recently-seen
    #: bucket is evicted (a fresh bucket is *more* permissive, so
    #: eviction can never lock a client out).
    MAX_CLIENTS = 1024

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}

    def try_take(self, client: str) -> Tuple[bool, float]:
        bucket = self._buckets.pop(client, None)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst, clock=self._clock)
            if len(self._buckets) >= self.MAX_CLIENTS:
                oldest = next(iter(self._buckets))
                del self._buckets[oldest]
        self._buckets[client] = bucket  # re-insert: LRU order
        return bucket.try_take()


class Admission:
    """Bounded-queue admission counter (load shedding).

    The server admits at most *limit* concurrently active requests
    (running or queued on the worker semaphore).  Beyond that, new
    requests are shed with an explicit ``RETRY_AFTER`` instead of
    accumulating unbounded latency.
    """

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError(f"admission limit must be >= 1, got {limit}")
        self.limit = int(limit)
        self.active = 0
        self.shed = 0

    def try_enter(self) -> bool:
        if self.active >= self.limit:
            self.shed += 1
            return False
        self.active += 1
        return True

    def leave(self) -> None:
        self.active = max(0, self.active - 1)
