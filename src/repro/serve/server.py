"""The asyncio front end of the analysis daemon.

One event loop accepts requests on a unix-domain socket and drives
every robustness mechanism of the envelope:

* **validation** — op/params are canonicalized up front; junk is
  rejected as ``BAD_REQUEST`` before any resource is committed;
* **budgets** — a per-client token bucket; an empty bucket answers
  ``RETRY_AFTER`` with the seconds until the next token;
* **load shedding** — a bounded admission count; past it, requests are
  rejected immediately (explicit ``RETRY_AFTER``) instead of queueing
  into unbounded latency;
* **coalescing** — duplicate in-flight requests (same content-
  addressed key) share one worker execution; followers are flagged
  ``coalesced`` and keep their own deadlines;
* **deadlines** — each request carries a wall-clock budget; expiry
  kills the worker (SIGKILL) and answers ``DEADLINE``;
* **crash containment** — a worker that dies mid-request is detected
  (pipe EOF + exit code), re-executed at most ``max_retries`` times,
  then classified ``WORKER_CRASH``;
* **recovery** — before accepting, a sweep quarantines torn cache
  entries (see :mod:`repro.serve.recovery`);
* **observability** — every event lands in the JSON-lines structured
  log; ``status`` reports live counters.

The handler never lets an exception escape to the transport: anything
unexpected is logged and classified ``INTERNAL``.
"""

from __future__ import annotations

import asyncio
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Set, Tuple

import repro.kernel  # noqa: F401  (must initialize before repro.tracing)
from repro.atomicio import atomic_write_json
from repro.faults.daemon import ChaosPlan
from repro.serve import ops, pool, recovery
from repro.serve.envelope import Admission, ClientBudgets, Deadline
from repro.serve.protocol import (
    E_BAD_REQUEST,
    E_DEADLINE,
    E_INTERNAL,
    E_RETRY_AFTER,
    E_SHUTTING_DOWN,
    MAX_LINE,
    ProtocolError,
    Request,
    Response,
    request_key,
)
from repro.serve.slog import StructuredLog


def _default_workers() -> int:
    return max(2, min(8, os.cpu_count() or 2))


@dataclass
class ServerConfig:
    """Tunables of one daemon instance."""

    socket_path: Path
    workers: int = field(default_factory=_default_workers)
    #: Admission bound: max concurrently active requests (running or
    #: waiting on a worker slot); beyond it requests are shed.
    max_inflight: int = 32
    #: Per-client token bucket: sustained requests/s and burst size.
    bucket_rate: float = 20.0
    bucket_burst: float = 40.0
    #: Deadline applied when the client sends none.
    default_deadline: float = 300.0
    #: Retry hint handed out when shedding load.
    shed_retry_after: float = 1.0
    #: Bounded re-execution: how many times a crashed worker's request
    #: is retried before answering ``WORKER_CRASH``.
    max_retries: int = 1
    #: Daemon-level fault injection (chaos harness); empty = off.
    chaos_spec: str = ""
    chaos_seed: int = 0
    log_path: Optional[Path] = None
    pidfile: Optional[Path] = None
    #: Skip the startup recovery sweep (tests only).
    skip_sweep: bool = False


class AnalysisServer:
    """One daemon instance; drive with :func:`serve_forever`."""

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        self.chaos: Optional[ChaosPlan] = (
            ChaosPlan.from_spec(config.chaos_spec, seed=config.chaos_seed)
            if config.chaos_spec
            else None
        )
        self.log = StructuredLog(config.log_path)
        self.budgets = ClientBudgets(config.bucket_rate, config.bucket_burst)
        self.admission = Admission(config.max_inflight)
        self.counters: Dict[str, int] = {
            "received": 0,
            "ok": 0,
            "coalesced": 0,
            "shed": 0,
            "budget_denied": 0,
            "workers_spawned": 0,
            "worker_retries": 0,
        }
        self.error_counts: Dict[str, int] = {}
        self.started_at = time.time()
        self.sweep_report: Optional[recovery.SweepReport] = None
        self._slots = asyncio.Semaphore(config.workers)
        self._inflight: Dict[str, asyncio.Task] = {}
        self._active_workers: Set[pool.WorkerTask] = set()
        self._stop = asyncio.Event()
        self._draining = False
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def request_stop(self) -> None:
        self._draining = True
        self._stop.set()

    async def _claim_socket(self) -> None:
        """Bind the socket path, evicting a stale leftover socket."""
        path = self.config.socket_path
        path.parent.mkdir(parents=True, exist_ok=True)
        if path.exists():
            try:
                _, writer = await asyncio.wait_for(
                    asyncio.open_unix_connection(str(path)), timeout=1.0
                )
                writer.close()
                raise ValueError(f"a daemon is already serving on {path}")
            except (ConnectionError, FileNotFoundError, OSError, asyncio.TimeoutError):
                path.unlink(missing_ok=True)  # stale socket from a dead daemon

    async def start(self) -> None:
        if not self.config.skip_sweep:
            self.sweep_report = recovery.sweep()
            for name, reason in self.sweep_report.quarantined:
                self.log.emit("sweep_quarantine", file=name, reason=reason)
        await self._claim_socket()
        self._server = await asyncio.start_unix_server(
            self._handle_conn, path=str(self.config.socket_path), limit=MAX_LINE
        )
        if self.config.pidfile is not None:
            atomic_write_json(
                self.config.pidfile,
                {
                    "pid": os.getpid(),
                    "socket": str(self.config.socket_path),
                    "started": self.started_at,
                },
            )
        self.log.emit(
            "start",
            pid=os.getpid(),
            socket=str(self.config.socket_path),
            workers=self.config.workers,
            max_inflight=self.config.max_inflight,
            bucket_rate=self.config.bucket_rate,
            bucket_burst=self.config.bucket_burst,
            chaos=self.config.chaos_spec or None,
            sweep=(
                self.sweep_report.to_json_dict()
                if self.sweep_report is not None
                else None
            ),
            **pool.worker_env_note(),
        )

    async def run_until_stopped(self) -> None:
        await self._stop.wait()
        # Grace period: let the connection that requested shutdown
        # receive its acknowledgement before the listener dies.
        await asyncio.sleep(0.1)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._inflight.values()):
            task.cancel()
        if self._inflight:
            await asyncio.gather(
                *self._inflight.values(), return_exceptions=True
            )
        for worker in list(self._active_workers):
            worker.kill()
        self.log.emit("shutdown", served=self.counters["received"])
        self.log.close()
        if self.config.pidfile is not None:
            Path(self.config.pidfile).unlink(missing_ok=True)
        self.config.socket_path.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        response: Optional[Response] = None
        try:
            try:
                line = await asyncio.wait_for(reader.readline(), timeout=60.0)
            except asyncio.TimeoutError:
                return  # silent client: drop the connection
            if not line:
                return
            try:
                request = Request.from_wire(line)
            except ProtocolError as exc:
                response = Response.error("", E_BAD_REQUEST, str(exc))
            else:
                response = await self._dispatch(request)
        except asyncio.CancelledError:
            response = Response.error(
                "", E_SHUTTING_DOWN, "daemon is shutting down"
            )
        except Exception as exc:  # noqa: BLE001 - the envelope never leaks
            self.log.emit(
                "internal_error", error=f"{type(exc).__name__}: {exc}"
            )
            response = Response.error(
                "", E_INTERNAL, f"{type(exc).__name__}: {exc}"
            )
        finally:
            if response is not None:
                try:
                    writer.write(response.to_wire())
                    await writer.drain()
                except (ConnectionError, OSError):
                    pass
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # ------------------------------------------------------------------
    # Dispatch: the robustness envelope
    # ------------------------------------------------------------------

    def _count_error(self, kind: str) -> None:
        self.error_counts[kind] = self.error_counts.get(kind, 0) + 1

    def _finish(self, response: Response, request: Request, t0: float) -> Response:
        latency_ms = round((time.monotonic() - t0) * 1000, 3)
        response.meta.setdefault("latency_ms", latency_ms)
        if response.status == "ok":
            self.counters["ok"] += 1
        else:
            self._count_error(response.error_kind or E_INTERNAL)
        self.log.emit(
            "reply",
            id=request.request_id,
            client=request.client,
            op=request.op,
            status=response.status,
            kind=response.error_kind,
            latency_ms=latency_ms,
            coalesced=bool(response.meta.get("coalesced")),
            attempts=response.meta.get("attempts"),
        )
        return response

    async def _dispatch(self, request: Request) -> Response:
        t0 = time.monotonic()
        self.counters["received"] += 1
        self.log.emit(
            "request",
            id=request.request_id,
            client=request.client,
            op=request.op,
            deadline=request.deadline,
        )
        if request.op == "ping":
            return self._finish(
                Response.ok(request.request_id, {"pong": True}), request, t0
            )
        if request.op == "status":
            return self._finish(
                Response.ok(request.request_id, self.status_payload()),
                request,
                t0,
            )
        if request.op == "shutdown":
            self.request_stop()
            self.log.emit("shutdown_requested", client=request.client)
            return self._finish(
                Response.ok(request.request_id, {"stopping": True}), request, t0
            )
        if self._draining:
            return self._finish(
                Response.error(
                    request.request_id,
                    E_SHUTTING_DOWN,
                    "daemon is draining",
                    retry_after=1.0,
                ),
                request,
                t0,
            )
        try:
            params = ops.validate(request.op, request.params)
        except ValueError as exc:
            return self._finish(
                Response.error(request.request_id, E_BAD_REQUEST, str(exc)),
                request,
                t0,
            )
        granted, retry_after = self.budgets.try_take(request.client)
        if not granted:
            self.counters["budget_denied"] += 1
            self.log.emit(
                "budget_denied", client=request.client, retry_after=retry_after
            )
            return self._finish(
                Response.error(
                    request.request_id,
                    E_RETRY_AFTER,
                    f"client {request.client!r} exceeded its request budget",
                    retry_after=retry_after,
                ),
                request,
                t0,
            )
        if not self.admission.try_enter():
            self.counters["shed"] += 1
            self.log.emit("shed", client=request.client, active=self.admission.active)
            return self._finish(
                Response.error(
                    request.request_id,
                    E_RETRY_AFTER,
                    f"server at capacity ({self.admission.limit} active requests)",
                    retry_after=self.config.shed_retry_after,
                ),
                request,
                t0,
            )
        try:
            response = await self._admitted(request, params)
        finally:
            self.admission.leave()
        return self._finish(response, request, t0)

    async def _admitted(
        self, request: Request, params: Dict[str, Any]
    ) -> Response:
        key = request_key(request.op, params)
        deadline = Deadline(request.deadline or self.config.default_deadline)
        leader_task = self._inflight.get(key)
        coalesced = leader_task is not None
        if leader_task is None:
            leader_task = asyncio.ensure_future(
                self._execute(key, request.op, params, deadline)
            )
            self._inflight[key] = leader_task
            leader_task.add_done_callback(
                lambda _task, _key=key: self._inflight.pop(_key, None)
            )
        else:
            self.counters["coalesced"] += 1
        try:
            if coalesced:
                outcome, attempts = await asyncio.wait_for(
                    asyncio.shield(leader_task), deadline.remaining()
                )
            else:
                outcome, attempts = await leader_task
        except asyncio.TimeoutError:
            return Response.error(
                request.request_id,
                E_DEADLINE,
                "deadline expired while awaiting a coalesced twin request",
                coalesced=True,
            )
        except asyncio.CancelledError:
            return Response.error(
                request.request_id,
                E_SHUTTING_DOWN,
                "daemon shut down mid-request",
            )
        if outcome.status == "ok":
            return Response.ok(
                request.request_id,
                outcome.result or {},
                coalesced=coalesced,
                attempts=attempts,
                compute_ms=round(outcome.elapsed * 1000, 3),
            )
        kind, message = outcome.as_error()
        return Response.error(
            request.request_id,
            kind,
            message,
            coalesced=coalesced,
            attempts=attempts,
        )

    # ------------------------------------------------------------------
    # Worker execution with deadline + bounded re-execution
    # ------------------------------------------------------------------

    async def _await_worker(
        self, task: pool.WorkerTask, timeout: Optional[float]
    ) -> pool.TaskOutcome:
        loop = asyncio.get_running_loop()
        readable: asyncio.Future = loop.create_future()
        fd = task.fileno()

        def _on_readable() -> None:
            if not readable.done():
                readable.set_result(True)

        loop.add_reader(fd, _on_readable)
        timed_out = False
        try:
            await asyncio.wait_for(readable, timeout)
        except asyncio.TimeoutError:
            timed_out = True
        finally:
            loop.remove_reader(fd)
        if timed_out:
            outcome = task.cancel()
            self.log.emit("worker_killed", pid=task.pid, reason="deadline")
            return outcome
        return task.collect()

    async def _execute(
        self, key: str, op: str, params: Dict[str, Any], deadline: Deadline
    ) -> Tuple[pool.TaskOutcome, int]:
        attempt = 0
        while True:
            async with self._slots:
                remaining = deadline.remaining()
                if remaining is not None and remaining <= 0:
                    return pool.TaskOutcome(status="deadline"), attempt + 1
                worker = pool.WorkerTask(
                    op, params, chaos=self.chaos, attempt=attempt
                )
                self.counters["workers_spawned"] += 1
                self._active_workers.add(worker)
                try:
                    outcome = await self._await_worker(worker, remaining)
                finally:
                    self._active_workers.discard(worker)
            if outcome.status == "crash":
                self.log.emit(
                    "worker_crash",
                    key=key,
                    op=op,
                    pid=worker.pid,
                    exitcode=outcome.exitcode,
                    attempt=attempt,
                    will_retry=attempt < self.config.max_retries,
                )
                if attempt < self.config.max_retries:
                    attempt += 1
                    self.counters["worker_retries"] += 1
                    continue
            return outcome, attempt + 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def status_payload(self) -> Dict[str, Any]:
        return {
            "pid": os.getpid(),
            "uptime_s": round(time.time() - self.started_at, 3),
            "socket": str(self.config.socket_path),
            "workers": self.config.workers,
            "max_inflight": self.config.max_inflight,
            "active": self.admission.active,
            "inflight_keys": len(self._inflight),
            "counters": dict(self.counters),
            "errors": dict(self.error_counts),
            "chaos": self.config.chaos_spec or None,
            "sweep": (
                self.sweep_report.to_json_dict()
                if self.sweep_report is not None
                else None
            ),
            "operations": list(ops.operation_names()),
        }


async def serve_async(config: ServerConfig) -> None:
    """Start a daemon and serve until a shutdown request or signal."""
    server = AnalysisServer(config)
    await server.start()
    loop = asyncio.get_running_loop()
    import signal as _signal

    for sig in (_signal.SIGINT, _signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, server.request_stop)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    await server.run_until_stopped()


def serve_forever(config: ServerConfig) -> None:
    """Blocking entry point (the ``lockdoc serve run`` body)."""
    asyncio.run(serve_async(config))
