"""Worker processes with kill-on-deadline and crash classification.

Cold analysis work (a derive at an unseen scale) runs for tens of
seconds; the daemon must be able to (a) **cancel** it when the
request's deadline expires, (b) **survive** it dying mid-computation,
and (c) keep one request's crash from poisoning another's executor.
``concurrent.futures.ProcessPoolExecutor`` offers none of these — a
running task cannot be cancelled, and one dead worker breaks the whole
pool — so the daemon spawns **one process per task**, bounded by the
server's worker semaphore:

* fork start-method where available (Linux): spawn cost is
  milliseconds and the child inherits the parent's warm imports;
* the result travels over a dedicated pipe; pipe EOF without a result
  plus a dead process classifies as ``WORKER_CRASH``;
* ``kill()`` (SIGKILL) implements deadline cancellation — the paper
  pipeline is pure (cache writes are atomic), so killing a worker at
  any point is safe.

The child ships classified outcomes, not pickled exceptions: a
``ValueError`` from validation/IO becomes ``BAD_REQUEST``; anything
else becomes ``INTERNAL`` with the exception type in the message.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.faults.daemon import ChaosPlan
from repro.serve import ops
from repro.serve.protocol import (
    E_BAD_REQUEST,
    E_DEADLINE,
    E_INTERNAL,
    E_WORKER_CRASH,
    request_key,
)


def _mp_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-posix fallback
        return multiprocessing.get_context("spawn")


def _child_main(conn, op: str, params: Dict[str, Any],
                chaos: Optional[ChaosPlan], attempt: int) -> None:
    """Worker entry point: compute, classify, ship one message."""
    try:
        if chaos is not None:
            chaos.inject(request_key(op, params), attempt)
        result = ops.execute(op, params)
        conn.send(("ok", result))
    except (ValueError, FileNotFoundError, IsADirectoryError) as exc:
        conn.send(("error", {"kind": E_BAD_REQUEST, "message": str(exc)}))
    except OSError as exc:
        conn.send(("error", {"kind": E_INTERNAL, "message": f"OSError: {exc}"}))
    except BaseException as exc:  # noqa: BLE001 - classify, never leak
        conn.send((
            "error",
            {"kind": E_INTERNAL, "message": f"{type(exc).__name__}: {exc}"},
        ))
    finally:
        try:
            conn.close()
        except OSError:
            pass


@dataclass
class TaskOutcome:
    """How one worker execution ended."""

    status: str  # "ok" | "error" | "crash" | "deadline"
    result: Optional[Dict[str, Any]] = None
    error_kind: Optional[str] = None
    error_message: str = ""
    exitcode: Optional[int] = None
    elapsed: float = 0.0

    def as_error(self) -> Tuple[str, str]:
        """(kind, message) for the envelope, for non-ok outcomes."""
        if self.status == "crash":
            return (
                E_WORKER_CRASH,
                f"worker died mid-request (exit code {self.exitcode})",
            )
        if self.status == "deadline":
            return (E_DEADLINE, "request deadline expired; worker cancelled")
        return (self.error_kind or E_INTERNAL, self.error_message)


class WorkerTask:
    """One in-flight worker process computing one request."""

    def __init__(
        self,
        op: str,
        params: Dict[str, Any],
        chaos: Optional[ChaosPlan] = None,
        attempt: int = 0,
    ) -> None:
        ctx = _mp_context()
        self._parent_conn, child_conn = ctx.Pipe(duplex=False)
        self.process = ctx.Process(
            target=_child_main,
            args=(child_conn, op, params, chaos, attempt),
            daemon=True,
        )
        self.started_at = time.monotonic()
        self.process.start()
        # The child owns its end now; closing ours makes EOF detection
        # work (otherwise the parent's copy keeps the pipe open).
        child_conn.close()

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    def fileno(self) -> int:
        """The readable pipe fd (for event-loop registration)."""
        return self._parent_conn.fileno()

    def collect(self) -> TaskOutcome:
        """Read the outcome after the pipe became readable (or EOF)."""
        elapsed = time.monotonic() - self.started_at
        try:
            status, payload = self._parent_conn.recv()
        except (EOFError, OSError):
            self._reap()
            return TaskOutcome(
                status="crash", exitcode=self.process.exitcode, elapsed=elapsed
            )
        self._reap()
        if status == "ok":
            return TaskOutcome(status="ok", result=payload, elapsed=elapsed)
        return TaskOutcome(
            status="error",
            error_kind=payload.get("kind", E_INTERNAL),
            error_message=payload.get("message", ""),
            elapsed=elapsed,
        )

    def cancel(self) -> TaskOutcome:
        """Kill the worker (deadline expiry) and report the outcome."""
        elapsed = time.monotonic() - self.started_at
        self.kill()
        return TaskOutcome(status="deadline", elapsed=elapsed)

    def kill(self) -> None:
        try:
            self.process.kill()
        except (OSError, AttributeError):  # pragma: no cover - defensive
            pass
        self._reap()

    def _reap(self) -> None:
        try:
            self.process.join(timeout=5.0)
        except (OSError, AssertionError):  # pragma: no cover - defensive
            pass
        try:
            self._parent_conn.close()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Synchronous driver (tests, benchmarks, local sampling)
    # ------------------------------------------------------------------

    def wait(self, timeout: Optional[float]) -> TaskOutcome:
        """Block until the worker finishes or *timeout* expires."""
        try:
            ready = self._parent_conn.poll(timeout)
        except (EOFError, OSError):
            ready = True
        if not ready:
            return self.cancel()
        return self.collect()


def run_task_sync(
    op: str,
    params: Dict[str, Any],
    timeout: Optional[float] = None,
    chaos: Optional[ChaosPlan] = None,
    attempt: int = 0,
) -> TaskOutcome:
    """Spawn one worker and wait for it (the non-asyncio entry point).

    This is also how the serve benchmark measures *local* latency: the
    same fork + compute + pipe round-trip the daemon performs, minus
    the socket and envelope — isolating exactly the daemon's overhead.
    """
    return WorkerTask(op, params, chaos=chaos, attempt=attempt).wait(timeout)


def worker_env_note() -> Dict[str, Any]:
    """Startup-log diagnostics about the worker mechanism."""
    return {
        "start_method": _mp_context().get_start_method(),
        "parent_pid": os.getpid(),
    }
