"""Benchmark workloads (the paper's custom mix, Sec. 7.1).

The paper drives the kernel with a subset of the Linux Test Project
plus custom programs: *fs-bench-test2* (create files, change
owner/permission, random access), *fsstress* (random I/O on a
directory tree), *fs_inod* (inode churn), pipe tests, symlink tests
and permission tests.  Each has an analogue here, all driving the
simulated VFS through scheduler kthreads:

* :mod:`repro.workloads.fsbench`   — fs-bench-test2
* :mod:`repro.workloads.fsstress`  — fsstress
* :mod:`repro.workloads.fsinod`    — fs_inod
* :mod:`repro.workloads.pipes`     — pipe workload
* :mod:`repro.workloads.symlinks`  — symlink workload
* :mod:`repro.workloads.perms`     — permission-change workload
* :mod:`repro.workloads.journal`   — jbd2 journal workload
* :mod:`repro.workloads.mix`       — the full benchmark mix
* :mod:`repro.workloads.coverage`  — code-coverage accounting (Tab. 3)
"""

from repro.workloads.base import Workload
from repro.workloads.mix import BenchmarkMix, run_benchmark_mix
from repro.workloads import registry

__all__ = ["BenchmarkMix", "Workload", "registry", "run_benchmark_mix"]
