"""Code-coverage accounting (Tab. 3).

The paper measures, with GCOV, how much of ``fs/``, ``fs/ext4/`` and
``fs/jbd2/`` the benchmark mix covers (roughly a third of the lines,
around 40 % of the functions).  The analogue here: a *function catalog*
of the simulated kernel — every synthesized op (including deviant and
RCU twins), every hand-written kernel function (extracted from the VFS
modules' source), plus the cold paths the benchmarks never trigger
(error handling, mount options, quota, ...), modelled as catalog
entries with realistic line spans.  A run's coverage is then

    executed functions / catalog functions      (function coverage)
    executed line span / catalog line span      (line coverage)

computed per directory, exactly the Tab. 3 rows.
"""

from __future__ import annotations

import inspect
import random
import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.db.database import TraceDatabase

#: Directories reported by Tab. 3.
TAB3_DIRECTORIES = ("fs", "fs/ext4", "fs/jbd2")

#: Cold-path function counts per directory, calibrated so the benchmark
#: mix lands in the paper's coverage band (fs ≈ 31 %, ext4 ≈ 32 %,
#: jbd2 ≈ 43 % of lines).
COLD_FUNCTIONS = {
    "fs": 410,
    "fs/ext4": 26,
    "fs/jbd2": 92,
}

#: Directories of the net slice's Tab. 3 second column.
NET_DIRECTORIES = ("net", "net/core", "net/ipv4")

#: Cold-path counts for the net slice (own seed: the vfs cold catalog
#: must keep drawing the exact same rng sequence it always has).
NET_COLD_FUNCTIONS = {
    "net": 120,
    "net/core": 150,
    "net/ipv4": 40,
}


@dataclass(frozen=True)
class SubsystemCatalog:
    """Catalog shape of one simulated subsystem.

    Directory buckets, cold-path sizing, and the modules to scan for
    hand-written kernel functions all derive from this registration —
    nothing downstream assumes ``fs/``-rooted paths.
    """

    directories: Tuple[str, ...]
    cold_functions: Dict[str, int]
    cold_seed: int
    #: dotted module names scanned for ``rt.function(...)`` frames.
    handwritten_modules: Tuple[str, ...]


SUBSYSTEM_CATALOGS: Dict[str, SubsystemCatalog] = {
    "vfs": SubsystemCatalog(
        directories=TAB3_DIRECTORIES,
        cold_functions=COLD_FUNCTIONS,
        cold_seed=0xC01D,
        handwritten_modules=(
            "repro.kernel.vfs.bufferhead",
            "repro.kernel.vfs.dentry",
            "repro.kernel.vfs.fs",
            "repro.kernel.vfs.inode",
            "repro.kernel.vfs.jbd2",
            "repro.kernel.vfs.pipe",
            "repro.workloads.perms",
            "repro.workloads.symlinks",
        ),
    ),
    "net": SubsystemCatalog(
        directories=NET_DIRECTORIES,
        cold_functions=NET_COLD_FUNCTIONS,
        cold_seed=0xC01DBE,
        handwritten_modules=(
            "repro.kernel.net.world",
            "repro.workloads.net",
        ),
    ),
}


def subsystem_directories(subsystem: str) -> Tuple[str, ...]:
    """The Tab. 3 directory buckets of *subsystem*."""
    return SUBSYSTEM_CATALOGS[subsystem].directories

_RT_FUNCTION = re.compile(
    r"(?:self\.)?rt\.function\(\s*ctx,\s*\"([^\"]+)\",\s*([\w\"./-]+),\s*(\d+)"
)


@dataclass(frozen=True)
class CatalogEntry:
    """One function of the simulated kernel."""

    name: str
    file: str
    line: int
    span: int  # body size in lines

    @property
    def directory(self) -> str:
        if "/" not in self.file:
            return "."
        directory = self.file.rsplit("/", 1)[0]
        return directory


@dataclass
class CoverageRow:
    """One Tab. 3 row."""

    directory: str
    lines_hit: int
    lines_total: int
    functions_hit: int
    functions_total: int

    @property
    def line_coverage(self) -> float:
        return self.lines_hit / self.lines_total if self.lines_total else 0.0

    @property
    def function_coverage(self) -> float:
        return self.functions_hit / self.functions_total if self.functions_total else 0.0

    def format(self) -> str:
        return (
            f"{self.directory:10s} "
            f"{self.line_coverage:6.2%} ({self.lines_hit}/{self.lines_total})  "
            f"{self.function_coverage:6.2%} ({self.functions_hit}/{self.functions_total})"
        )


def _handwritten_entries(subsystem: str = "vfs") -> List[CatalogEntry]:
    """Extract hand-written kernel functions from a subsystem's modules."""
    import importlib

    modules = [
        importlib.import_module(name)
        for name in SUBSYSTEM_CATALOGS[subsystem].handwritten_modules
    ]
    entries: Dict[Tuple[str, str], CatalogEntry] = {}
    for module in modules:
        source = inspect.getsource(module)
        for name, file_token, line in _RT_FUNCTION.findall(source):
            if file_token.startswith('"'):
                file = file_token.strip('"')
            else:
                # a module-level constant like FILE
                file = getattr(module, file_token, None)
                if not isinstance(file, str):
                    continue
            key = (name, file)
            if key not in entries:
                entries[key] = CatalogEntry(name, file, int(line), span=34)
    return list(entries.values())


def _engine_entries(world) -> List[CatalogEntry]:
    """Catalog entries for every synthesized op and its twins."""
    entries = []
    for ops in world.engine.ops_by_type.values():
        for op in ops:
            entries.append(CatalogEntry(op.func_name, op.file, op.line, span=30))
            if op.skip > 0:
                entries.append(
                    CatalogEntry(op.deviant_name, op.file, op.deviant_line, span=18)
                )
            if op.lockfree_alt > 0:
                entries.append(
                    CatalogEntry(op.func_name + "_rcu", op.file, op.line + 60, span=14)
                )
    return entries


def _cold_entries(subsystem: str = "vfs") -> List[CatalogEntry]:
    """Deterministic cold-path catalog (never executed by the mix).

    Each subsystem draws from its own seeded rng, so registering a new
    subsystem can never perturb another's span sequence.
    """
    catalog = SUBSYSTEM_CATALOGS[subsystem]
    rng = random.Random(catalog.cold_seed)
    entries = []
    for directory, count in catalog.cold_functions.items():
        for index in range(count):
            entries.append(
                CatalogEntry(
                    name=f"{directory.replace('/', '_')}_cold_{index:04d}",
                    file=f"{directory}/cold_{index % 12}.c",
                    line=100 + index * 60,
                    span=rng.randint(6, 64),
                )
            )
    return entries


def build_catalog(world, subsystem: str = "vfs") -> List[CatalogEntry]:
    """The full function catalog for one world."""
    return (
        _handwritten_entries(subsystem)
        + _engine_entries(world)
        + _cold_entries(subsystem)
    )


def executed_functions(db: TraceDatabase) -> Set[Tuple[str, str]]:
    """(function, file) pairs that appear on any recorded stack."""
    executed: Set[Tuple[str, str]] = set()
    for frames in db.stack_table:
        for name, file, _ in frames:
            executed.add((name, file))
    return executed


def coverage_report(
    world,
    db: TraceDatabase,
    directories: Optional[Iterable[str]] = None,
    subsystem: str = "vfs",
) -> List[CoverageRow]:
    """Per-directory coverage rows (Tab. 3).

    Like the paper, ``fs`` counts only files directly in ``fs/`` (each
    Tab. 3 line is "all files located in the respective directory").
    """
    if directories is None:
        directories = subsystem_directories(subsystem)
    catalog = build_catalog(world, subsystem)
    executed = executed_functions(db)
    rows = []
    for directory in directories:
        members = [e for e in catalog if e.directory == directory]
        hit = [e for e in members if (e.name, e.file) in executed]
        rows.append(
            CoverageRow(
                directory=directory,
                lines_hit=sum(e.span for e in hit),
                lines_total=sum(e.span for e in members),
                functions_hit=len(hit),
                functions_total=len(members),
            )
        )
    return rows
