"""Central workload registry.

Every trace source the pipeline can run — the benchmark mix, the
planted-race workloads, fuzzed corpora — is registered here under a
name, replacing the ad-hoc ``--workload`` string dispatch that used to
live in ``cli.py`` and ``experiments/common.py``.

A **factory** takes ``(seed, scale)`` and returns a run result
honouring the common contract: a ``.tracer`` property (the recorded
event stream) and a ``.to_database()`` method (the imported trace).
:class:`~repro.workloads.mix.MixResult` and
:class:`~repro.workloads.racer.RacerResult` already do.

Fuzzed corpora are addressable two ways:

* ``fuzz:<path>`` — load the corpus JSON at *path* on demand,
* ``fuzz:<corpus-id>`` — a corpus previously registered in-process via
  :func:`register_corpus` (the ``fuzz run`` CLI does this).

so every existing subcommand (``derive``, ``races``, ``stats``, ...)
can run a fuzzed corpus like any other workload.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.db.database import TraceDatabase

#: factory(seed, scale) -> result with ``.tracer`` / ``.to_database()``.
WorkloadFactory = Callable[[int, float], object]

_PREFIX_FUZZ = "fuzz:"

_REGISTRY: Dict[str, WorkloadFactory] = {}
_HELP: Dict[str, str] = {}
_DB_RECIPES: Dict[str, str] = {}
_SUBSYSTEMS: Dict[str, str] = {}


def register(
    name: str,
    factory: WorkloadFactory,
    help: str = "",
    db_recipe: str = "vfs",
    subsystem: str = "vfs",
) -> None:
    """Register (or replace) a named workload factory.

    *db_recipe* names the ``(StructRegistry, FilterConfig)`` pair a
    recorded trace of this workload must be imported with (``"vfs"``,
    ``"racer"``, or ``"net"``) — it lets a cached trace be re-imported
    without the original run result in hand.  *subsystem* tags which
    simulated slice the workload drives (``"vfs"``, ``"net"``,
    ``"mixed"``, ...); it groups the unknown-workload error listing
    and lets subsystem-specific tooling pick its inputs.
    """
    _REGISTRY[name] = factory
    _HELP[name] = help
    _DB_RECIPES[name] = db_recipe
    _SUBSYSTEMS[name] = subsystem


def db_recipe(name: str) -> str:
    """The database recipe name for workload *name*."""
    recipe = _DB_RECIPES.get(name)
    if recipe is not None:
        return recipe
    if name.startswith(_PREFIX_FUZZ):
        return "net" if _fuzz_subsystem(name) == "net" else "vfs"
    raise ValueError(f"unknown workload {name!r}")


def database_inputs(recipe: str):
    """``(StructRegistry, FilterConfig | None)`` for a recipe name.

    Both registries are rebuilt deterministically from source, so a
    trace imported through this pair matches an import through the
    original run result's ``to_database()``.
    """
    if recipe == "racer":
        from repro.workloads.racer import build_racer_registry

        return build_racer_registry(), None
    if recipe == "net":
        from repro.workloads.net import build_net_filters, build_net_registry

        return build_net_registry(), build_net_filters()
    from repro.kernel.vfs.groundtruth import build_filter_config
    from repro.kernel.vfs.layouts import build_struct_registry

    return build_struct_registry(), build_filter_config()


def available() -> List[str]:
    """Registered workload names (without dynamic ``fuzz:<path>``)."""
    return sorted(_REGISTRY)


def subsystem_of(name: str) -> str:
    """The subsystem tag of workload *name* (corpus-derived for fuzz
    refs)."""
    tag = _SUBSYSTEMS.get(name)
    if tag is not None:
        return tag
    if name.startswith(_PREFIX_FUZZ):
        return _fuzz_subsystem(name)
    raise ValueError(f"unknown workload {name!r}")


#: Corpora loaded from disk, keyed by path (fuzz:<path> refs).
_FUZZ_PATH_CACHE: Dict[str, object] = {}


def _load_fuzz_corpus(path: str):
    corpus = _FUZZ_PATH_CACHE.get(path)
    if corpus is None:
        from repro.fuzz.corpus import Corpus

        corpus = Corpus.load(path)
        _FUZZ_PATH_CACHE[path] = corpus
    return corpus


def _fuzz_subsystem(name: str) -> str:
    """The subsystem of a ``fuzz:<ref>`` workload (``"vfs"`` when the
    ref is not a loadable corpus file — resolution errors out later)."""
    ref = name[len(_PREFIX_FUZZ):]
    if os.path.exists(ref):
        try:
            return _load_fuzz_corpus(ref).subsystem
        except ValueError:
            return "vfs"
    return "vfs"


def available_by_subsystem() -> Dict[str, List[str]]:
    """Registered names grouped by subsystem tag, sorted both ways."""
    groups: Dict[str, List[str]] = {}
    for name in available():
        groups.setdefault(_SUBSYSTEMS.get(name, "vfs"), []).append(name)
    return {tag: sorted(names) for tag, names in sorted(groups.items())}


def _available_listing() -> str:
    """Human listing for error messages, grouped by subsystem."""
    groups = available_by_subsystem()
    return "; ".join(
        f"{tag}: {', '.join(names)}" for tag, names in groups.items()
    )


def describe() -> Dict[str, str]:
    return {name: _HELP.get(name, "") for name in available()}


def resolve(name: str) -> WorkloadFactory:
    """The factory for *name*; understands the ``fuzz:`` prefix."""
    factory = _REGISTRY.get(name)
    if factory is not None:
        return factory
    if name.startswith(_PREFIX_FUZZ):
        ref = name[len(_PREFIX_FUZZ):]
        if os.path.exists(ref):
            return _corpus_factory_from_path(ref)
        raise ValueError(
            f"unknown fuzz corpus {ref!r}: not a registered corpus id and "
            f"not a corpus file"
        )
    raise ValueError(
        f"unknown workload {name!r} (available — {_available_listing()}; "
        f"or fuzz:<corpus-file>)"
    )


def run(name: str, seed: int = 0, scale: float = 1.0):
    """Resolve and run a workload in one step."""
    return resolve(name)(seed, scale)


# ----------------------------------------------------------------------
# Built-in workloads
# ----------------------------------------------------------------------

def _mix_factory(seed: int, scale: float):
    from repro.workloads.mix import BenchmarkMix

    return BenchmarkMix(seed=seed, scale=scale).run()


def _racer_factory(seed: int, scale: float):
    from repro.workloads.racer import run_racer

    return run_racer(seed=seed, scale=scale, racy=True)


def _racer_safe_factory(seed: int, scale: float):
    from repro.workloads.racer import run_racer

    return run_racer(seed=seed, scale=scale, racy=False)


def _netbench_factory(seed: int, scale: float):
    from repro.workloads.net import NetBench

    return NetBench(seed=seed, scale=scale).run()


def _sockstress_factory(seed: int, scale: float):
    from repro.workloads.net import SockStress

    return SockStress(seed=seed, scale=scale).run()


def _netmix_factory(seed: int, scale: float):
    from repro.workloads.net import NetMix

    return NetMix(seed=seed, scale=scale).run()


register("mix", _mix_factory, "the paper's full benchmark mix (Sec. 7.1)")
register(
    "racer", _racer_factory, "planted-race ground-truth workload",
    db_recipe="racer",
)
register(
    "racer-safe", _racer_safe_factory, "race-free racer control variant",
    db_recipe="racer",
)
register(
    "netbench",
    _netbench_factory,
    "socket connect/send/recv/close mix over the net slice",
    db_recipe="net",
    subsystem="net",
)
register(
    "sockstress",
    _sockstress_factory,
    "socket churn with a planted fs<->net lock-order inversion",
    db_recipe="net",
    subsystem="net",
)
register(
    "netmix",
    _netmix_factory,
    "interleaved vfs+net threads over one runtime",
    db_recipe="net",
    subsystem="mixed",
)


# ----------------------------------------------------------------------
# Fuzzed corpora as first-class workloads
# ----------------------------------------------------------------------

@dataclass
class CorpusRunResult:
    """A fuzzed corpus executed as one combined workload."""

    world: object
    scheduler: object
    steps: int
    subsystem: str = "vfs"

    @property
    def tracer(self):
        return self.world.rt.tracer

    def to_database(self) -> TraceDatabase:
        from repro.db.importer import import_tracer

        if self.subsystem == "net":
            from repro.kernel.net.groundtruth import build_net_filter_config

            filters = build_net_filter_config()
        else:
            from repro.kernel.vfs.groundtruth import build_filter_config

            filters = build_filter_config()
        return import_tracer(self.tracer, self.world.rt.structs, filters)


def _run_corpus(corpus, seed: int, scale: float) -> CorpusRunResult:
    """Spawn every corpus program's threads into one world/scheduler.

    ``scale`` repeats the corpus programs ``max(1, int(scale))`` times,
    so deeper statistics remain reachable like with other workloads.
    """
    from repro.kernel import reset_id_counters
    from repro.kernel.sched import Scheduler

    reset_id_counters()
    if corpus.subsystem == "net":
        from repro.kernel.net.world import NetWorld

        world = NetWorld(seed=seed)
    else:
        from repro.kernel.vfs.fs import VfsWorld

        world = VfsWorld(seed=seed)
    world.boot()
    scheduler = Scheduler(world.rt, seed=seed + 1)
    repeats = max(1, int(scale))
    for repeat in range(repeats):
        for index, entry in enumerate(corpus.entries):
            for name, body in entry.program.compile(world):
                scheduler.spawn(f"corpus/{repeat}/{index}/{name}", body)
    steps = scheduler.run()
    return CorpusRunResult(
        world=world, scheduler=scheduler, steps=steps,
        subsystem=corpus.subsystem,
    )


def _corpus_factory_from_path(path: str) -> WorkloadFactory:
    corpus = _load_fuzz_corpus(path)

    def factory(seed: int, scale: float) -> CorpusRunResult:
        return _run_corpus(corpus, seed, scale)

    return factory


def register_corpus(corpus, name: Optional[str] = None) -> str:
    """Register a loaded corpus under ``fuzz:<corpus-id>`` (or *name*);
    returns the registered name."""
    registered = name or f"{_PREFIX_FUZZ}{corpus.corpus_id}"
    register(
        registered,
        lambda seed, scale: _run_corpus(corpus, seed, scale),
        f"fuzzed corpus ({len(corpus.entries)} programs)",
        db_recipe="net" if corpus.subsystem == "net" else "vfs",
        subsystem=corpus.subsystem,
    )
    return registered
