"""Central workload registry.

Every trace source the pipeline can run — the benchmark mix, the
planted-race workloads, fuzzed corpora — is registered here under a
name, replacing the ad-hoc ``--workload`` string dispatch that used to
live in ``cli.py`` and ``experiments/common.py``.

A **factory** takes ``(seed, scale)`` and returns a run result
honouring the common contract: a ``.tracer`` property (the recorded
event stream) and a ``.to_database()`` method (the imported trace).
:class:`~repro.workloads.mix.MixResult` and
:class:`~repro.workloads.racer.RacerResult` already do.

Fuzzed corpora are addressable two ways:

* ``fuzz:<path>`` — load the corpus JSON at *path* on demand,
* ``fuzz:<corpus-id>`` — a corpus previously registered in-process via
  :func:`register_corpus` (the ``fuzz run`` CLI does this).

so every existing subcommand (``derive``, ``races``, ``stats``, ...)
can run a fuzzed corpus like any other workload.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.db.database import TraceDatabase

#: factory(seed, scale) -> result with ``.tracer`` / ``.to_database()``.
WorkloadFactory = Callable[[int, float], object]

_PREFIX_FUZZ = "fuzz:"

_REGISTRY: Dict[str, WorkloadFactory] = {}
_HELP: Dict[str, str] = {}
_DB_RECIPES: Dict[str, str] = {}


def register(
    name: str,
    factory: WorkloadFactory,
    help: str = "",
    db_recipe: str = "vfs",
) -> None:
    """Register (or replace) a named workload factory.

    *db_recipe* names the ``(StructRegistry, FilterConfig)`` pair a
    recorded trace of this workload must be imported with (``"vfs"``
    or ``"racer"``) — it lets a cached trace be re-imported without
    the original run result in hand.
    """
    _REGISTRY[name] = factory
    _HELP[name] = help
    _DB_RECIPES[name] = db_recipe


def db_recipe(name: str) -> str:
    """The database recipe name for workload *name*."""
    recipe = _DB_RECIPES.get(name)
    if recipe is not None:
        return recipe
    if name.startswith(_PREFIX_FUZZ):
        return "vfs"
    raise ValueError(f"unknown workload {name!r}")


def database_inputs(recipe: str):
    """``(StructRegistry, FilterConfig | None)`` for a recipe name.

    Both registries are rebuilt deterministically from source, so a
    trace imported through this pair matches an import through the
    original run result's ``to_database()``.
    """
    if recipe == "racer":
        from repro.workloads.racer import build_racer_registry

        return build_racer_registry(), None
    from repro.kernel.vfs.groundtruth import build_filter_config
    from repro.kernel.vfs.layouts import build_struct_registry

    return build_struct_registry(), build_filter_config()


def available() -> List[str]:
    """Registered workload names (without dynamic ``fuzz:<path>``)."""
    return sorted(_REGISTRY)


def describe() -> Dict[str, str]:
    return {name: _HELP.get(name, "") for name in available()}


def resolve(name: str) -> WorkloadFactory:
    """The factory for *name*; understands the ``fuzz:`` prefix."""
    factory = _REGISTRY.get(name)
    if factory is not None:
        return factory
    if name.startswith(_PREFIX_FUZZ):
        ref = name[len(_PREFIX_FUZZ):]
        if os.path.exists(ref):
            return _corpus_factory_from_path(ref)
        raise ValueError(
            f"unknown fuzz corpus {ref!r}: not a registered corpus id and "
            f"not a corpus file"
        )
    raise ValueError(
        f"unknown workload {name!r} (available: {', '.join(available())}, "
        f"or fuzz:<corpus-file>)"
    )


def run(name: str, seed: int = 0, scale: float = 1.0):
    """Resolve and run a workload in one step."""
    return resolve(name)(seed, scale)


# ----------------------------------------------------------------------
# Built-in workloads
# ----------------------------------------------------------------------

def _mix_factory(seed: int, scale: float):
    from repro.workloads.mix import BenchmarkMix

    return BenchmarkMix(seed=seed, scale=scale).run()


def _racer_factory(seed: int, scale: float):
    from repro.workloads.racer import run_racer

    return run_racer(seed=seed, scale=scale, racy=True)


def _racer_safe_factory(seed: int, scale: float):
    from repro.workloads.racer import run_racer

    return run_racer(seed=seed, scale=scale, racy=False)


register("mix", _mix_factory, "the paper's full benchmark mix (Sec. 7.1)")
register(
    "racer", _racer_factory, "planted-race ground-truth workload",
    db_recipe="racer",
)
register(
    "racer-safe", _racer_safe_factory, "race-free racer control variant",
    db_recipe="racer",
)


# ----------------------------------------------------------------------
# Fuzzed corpora as first-class workloads
# ----------------------------------------------------------------------

@dataclass
class CorpusRunResult:
    """A fuzzed corpus executed as one combined workload."""

    world: object
    scheduler: object
    steps: int

    @property
    def tracer(self):
        return self.world.rt.tracer

    def to_database(self) -> TraceDatabase:
        from repro.db.importer import import_tracer
        from repro.kernel.vfs.groundtruth import build_filter_config

        return import_tracer(
            self.tracer, self.world.rt.structs, build_filter_config()
        )


def _run_corpus(corpus, seed: int, scale: float) -> CorpusRunResult:
    """Spawn every corpus program's threads into one world/scheduler.

    ``scale`` repeats the corpus programs ``max(1, int(scale))`` times,
    so deeper statistics remain reachable like with other workloads.
    """
    from repro.kernel import reset_id_counters
    from repro.kernel.sched import Scheduler
    from repro.kernel.vfs.fs import VfsWorld

    reset_id_counters()
    world = VfsWorld(seed=seed)
    world.boot()
    scheduler = Scheduler(world.rt, seed=seed + 1)
    repeats = max(1, int(scale))
    for repeat in range(repeats):
        for index, entry in enumerate(corpus.entries):
            for name, body in entry.program.compile(world):
                scheduler.spawn(f"corpus/{repeat}/{index}/{name}", body)
    steps = scheduler.run()
    return CorpusRunResult(world=world, scheduler=scheduler, steps=steps)


def _corpus_factory_from_path(path: str) -> WorkloadFactory:
    from repro.fuzz.corpus import Corpus

    corpus = Corpus.load(path)

    def factory(seed: int, scale: float) -> CorpusRunResult:
        return _run_corpus(corpus, seed, scale)

    return factory


def register_corpus(corpus, name: Optional[str] = None) -> str:
    """Register a loaded corpus under ``fuzz:<corpus-id>`` (or *name*);
    returns the registered name."""
    registered = name or f"{_PREFIX_FUZZ}{corpus.corpus_id}"
    register(
        registered,
        lambda seed, scale: _run_corpus(corpus, seed, scale),
        f"fuzzed corpus ({len(corpus.entries)} programs)",
    )
    return registered
