"""Networking workloads: netbench, sockstress, and the netmix blend.

Three trace sources over the :mod:`repro.kernel.net` slice, all
honouring the registry's run-result contract (``.tracer`` /
``.to_database()``):

``netbench``
    The bread-and-butter socket mix — connect/send/recv/poll/close
    client threads, spec-driven sweepers for long-tail coverage, and a
    softirq packet-delivery source.  This is the net analogue of the
    VFS benchmark mix and the baseline for net fuzz coverage.

``sockstress``
    Accept/backlog churn: sockets are created, polled, drained, and
    closed aggressively, while a diag-style broadcaster walks the
    socket table taking the **fs-side** ``sb_lock`` and the net-side
    ``net_family_lock`` in both orders — a planted cross-subsystem
    ABBA inversion.  Each inverted section is sequential within one
    thread (never deadlocks at runtime), but the recorded order
    witnesses must make the lock-order analysis report the cycle.
    The access under both locks goes to the blacklisted
    ``sock.sk_backlog`` member, so the planted witnesses never leak
    into rule mining.

``netmix``
    VFS and net threads interleaved over **one** runtime/scheduler:
    a combined struct registry backs both worlds, the fs benchmark
    threads run next to the socket clients, and both subsystems'
    softirq sources fire.  This is the cross-subsystem trace the
    importer/health/sqlstore round-trip tests exercise.

Both the combined struct registry and the merged filter configuration
are rebuilt deterministically from source (recipe ``"net"`` in
:mod:`repro.workloads.registry`), so a cached trace re-imports
identically to the original run result.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator, Optional

from repro.db.database import TraceDatabase
from repro.db.filters import FilterConfig
from repro.db.importer import import_tracer
from repro.kernel.context import ExecutionContext
from repro.kernel.net.groundtruth import build_net_filter_config
from repro.kernel.net.layouts import NET_BUILDERS
from repro.kernel.net.world import NetWorld
from repro.kernel.runtime import KernelRuntime, pinned
from repro.kernel.sched import Scheduler
from repro.kernel.structs import StructRegistry

#: The observed net types, in sweep order.
NET_TYPES = ("sock", "sk_buff", "socket_wq", "net_device")


# ----------------------------------------------------------------------
# Recipe inputs (registry ``db_recipe="net"``)
# ----------------------------------------------------------------------

def build_net_registry() -> StructRegistry:
    """Combined vfs+net struct registry.

    Net-only traces never touch the vfs types, and both registries
    build identical layouts for the net types, so the combined
    registry imports netbench, sockstress, and netmix traces alike.
    """
    from repro.kernel.vfs.layouts import build_struct_registry

    registry = build_struct_registry()
    for builder in NET_BUILDERS.values():
        registry.register(builder())
    return registry


def build_net_filters() -> FilterConfig:
    """Union of the vfs and net filter configurations."""
    from repro.kernel.vfs.groundtruth import build_filter_config

    vfs = build_filter_config()
    net = build_net_filter_config()
    return FilterConfig(
        init_teardown_functions=(
            vfs.init_teardown_functions | net.init_teardown_functions
        ),
        global_function_blacklist=(
            vfs.global_function_blacklist | net.global_function_blacklist
        ),
        per_type_function_blacklist={
            **vfs.per_type_function_blacklist,
            **net.per_type_function_blacklist,
        },
        member_blacklist=vfs.member_blacklist | net.member_blacklist,
    )


# ----------------------------------------------------------------------
# Run result
# ----------------------------------------------------------------------

@dataclass
class NetResult:
    """A finished net workload run (netmix also keeps the vfs world)."""

    world: NetWorld
    scheduler: Scheduler
    steps: int
    vfs_world: Optional[object] = None

    @property
    def tracer(self):
        return self.world.rt.tracer

    def to_database(self) -> TraceDatabase:
        """Import with the ``"net"`` recipe inputs — by construction
        identical to a cached re-import through the registry."""
        return import_tracer(
            self.tracer, build_net_registry(), build_net_filters()
        )


# ----------------------------------------------------------------------
# Thread bodies
# ----------------------------------------------------------------------

def _client(world: NetWorld, iterations: int, seed: int):
    """A socket client: connect/send/recv/poll/ioctl/close mix."""

    def body(ctx: ExecutionContext) -> Generator:
        rng = random.Random(seed)
        for _ in range(iterations):
            roll = rng.random()
            sk = world.random_object("sock")
            if roll < 0.10 or sk is None:
                yield from world.sock_create(ctx)
            elif roll < 0.36:
                yield from world.sock_sendmsg(ctx, sk)
            elif roll < 0.62:
                yield from world.sock_recvmsg(ctx, sk)
            elif roll < 0.72:
                yield from world.sock_poll(ctx, sk)
            elif roll < 0.82:
                yield from world.sock_setsockopt(ctx, sk)
            elif roll < 0.94:
                yield from world.dev_ioctl(ctx)
            elif len(world.socks) > 3:
                yield from world.sock_close(ctx, sk)
            yield

    return body


def _sweeper(world: NetWorld, iterations: int, seed: int):
    """Spec-driven long-tail coverage over every observed net type."""

    def body(ctx: ExecutionContext) -> Generator:
        rng = random.Random(seed)
        for index in range(iterations):
            type_name = NET_TYPES[index % len(NET_TYPES)]
            obj = world.random_object(type_name)
            if obj is not None:
                yield from world.exercise(ctx, type_name, obj)
            if rng.random() < 0.02 and len(world.skbs) > 8:
                world.destroy_skb(ctx, rng.choice(world.skbs))
            yield

    return body


def _churn(world: NetWorld, iterations: int, seed: int):
    """Accept/backlog churn: aggressive socket create/drain/close."""

    def body(ctx: ExecutionContext) -> Generator:
        rng = random.Random(seed)
        for _ in range(iterations):
            roll = rng.random()
            sk = world.random_object("sock")
            if roll < 0.35 or sk is None:
                yield from world.sock_create(ctx)
            elif roll < 0.55:
                yield from world.sock_poll(ctx, sk)
            elif roll < 0.80:
                yield from world.sock_recvmsg(ctx, sk)
            elif len(world.socks) > 2:
                yield from world.sock_close(ctx, sk)
            yield

    return body


def _order_inverter(world: NetWorld, rounds: int):
    """The planted cross-subsystem ABBA: ``sb_lock`` vs
    ``net_family_lock`` taken in both orders, sequentially in one
    thread.  The guarded access lands on the blacklisted
    ``sock.sk_backlog`` member, so the witnesses feed the lock-order
    graph without polluting rule derivation."""

    def body(ctx: ExecutionContext) -> Generator:
        rt = world.rt
        sb = rt.static_lock("sb_lock", "spinlock_t")
        family = rt.static_lock("net_family_lock", "spinlock_t")
        with rt.function(ctx, "sock_diag_broadcast", "net/core/sock_diag.c", 220):
            for index in range(rounds):
                sk = world.random_object("sock")
                if sk is None:
                    yield
                    continue
                with pinned(sk):
                    if index % 2 == 0:
                        yield from rt.spin_lock(ctx, sb, line=231)
                        yield from rt.spin_lock(ctx, family, line=232)
                        rt.write(ctx, sk, "sk_backlog", line=233)
                        rt.spin_unlock(ctx, family, line=234)
                        rt.spin_unlock(ctx, sb, line=235)
                    else:
                        yield from rt.spin_lock(ctx, family, line=238)
                        yield from rt.spin_lock(ctx, sb, line=239)
                        rt.write(ctx, sk, "sk_backlog", line=240)
                        rt.spin_unlock(ctx, sb, line=241)
                        rt.spin_unlock(ctx, family, line=242)
                yield

    return body


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------

class NetBench:
    """The socket benchmark mix over the net slice."""

    def __init__(
        self, seed: int = 0, scale: float = 1.0, softirq_rate: float = 0.08
    ) -> None:
        self.seed = seed
        self.scale = scale
        self.softirq_rate = softirq_rate

    def _iterations(self, base: int) -> int:
        return max(1, int(base * self.scale))

    def run(self, runtime: Optional[KernelRuntime] = None) -> NetResult:
        if runtime is None:
            from repro.kernel import reset_id_counters

            reset_id_counters()
        world = NetWorld(runtime, seed=self.seed)
        world.boot()
        scheduler = Scheduler(world.rt, seed=self.seed + 1)
        for index in range(3):
            scheduler.spawn(
                f"netbench/{index}",
                _client(world, self._iterations(80), self.seed + 10 + index),
            )
        for index in range(2):
            scheduler.spawn(
                f"net-sweep/{index}",
                _sweeper(world, self._iterations(400), self.seed + 20 + index),
            )
        scheduler.add_irq_source(
            "net-rx-softirq",
            world.netif_receive,
            rate=self.softirq_rate,
            softirq=True,
        )
        steps = scheduler.run()
        return NetResult(world=world, scheduler=scheduler, steps=steps)


class SockStress:
    """Socket churn plus the planted fs<->net lock-order inversion."""

    def __init__(
        self, seed: int = 0, scale: float = 1.0, softirq_rate: float = 0.12
    ) -> None:
        self.seed = seed
        self.scale = scale
        self.softirq_rate = softirq_rate

    def _iterations(self, base: int) -> int:
        return max(1, int(base * self.scale))

    def run(self, runtime: Optional[KernelRuntime] = None) -> NetResult:
        if runtime is None:
            from repro.kernel import reset_id_counters

            reset_id_counters()
        world = NetWorld(runtime, seed=self.seed)
        world.boot()
        scheduler = Scheduler(world.rt, seed=self.seed + 1)
        for index in range(4):
            scheduler.spawn(
                f"sockstress/{index}",
                _churn(world, self._iterations(50), self.seed + 30 + index),
            )
        scheduler.spawn(
            "sock-diag", _order_inverter(world, self._iterations(12))
        )
        scheduler.add_irq_source(
            "net-rx-softirq",
            world.netif_receive,
            rate=self.softirq_rate,
            softirq=True,
        )
        steps = scheduler.run()
        return NetResult(world=world, scheduler=scheduler, steps=steps)


class NetMix:
    """VFS and net threads interleaved over one runtime/scheduler."""

    def __init__(self, seed: int = 0, scale: float = 1.0) -> None:
        self.seed = seed
        self.scale = scale

    def _iterations(self, base: int) -> int:
        return max(1, int(base * self.scale))

    def run(self) -> NetResult:
        from repro.kernel import reset_id_counters
        from repro.kernel.vfs.fs import VfsWorld
        from repro.workloads.fsbench import FsBench
        from repro.workloads.fsstress import FsStress
        from repro.workloads.journal import Journal
        from repro.workloads.mix import BenchmarkMix

        reset_id_counters()
        rt = KernelRuntime(build_net_registry())
        vfs_world = VfsWorld(rt, seed=self.seed)
        vfs_world.boot()
        net_world = NetWorld(rt, seed=self.seed + 500)
        net_world.boot()
        scheduler = Scheduler(rt, seed=self.seed + 1)
        vfs_workloads = [
            FsBench(vfs_world, self._iterations(30), self.seed + 10),
            FsStress(vfs_world, self._iterations(40), self.seed + 11),
            Journal(vfs_world, self._iterations(40), self.seed + 16),
        ]
        for workload in vfs_workloads:
            for name, body in workload.threads():
                scheduler.spawn(name, body)
        for index in range(2):
            scheduler.spawn(
                f"netbench/{index}",
                _client(net_world, self._iterations(50), self.seed + 40 + index),
            )
        scheduler.spawn(
            "net-sweep/0",
            _sweeper(net_world, self._iterations(120), self.seed + 50),
        )
        scheduler.spawn(
            "sock-diag", _order_inverter(net_world, self._iterations(8))
        )
        # Both subsystems' interrupt sources fire into the same trace.
        BenchmarkMix(seed=self.seed, scale=self.scale)._add_irq_sources(
            vfs_world, scheduler
        )
        scheduler.add_irq_source(
            "net-rx-softirq", net_world.netif_receive, rate=0.08, softirq=True
        )
        steps = scheduler.run()
        return NetResult(
            world=net_world,
            scheduler=scheduler,
            steps=steps,
            vfs_world=vfs_world,
        )


def run_netbench(seed: int = 0, scale: float = 1.0) -> NetResult:
    """Convenience one-shot runner used by experiments and benchmarks."""
    return NetBench(seed=seed, scale=scale).run()
