"""The documented-locking-rule substrate.

The paper manually converts the Linux kernel's informal source-code
comments into LockDoc's internal rule notation (Sec. 5.5).  This
package provides the rule model (:mod:`repro.doc.model`), a parser for
informal comment wording (:mod:`repro.doc.parser`), and the curated
rule corpus for the five Tab. 4 data structures
(:mod:`repro.doc.corpus`).
"""

from repro.doc.model import DocumentedRule
from repro.doc.parser import parse_comment_block

__all__ = ["DocumentedRule", "parse_comment_block"]
