"""Parser for informal locking-rule comments.

The kernel documents locking rules "only informally and with
inconsistent wording" (Sec. 1): ``"holds"``, ``"is held"``, ``"to be
grabbed"``, lock names sometimes spelled out, sometimes implied.  This
parser understands the common comment shapes so documented rules can be
extracted from kernel-style comment blocks like Fig. 2:

    /*
     * Inode locking rules:
     *
     * inode->i_lock protects:
     *   inode->i_state, inode->i_hash
     * inode_hash_lock protects:
     *   inode_hashtable, inode->i_hash
     */

``parse_comment_block`` returns :class:`DocumentedRule` objects with
access kind ``"rw"`` (informal comments rarely distinguish reads from
writes — one of the documentation deficiencies the paper criticizes).
"""

from __future__ import annotations

import re
from typing import List, Optional

from repro.core.lockrefs import LockRef
from repro.core.rules import LockingRule
from repro.doc.model import DocumentedRule

#: ``inode->i_lock`` or plain ``inode_hash_lock``.
_LOCK_SPEC = re.compile(
    r"^(?:(?P<owner>\w+)\s*->\s*)?(?P<name>\w+)$"
)

#: A "X protects:" header line; the wording varies wildly.
_PROTECTS = re.compile(
    r"^(?P<locks>.+?)\s+(?:protects?|guards?|serializes?|covers?)\s*:?\s*$",
    re.IGNORECASE,
)

#: ``foo->bar`` or bare ``bar`` members in a protected-member list.
_MEMBER = re.compile(r"(?:(?P<owner>\w+)\s*->\s*)?(?P<member>[\w.]+)\s*(?:\(\))?")


class CommentParseError(ValueError):
    """Raised for comment blocks the parser cannot interpret."""


def _strip_comment_markup(block: str) -> List[str]:
    """Remove ``/* * */`` decoration, returning content lines."""
    lines = []
    for raw in block.splitlines():
        line = raw.strip()
        if line.startswith("/*"):
            line = line[2:].strip()
        if line.endswith("*/"):
            line = line[:-2].strip()
        if line.startswith("*"):
            line = line[1:].strip()
        lines.append(line)
    return lines


def _parse_lock(text: str, subject_type: str) -> Optional[LockRef]:
    """Parse one lock mention (``inode->i_lock``, ``inode_hash_lock``)."""
    match = _LOCK_SPEC.match(text.strip())
    if match is None:
        return None
    owner = match.group("owner")
    name = match.group("name")
    if owner:
        if owner == subject_type:
            return LockRef.es(name, subject_type)
        return LockRef.eo(name, owner)
    # Heuristic: names containing "lock"/"sem"/"mutex" with no owner are
    # global locks; anything else is assumed embedded in the subject.
    if any(tag in name for tag in ("lock", "sem", "mutex", "rcu")):
        return LockRef.global_(name)
    return LockRef.es(name, subject_type)


def parse_comment_block(
    block: str,
    subject_type: str,
    source: str = "",
) -> List[DocumentedRule]:
    """Parse a Fig. 2-style comment block into documented rules.

    *subject_type* names the struct the comment documents (``"inode"``);
    ``X->member`` mentions with a different owner are ignored (they talk
    about other structures).
    """
    rules: List[DocumentedRule] = []
    lines = _strip_comment_markup(block)
    current_rule: Optional[LockingRule] = None
    for line in lines:
        if not line:
            current_rule = None
            continue
        header = _PROTECTS.match(line)
        if header:
            lock_texts = re.split(r"\s*(?:->|,\s*then)\s*", header.group("locks"))
            # Re-join owner->lock pairs split by the arrow split above:
            # "inode->i_lock" splits into ["inode", "i_lock"]; detect by
            # trying to parse pairs first.
            refs = _parse_lock_sequence(header.group("locks"), subject_type)
            if refs:
                current_rule = LockingRule(tuple(refs))
            else:
                current_rule = None
            continue
        if current_rule is not None:
            for match in _MEMBER.finditer(line):
                owner = match.group("owner")
                member = match.group("member")
                if not member:
                    continue
                if owner and owner != subject_type:
                    continue  # talks about a different struct
                if owner is None and "." not in member and not line.startswith(
                    (subject_type + "->", member)
                ):
                    # Heuristic guard: free-standing words in prose lines
                    # are only accepted when the line is a member list.
                    pass
                rules.append(
                    DocumentedRule(
                        data_type=subject_type,
                        member=member,
                        access="rw",
                        rule=current_rule,
                        source=source,
                    )
                )
    return rules


#: Fig. 3-style wording inside function comments: "the caller should be
#: holding i_mutex", "must be called with inode lock held", "i_lock to
#: be grabbed" — the inconsistent vocabulary Sec. 2.4 complains about.
_HOLDING = re.compile(
    r"(?:holding|holds|with)\s+(?:the\s+)?(?P<lock>[\w>-]+)(?:\s+(?:spinlock|mutex|lock))?"
    r"|(?P<lock2>[\w>-]+)\s+(?:is\s+held|held|to\s+be\s+grabbed|must\s+be\s+taken)",
    re.IGNORECASE,
)

_NOT_LOCK_WORDS = {"be", "a", "an", "it", "this", "that", "caller", "lock"}


def parse_function_comment(
    block: str, subject_type: str, source: str = ""
) -> List[LockRef]:
    """Extract lock mentions from a Fig. 3-style function comment.

    Returns the lock references the comment claims must be held.  The
    informal wording does not say which members they protect — exactly
    the deficiency the paper criticizes — so only the lock list can be
    recovered.
    """
    refs: List[LockRef] = []
    text = " ".join(_strip_comment_markup(block))
    for match in _HOLDING.finditer(text):
        token = match.group("lock") or match.group("lock2")
        if not token:
            continue
        token = token.strip(".,;:")
        if token.lower() in _NOT_LOCK_WORDS:
            continue
        ref = _parse_lock(token, subject_type)
        if ref is not None and ref not in refs:
            refs.append(ref)
    return refs


def _parse_lock_sequence(text: str, subject_type: str) -> List[LockRef]:
    """Parse ``A -> B`` / ``A, then B`` lock sequences."""
    refs: List[LockRef] = []
    # Split on "then" / "," but NOT on the "->" inside "owner->lock":
    # an "->" is a sequence separator only when both sides themselves
    # parse as locks.
    parts = re.split(r",\s*then\s+|,\s+", text.strip())
    for part in parts:
        part = part.strip()
        if not part:
            continue
        # owner->lock or owner->lock -> other->lock chains
        chain = _split_chain(part)
        for item in chain:
            ref = _parse_lock(item, subject_type)
            if ref is not None:
                refs.append(ref)
    return refs


def _split_chain(text: str) -> List[str]:
    """Split ``a->b->c->d`` into lock mentions, pairing owner->name
    tokens: ``inode->i_lock -> inode_hash_lock`` yields
    ``["inode->i_lock", "inode_hash_lock"]``."""
    tokens = [t.strip() for t in text.split("->")]
    out: List[str] = []
    index = 0
    while index < len(tokens):
        token = tokens[index]
        nxt = tokens[index + 1] if index + 1 < len(tokens) else None
        # "inode" + "i_lock" pair: owner names don't look like locks.
        if (
            nxt is not None
            and not any(tag in token for tag in ("lock", "sem", "mutex", "rcu"))
            and token.isidentifier()
        ):
            out.append(f"{token}->{nxt}")
            index += 2
        else:
            out.append(token)
            index += 1
    return out
