"""The documented locking rules for the five Tab. 4 data structures.

The paper manually converted the kernel's informal comments into
LockDoc's rule notation: 142 rules covering 71 members of ``inode``,
``dentry``, ``journal_t``, ``transaction_t`` and ``journal_head``
(reads and writes counted separately).  This corpus is the analogue for
the simulated kernel — including, deliberately, the real kernel's
documentation pathologies:

* **stale rules** — e.g. ``i_size`` is documented under ``i_lock``
  although the code moved to ``i_rwsem`` + the size seqcount long ago
  (Tab. 5: four ``inode`` rules have zero support),
* **half-followed rules** — the documented lock is only taken on some
  paths (``i_lru``, most ``dentry`` read rules),
* **rules for never-exercised members** — atomics that were converted
  from plain ints without a documentation update (``transaction_t``),
  black-listed wait queues (``journal_t``), giving the #No column.

Each rule carries the (simulated) source location the comment would
live at, mirroring where the paper found them (Sec. 7.3).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.rules import LockingRule
from repro.doc.model import DocumentedRule


def _r(data_type: str, member: str, access: str, rule: str, source: str) -> DocumentedRule:
    return DocumentedRule(
        data_type=data_type,
        member=member,
        access=access,
        rule=LockingRule.parse(rule),
        source=source,
    )


def inode_rules() -> List[DocumentedRule]:
    """14 rules from fs/inode.c + include/linux/fs.h (Tab. 5)."""
    src = "fs/inode.c:10"
    hdr = "include/linux/fs.h:680"
    return [
        # Followed consistently (Tab. 5: correct).
        _r("inode", "i_bytes", "w", "ES(i_lock in inode)", hdr),
        _r("inode", "i_state", "w", "ES(i_lock in inode)", src),
        # Followed on most paths (Tab. 5: ambivalent).
        _r("inode", "i_hash", "w",
           "inode_hash_lock -> ES(i_lock in inode)", src),
        _r("inode", "i_blocks", "w", "ES(i_lock in inode)", hdr),
        _r("inode", "i_lru", "r", "ES(i_lock in inode)", src),
        _r("inode", "i_lru", "w", "ES(i_lock in inode)", src),
        _r("inode", "i_state", "r", "ES(i_lock in inode)", src),
        # Stale — never followed (Tab. 5: incorrect).
        _r("inode", "i_size", "r", "ES(i_lock in inode)", hdr),
        _r("inode", "i_hash", "r",
           "inode_hash_lock -> ES(i_lock in inode)", src),
        _r("inode", "i_blocks", "r", "ES(i_lock in inode)", hdr),
        _r("inode", "i_size", "w", "ES(i_lock in inode)", hdr),
        # Members the benchmark never reaches (Tab. 4: #No).
        _r("inode", "i_acl", "w", "ES(i_lock in inode)", hdr),
        _r("inode", "dirtied_time_when", "w",
           "EO(wb.list_lock in backing_dev_info)", "fs/fs-writeback.c:90"),
        _r("inode", "i_data.page_tree", "w",
           "hardirq -> ES(i_data.tree_lock in inode)", hdr),
    ]


def dentry_rules() -> List[DocumentedRule]:
    """22 rules from include/linux/dcache.h (line 83 ff.) + fs/dcache.c."""
    hdr = "include/linux/dcache.h:83"
    src = "fs/dcache.c:30"
    return [
        # Consistently followed write rules.
        _r("dentry", "d_flags", "w", "ES(d_lock in dentry)", hdr),
        _r("dentry", "d_inode", "w", "ES(d_lock in dentry)", hdr),
        _r("dentry", "d_hash", "w",
           "rename_lock -> ES(d_lock in dentry)", src),
        _r("dentry", "d_name", "w",
           "rename_lock -> ES(d_lock in dentry)", src),
        _r("dentry", "d_parent", "w",
           "rename_lock -> ES(d_lock in dentry)", src),
        _r("dentry", "d_child", "w",
           "EO(d_lock in dentry) -> ES(d_lock in dentry)", hdr),
        # Half-followed (the RCU-walk fast path skips d_lock).
        _r("dentry", "d_flags", "r", "ES(d_lock in dentry)", hdr),
        _r("dentry", "d_parent", "r", "ES(d_lock in dentry)", hdr),
        _r("dentry", "d_name", "r", "ES(d_lock in dentry)", hdr),
        _r("dentry", "d_inode", "r", "ES(d_lock in dentry)", hdr),
        _r("dentry", "d_mounted", "r", "ES(d_lock in dentry)", hdr),
        _r("dentry", "d_alias", "r", "ES(d_lock in dentry)", hdr),
        _r("dentry", "d_lru", "r",
           "dcache_lru_lock -> ES(d_lock in dentry)", src),
        _r("dentry", "d_lru", "w",
           "dcache_lru_lock -> ES(d_lock in dentry)", src),
        _r("dentry", "d_fsdata", "w", "ES(d_lock in dentry)", hdr),
        _r("dentry", "d_subdirs", "r", "ES(d_lock in dentry)", hdr),
        _r("dentry", "d_subdirs", "w", "ES(d_lock in dentry)", hdr),
        _r("dentry", "d_child", "r", "EO(d_lock in dentry)", hdr),
        _r("dentry", "d_iname", "w", "ES(d_lock in dentry)", hdr),
        _r("dentry", "d_time", "w", "ES(d_lock in dentry)", hdr),
        # Stale.
        _r("dentry", "d_hash", "r", "rename_lock:r", src),
        _r("dentry", "d_sb", "w", "ES(d_lock in dentry)", hdr),
    ]


def journal_rules() -> List[DocumentedRule]:
    """38 rules from include/linux/jbd2.h (around line 795)."""
    hdr = "include/linux/jbd2.h:795"
    state_r = "ES(j_state_lock in journal_t):r"
    state_w = "ES(j_state_lock in journal_t)"
    jlist = "ES(j_list_lock in journal_t)"
    rules = [
        # Correct.
        _r("journal_t", "j_errno", "r", state_r, hdr),
        _r("journal_t", "j_flags", "w", state_w, hdr),
        _r("journal_t", "j_barrier_count", "r", state_r, hdr),
        _r("journal_t", "j_barrier_count", "w", state_w, hdr),
        _r("journal_t", "j_running_transaction", "w", state_w, hdr),
        _r("journal_t", "j_head", "r", state_r, hdr),
        _r("journal_t", "j_head", "w", state_w, hdr),
        _r("journal_t", "j_tail", "r", state_r, hdr),
        _r("journal_t", "j_free", "r", state_r, hdr),
        _r("journal_t", "j_tail_sequence", "r", state_r, hdr),
        _r("journal_t", "j_tail_sequence", "w", state_w, hdr),
        _r("journal_t", "j_transaction_sequence", "r", state_r, hdr),
        _r("journal_t", "j_transaction_sequence", "w", state_w, hdr),
        _r("journal_t", "j_checkpoint_transactions", "r", jlist, hdr),
        _r("journal_t", "j_checkpoint_transactions", "w", jlist, hdr),
        _r("journal_t", "j_revoke", "r",
           "ES(j_checkpoint_mutex in journal_t)", hdr),
        _r("journal_t", "j_wbuf", "w", "ES(j_barrier in journal_t)", hdr),
        # Ambivalent (fast-path readers / tail updates skip the lock).
        _r("journal_t", "j_flags", "r", state_r, hdr),
        _r("journal_t", "j_running_transaction", "r", state_r, hdr),
        _r("journal_t", "j_committing_transaction", "r", state_r, hdr),
        _r("journal_t", "j_commit_sequence", "r", state_r, hdr),
        _r("journal_t", "j_commit_request", "r", state_r, hdr),
        _r("journal_t", "j_tail", "w", state_w, hdr),
        _r("journal_t", "j_free", "w", state_w, hdr),
        _r("journal_t", "j_average_commit_time", "w", state_w, hdr),
        _r("journal_t", "j_committing_transaction", "w", state_w, hdr),
        _r("journal_t", "j_errno", "w", state_w, hdr),
        # Stale.
        _r("journal_t", "j_blocksize", "r", state_r, hdr),
        _r("journal_t", "j_maxlen", "r", state_r, hdr),
        _r("journal_t", "j_last_sync_writer", "w", state_w, hdr),
        # Never observed (wait queues are black-listed, j_failed_commit
        # is never written by the benchmark).
        _r("journal_t", "j_wait_transaction_locked", "w", state_w, hdr),
        _r("journal_t", "j_wait_done_commit", "w", state_w, hdr),
        _r("journal_t", "j_wait_commit", "w", state_w, hdr),
        _r("journal_t", "j_wait_updates", "w", state_w, hdr),
        _r("journal_t", "j_wait_reserved", "w", state_w, hdr),
        _r("journal_t", "j_history", "w",
           "ES(j_history_lock in journal_t)", hdr),
        _r("journal_t", "j_stats", "w",
           "ES(j_history_lock in journal_t)", hdr),
        _r("journal_t", "j_failed_commit", "w", state_w, hdr),
    ]
    return rules


def transaction_rules() -> List[DocumentedRule]:
    """42 rules from include/linux/jbd2.h (around line 543)."""
    hdr = "include/linux/jbd2.h:543"
    state_r = "EO(j_state_lock in journal_t):r"
    state_w = "EO(j_state_lock in journal_t)"
    jlist = "EO(j_list_lock in journal_t)"
    handle = "ES(t_handle_lock in transaction_t)"
    rules = [
        # Correct (the struct is thoroughly and accurately documented).
        _r("transaction_t", "t_state", "r", state_r, hdr),
        _r("transaction_t", "t_state", "w", state_w, hdr),
        _r("transaction_t", "t_log_start", "r", state_r, hdr),
        _r("transaction_t", "t_log_start", "w", state_w, hdr),
        _r("transaction_t", "t_nr_buffers", "r", jlist, hdr),
        _r("transaction_t", "t_nr_buffers", "w", jlist, hdr),
        _r("transaction_t", "t_buffers", "r", jlist, hdr),
        _r("transaction_t", "t_buffers", "w", jlist, hdr),
        _r("transaction_t", "t_forget", "r", jlist, hdr),
        _r("transaction_t", "t_forget", "w", jlist, hdr),
        _r("transaction_t", "t_checkpoint_list", "w", jlist, hdr),
        _r("transaction_t", "t_shadow_list", "r", jlist, hdr),
        _r("transaction_t", "t_shadow_list", "w", jlist, hdr),
        _r("transaction_t", "t_outstanding_credits", "r", handle, hdr),
        _r("transaction_t", "t_outstanding_credits", "w", handle, hdr),
        _r("transaction_t", "t_handle_count", "r", handle, hdr),
        _r("transaction_t", "t_handle_count", "w", handle, hdr),
        _r("transaction_t", "t_tnext", "r", jlist, hdr),
        _r("transaction_t", "t_tnext", "w", jlist, hdr),
        _r("transaction_t", "t_tprev", "r", jlist, hdr),
        _r("transaction_t", "t_tprev", "w", jlist, hdr),
        _r("transaction_t", "t_start", "r", state_r, hdr),
        _r("transaction_t", "t_start", "w", state_w, hdr),
        # Ambivalent (no-lock fast paths).
        _r("transaction_t", "t_expires", "r", state_r, hdr),
        _r("transaction_t", "t_requested", "r", state_r, hdr),
        _r("transaction_t", "t_need_data_flush", "r", state_r, hdr),
        _r("transaction_t", "t_run_state", "r", state_r, hdr),
        # Stale.
        _r("transaction_t", "t_journal", "r", state_r, hdr),
        _r("transaction_t", "t_tid", "r", handle, hdr),
        # Never observed: three members were converted to atomic_t
        # without a documentation update (Sec. 7.3) plus members the
        # benchmark never touches.
        _r("transaction_t", "t_updates", "rw", handle, hdr),
        _r("transaction_t", "t_chp_stats", "rw", jlist, hdr),
        _r("transaction_t", "t_journal", "w", state_w, hdr),
        _r("transaction_t", "t_tid", "w", state_w, hdr),
        _r("transaction_t", "t_start_time", "w", state_w, hdr),
        _r("transaction_t", "t_max_wait", "w", state_w, hdr),
        _r("transaction_t", "t_run_state", "w", state_w, hdr),
        _r("transaction_t", "t_synchronous_commit", "r", state_r, hdr),
        _r("transaction_t", "t_checkpoint_io_list", "r", jlist, hdr),
        _r("transaction_t", "t_log_list", "r", jlist, hdr),
        _r("transaction_t", "t_reserved_list", "r", jlist, hdr),
    ]
    return rules


def journal_head_rules() -> List[DocumentedRule]:
    """26 rules from include/linux/journal-head.h."""
    hdr = "include/linux/journal-head.h:20"
    bstate = "ES(b_state_lock in journal_head)"
    blist = "ES(b_state_lock in journal_head) -> EO(j_list_lock in journal_t)"
    return [
        # Correct.
        _r("journal_head", "b_jcount", "r", bstate, hdr),
        _r("journal_head", "b_jcount", "w", bstate, hdr),
        _r("journal_head", "b_jlist", "w", blist, hdr),
        _r("journal_head", "b_transaction", "w", blist, hdr),
        _r("journal_head", "b_next_transaction", "w", blist, hdr),
        _r("journal_head", "b_tnext", "r", blist, hdr),
        _r("journal_head", "b_tnext", "w", blist, hdr),
        _r("journal_head", "b_tprev", "r", blist, hdr),
        _r("journal_head", "b_tprev", "w", blist, hdr),
        _r("journal_head", "b_modified", "w", bstate, hdr),
        _r("journal_head", "b_cp_transaction", "w", blist, hdr),
        _r("journal_head", "b_cpnext", "w", blist, hdr),
        _r("journal_head", "b_cpprev", "w", blist, hdr),
        # Ambivalent (list membership is often checked with only the
        # bit-lock held).
        _r("journal_head", "b_jlist", "r", blist, hdr),
        _r("journal_head", "b_transaction", "r", blist, hdr),
        _r("journal_head", "b_next_transaction", "r", blist, hdr),
        _r("journal_head", "b_cp_transaction", "r", blist, hdr),
        # Stale: frozen payloads are documented under the bit-lock but
        # read lock-free once stable.
        _r("journal_head", "b_modified", "r", bstate, hdr),
        _r("journal_head", "b_frozen_data", "r", bstate, hdr),
        _r("journal_head", "b_committed_data", "r", bstate, hdr),
        _r("journal_head", "b_triggers", "r", bstate, hdr),
        _r("journal_head", "b_frozen_triggers", "r", bstate, hdr),
        _r("journal_head", "b_bh", "r", bstate, hdr),
        # Never observed.
        _r("journal_head", "b_triggers", "w", bstate, hdr),
        _r("journal_head", "b_frozen_triggers", "w", bstate, hdr),
        _r("journal_head", "b_bh", "w", bstate, hdr),
    ]


#: All documented rules, keyed by data type (the Tab. 4 row order).
CORPUS_BUILDERS = {
    "inode": inode_rules,
    "journal_head": journal_head_rules,
    "transaction_t": transaction_rules,
    "journal_t": journal_rules,
    "dentry": dentry_rules,
}


def documented_rules(data_type: str = "") -> List[DocumentedRule]:
    """The documented-rule corpus; optionally for one data type."""
    if data_type:
        return CORPUS_BUILDERS[data_type]()
    rules: List[DocumentedRule] = []
    for builder in CORPUS_BUILDERS.values():
        rules.extend(builder())
    return rules


def corpus_counts() -> Dict[str, int]:
    """Number of expanded rules per type (the Tab. 4 #R column)."""
    counts = {}
    for data_type, builder in CORPUS_BUILDERS.items():
        counts[data_type] = sum(len(rule.expand()) for rule in builder())
    return counts
