"""Model of officially documented locking rules.

A :class:`DocumentedRule` is one statement of the form "accesses of
kind X to member M of type T require rule R", attributed to the source
location the statement was found at.  ``access`` may be ``"r"``,
``"w"`` or ``"rw"`` — the latter expands to two checkable rules, which
is why the paper's 142 rules cover 71 members ("as we handle read and
write accesses separately", Sec. 7.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.rules import LockingRule

VALID_ACCESS = ("r", "w", "rw")


@dataclass(frozen=True)
class DocumentedRule:
    """One documented locking rule."""

    data_type: str
    member: str
    access: str  # "r", "w" or "rw"
    rule: LockingRule
    source: str = ""  # e.g. "fs/inode.c:10"
    note: str = ""

    def __post_init__(self) -> None:
        if self.access not in VALID_ACCESS:
            raise ValueError(f"invalid access kind {self.access!r}")

    def expand(self) -> List[Tuple[str, LockingRule]]:
        """Expand to per-access-type ``(access_type, rule)`` pairs."""
        if self.access == "rw":
            return [("r", self.rule), ("w", self.rule)]
        return [(self.access, self.rule)]

    def format(self) -> str:
        return f"{self.data_type}.{self.member} [{self.access}]: {self.rule.format()}"


def expand_rules(rules: List[DocumentedRule]) -> List[Tuple[DocumentedRule, str, LockingRule]]:
    """Flatten a rule list to ``(origin, access_type, rule)`` triples."""
    expanded = []
    for documented in rules:
        for access_type, rule in documented.expand():
            expanded.append((documented, access_type, rule))
    return expanded
