"""Canonical-profile memoization for the derivation hot path.

Rule derivation is a pure function of a target's *observation profile*
— the multiset of ``(lockseq, count)`` pairs produced by folding its
observations.  Two targets with equal profiles (e.g. two members only
ever written under the same ``ES(i_lock in inode)``) necessarily
enumerate the same candidate rules and measure the same support, so
``enumerate_and_score`` results can be shared between them.  On the
benchmark mix roughly 60% of the 884 derivation targets share a
profile with an earlier target, which is exactly the per-lockset reuse
that gives Eraser-style tools their scale.

:class:`HypothesisMemo` keys cached hypothesis lists on the *canonical*
profile (sorted by descending count, then lockseq) plus ``max_locks``,
so the cache is insensitive to the order a caller folded the
observations in.  The memo also underpins the parallel derivation path:
the parent process dedups targets down to distinct profiles, ships only
cache *misses* to worker processes, and seeds the results back — which
keeps the hit/miss statistics identical to a serial run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.core.hypotheses import MAX_RULE_LOCKS, Hypothesis, enumerate_and_score
from repro.core.lockrefs import LockSeq

#: A canonical observation profile: ``(lockseq, count)`` pairs sorted by
#: descending count, then lockseq — the memo key for one target.
Profile = Tuple[Tuple[LockSeq, int], ...]

_MemoKey = Tuple[Profile, int]


def canonical_profile(sequences: Sequence[Tuple[LockSeq, int]]) -> Profile:
    """Fold a target's ``(lockseq, count)`` pairs into the canonical key.

    :meth:`ObservationTable.sequences` already emits this order, so for
    the common caller this is a near-free defensive sort.
    """
    return tuple(sorted(sequences, key=lambda item: (-item[1], item[0])))


@dataclass
class MemoStats:
    """Hit/miss counters of one :class:`HypothesisMemo`."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def merge(self, other: "MemoStats") -> None:
        self.hits += other.hits
        self.misses += other.misses


class HypothesisMemo:
    """Shares ``enumerate_and_score`` results across derivation targets.

    Cached hypothesis lists are returned by reference and must not be
    mutated by callers (the derivator only filters them into new lists).
    """

    def __init__(self) -> None:
        self._cache: Dict[_MemoKey, List[Hypothesis]] = {}
        #: Keys filled by :meth:`seed` (parallel workers) that have not
        #: been consumed yet — their first lookup counts as a *miss*, so
        #: parallel and serial runs report identical statistics.
        self._seeded: Set[_MemoKey] = set()
        self.stats = MemoStats()

    def __contains__(self, key: _MemoKey) -> bool:
        return key in self._cache

    def __len__(self) -> int:
        return len(self._cache)

    def enumerate_and_score(
        self,
        sequences: Sequence[Tuple[LockSeq, int]],
        max_locks: int = MAX_RULE_LOCKS,
    ) -> List[Hypothesis]:
        """Memoized :func:`repro.core.hypotheses.enumerate_and_score`."""
        profile = canonical_profile(sequences)
        key = (profile, max_locks)
        cached = self._cache.get(key)
        if cached is not None:
            if key in self._seeded:
                self._seeded.discard(key)
                self.stats.misses += 1
            else:
                self.stats.hits += 1
            return cached
        self.stats.misses += 1
        hypotheses = enumerate_and_score(list(profile), max_locks)
        self._cache[key] = hypotheses
        return hypotheses

    def seed(
        self, profile: Profile, max_locks: int, hypotheses: List[Hypothesis]
    ) -> None:
        """Install an externally computed result (parallel scoring)."""
        key = (profile, max_locks)
        self._cache[key] = hypotheses
        self._seeded.add(key)
