"""The Rule-Violation Finder (Sec. 5.5, evaluated in Sec. 7.5).

In contrast to the checker, the violation finder assumes the *derived*
rules are correct and scans the trace for member accesses that violate
their winning rule.  For each generated rule with relative support
below 1.0 it locates the non-complying observations and reports:

* data type and member,
* the locks that *should* have been held (the rule),
* the locks that actually *were* held,
* the contexts the violations originated from — source file/line plus
  the interned stack trace (Tab. 8).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.derivator import DerivationResult
from repro.core.lockrefs import LockSeq
from repro.core.observations import Observation, ObservationTable
from repro.core.rules import LockingRule, complies
from repro.db.schema import AccessRow


@dataclass
class Violation:
    """All violations of one rule sharing the same held-lock sequence."""

    type_key: str
    member: str
    access_type: str
    rule: LockingRule
    held: LockSeq
    events: int = 0
    contexts: Set[int] = field(default_factory=set)  # stack ids
    locations: Set[Tuple[str, int]] = field(default_factory=set)
    sample: Optional[AccessRow] = None

    def format(self) -> str:
        held = " -> ".join(ref.format() for ref in self.held) or "(none)"
        location = f"{self.sample.file}:{self.sample.line}" if self.sample else "?"
        return (
            f"{self.type_key}.{self.member} [{self.access_type}] "
            f"expected [{self.rule.format()}] held [{held}] at {location} "
            f"({self.events} events, {len(self.contexts)} contexts)"
        )


@dataclass
class ViolationSummary:
    """Tab. 7 row: violation totals for one data type."""

    type_key: str
    events: int
    members: int
    contexts: int


class ViolationFinder:
    """Scan observations for accesses violating the derived rules."""

    def __init__(self, result: DerivationResult, table: ObservationTable) -> None:
        self.result = result
        self.table = table

    def find(self) -> List[Violation]:
        """All violations, grouped by (target, held-lock sequence)."""
        grouped: Dict[Tuple[str, str, str, LockSeq], Violation] = {}
        for derivation in self.result.all():
            rule = derivation.rule
            if derivation.winner.s_r >= 1.0:
                continue  # fully supported rules have no counterexamples
            observations = self.table.get(
                derivation.type_key, derivation.member, derivation.access_type
            )
            for obs in observations:
                if complies(obs.lockseq, rule):
                    continue
                key = (obs.type_key, obs.member, obs.access_type, obs.lockseq)
                violation = grouped.get(key)
                if violation is None:
                    violation = Violation(
                        type_key=obs.type_key,
                        member=obs.member,
                        access_type=obs.access_type,
                        rule=rule,
                        held=obs.lockseq,
                    )
                    grouped[key] = violation
                self._account(violation, obs)
        return sorted(
            grouped.values(),
            key=lambda v: (-v.events, v.type_key, v.member, v.access_type),
        )

    @staticmethod
    def _account(violation: Violation, obs: Observation) -> None:
        for access in obs.accesses:
            violation.events += 1
            violation.contexts.add(access.stack_id)
            violation.locations.add((access.file, access.line))
            if violation.sample is None:
                violation.sample = access


def summarize(
    violations: Sequence[Violation], type_keys: Sequence[str] = ()
) -> List[ViolationSummary]:
    """Aggregate violations into Tab. 7 rows.

    *type_keys* may list additional types to report (with zero counts),
    reproducing the paper's rows like ``cdev: 0 events``.
    """
    by_type: Dict[str, List[Violation]] = defaultdict(list)
    for violation in violations:
        by_type[violation.type_key].append(violation)
    keys = sorted(set(by_type) | set(type_keys))
    summaries = []
    for type_key in keys:
        rows = by_type.get(type_key, [])
        members = {(v.member, v.access_type) for v in rows}
        contexts: Set[int] = set()
        for violation in rows:
            contexts.update(violation.contexts)
        summaries.append(
            ViolationSummary(
                type_key=type_key,
                events=sum(v.events for v in rows),
                members=len({m for m, _ in members}),
                contexts=len(contexts),
            )
        )
    return summaries
