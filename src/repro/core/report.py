"""Report rendering helpers.

The experiments print paper-style tables; this module provides the tiny
fixed-width table renderer they share, plus machine-readable dict
conversion for programmatic consumers.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str = "",
) -> str:
    """Render a fixed-width text table."""
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def fmt(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(headers))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append(fmt(row))
    return "\n".join(lines)


def render_counts(
    counts: Mapping[str, Any],
    title: str = "",
    headers: Sequence[str] = ("kind", "count"),
) -> str:
    """Render a ``{label: count}`` mapping as a two-column table."""
    return render_table(headers, list(counts.items()), title=title)


def percentage(value: float, digits: int = 2) -> str:
    """Format a ratio as a percent string (paper-style)."""
    return f"{value * 100:.{digits}f}%"


def rows_to_dicts(
    headers: Sequence[str], rows: Iterable[Sequence[Any]]
) -> List[Dict[str, Any]]:
    """Machine-readable form of a rendered table."""
    return [dict(zip(headers, row)) for row in rows]
