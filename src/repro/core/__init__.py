"""LockDoc's core contribution: locking-rule derivation and analysis.

The subpackage implements phases 2 and 3 of the paper:

* :mod:`repro.core.lockrefs`      — lock abstraction (global / ES / EO)
* :mod:`repro.core.rules`         — locking rules + compliance semantics
* :mod:`repro.core.observations`  — folded per-transaction access matrix
* :mod:`repro.core.hypotheses`    — hypothesis enumeration and support
* :mod:`repro.core.memo`          — canonical-profile hypothesis memo
* :mod:`repro.core.selection`     — winning-hypothesis selection
* :mod:`repro.core.derivator`     — end-to-end rule derivation (serial
  or process-parallel via ``derive(table, jobs=N)``)
* :mod:`repro.core.checker`       — Locking-Rule Checker  (Sec. 7.3)
* :mod:`repro.core.docgen`        — Documentation Generator (Fig. 8)
* :mod:`repro.core.violations`    — Rule-Violation Finder  (Sec. 7.5)
"""

from repro.core.lockrefs import LockRef, Scope
from repro.core.rules import LockingRule, complies

__all__ = ["LockRef", "LockingRule", "Scope", "complies"]
