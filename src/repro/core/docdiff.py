"""Documentation patch generator.

Phase 3's documentation generator "can, e.g., replace currently
documented but ambivalent/incorrect rules, or add new documentation for
data-structure members that were not documented before" (Sec. 5.5).
This module computes that diff explicitly: given the documented-rule
corpus and a derivation result, classify every member into

* ``KEEP``     — documentation matches the mined rule,
* ``UPDATE``   — documented, but the mined rule differs (stale docs),
* ``ADD``      — mined with good support, not documented at all,
* ``REVIEW``   — documented, but the member was never observed (cannot
  confirm; flagged for expert review, like the paper's #No column),

and render the result as a reviewable patch proposal.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.derivator import DerivationResult
from repro.core.rules import LockingRule
from repro.doc.model import DocumentedRule, expand_rules


class DocAction(enum.Enum):
    """What the documentation patch proposes for a member."""
    KEEP = "keep"
    UPDATE = "update"
    ADD = "add"
    REVIEW = "review"


@dataclass
class DocPatchEntry:
    """One proposed documentation change for one member/access."""
    data_type: str
    member: str
    access_type: str
    action: DocAction
    documented: Optional[LockingRule]
    mined: Optional[LockingRule]
    support: Optional[float]  # mined winner's s_r
    source: str = ""  # where the stale documentation lives

    def format(self) -> str:
        if self.action == DocAction.KEEP:
            return (
                f"  KEEP   {self.member} [{self.access_type}]: "
                f"{self.documented.format()}"
            )
        if self.action == DocAction.UPDATE:
            return (
                f"- {self.member} [{self.access_type}]: {self.documented.format()}"
                f"   ({self.source})\n"
                f"+ {self.member} [{self.access_type}]: {self.mined.format()}"
                f"   (s_r={self.support:.1%})"
            )
        if self.action == DocAction.ADD:
            return (
                f"+ {self.member} [{self.access_type}]: {self.mined.format()}"
                f"   (s_r={self.support:.1%}, previously undocumented)"
            )
        return (
            f"? {self.member} [{self.access_type}]: {self.documented.format()}"
            f"   (never observed; needs expert review)"
        )


@dataclass
class DocPatch:
    """All proposed documentation changes for one data type."""
    data_type: str
    entries: List[DocPatchEntry]

    def by_action(self, action: DocAction) -> List[DocPatchEntry]:
        return [e for e in self.entries if e.action == action]

    def summary(self) -> Dict[str, int]:
        return {
            action.value: len(self.by_action(action)) for action in DocAction
        }

    def render(self, include_keep: bool = False) -> str:
        lines = [f"documentation patch for struct {self.data_type}:"]
        for action in (DocAction.UPDATE, DocAction.ADD, DocAction.REVIEW):
            entries = self.by_action(action)
            if not entries:
                continue
            lines.append(f"-- {action.value} ({len(entries)}) --")
            for entry in entries:
                lines.append(entry.format())
        if include_keep:
            keeps = self.by_action(DocAction.KEEP)
            lines.append(f"-- keep ({len(keeps)}) --")
            lines.extend(entry.format() for entry in keeps)
        counts = self.summary()
        lines.append(
            f"totals: keep {counts['keep']}, update {counts['update']}, "
            f"add {counts['add']}, review {counts['review']}"
        )
        return "\n".join(lines)


def build_doc_patch(
    derivation: DerivationResult,
    documented: Sequence[DocumentedRule],
    data_type: str,
    type_keys: Optional[Sequence[str]] = None,
    min_support: float = 0.9,
) -> DocPatch:
    """Diff mined rules against the documentation for *data_type*.

    ``type_keys`` selects which derivation keys represent this data
    type (e.g. ``["inode:ext4"]`` or all subclasses); by default every
    key whose base type matches is merged, with the best-supported
    winner per member/access kept.
    """
    if type_keys is None:
        prefix = data_type + ":"
        type_keys = [
            tk
            for tk in derivation.type_keys()
            if tk == data_type or tk.startswith(prefix)
        ]

    # best mined winner per (member, access)
    mined: Dict[Tuple[str, str], Tuple[LockingRule, float]] = {}
    for type_key in type_keys:
        for d in derivation.for_type(type_key):
            key = (d.member, d.access_type)
            current = mined.get(key)
            if current is None or d.winner.s_r > current[1]:
                mined[key] = (d.rule, d.winner.s_r)

    documented_map: Dict[Tuple[str, str], Tuple[DocumentedRule, LockingRule]] = {}
    for origin, access_type, rule in expand_rules(
        [r for r in documented if r.data_type == data_type]
    ):
        documented_map[(origin.member, access_type)] = (origin, rule)

    entries: List[DocPatchEntry] = []
    for key in sorted(set(mined) | set(documented_map)):
        member, access_type = key
        mined_entry = mined.get(key)
        doc_entry = documented_map.get(key)
        if doc_entry is None:
            rule, support = mined_entry
            if support < min_support or rule.is_no_lock:
                continue  # only add confident, non-trivial rules
            entries.append(
                DocPatchEntry(data_type, member, access_type, DocAction.ADD,
                              None, rule, support)
            )
        elif mined_entry is None:
            origin, rule = doc_entry
            entries.append(
                DocPatchEntry(data_type, member, access_type, DocAction.REVIEW,
                              rule, None, None, origin.source)
            )
        else:
            origin, doc_rule = doc_entry
            rule, support = mined_entry
            action = DocAction.KEEP if rule == doc_rule else DocAction.UPDATE
            entries.append(
                DocPatchEntry(data_type, member, access_type, action,
                              doc_rule, rule, support, origin.source)
            )
    return DocPatch(data_type=data_type, entries=entries)
