"""Machine-readable export/import of derived locking rules.

The paper's locking-rule derivator provides "several human- and
machine-readable report modes" (Sec. 6); the locking-rule checker then
consumes "a specific summary-mode output" of it.  This module is that
interchange format: a JSON document carrying every derivation target's
winning rule, support metrics, and (optionally) the full hypothesis
list — so derived rule sets can be archived, diffed across kernel
versions, or checked against a different trace.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List

from repro.core.derivator import DerivationResult
from repro.core.rules import LockingRule

FORMAT_VERSION = 1


@dataclass(frozen=True)
class ExportedRule:
    """One derived rule as read back from an export."""

    type_key: str
    member: str
    access_type: str
    rule: LockingRule
    s_a: int
    s_r: float
    observations: int

    @property
    def key(self):
        return (self.type_key, self.member, self.access_type)


def rules_to_json(
    result: DerivationResult,
    include_hypotheses: bool = False,
) -> str:
    """Serialize a derivation result (summary mode)."""
    targets = []
    for derivation in result.all():
        entry = {
            "type": derivation.type_key,
            "member": derivation.member,
            "access": derivation.access_type,
            "rule": derivation.rule.format(),
            "s_a": derivation.winner.s_a,
            "s_r": round(derivation.winner.s_r, 6),
            "observations": derivation.observation_count,
        }
        if include_hypotheses:
            entry["hypotheses"] = [
                {
                    "rule": h.rule.format(),
                    "s_a": h.s_a,
                    "s_r": round(h.s_r, 6),
                }
                for h in derivation.hypotheses
            ]
        targets.append(entry)
    return json.dumps(
        {
            "format": FORMAT_VERSION,
            "accept_threshold": result.accept_threshold,
            "targets": targets,
        },
        indent=2,
        sort_keys=True,
    )


def rules_from_json(text: str) -> List[ExportedRule]:
    """Parse an export back into :class:`ExportedRule` records."""
    document = json.loads(text)
    version = document.get("format")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported rule-export format {version!r}")
    rules = []
    for entry in document["targets"]:
        rules.append(
            ExportedRule(
                type_key=entry["type"],
                member=entry["member"],
                access_type=entry["access"],
                rule=LockingRule.parse(entry["rule"]),
                s_a=entry["s_a"],
                s_r=entry["s_r"],
                observations=entry["observations"],
            )
        )
    return rules


def diff_rule_sets(
    old: List[ExportedRule], new: List[ExportedRule]
) -> Dict[str, List]:
    """Compare two exported rule sets (e.g. across kernel versions).

    Returns ``{"added": [...], "removed": [...], "changed": [(old, new),
    ...]}`` keyed by (type, member, access).
    """
    old_map = {rule.key: rule for rule in old}
    new_map = {rule.key: rule for rule in new}
    added = [new_map[key] for key in sorted(set(new_map) - set(old_map))]
    removed = [old_map[key] for key in sorted(set(old_map) - set(new_map))]
    changed = [
        (old_map[key], new_map[key])
        for key in sorted(set(old_map) & set(new_map))
        if old_map[key].rule != new_map[key].rule
    ]
    return {"added": added, "removed": removed, "changed": changed}
