"""Winning-hypothesis selection (Sec. 4.3).

A naive "highest support above an accept threshold" strategy fails
twice: the "no lock" hypothesis always wins (nothing is a
counterexample to it), and an *under-specified* rule dominates the true
rule (every observation of ``sec_lock -> min_lock`` also supports plain
``sec_lock``, and buggy accesses support *only* the shorter rule, so
the wrong rule scores higher — Tab. 2).

LockDoc's strategy: all hypotheses with relative support at or above
the accept threshold ``t_ac`` are considered *related*; among them the
one with the **lowest** support wins, because the true (most specific)
rule is the one every looser rule inherits its support from.  Support
ties break towards **more locks**.  Since "no lock" always sits at
``s_r = 1``, a winner always exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.hypotheses import Hypothesis

#: The paper adopts Engler et al.'s p_correct = 0.9 (Sec. 7.4).
DEFAULT_ACCEPT_THRESHOLD = 0.9


@dataclass(frozen=True)
class Selection:
    """The outcome of winner selection for one derivation target."""

    winner: Hypothesis
    candidates: List[Hypothesis]
    threshold: float

    @property
    def is_no_lock(self) -> bool:
        return self.winner.rule.is_no_lock


def select_winner(
    hypotheses: Sequence[Hypothesis],
    accept_threshold: float = DEFAULT_ACCEPT_THRESHOLD,
) -> Selection:
    """Apply the LockDoc selection strategy.

    Raises ``ValueError`` on an empty hypothesis list (the enumerator
    always yields at least the "no lock" rule, so this signals misuse).
    """
    if not hypotheses:
        raise ValueError("no hypotheses to select from")
    candidates = [h for h in hypotheses if h.s_r >= accept_threshold]
    if not candidates:  # pragma: no cover - "no lock" is always a candidate
        candidates = [h for h in hypotheses if h.rule.is_no_lock]
    winner = min(
        candidates,
        key=lambda h: (h.s_r, -len(h.rule), h.rule.format()),
    )
    ordered = sorted(candidates, key=lambda h: (h.s_r, -len(h.rule), h.rule.format()))
    return Selection(winner=winner, candidates=ordered, threshold=accept_threshold)


def select_naive(hypotheses: Sequence[Hypothesis]) -> Optional[Hypothesis]:
    """The strawman strategy (highest support wins; used by the
    selection-strategy ablation benchmark to demonstrate Tab. 2).

    Tie-break: among equal-support hypotheses the one with the *fewest*
    locks wins, then the lexicographically-first format.  That matches
    the strawman's spirit — it gravitates to under-specified rules —
    and makes the winner deterministic under any input permutation
    (the previous ``max`` over ascending keys silently favoured *more*
    locks and the lexicographically-last format, so the Tab. 2 ablation
    depended on hypothesis order).
    """
    if not hypotheses:
        return None
    return min(hypotheses, key=lambda h: (-h.s_r, len(h.rule), h.rule.format()))
