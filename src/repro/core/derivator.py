"""End-to-end locking-rule derivation (phase 2 of the paper).

``Derivator.derive`` walks every ``(type_key, member, access_type)``
target of an :class:`~repro.core.observations.ObservationTable`,
enumerates and scores hypotheses, and selects a winner.  The result
object offers the aggregate views the evaluation needs (rule counts,
"no lock" fractions for Fig. 7, per-type winners for Tab. 6).

Derivation targets are independent, so the engine exploits two levels
of structure:

* **Memoization** — targets whose folded observation profiles are
  equal share one ``enumerate_and_score`` result via
  :class:`~repro.core.memo.HypothesisMemo`.
* **Process parallelism** — ``derive(table, jobs=N)`` dedups targets
  down to distinct profiles, chunks the cache misses, and ships the
  *folded sequences* (never the table or raw observations) to a
  ``ProcessPoolExecutor``.  The merged :class:`DerivationResult` is
  bit-identical to a serial run — winners, supports, report order and
  even the memo statistics.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.hypotheses import (
    MAX_RULE_LOCKS,
    Hypothesis,
    enumerate_and_score,
)
from repro.core.lockrefs import LockSeq
from repro.core.memo import HypothesisMemo, MemoStats, Profile, canonical_profile
from repro.core.observations import ObsKey, ObservationTable
from repro.core.rules import LockingRule
from repro.core.selection import (
    DEFAULT_ACCEPT_THRESHOLD,
    Selection,
    select_winner,
)


@dataclass
class Derivation:
    """Derived rule for one member and access type."""

    type_key: str
    member: str
    access_type: str
    observation_count: int
    hypotheses: List[Hypothesis]
    selection: Selection

    @property
    def winner(self) -> Hypothesis:
        return self.selection.winner

    @property
    def rule(self) -> LockingRule:
        return self.selection.winner.rule

    @property
    def is_no_lock(self) -> bool:
        return self.rule.is_no_lock

    def format(self) -> str:
        return (
            f"{self.type_key}.{self.member} [{self.access_type}]: "
            f"{self.winner.format()}"
        )


class DerivationResult:
    """All derivations of one run, with aggregate helpers."""

    def __init__(self, accept_threshold: float) -> None:
        self.accept_threshold = accept_threshold
        self._by_key: Dict[ObsKey, Derivation] = {}
        #: Memo hit/miss statistics of the derive run that produced
        #: this result (None when assembled by hand via :meth:`add`).
        self.memo_stats: Optional[MemoStats] = None

    def add(self, derivation: Derivation) -> None:
        key = (derivation.type_key, derivation.member, derivation.access_type)
        self._by_key[key] = derivation

    def __eq__(self, other: object) -> bool:
        """Payload equality: same threshold and same derivations.

        Memo statistics are run metadata and deliberately excluded, so
        a parallel run compares equal to its serial twin.
        """
        if not isinstance(other, DerivationResult):
            return NotImplemented
        return (
            self.accept_threshold == other.accept_threshold
            and self._by_key == other._by_key
        )

    __hash__ = None  # mutable container

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def get(self, type_key: str, member: str, access_type: str) -> Optional[Derivation]:
        return self._by_key.get((type_key, member, access_type))

    def keys(self) -> List[ObsKey]:
        return sorted(self._by_key)

    def all(self) -> List[Derivation]:
        return [self._by_key[k] for k in self.keys()]

    def type_keys(self) -> List[str]:
        return sorted({k[0] for k in self._by_key})

    def for_type(self, type_key: str) -> List[Derivation]:
        return [
            self._by_key[k] for k in self.keys() if k[0] == type_key
        ]

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    def rule_count(self, type_key: str, access_type: str) -> int:
        """Members of *type_key* with a derived rule for *access_type*."""
        return sum(
            1
            for (tk, _, at) in self._by_key
            if tk == type_key and at == access_type
        )

    def no_lock_count(self, type_key: str, access_type: str) -> int:
        return sum(
            1
            for (tk, _, at), d in self._by_key.items()
            if tk == type_key and at == access_type and d.is_no_lock
        )

    def no_lock_fraction(self, type_key: str, access_type: str) -> Optional[float]:
        """Fraction of "no lock" winners (Fig. 7); None if nothing derived."""
        total = self.rule_count(type_key, access_type)
        if total == 0:
            return None
        return self.no_lock_count(type_key, access_type) / total


#: Minimum distinct uncached profiles before ``jobs > 1`` actually
#: forks a pool.  Spawning workers and pickling chunks costs a fixed
#: few hundred milliseconds while scoring one profile takes ~1-3 ms,
#: so below this point the pool is pure overhead (fsstress, with ~140
#: distinct profiles, ran 5.6x slower under ``--jobs 4`` than serial).
#: The mix workload (~335 distinct profiles) still parallelizes.
_PARALLEL_MIN_PROFILES = 192


def _score_chunk(payload: Tuple[Sequence[Profile], int]) -> List[List[Hypothesis]]:
    """Worker: enumerate and score one chunk of canonical profiles.

    Top-level so it pickles; receives only folded sequences and returns
    plain hypothesis lists — no table, no database, no observations.
    """
    profiles, max_locks = payload
    return [enumerate_and_score(list(profile), max_locks) for profile in profiles]


class Derivator:
    """Configurable rule-derivation engine.

    Args mirror the paper's command-line switches (Sec. 6): the accept
    threshold ``t_ac``, an output cut-off threshold ``t_co`` limiting
    reported hypotheses to a minimum relative support, and the maximum
    rule length.

    ``accept_threshold >= cutoff_threshold`` is *not* required: the
    cutoff only trims the reported hypothesis list, and
    :meth:`derive_one` always merges the selection candidates (winner
    included) back into the report — so a cutoff above the accept
    threshold merely shortens the listing, it can never hide the
    selection outcome.
    """

    def __init__(
        self,
        accept_threshold: float = DEFAULT_ACCEPT_THRESHOLD,
        cutoff_threshold: float = 0.0,
        max_locks: int = MAX_RULE_LOCKS,
    ) -> None:
        if not 0.0 < accept_threshold <= 1.0:
            raise ValueError(f"accept threshold {accept_threshold} not in (0, 1]")
        if not 0.0 <= cutoff_threshold <= 1.0:
            raise ValueError(f"cutoff threshold {cutoff_threshold} not in [0, 1]")
        if max_locks < 1:
            # max_locks == 0 would enumerate only the no-lock rule and
            # every member would silently "derive" to no-lock.
            raise ValueError(f"max rule length {max_locks} must be >= 1")
        self.accept_threshold = accept_threshold
        self.cutoff_threshold = cutoff_threshold
        self.max_locks = max_locks

    # ------------------------------------------------------------------
    # Single-target derivation
    # ------------------------------------------------------------------

    def derive_one(
        self,
        table: ObservationTable,
        type_key: str,
        member: str,
        access_type: str,
        memo: Optional[HypothesisMemo] = None,
    ) -> Optional[Derivation]:
        """Derive the rule for a single target; None if unobserved."""
        sequences = table.sequences(type_key, member, access_type)
        if not sequences:
            return None
        if memo is not None:
            hypotheses = memo.enumerate_and_score(sequences, self.max_locks)
        else:
            hypotheses = enumerate_and_score(sequences, self.max_locks)
        return self._build(
            type_key,
            member,
            access_type,
            table.observation_count(type_key, member, access_type),
            hypotheses,
        )

    def _build(
        self,
        type_key: str,
        member: str,
        access_type: str,
        observation_count: int,
        hypotheses: List[Hypothesis],
    ) -> Derivation:
        selection = select_winner(hypotheses, self.accept_threshold)
        # The cutoff trims the *report*, never the selection: merge the
        # selection candidates (winner included) back in, so a cutoff
        # above the accept threshold cannot drop the winner from
        # ``Derivation.hypotheses``.  Report order stays the
        # enumerate_and_score order (Tab. 2).
        candidates = set(selection.candidates)
        reported = [
            h
            for h in hypotheses
            if h.s_r >= self.cutoff_threshold or h in candidates
        ]
        return Derivation(
            type_key=type_key,
            member=member,
            access_type=access_type,
            observation_count=observation_count,
            hypotheses=reported,
            selection=selection,
        )

    # ------------------------------------------------------------------
    # Whole-table derivation (serial or parallel)
    # ------------------------------------------------------------------

    def derive(
        self,
        table: ObservationTable,
        jobs: Optional[int] = None,
        memo: Optional[HypothesisMemo] = None,
    ) -> DerivationResult:
        """Derive rules for every observed target in *table*.

        ``jobs > 1`` scores distinct observation profiles on a process
        pool; the merged result is bit-identical to the serial path.
        Small workloads (fewer than
        :data:`_PARALLEL_MIN_PROFILES` distinct uncached profiles)
        fall back to serial automatically — forking the pool and
        pickling the work units costs more than the scoring itself
        there, so honouring ``--jobs`` literally made e.g. fsstress
        several times *slower*.  A caller-supplied *memo* is reused
        (and further filled), which lets repeated derivations at
        different thresholds share work.
        """
        if memo is None:
            memo = HypothesisMemo()
        result = DerivationResult(self.accept_threshold)
        targets = [
            (key, sequences)
            for key in table.keys()
            if (sequences := table.sequences(*key))
        ]
        if jobs is not None and jobs > 1 and targets:
            self._prescore_parallel(memo, [s for _, s in targets], jobs)
        for key, sequences in targets:
            hypotheses = memo.enumerate_and_score(sequences, self.max_locks)
            result.add(
                self._build(*key, table.observation_count(*key), hypotheses)
            )
        result.memo_stats = memo.stats
        return result

    def _prescore_parallel(
        self,
        memo: HypothesisMemo,
        seq_lists: Sequence[Sequence[Tuple[LockSeq, int]]],
        jobs: int,
    ) -> None:
        """Fill the memo's cache misses on a process pool.

        Only *distinct uncached* profiles travel to the workers (the
        memo dedup is the parallel work partition), and seeded entries
        count as misses on first use, so statistics match serial runs.
        """
        pending: List[Profile] = []
        seen = set()
        for sequences in seq_lists:
            profile = canonical_profile(sequences)
            key = (profile, self.max_locks)
            if key in memo or profile in seen:
                continue
            seen.add(profile)
            pending.append(profile)
        if len(pending) < _PARALLEL_MIN_PROFILES:
            return  # pool startup would dominate; score serially
        try:
            from concurrent.futures import ProcessPoolExecutor

            workers = min(jobs, len(pending))
            # More chunks than workers for load balance; contiguous
            # slices keep the order deterministic.
            n_chunks = min(len(pending), workers * 4)
            step = -(-len(pending) // n_chunks)
            chunks = [
                pending[i : i + step] for i in range(0, len(pending), step)
            ]
            with ProcessPoolExecutor(max_workers=workers) as pool:
                scored = list(
                    pool.map(
                        _score_chunk,
                        [(chunk, self.max_locks) for chunk in chunks],
                    )
                )
        except (OSError, PermissionError) as exc:  # pragma: no cover
            # Sandboxes without fork/semaphores: degrade to serial.
            print(
                f"warning: parallel derivation unavailable ({exc}); "
                "falling back to serial",
                file=sys.stderr,
            )
            return
        for chunk, hypothesis_lists in zip(chunks, scored):
            for profile, hypotheses in zip(chunk, hypothesis_lists):
                memo.seed(profile, self.max_locks, hypotheses)
