"""End-to-end locking-rule derivation (phase 2 of the paper).

``Derivator.derive`` walks every ``(type_key, member, access_type)``
target of an :class:`~repro.core.observations.ObservationTable`,
enumerates and scores hypotheses, and selects a winner.  The result
object offers the aggregate views the evaluation needs (rule counts,
"no lock" fractions for Fig. 7, per-type winners for Tab. 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.hypotheses import (
    MAX_RULE_LOCKS,
    Hypothesis,
    enumerate_and_score,
)
from repro.core.observations import ObsKey, ObservationTable
from repro.core.rules import LockingRule
from repro.core.selection import (
    DEFAULT_ACCEPT_THRESHOLD,
    Selection,
    select_winner,
)


@dataclass
class Derivation:
    """Derived rule for one member and access type."""

    type_key: str
    member: str
    access_type: str
    observation_count: int
    hypotheses: List[Hypothesis]
    selection: Selection

    @property
    def winner(self) -> Hypothesis:
        return self.selection.winner

    @property
    def rule(self) -> LockingRule:
        return self.selection.winner.rule

    @property
    def is_no_lock(self) -> bool:
        return self.rule.is_no_lock

    def format(self) -> str:
        return (
            f"{self.type_key}.{self.member} [{self.access_type}]: "
            f"{self.winner.format()}"
        )


class DerivationResult:
    """All derivations of one run, with aggregate helpers."""

    def __init__(self, accept_threshold: float) -> None:
        self.accept_threshold = accept_threshold
        self._by_key: Dict[ObsKey, Derivation] = {}

    def add(self, derivation: Derivation) -> None:
        key = (derivation.type_key, derivation.member, derivation.access_type)
        self._by_key[key] = derivation

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def get(self, type_key: str, member: str, access_type: str) -> Optional[Derivation]:
        return self._by_key.get((type_key, member, access_type))

    def keys(self) -> List[ObsKey]:
        return sorted(self._by_key)

    def all(self) -> List[Derivation]:
        return [self._by_key[k] for k in self.keys()]

    def type_keys(self) -> List[str]:
        return sorted({k[0] for k in self._by_key})

    def for_type(self, type_key: str) -> List[Derivation]:
        return [
            self._by_key[k] for k in self.keys() if k[0] == type_key
        ]

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    def rule_count(self, type_key: str, access_type: str) -> int:
        """Members of *type_key* with a derived rule for *access_type*."""
        return sum(
            1
            for (tk, _, at) in self._by_key
            if tk == type_key and at == access_type
        )

    def no_lock_count(self, type_key: str, access_type: str) -> int:
        return sum(
            1
            for (tk, _, at), d in self._by_key.items()
            if tk == type_key and at == access_type and d.is_no_lock
        )

    def no_lock_fraction(self, type_key: str, access_type: str) -> Optional[float]:
        """Fraction of "no lock" winners (Fig. 7); None if nothing derived."""
        total = self.rule_count(type_key, access_type)
        if total == 0:
            return None
        return self.no_lock_count(type_key, access_type) / total


class Derivator:
    """Configurable rule-derivation engine.

    Args mirror the paper's command-line switches (Sec. 6): the accept
    threshold ``t_ac``, an output cut-off threshold ``t_co`` limiting
    reported hypotheses to a minimum relative support, and the maximum
    rule length.
    """

    def __init__(
        self,
        accept_threshold: float = DEFAULT_ACCEPT_THRESHOLD,
        cutoff_threshold: float = 0.0,
        max_locks: int = MAX_RULE_LOCKS,
    ) -> None:
        if not 0.0 < accept_threshold <= 1.0:
            raise ValueError(f"accept threshold {accept_threshold} not in (0, 1]")
        if not 0.0 <= cutoff_threshold <= 1.0:
            raise ValueError(f"cutoff threshold {cutoff_threshold} not in [0, 1]")
        self.accept_threshold = accept_threshold
        self.cutoff_threshold = cutoff_threshold
        self.max_locks = max_locks

    def derive_one(
        self, table: ObservationTable, type_key: str, member: str, access_type: str
    ) -> Optional[Derivation]:
        """Derive the rule for a single target; None if unobserved."""
        sequences = table.sequences(type_key, member, access_type)
        if not sequences:
            return None
        hypotheses = enumerate_and_score(sequences, self.max_locks)
        selection = select_winner(hypotheses, self.accept_threshold)
        reported = [h for h in hypotheses if h.s_r >= self.cutoff_threshold]
        return Derivation(
            type_key=type_key,
            member=member,
            access_type=access_type,
            observation_count=table.observation_count(type_key, member, access_type),
            hypotheses=reported,
            selection=selection,
        )

    def derive(self, table: ObservationTable) -> DerivationResult:
        """Derive rules for every observed target in *table*."""
        result = DerivationResult(self.accept_threshold)
        for type_key, member, access_type in table.keys():
            derivation = self.derive_one(table, type_key, member, access_type)
            if derivation is not None:
                result.add(derivation)
        return result
