"""Lock usage statistics — the Lockmeter-style companion (Sec. 3.2).

The paper's related work surveys Lockmeter and HaLock, which gather
lock-usage statistics to find performance bottlenecks.  A LockDoc trace
already contains everything those tools measure; this module computes
it ex-post:

* per lock class: acquisition counts (by mode), total/mean/max hold
  span (in trace-clock ticks between acquire and release),
* the *hottest* locks by acquisition count and by cumulative hold span,
* held-lock depth statistics (how deeply transactions nest).

Hold spans are measured in trace-event ticks — a logical, not wall-
clock, unit; ratios between locks are the meaningful output, exactly
like Lockmeter's relative contention rankings.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.lockorder import LockClassKey, _class_of, format_class
from repro.core.report import render_table
from repro.db.database import TraceDatabase
from repro.tracing.events import LockEvent


@dataclass
class LockStats:
    """Usage statistics for one lock class."""

    key: LockClassKey
    acquisitions: int = 0
    read_acquisitions: int = 0
    total_hold_span: int = 0
    max_hold_span: int = 0

    @property
    def mean_hold_span(self) -> float:
        return self.total_hold_span / self.acquisitions if self.acquisitions else 0.0

    def row(self) -> List:
        return [
            format_class(self.key),
            self.acquisitions,
            self.read_acquisitions,
            self.total_hold_span,
            f"{self.mean_hold_span:.1f}",
            self.max_hold_span,
        ]


@dataclass
class ContentionReport:
    """Per-lock-class usage statistics with rankings."""
    stats: Dict[LockClassKey, LockStats]
    unmatched_releases: int = 0
    #: Acquisitions whose release never arrived — the importer closes
    #: their transaction with a *synthesized* release, so they are not
    #: real hold spans.  They are excluded from the per-class counts
    #: (an unreleased hold would otherwise skew mean/max rankings with
    #: a span of zero) and only surfaced here.
    synthetic_closes: int = 0

    def hottest_by_acquisitions(self, limit: int = 10) -> List[LockStats]:
        return sorted(
            self.stats.values(), key=lambda s: -s.acquisitions
        )[:limit]

    def hottest_by_hold_span(self, limit: int = 10) -> List[LockStats]:
        return sorted(
            self.stats.values(), key=lambda s: -s.total_hold_span
        )[:limit]

    def get(self, key: LockClassKey) -> Optional[LockStats]:
        return self.stats.get(key)

    def render(self, limit: int = 12) -> str:
        headers = ["lock class", "acq", "acq(r)", "hold total", "hold mean",
                   "hold max"]
        rows = [s.row() for s in self.hottest_by_acquisitions(limit)]
        text = render_table(
            headers, rows,
            title=f"lock-usage statistics ({len(self.stats)} lock classes)",
        )
        if self.synthetic_closes:
            text += (
                f"\n{self.synthetic_closes} unreleased hold(s) excluded "
                f"(synthesized close — span unknown)"
            )
        return text


def build_contention(
    events, db: TraceDatabase
) -> ContentionReport:
    """Compute lock-usage statistics from the raw event stream.

    *events* is the trace event list (hold spans need the raw
    acquire/release timestamps); *db* resolves lock ids to classes.

    Holds still open when the walk ends are exactly the ones the
    importer closes with a *synthesized* release (``synthetic_close``
    transactions): their spans are guesses, so they are dropped from
    the per-class acquisition counts and reported via
    ``synthetic_closes`` instead of skewing the hold-span rankings.
    """
    stats: Dict[LockClassKey, LockStats] = {}
    # open acquisitions: (ctx_id, lock_id) -> (acquire ts, mode) stack
    open_holds: Dict[Tuple[int, int], List[Tuple[int, str]]] = defaultdict(list)
    unmatched = 0
    for event in events:
        if not isinstance(event, LockEvent):
            continue
        key = _class_of(db, event.lock_id)
        if key is None:
            continue
        entry = stats.get(key)
        if entry is None:
            entry = LockStats(key)
            stats[key] = entry
        hold_key = (event.ctx_id, event.lock_id)
        if event.is_acquire:
            entry.acquisitions += 1
            if event.mode == "r":
                entry.read_acquisitions += 1
            open_holds[hold_key].append((event.ts, event.mode))
        else:
            if not open_holds[hold_key]:
                unmatched += 1
                continue
            start, _ = open_holds[hold_key].pop()
            span = event.ts - start
            entry.total_hold_span += span
            if span > entry.max_hold_span:
                entry.max_hold_span = span
    synthetic = 0
    for (_, lock_id), dangling in open_holds.items():
        if not dangling:
            continue
        entry = stats.get(_class_of(db, lock_id))
        for _, mode in dangling:
            synthetic += 1
            if entry is None:
                continue
            entry.acquisitions -= 1
            if mode == "r":
                entry.read_acquisitions -= 1
    return ContentionReport(
        stats=stats, unmatched_releases=unmatched, synthetic_closes=synthetic
    )
