"""Object-interrelation analysis — the paper's future-work prototype.

Sec. 8: "we intend to extend the still rather simplistic model behind
our locking rules ... This model in particular does not yet capture
object interrelations, which we believe might further improve result
quality and allow deriving rules such as 'acquire lock L in the list
head before accessing a member of a list element'."

This module implements that refinement over the existing trace: for
every derived rule containing an **EO** (embedded-other) reference, it
inspects *which concrete object* owned the lock at each complying
access and classifies the relationship:

* ``OWNER``     — each accessed object is always protected by the same
  single other object (``inode → its backing_dev_info``): the lock
  lives in a per-object owner reachable from the accessed object.
* ``CONTAINER`` — one other object protects *many* accessed objects
  (``journal_t → all its transaction_t``): the list-head pattern of
  the paper's example.
* ``VARYING``   — the owning object differs between accesses of the
  same object (e.g. a *foreign* ``i_lock`` during hash-neighbour
  writes): no stable relationship; often a smell.

The refined rule is rendered as e.g.
``EO(j_list_lock in journal_t [container])``.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.core.derivator import DerivationResult
from repro.core.lockrefs import LockRef, Scope
from repro.core.observations import ObservationTable
from repro.core.report import render_table
from repro.db.database import TraceDatabase


class RelationKind(enum.Enum):
    """The object relationship behind an EO lock reference."""
    OWNER = "owner"  # one protecting object per accessed object
    CONTAINER = "container"  # one protecting object for many objects
    VARYING = "varying"  # protecting object changes per access
    UNKNOWN = "unknown"  # not enough evidence


@dataclass
class EoRelation:
    """Relationship evidence for one EO reference of one rule."""

    type_key: str
    member: str
    access_type: str
    ref: LockRef
    kind: RelationKind
    #: distinct protecting objects observed
    owners: int
    #: distinct accessed objects observed
    accessed: int
    #: accessed objects whose protecting object was always the same
    stable_accessed: int

    def refined(self) -> str:
        return (
            f"EO({self.ref.name} in {self.ref.owner_type} "
            f"[{self.kind.value}])"
        )

    def row(self) -> List:
        return [
            f"{self.type_key}.{self.member}/{self.access_type}",
            self.ref.format(),
            self.kind.value,
            self.owners,
            self.accessed,
        ]


@dataclass
class RelationReport:
    """Relationship classifications for every EO rule."""
    relations: List[EoRelation]

    def by_kind(self, kind: RelationKind) -> List[EoRelation]:
        return [r for r in self.relations if r.kind == kind]

    def get(
        self, type_key: str, member: str, access_type: str
    ) -> Optional[EoRelation]:
        for relation in self.relations:
            if (relation.type_key, relation.member, relation.access_type) == (
                type_key, member, access_type,
            ):
                return relation
        return None

    def render(self, limit: int = 30) -> str:
        headers = ["target", "EO reference", "relation", "owners", "objects"]
        rows = [r.row() for r in self.relations[:limit]]
        title = (
            f"EO-rule object relations: "
            f"{len(self.by_kind(RelationKind.OWNER))} owner, "
            f"{len(self.by_kind(RelationKind.CONTAINER))} container, "
            f"{len(self.by_kind(RelationKind.VARYING))} varying"
        )
        return render_table(headers, rows, title=title)


def _eo_owner_for(
    db: TraceDatabase, txn_id: Optional[int], ref: LockRef
) -> Optional[int]:
    """The alloc id owning the lock instance matching *ref* in *txn*."""
    if txn_id is None:
        return None
    txn = db.txns.get(txn_id)
    if txn is None:
        return None
    for held in txn.held:
        lock = db.locks.get(held.lock_id)
        if lock is None or lock.owner_alloc_id is None:
            continue
        if (
            lock.owner_data_type == ref.owner_type
            and (lock.owner_member or lock.name) == ref.name
        ):
            return lock.owner_alloc_id
    return None


def analyze_relations(
    derivation: DerivationResult,
    table: ObservationTable,
    db: TraceDatabase,
    min_objects: int = 3,
) -> RelationReport:
    """Classify the object relationship behind every EO rule.

    *min_objects*: accessed-object count below which the evidence is
    reported as ``UNKNOWN`` (a single object cannot distinguish owner
    from container).
    """
    relations: List[EoRelation] = []
    for target in derivation.all():
        eo_refs = [r for r in target.rule.locks if r.scope == Scope.EO]
        if not eo_refs:
            continue
        observations = table.get(
            target.type_key, target.member, target.access_type
        )
        for ref in eo_refs:
            owners_per_object: Dict[int, Set[int]] = defaultdict(set)
            for obs in observations:
                owner = _eo_owner_for(db, obs.txn_id, ref)
                if owner is not None:
                    owners_per_object[obs.alloc_id].add(owner)
            if not owners_per_object:
                continue
            accessed = len(owners_per_object)
            all_owners: Set[int] = set()
            stable = 0
            for owners in owners_per_object.values():
                all_owners.update(owners)
                if len(owners) == 1:
                    stable += 1
            if accessed < min_objects:
                kind = RelationKind.UNKNOWN
            elif stable < accessed * 0.9:
                kind = RelationKind.VARYING
            elif len(all_owners) == 1 or len(all_owners) <= accessed // 3:
                kind = RelationKind.CONTAINER
            else:
                kind = RelationKind.OWNER
            relations.append(
                EoRelation(
                    type_key=target.type_key,
                    member=target.member,
                    access_type=target.access_type,
                    ref=ref,
                    kind=kind,
                    owners=len(all_owners),
                    accessed=accessed,
                    stable_accessed=stable,
                )
            )
    relations.sort(key=lambda r: (r.kind.value, r.type_key, r.member))
    return RelationReport(relations=relations)
