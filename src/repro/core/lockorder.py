"""Lock-order analysis: the lockdep-style companion tool.

The paper motivates LockDoc partly with dead-/livelocks caused by wrong
lock *ordering* (Sec. 2.3) and discusses Linux's in-situ lockdep
validator (Sec. 3.2), which builds a model of valid acquisition orders
per lock class.  This module provides the ex-post equivalent over a
LockDoc trace:

* build the **lock-order graph**: a directed edge A → B for every
  transaction that acquired lock class B while holding A (lock classes
  are the same abstraction as rule lock references: global name, or
  (struct, member) for embedded locks),
* detect **order inversions**: pairs observed in both directions — the
  classic ABBA deadlock candidate lockdep warns about,
* detect **order cycles** of any length via strongly connected
  components of the graph: a cycle A → B → C → A is just as much a
  deadlock candidate as ABBA, but no pair of its locks is ever taken in
  both orders, so the pairwise inversion check is blind to it.  Each
  non-trivial SCC is reported with a shortest witness cycle,
* report each edge with its witness count and one example transaction.

Same-class nesting (e.g. taking two different instances of
``inode.i_lock``) is reported separately: lockdep would require a
nesting annotation for it.  Like inversions, nesting findings carry an
example transaction/context so they are actionable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.db.database import TraceDatabase

#: A lock class: ("global", name, None) or ("embedded", owner_type, member).
LockClassKey = Tuple[str, str, Optional[str]]


def _class_of(db: TraceDatabase, lock_id: int) -> Optional[LockClassKey]:
    lock = db.locks.get(lock_id)
    if lock is None:
        return None
    if lock.is_static or lock.owner_alloc_id is None:
        return ("global", lock.name, None)
    return ("embedded", lock.owner_data_type or "?", lock.owner_member or lock.name)


def format_class(key: LockClassKey) -> str:
    """Human-readable name of a lock class key."""
    kind, name, member = key
    if kind == "global":
        return name
    return f"{name}.{member}"


@dataclass
class OrderEdge:
    """Lock class *before* was (at least once) held while *after* was
    acquired."""

    before: LockClassKey
    after: LockClassKey
    witnesses: int = 0
    example_txn: Optional[int] = None

    def format(self) -> str:
        return (
            f"{format_class(self.before)} -> {format_class(self.after)} "
            f"({self.witnesses} witnesses)"
        )


@dataclass
class Inversion:
    """An ABBA candidate: both orders observed."""

    forward: OrderEdge
    backward: OrderEdge

    @property
    def classes(self) -> Tuple[LockClassKey, LockClassKey]:
        return (self.forward.before, self.forward.after)

    def format(self) -> str:
        return (
            f"ABBA candidate: {self.forward.format()}  vs  "
            f"{self.backward.format()}"
        )


@dataclass
class NestingFinding:
    """Same-class nesting (two instances of one class held together)."""

    key: LockClassKey
    witnesses: int = 0
    example_txn: Optional[int] = None
    example_ctx: Optional[int] = None

    def format(self) -> str:
        where = (
            f"txn {self.example_txn}, ctx {self.example_ctx}"
            if self.example_txn is not None
            else "?"
        )
        return (
            f"{format_class(self.key)} ({self.witnesses} witnesses, "
            f"e.g. {where})"
        )


@dataclass
class Cycle:
    """A deadlock-candidate cycle in the lock-order graph.

    ``classes`` is the witness path (first class not repeated at the
    end); ``edges`` are the observed order edges closing it.
    """

    classes: Tuple[LockClassKey, ...]
    edges: Tuple[OrderEdge, ...]

    def __len__(self) -> int:
        return len(self.classes)

    @property
    def min_witnesses(self) -> int:
        return min(edge.witnesses for edge in self.edges)

    def format(self) -> str:
        path = " -> ".join(format_class(key) for key in self.classes)
        first = format_class(self.classes[0])
        return (
            f"cycle[{len(self.classes)}]: {path} -> {first} "
            f"(weakest edge: {self.min_witnesses} witnesses)"
        )


@dataclass
class LockOrderReport:
    """The lock-order graph with inversion/cycle/nesting findings."""
    edges: Dict[Tuple[LockClassKey, LockClassKey], OrderEdge]
    inversions: List[Inversion]
    self_nesting: Dict[LockClassKey, NestingFinding]
    cycles: List[Cycle] = field(default_factory=list)

    @property
    def edge_count(self) -> int:
        return len(self.edges)

    def multi_lock_cycles(self) -> List[Cycle]:
        """Cycles of length >= 3 — invisible to the pairwise ABBA check."""
        return [cycle for cycle in self.cycles if len(cycle) >= 3]

    def dominant_order(
        self, a: LockClassKey, b: LockClassKey
    ) -> Optional[Tuple[LockClassKey, LockClassKey]]:
        """The direction with more witnesses (None if never nested)."""
        forward = self.edges.get((a, b))
        backward = self.edges.get((b, a))
        if forward is None and backward is None:
            return None
        if backward is None or (forward and forward.witnesses >= backward.witnesses):
            return (a, b)
        return (b, a)

    def render(self, limit: int = 25) -> str:
        lines = [f"lock-order graph: {self.edge_count} edges"]
        ranked = sorted(self.edges.values(), key=lambda e: -e.witnesses)
        for edge in ranked[:limit]:
            lines.append(f"  {edge.format()}")
        if self.self_nesting:
            lines.append("same-class nesting (needs lockdep annotations):")
            for key in sorted(self.self_nesting):
                lines.append(f"  {self.self_nesting[key].format()}")
        if self.inversions:
            lines.append("order inversions (potential ABBA deadlocks):")
            for inversion in self.inversions:
                lines.append(f"  {inversion.format()}")
        else:
            lines.append("no order inversions observed")
        longer = self.multi_lock_cycles()
        if longer:
            lines.append("multi-lock order cycles (invisible to the ABBA check):")
            for cycle in longer:
                lines.append(f"  {cycle.format()}")
        else:
            lines.append("no multi-lock order cycles observed")
        return "\n".join(lines)


def build_lock_order(db: TraceDatabase) -> LockOrderReport:
    """Build the lock-order graph from the transactions of *db*.

    A transaction's ``held`` tuple is its acquisition order; every
    ordered pair in it is an order witness (transitively closed over
    the prefix relation, as in lockdep).
    """
    edges: Dict[Tuple[LockClassKey, LockClassKey], OrderEdge] = {}
    self_nesting: Dict[LockClassKey, NestingFinding] = {}
    for txn in db.txns.values():
        classes = []
        for held in txn.held:
            key = _class_of(db, held.lock_id)
            if key is not None:
                classes.append(key)
        for i in range(len(classes)):
            for j in range(i + 1, len(classes)):
                before, after = classes[i], classes[j]
                if before == after:
                    nesting = self_nesting.get(before)
                    if nesting is None:
                        nesting = NestingFinding(key=before)
                        self_nesting[before] = nesting
                    nesting.witnesses += 1
                    if nesting.example_txn is None:
                        nesting.example_txn = txn.txn_id
                        nesting.example_ctx = txn.ctx_id
                    continue
                edge = edges.get((before, after))
                if edge is None:
                    edge = OrderEdge(before, after)
                    edges[(before, after)] = edge
                edge.witnesses += 1
                if edge.example_txn is None:
                    edge.example_txn = txn.txn_id
    inversions = []
    seen: Set[Tuple[LockClassKey, LockClassKey]] = set()
    for (before, after), edge in edges.items():
        if (after, before) in edges and (after, before) not in seen:
            seen.add((before, after))
            inversions.append(
                Inversion(forward=edge, backward=edges[(after, before)])
            )
    return LockOrderReport(
        edges=edges,
        inversions=inversions,
        self_nesting=self_nesting,
        cycles=find_cycles(edges),
    )


# ----------------------------------------------------------------------
# Cycle detection
# ----------------------------------------------------------------------


def find_cycles(
    edges: Dict[Tuple[LockClassKey, LockClassKey], OrderEdge]
) -> List[Cycle]:
    """One shortest witness cycle per non-trivial SCC of the graph.

    Tarjan's algorithm (iterative — order graphs of big traces nest
    deeper than Python's recursion limit) finds the strongly connected
    components; every component with more than one node contains at
    least one cycle, and a BFS restricted to the component recovers a
    shortest one.  Reporting one witness per SCC keeps the output
    bounded: a dense component contains exponentially many simple
    cycles, but breaking the component's witness breaks them all.
    """
    graph: Dict[LockClassKey, List[LockClassKey]] = {}
    for before, after in edges:
        graph.setdefault(before, []).append(after)
        graph.setdefault(after, [])

    cycles = [
        _witness_cycle(component, graph, edges)
        for component in _tarjan_sccs(graph)
        if len(component) > 1
    ]
    cycles.sort(key=lambda c: (len(c), [format_class(k) for k in c.classes]))
    return cycles


def _tarjan_sccs(
    graph: Dict[LockClassKey, List[LockClassKey]]
) -> List[List[LockClassKey]]:
    """Iterative Tarjan strongly-connected components."""
    index_of: Dict[LockClassKey, int] = {}
    lowlink: Dict[LockClassKey, int] = {}
    on_stack: Set[LockClassKey] = set()
    stack: List[LockClassKey] = []
    components: List[List[LockClassKey]] = []
    counter = 0

    for root in graph:
        if root in index_of:
            continue
        # Each frame: (node, iterator position into its successors).
        work: List[Tuple[LockClassKey, int]] = [(root, 0)]
        while work:
            node, position = work[-1]
            if position == 0:
                index_of[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            successors = graph[node]
            advanced = False
            while position < len(successors):
                successor = successors[position]
                position += 1
                if successor not in index_of:
                    work[-1] = (node, position)
                    work.append((successor, 0))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def _witness_cycle(
    component: Sequence[LockClassKey],
    graph: Dict[LockClassKey, List[LockClassKey]],
    edges: Dict[Tuple[LockClassKey, LockClassKey], OrderEdge],
) -> Cycle:
    """Shortest cycle inside one SCC (BFS from every member node)."""
    members = set(component)
    best: Optional[List[LockClassKey]] = None
    for start in sorted(component, key=format_class):
        path = _shortest_cycle_from(start, members, graph)
        if path is not None and (best is None or len(path) < len(best)):
            best = path
    assert best is not None  # an SCC with >1 node always has a cycle
    witness_edges = tuple(
        edges[(best[i], best[(i + 1) % len(best)])] for i in range(len(best))
    )
    return Cycle(classes=tuple(best), edges=witness_edges)


def _shortest_cycle_from(
    start: LockClassKey,
    members: Set[LockClassKey],
    graph: Dict[LockClassKey, List[LockClassKey]],
) -> Optional[List[LockClassKey]]:
    """BFS for the shortest path start → ... → start within *members*."""
    parents: Dict[LockClassKey, Optional[LockClassKey]] = {start: None}
    queue: List[LockClassKey] = [start]
    while queue:
        next_queue: List[LockClassKey] = []
        for node in queue:
            for successor in graph[node]:
                if successor == start:
                    path = [node]
                    while parents[path[-1]] is not None:
                        path.append(parents[path[-1]])
                    path.reverse()
                    return path
                if successor in members and successor not in parents:
                    parents[successor] = node
                    next_queue.append(successor)
        queue = next_queue
    return None
