"""Lock-order analysis: the lockdep-style companion tool.

The paper motivates LockDoc partly with dead-/livelocks caused by wrong
lock *ordering* (Sec. 2.3) and discusses Linux's in-situ lockdep
validator (Sec. 3.2), which builds a model of valid acquisition orders
per lock class.  This module provides the ex-post equivalent over a
LockDoc trace:

* build the **lock-order graph**: a directed edge A → B for every
  transaction that acquired lock class B while holding A (lock classes
  are the same abstraction as rule lock references: global name, or
  (struct, member) for embedded locks),
* detect **order inversions**: pairs observed in both directions — the
  classic ABBA deadlock candidate lockdep warns about,
* report each edge with its witness count and one example context.

Same-class nesting (e.g. taking two different instances of
``inode.i_lock``) is reported separately: lockdep would require a
nesting annotation for it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.db.database import TraceDatabase

#: A lock class: ("global", name, None) or ("embedded", owner_type, member).
LockClassKey = Tuple[str, str, Optional[str]]


def _class_of(db: TraceDatabase, lock_id: int) -> Optional[LockClassKey]:
    lock = db.locks.get(lock_id)
    if lock is None:
        return None
    if lock.is_static or lock.owner_alloc_id is None:
        return ("global", lock.name, None)
    return ("embedded", lock.owner_data_type or "?", lock.owner_member or lock.name)


def format_class(key: LockClassKey) -> str:
    """Human-readable name of a lock class key."""
    kind, name, member = key
    if kind == "global":
        return name
    return f"{name}.{member}"


@dataclass
class OrderEdge:
    """Lock class *before* was (at least once) held while *after* was
    acquired."""

    before: LockClassKey
    after: LockClassKey
    witnesses: int = 0
    example_txn: Optional[int] = None

    def format(self) -> str:
        return (
            f"{format_class(self.before)} -> {format_class(self.after)} "
            f"({self.witnesses} witnesses)"
        )


@dataclass
class Inversion:
    """An ABBA candidate: both orders observed."""

    forward: OrderEdge
    backward: OrderEdge

    @property
    def classes(self) -> Tuple[LockClassKey, LockClassKey]:
        return (self.forward.before, self.forward.after)

    def format(self) -> str:
        return (
            f"ABBA candidate: {self.forward.format()}  vs  "
            f"{self.backward.format()}"
        )


@dataclass
class LockOrderReport:
    """The lock-order graph with inversion/nesting findings."""
    edges: Dict[Tuple[LockClassKey, LockClassKey], OrderEdge]
    inversions: List[Inversion]
    self_nesting: Dict[LockClassKey, int]

    @property
    def edge_count(self) -> int:
        return len(self.edges)

    def dominant_order(
        self, a: LockClassKey, b: LockClassKey
    ) -> Optional[Tuple[LockClassKey, LockClassKey]]:
        """The direction with more witnesses (None if never nested)."""
        forward = self.edges.get((a, b))
        backward = self.edges.get((b, a))
        if forward is None and backward is None:
            return None
        if backward is None or (forward and forward.witnesses >= backward.witnesses):
            return (a, b)
        return (b, a)

    def render(self, limit: int = 25) -> str:
        lines = [f"lock-order graph: {self.edge_count} edges"]
        ranked = sorted(self.edges.values(), key=lambda e: -e.witnesses)
        for edge in ranked[:limit]:
            lines.append(f"  {edge.format()}")
        if self.self_nesting:
            lines.append("same-class nesting (needs lockdep annotations):")
            for key, count in sorted(self.self_nesting.items()):
                lines.append(f"  {format_class(key)} ({count} witnesses)")
        if self.inversions:
            lines.append("order inversions (potential ABBA deadlocks):")
            for inversion in self.inversions:
                lines.append(f"  {inversion.format()}")
        else:
            lines.append("no order inversions observed")
        return "\n".join(lines)


def build_lock_order(db: TraceDatabase) -> LockOrderReport:
    """Build the lock-order graph from the transactions of *db*.

    A transaction's ``held`` tuple is its acquisition order; every
    ordered pair in it is an order witness (transitively closed over
    the prefix relation, as in lockdep).
    """
    edges: Dict[Tuple[LockClassKey, LockClassKey], OrderEdge] = {}
    self_nesting: Dict[LockClassKey, int] = {}
    for txn in db.txns.values():
        classes = []
        for held in txn.held:
            key = _class_of(db, held.lock_id)
            if key is not None:
                classes.append(key)
        for i in range(len(classes)):
            for j in range(i + 1, len(classes)):
                before, after = classes[i], classes[j]
                if before == after:
                    self_nesting[before] = self_nesting.get(before, 0) + 1
                    continue
                edge = edges.get((before, after))
                if edge is None:
                    edge = OrderEdge(before, after)
                    edges[(before, after)] = edge
                edge.witnesses += 1
                if edge.example_txn is None:
                    edge.example_txn = txn.txn_id
    inversions = []
    seen: Set[Tuple[LockClassKey, LockClassKey]] = set()
    for (before, after), edge in edges.items():
        if (after, before) in edges and (after, before) not in seen:
            seen.add((before, after))
            inversions.append(
                Inversion(forward=edge, backward=edges[(after, before)])
            )
    return LockOrderReport(
        edges=edges, inversions=inversions, self_nesting=self_nesting
    )
