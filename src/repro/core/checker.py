"""The Locking-Rule Checker (Sec. 5.5, evaluated in Sec. 7.3).

Takes the officially *documented* locking rules and measures each
against the trace: absolute and relative support, then classification

* **correct**     — ``s_r = 1``: every observation follows the rule,
* **ambivalent**  — ``0 < s_r < 1``: inconsistently followed,
* **incorrect**   — ``s_r = 0``: never followed,
* **unobserved**  — the benchmark never touched the member (column #No
  of Tab. 4).

Documented rules speak about a base data type (``inode``), so support
is measured over the merged observations of all subclasses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.observations import ObservationTable
from repro.core.rules import LockingRule, support
from repro.doc.model import DocumentedRule, expand_rules


class RuleStatus(enum.Enum):
    """Checker verdict for one documented rule (Sec. 5.5)."""
    CORRECT = "correct"
    AMBIVALENT = "ambivalent"
    INCORRECT = "incorrect"
    UNOBSERVED = "unobserved"

    @property
    def symbol(self) -> str:
        return {
            RuleStatus.CORRECT: "+",
            RuleStatus.AMBIVALENT: "~",
            RuleStatus.INCORRECT: "-",
            RuleStatus.UNOBSERVED: "?",
        }[self]


@dataclass(frozen=True)
class CheckResult:
    """Verdict for one documented rule and one access type."""

    documented: DocumentedRule
    access_type: str
    rule: LockingRule
    s_a: int
    total: int
    status: RuleStatus

    @property
    def s_r(self) -> float:
        return self.s_a / self.total if self.total else 0.0

    def format(self) -> str:
        return (
            f"{self.documented.data_type}.{self.documented.member} "
            f"[{self.access_type}] {self.rule.format()}: "
            f"s_r={self.s_r:.2%} -> {self.status.value}"
        )


@dataclass
class CheckSummary:
    """Tab. 4 row: verdict counts for one data type."""

    data_type: str
    rules: int  # #R
    unobserved: int  # #No
    observed: int  # #Ob
    correct: int
    ambivalent: int
    incorrect: int

    def fraction(self, status: RuleStatus) -> float:
        if self.observed == 0:
            return 0.0
        count = {
            RuleStatus.CORRECT: self.correct,
            RuleStatus.AMBIVALENT: self.ambivalent,
            RuleStatus.INCORRECT: self.incorrect,
        }[status]
        return count / self.observed


def check_rule(
    table: ObservationTable,
    documented: DocumentedRule,
    access_type: str,
    rule: LockingRule,
) -> CheckResult:
    """Measure one documented rule against the observation table."""
    sequences = table.merged_sequences(documented.data_type, documented.member, access_type)
    s_a, total = support(sequences, rule)
    if total == 0:
        status = RuleStatus.UNOBSERVED
    elif s_a == total:
        status = RuleStatus.CORRECT
    elif s_a == 0:
        status = RuleStatus.INCORRECT
    else:
        status = RuleStatus.AMBIVALENT
    return CheckResult(
        documented=documented,
        access_type=access_type,
        rule=rule,
        s_a=s_a,
        total=total,
        status=status,
    )


def check_rules(
    table: ObservationTable, rules: Sequence[DocumentedRule]
) -> List[CheckResult]:
    """Check every documented rule (expanding ``rw`` entries)."""
    results = []
    for documented, access_type, rule in expand_rules(list(rules)):
        results.append(check_rule(table, documented, access_type, rule))
    return results


def summarize(results: Sequence[CheckResult]) -> List[CheckSummary]:
    """Aggregate check results into Tab. 4 rows (one per data type)."""
    by_type: Dict[str, List[CheckResult]] = {}
    for result in results:
        by_type.setdefault(result.documented.data_type, []).append(result)
    summaries = []
    for data_type in sorted(by_type):
        rows = by_type[data_type]
        unobserved = sum(1 for r in rows if r.status == RuleStatus.UNOBSERVED)
        summaries.append(
            CheckSummary(
                data_type=data_type,
                rules=len(rows),
                unobserved=unobserved,
                observed=len(rows) - unobserved,
                correct=sum(1 for r in rows if r.status == RuleStatus.CORRECT),
                ambivalent=sum(1 for r in rows if r.status == RuleStatus.AMBIVALENT),
                incorrect=sum(1 for r in rows if r.status == RuleStatus.INCORRECT),
            )
        )
    return summaries
