"""Locking-rule hypothesis enumeration and support counting (Sec. 4.3, 5.4).

For each derivation target (member × access type) the derivator
enumerates candidate locking rules.  Iterating over *all possible* lock
combinations is infeasible; instead — exactly like the paper — we
iterate over the *observed* lock combinations (transactions) and
enumerate every ordered subset of each combination.  This guarantees
every hypothesis with ``s_a >= 1`` is produced.

Each hypothesis carries:

* ``s_a`` — absolute support: number of observations complying with it,
* ``s_r`` — relative support: ``s_a`` divided by the number of
  observations of the member (Tab. 2).

The "no lock needed" hypothesis (the empty rule) is always enumerated
and — complying with everything — always has ``s_r = 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations, permutations
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.lockrefs import LockSeq
from repro.core.rules import LockingRule, complies

#: Safety valve: ordered subsets of a k-lock combination number
#: sum_i C(k,i)·i!; for combinations longer than this, *all* subsets of
#: up to this many locks are still enumerated from the full combination
#: — only subsets larger than the cap are skipped (k is tiny in
#: practice — the paper's transactions rarely hold more than 4-5
#: relevant locks).
MAX_RULE_LOCKS = 4


@dataclass(frozen=True)
class Hypothesis:
    """A candidate locking rule with its measured support."""

    rule: LockingRule
    s_a: int
    total: int

    @property
    def s_r(self) -> float:
        return self.s_a / self.total if self.total else 0.0

    def format(self) -> str:
        return f"{self.rule.format()}  (s_a={self.s_a}, s_r={self.s_r:.2%})"


def enumerate_rules(
    sequences: Iterable[LockSeq], max_locks: int = MAX_RULE_LOCKS
) -> List[LockingRule]:
    """All candidate rules for the observed lock *sequences*.

    Every ordered subset (all subsets, all orders) of every observed
    combination, plus the empty "no lock" rule.  Duplicates collapse.
    """
    rules: Dict[LockingRule, None] = {LockingRule.no_lock(): None}
    for sequence in sequences:
        locks = tuple(dict.fromkeys(sequence))  # defensive dedup
        top = min(len(locks), max_locks)
        for size in range(1, top + 1):
            for subset in combinations(locks, size):
                for order in permutations(subset):
                    rules.setdefault(LockingRule(order), None)
    return list(rules)


def score(
    rules: Sequence[LockingRule],
    observations: Sequence[Tuple[LockSeq, int]],
) -> List[Hypothesis]:
    """Measure s_a/s_r of each rule over ``(lockseq, count)`` observations.

    Observations are grouped by distinct lockseq first, so ``complies``
    runs once per (rule, distinct sequence) — not once per raw
    observation when a caller passes unfolded (count-1) pairs.
    """
    folded: Dict[LockSeq, int] = {}
    for seq, count in observations:
        folded[seq] = folded.get(seq, 0) + count
    total = sum(folded.values())
    distinct = list(folded.items())
    hypotheses = []
    for rule in rules:
        s_a = sum(count for seq, count in distinct if complies(seq, rule))
        hypotheses.append(Hypothesis(rule=rule, s_a=s_a, total=total))
    return hypotheses


def enumerate_and_score(
    observations: Sequence[Tuple[LockSeq, int]],
    max_locks: int = MAX_RULE_LOCKS,
) -> List[Hypothesis]:
    """Convenience: enumerate rules from observations and score them.

    The result is sorted by decreasing ``s_a``, then by fewer locks,
    then textually — a stable, human-friendly report order (Tab. 2).
    """
    rules = enumerate_rules((seq for seq, _ in observations), max_locks)
    hypotheses = score(rules, observations)
    hypotheses.sort(key=lambda h: (-h.s_a, len(h.rule), h.rule.format()))
    return hypotheses
