"""Folded per-transaction observations (Tab. 1 semantics).

Rule derivation does not care how often a member is accessed within a
transaction — a binary *folded* matrix records whether the member was
accessed at all (Tab. 1, column "Folded").  If a transaction contains
both reads and writes of the same member, the whole transaction is
treated as a write ("WoR" — *write over read*), because write rules are
typically more restrictive and it is unclear which access motivated the
locks.

An :class:`Observation` is one ``(transaction, object, member)`` group:
its access type after WoR, the abstract lock sequence in force, and the
underlying access rows (kept for violation reporting).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.lockrefs import LockSeq
from repro.db.database import TraceDatabase
from repro.db.filters import REASON_STALE_LOCK, REASON_SYNTHETIC_TXN
from repro.db.schema import AccessRow

#: Key identifying one derivation target.
ObsKey = Tuple[str, str, str]  # (type_key, member, access_type)

READ = "r"
WRITE = "w"


@dataclass
class Observation:
    """One folded (txn, object, member) observation."""

    txn_id: Optional[int]
    alloc_id: int
    type_key: str
    member: str
    access_type: str  # after write-over-read
    lockseq: LockSeq
    accesses: Tuple[AccessRow, ...]
    #: True if the group contained both reads and writes (WoR applied).
    mixed: bool = False


class ObservationTable:
    """All observations of a trace, indexed by (type_key, member, type)."""

    def __init__(self, split_subclasses: bool = True, write_over_read: bool = True):
        self.split_subclasses = split_subclasses
        self.write_over_read = write_over_read
        self._by_key: Dict[ObsKey, List[Observation]] = defaultdict(list)
        #: Incrementally maintained fold: per-target lockseq counts,
        #: updated on every append so :meth:`sequences` — the first step
        #: of the derivation hot path — never rescans raw observations.
        self._seq_counts: Dict[ObsKey, Counter] = defaultdict(Counter)
        self._sorted_seqs: Dict[ObsKey, List[Tuple[LockSeq, int]]] = {}
        self.total = 0
        #: Accesses excluded because the importer quarantined their
        #: transaction (synthetic close) — rules are mined only over
        #: salvaged-clean spans.
        self.synthetic_excluded = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_database(
        cls,
        db: TraceDatabase,
        split_subclasses: bool = True,
        write_over_read: bool = True,
    ) -> "ObservationTable":
        table = cls(split_subclasses, write_over_read)
        groups: Dict[Tuple[Optional[int], int, str], List[AccessRow]] = defaultdict(list)
        for access in db.kept_accesses():
            groups[(access.txn_id, access.alloc_id, access.member)].append(access)
        for (txn_id, alloc_id, member), rows in groups.items():
            table._add_group(txn_id, alloc_id, member, rows)
        table.synthetic_excluded = sum(
            1
            for a in db.accesses
            if a.filter_reason in (REASON_SYNTHETIC_TXN, REASON_STALE_LOCK)
        )
        return table

    def _type_key(self, row: AccessRow) -> str:
        if self.split_subclasses:
            return row.type_key
        return row.data_type

    def _add_group(
        self,
        txn_id: Optional[int],
        alloc_id: int,
        member: str,
        rows: List[AccessRow],
    ) -> None:
        reads = [r for r in rows if r.access_type == READ]
        writes = [r for r in rows if r.access_type == WRITE]
        type_key = self._type_key(rows[0])
        lockseq = rows[0].lockseq
        if self.write_over_read:
            if writes:
                self._append(
                    Observation(
                        txn_id,
                        alloc_id,
                        type_key,
                        member,
                        WRITE,
                        lockseq,
                        tuple(rows),
                        mixed=bool(reads),
                    )
                )
            else:
                self._append(
                    Observation(
                        txn_id, alloc_id, type_key, member, READ, lockseq, tuple(rows)
                    )
                )
        else:
            if writes:
                self._append(
                    Observation(
                        txn_id, alloc_id, type_key, member, WRITE, lockseq, tuple(writes)
                    )
                )
            if reads:
                self._append(
                    Observation(
                        txn_id, alloc_id, type_key, member, READ, lockseq, tuple(reads)
                    )
                )

    def _append(self, obs: Observation) -> None:
        key = (obs.type_key, obs.member, obs.access_type)
        self._by_key[key].append(obs)
        self._seq_counts[key][obs.lockseq] += 1
        self._sorted_seqs.pop(key, None)
        self.total += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def keys(self) -> List[ObsKey]:
        return sorted(self._by_key)

    def type_keys(self) -> List[str]:
        return sorted({key[0] for key in self._by_key})

    def members_of(self, type_key: str) -> List[str]:
        return sorted({m for (tk, m, _) in self._by_key if tk == type_key})

    def get(self, type_key: str, member: str, access_type: str) -> List[Observation]:
        return self._by_key.get((type_key, member, access_type), [])

    def sequences(
        self, type_key: str, member: str, access_type: str
    ) -> List[Tuple[LockSeq, int]]:
        """Distinct lock sequences with observation counts.

        Served from the incrementally maintained fold; the returned
        list is cached and shared — callers must not mutate it.
        """
        key = (type_key, member, access_type)
        cached = self._sorted_seqs.get(key)
        if cached is None:
            counter = self._seq_counts.get(key)
            if not counter:
                return []
            cached = sorted(counter.items(), key=lambda item: (-item[1], item[0]))
            self._sorted_seqs[key] = cached
        return cached

    def observation_count(self, type_key: str, member: str, access_type: str) -> int:
        return len(self.get(type_key, member, access_type))

    # ------------------------------------------------------------------
    # Base-type (subclass-merging) queries
    # ------------------------------------------------------------------
    #
    # The documented rules of Tab. 4/5 talk about ``struct inode`` as a
    # whole, while derivation may split by filesystem subclass.  These
    # helpers merge all subclass keys of a base data type.

    def base_keys(self, data_type: str) -> List[str]:
        prefix = data_type + ":"
        return [
            tk
            for tk in self.type_keys()
            if tk == data_type or tk.startswith(prefix)
        ]

    def merged_get(
        self, data_type: str, member: str, access_type: str
    ) -> List[Observation]:
        merged: List[Observation] = []
        for type_key in self.base_keys(data_type):
            merged.extend(self.get(type_key, member, access_type))
        return merged

    def merged_sequences(
        self, data_type: str, member: str, access_type: str
    ) -> List[Tuple[LockSeq, int]]:
        counter: Counter = Counter()
        for type_key in self.base_keys(data_type):
            counter.update(self._seq_counts.get((type_key, member, access_type), ()))
        return sorted(counter.items(), key=lambda item: (-item[1], item[0]))

    def merged_members_of(self, data_type: str) -> List[str]:
        members = set()
        for type_key in self.base_keys(data_type):
            members.update(self.members_of(type_key))
        return sorted(members)
