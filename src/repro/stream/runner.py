"""Run a workload with the streaming engine attached as event sink.

:func:`run_streamed` resolves a workload through the central registry,
installs a :class:`~repro.stream.engine.StreamEngine` as the tracer's
event sink for the duration of the run, and finalizes the engine —
after which the fold, the contention statistics, and (in races mode)
the lockset/happens-before state are ready without the trace ever
having been materialized as an event list or imported into a database.

:func:`run_derive_streamed` / :func:`run_races_streamed` mirror the
``derive`` / ``races`` runners of :mod:`repro.serve.ops` over the
streamed state: same canonical params, same rendered text on clean
traces — only the trips through serialize/import are gone.  The
streamed path deliberately bypasses the on-disk trace cache: the sink
must see live events, and skipping the replay is the whole point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.core.derivator import DerivationResult, Derivator
from repro.experiments import common as experiments_common
from repro.stream.engine import StreamEngine
from repro.stream.intervals import IntervalReport
from repro.tracing.tracer import install_sink_factory
from repro.workloads import registry


@dataclass
class StreamRun:
    """One workload run folded online by the streaming engine."""

    workload: str
    seed: int
    scale: float
    engine: StreamEngine
    #: The workload's run result (kept for world/scheduler inspection;
    #: its ``tracer.events`` is the engine, not a list).
    result: object

    def derive(
        self,
        accept_threshold: float = 0.9,
        jobs: Optional[int] = None,
    ) -> DerivationResult:
        effective = (
            jobs if jobs is not None else experiments_common.get_default_jobs()
        )
        return Derivator(accept_threshold).derive(
            self.engine.table, jobs=effective
        )


def run_streamed(
    workload: str,
    seed: int = 0,
    scale: float = experiments_common.DEFAULT_SCALE,
    *,
    races: bool = False,
    interval: Optional[int] = None,
    interval_callback: Optional[Callable[[IntervalReport], None]] = None,
    top: int = 5,
) -> StreamRun:
    """Run *workload* once with a streaming engine subscribed to it.

    The engine is configured with the workload's registered database
    recipe (struct registry + filter config), so its online fold sees
    exactly the inputs a post-mortem import of the same trace would.
    """
    factory = registry.resolve(workload)
    structs, filters = registry.database_inputs(registry.db_recipe(workload))
    engine = StreamEngine(
        structs,
        filters,
        races=races,
        interval=interval,
        interval_callback=interval_callback,
        top=top,
    )
    previous = install_sink_factory(engine.sink_factory)
    try:
        result = factory(seed, scale)
    finally:
        install_sink_factory(previous)
    if engine.tracer is None:
        raise ValueError(
            f"workload {workload!r} constructed no tracer while the "
            f"streaming sink was installed"
        )
    engine.finalize()
    return StreamRun(
        workload=workload, seed=seed, scale=scale, engine=engine, result=result
    )


# ----------------------------------------------------------------------
# Streamed twins of the serve.ops derive/races runners
# ----------------------------------------------------------------------


def run_derive_streamed(params: Dict[str, Any]) -> Dict[str, Any]:
    """Streamed ``derive``: same params/text contract as
    :func:`repro.serve.ops._run_derive` (memory backend)."""
    from repro.core.report import render_table

    run = run_streamed(params["workload"], params["seed"], params["scale"])
    derivation = run.derive(params["threshold"], jobs=params["jobs"])
    rows = []
    for d in derivation.all():
        if params["type"] and d.type_key != params["type"]:
            continue
        rows.append(
            [d.type_key, d.member, d.access_type, d.rule.format(),
             f"{d.winner.s_r:.2%}", d.observation_count]
        )
    text = render_table(
        ["type", "member", "r/w", "winning rule", "s_r", "n"], rows,
        title=f"derived locking rules (t_ac={params['threshold']})",
    )
    result: Dict[str, Any] = {"text": text, "exit_code": 0, "rules": len(rows)}
    if params.get("want_rules_json"):
        from repro.core.rulesio import rules_to_json

        result["rules_json"] = rules_to_json(derivation)
    return result


def run_races_streamed(params: Dict[str, Any]) -> Dict[str, Any]:
    """Streamed ``races``: same params/text contract as
    :func:`repro.serve.ops._run_races` (memory backend)."""
    run = run_streamed(
        params["workload"], params["seed"], params["scale"], races=True
    )
    derivation = run.derive(params["threshold"], jobs=params["jobs"])
    report = run.engine.race_report(derivation)
    return {
        "text": report.render(examples=params["examples"]),
        "exit_code": 0,
    }
