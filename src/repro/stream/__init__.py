"""Fused single-pass streaming analysis (live monitoring path).

The post-mortem pipeline walks the trace three times (record →
import → fold); this package collapses them into one online pass
attached directly to the tracer's event stream:

* :mod:`repro.stream.engine`    — the fused fold/lockset/contention
  engine (:class:`StreamEngine`), installed as the tracer's event sink,
* :mod:`repro.stream.intervals` — per-tick-window contention delta
  reports for the ``watch`` CLI,
* :mod:`repro.stream.runner`    — workload execution with the sink
  attached, plus the streamed twins of the ``derive``/``races``
  runners (the CLI's ``--stream`` flag).

On protocol-clean traces the streamed rules and race reports are
bit-identical to the post-mortem pipeline's; see the equivalence
contract in :mod:`repro.stream.engine`.
"""

from repro.stream.engine import (
    StreamEngine,
    StreamObservationTable,
    StreamProtocolError,
)
from repro.stream.intervals import IntervalReport
from repro.stream.runner import (
    StreamRun,
    run_derive_streamed,
    run_races_streamed,
    run_streamed,
)

__all__ = [
    "IntervalReport",
    "StreamEngine",
    "StreamObservationTable",
    "StreamProtocolError",
    "StreamRun",
    "run_derive_streamed",
    "run_races_streamed",
    "run_streamed",
]
