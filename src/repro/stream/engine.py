"""The fused single-pass streaming analysis engine.

Post-mortem analysis walks the trace three times — the tracer
materializes the event list, the importer replays it into a
:class:`~repro.db.database.TraceDatabase`, and the fold/lockset/race
layers re-scan the result.  :class:`StreamEngine` collapses all of that
into **one** scan of the *live* event stream: it installs itself as the
tracer's event sink (see
:func:`repro.tracing.tracer.install_sink_factory`) and maintains,
online,

* the **observation fold** — the same per-transaction
  ``(type_key, member, access_type) -> lockseq`` counters
  :class:`~repro.core.observations.ObservationTable` builds, fed
  without ever materializing the event list or a database,
* the **lockset / happens-before state** for the Eraser-style race
  detector (optional, ``races=True``), sharing the held-stack state
  with the fold,
* **interval contention accounting** — acquisitions, hold-span
  histograms and hottest-locks deltas per tick window, in the style of
  ``core/contention.py`` (and of bcc's ``lockstat``).

Equivalence contract
--------------------

The engine mirrors the importer's transaction state machine exactly
(held stacks, close-on-lock-op, pseudo-transactions per outermost
frame, lock-row resolution at first sight against the live-allocation
index, ES/EO abstraction against the accessed object, Sec. 5.3
filters).  On **protocol-clean traces** — every lock released before
the trace ends, which the simulated scheduler guarantees — the
streamed fold, derived rules and race reports are *bit-identical* to
the post-mortem pipeline.  On damaged traces the divergence is exactly
the importer's documented **retroactive repair set**: stale-lock span
fences and hold-cap scrubbing re-write observations of transactions
that already closed, which a forward-only pass cannot do.  The one
repair both paths share is the synthesized close: transactions still
open at end of stream are dropped from the fold here just as the
importer quarantines them (``synthetic_close_txn``).

Allocation discipline
---------------------

The steady-state hot path (an access to an already-seen member under
an already-seen lock state) allocates nothing: member entries intern
the fold keys, lockseq tuples are interned, filter verdicts are cached
per ``(member, stack)``, and the per-transaction group table is a
reused dict keyed by entry identity.  Allocations happen only on state
*growth* — a new member, stack, lock mode, or transaction/alloc pair —
which is O(live state), not O(events).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

# repro.kernel first: the tracer/kernel import cycle resolves only in
# this direction (same convention as every other entry-point module).
from repro.kernel.structs import StructRegistry

from repro.analysis.happens import AccessStamp, HappensBeforeIndex, _learn
from repro.analysis.lockset import _EMPTY, LocksetResult, MemberTrack
from repro.analysis.racedetect import RaceReport, classify_candidates
from repro.core.contention import ContentionReport, LockStats
from repro.core.derivator import DerivationResult
from repro.core.lockrefs import LockRef, LockSeq, dedup_refs
from repro.core.observations import ObsKey
from repro.db.filters import FilterConfig
from repro.db.importer import _PSEUDO_CLASSES, _LiveIndex
from repro.db.schema import AccessRow, AllocationRow
from repro.stream.intervals import IntervalReport
from repro.tracing.events import AccessEvent, AllocEvent, FreeEvent, LockEvent

#: Shared empty knowledge map (mirror of happens._NO_KNOWLEDGE).
_NO_KNOWLEDGE: Mapping[int, int] = {}

#: Cache sentinels (``None`` is a meaningful cached value for both the
#: filter verdict and the outer frame).
_MISS = object()

#: Interned verdict for addresses that resolve to no member (padding,
#: unregistered type) — their accesses are filtered as untyped anyway.
_UNTYPED = object()


class StreamProtocolError(ValueError):
    """The live stream violated the event protocol (strict semantics)."""


class StreamObservationTable:
    """The engine's incrementally built fold.

    Duck-types the query surface :class:`~repro.core.derivator.Derivator`
    (and the rule reports) need from
    :class:`~repro.core.observations.ObservationTable`: ``keys()``,
    ``sequences()``, ``observation_count()``, ``total`` and
    ``synthetic_excluded`` — with identical sort orders, so a
    derivation from this table is bit-identical to one from the
    post-mortem fold of the same trace.
    """

    split_subclasses = True
    write_over_read = True

    def __init__(self) -> None:
        self._seq_counts: Dict[ObsKey, Dict[LockSeq, int]] = {}
        self._counts: Dict[ObsKey, int] = {}
        self._sorted_seqs: Dict[ObsKey, List[Tuple[LockSeq, int]]] = {}
        self.total = 0
        #: Kept accesses dropped because their transaction was still
        #: open at end of stream (the importer's synthetic-close set).
        self.synthetic_excluded = 0

    def _add(self, key: ObsKey, lockseq: LockSeq) -> None:
        counter = self._seq_counts.get(key)
        if counter is None:
            counter = self._seq_counts[key] = {}
            self._counts[key] = 0
        counter[lockseq] = counter.get(lockseq, 0) + 1
        self._counts[key] += 1
        self.total += 1
        if self._sorted_seqs:
            self._sorted_seqs.pop(key, None)

    def keys(self) -> List[ObsKey]:
        return sorted(self._seq_counts)

    def sequences(
        self, type_key: str, member: str, access_type: str
    ) -> List[Tuple[LockSeq, int]]:
        key = (type_key, member, access_type)
        cached = self._sorted_seqs.get(key)
        if cached is None:
            counter = self._seq_counts.get(key)
            if not counter:
                return []
            cached = sorted(counter.items(), key=lambda item: (-item[1], item[0]))
            self._sorted_seqs[key] = cached
        return cached

    def observation_count(self, type_key: str, member: str, access_type: str) -> int:
        return self._counts.get((type_key, member, access_type), 0)


class _MemberEntry:
    """Interned identity of one live ``(allocation, member)`` pair.

    Pre-computes everything the per-access hot path would otherwise
    rebuild: the fold keys for both access types, the member kind, and
    a per-stack filter-verdict cache shared across all allocations of
    the same ``(data_type, member)``.
    """

    __slots__ = (
        "alloc_id", "data_type", "subclass", "type_key", "member", "kind",
        "key_r", "key_w", "reasons", "track",
    )

    def __init__(
        self,
        alloc_id: int,
        data_type: str,
        subclass: Optional[str],
        member: str,
        kind: str,
        reasons: Dict[int, object],
    ) -> None:
        self.alloc_id = alloc_id
        self.data_type = data_type
        self.subclass = subclass
        self.type_key = f"{data_type}:{subclass}" if subclass else data_type
        self.member = member
        self.kind = kind
        self.key_r: ObsKey = (self.type_key, member, "r")
        self.key_w: ObsKey = (self.type_key, member, "w")
        self.reasons = reasons
        self.track: Optional[MemberTrack] = None


class _AllocState:
    """Live-allocation bookkeeping: row + interned member entries."""

    __slots__ = ("row", "entries", "addresses")

    def __init__(self, row: AllocationRow) -> None:
        self.row = row
        self.entries: Dict[str, _MemberEntry] = {}
        #: Addresses memoized in the engine's address cache — evicted
        #: when this allocation is freed (addresses get reused).
        self.addresses: List[int] = []


class _LockInfo:
    """Resolved identity of one lock instance (importer semantics:
    owner resolved against the live index at first sight)."""

    __slots__ = (
        "lock_id", "name", "lock_class", "is_static",
        "owner_alloc_id", "owner_data_type", "owner_member",
        "class_key", "stats", "_refs",
    )

    def __init__(self) -> None:
        self._refs: Dict[str, Tuple[LockRef, Optional[LockRef]]] = {}

    def ref(self, mode: str, accessed_alloc_id: int) -> LockRef:
        """The abstract lock reference relative to the accessed object
        (mirror of ``Importer._ref_for``), with per-mode interning."""
        pair = self._refs.get(mode)
        if pair is None:
            if self.is_static or self.owner_alloc_id is None:
                pair = (LockRef.global_(self.name, mode), None)
            else:
                owner_member = self.owner_member or self.name
                owner_type = self.owner_data_type or "?"
                pair = (
                    LockRef.es(owner_member, owner_type, mode),
                    LockRef.eo(owner_member, owner_type, mode),
                )
            self._refs[mode] = pair
        primary, other = pair
        if other is None or accessed_alloc_id == self.owner_alloc_id:
            return primary
        return other


class _Ctx:
    """Per-execution-context state: held stack + open transaction."""

    __slots__ = (
        "ctx_id", "held", "txn_open", "txn_id", "no_locks", "pseudo_frame",
        "groups", "seq_cache", "held_sets", "kept_in_txn",
    )

    def __init__(self, ctx_id: int) -> None:
        self.ctx_id = ctx_id
        #: Currently held locks: (lock_id, mode, acquire_ts, info).
        self.held: List[Tuple[int, str, int, _LockInfo]] = []
        self.txn_open = False
        self.txn_id = 0
        self.no_locks = False
        self.pseudo_frame: Optional[str] = None
        #: Open transaction's fold groups: entry -> [lockseq, has_write].
        self.groups: Dict[_MemberEntry, List] = {}
        #: Open transaction's per-allocation lockseq cache (the held set
        #: is fixed for a transaction's lifetime, so one resolution per
        #: accessed allocation suffices).
        self.seq_cache: Dict[int, LockSeq] = {}
        #: Lazily built (all, write-mode) held lock-instance frozensets.
        self.held_sets: Optional[Tuple[frozenset, frozenset]] = None
        self.kept_in_txn = 0


class StreamEngine:
    """Fused fold + lockset/HB + contention over a live event stream.

    The engine *is* the tracer's event sink: install it via
    :meth:`sink_factory` (or :func:`repro.stream.runner.run_streamed`),
    and every ``tracer.events.append(event)`` lands in :meth:`append`.
    Call :meth:`finalize` once the workload finished, then query
    :attr:`table`, :meth:`contention_report`, :meth:`race_report`.
    """

    def __init__(
        self,
        structs: StructRegistry,
        filters: Optional[FilterConfig] = None,
        *,
        races: bool = False,
        interval: Optional[int] = None,
        interval_callback=None,
        top: int = 5,
    ) -> None:
        self.structs = structs
        self.filters = filters or FilterConfig()
        self.table = StreamObservationTable()
        self.tracer = None

        # Event counters (TraceStats shape).
        self.total_events = 0
        self.lock_ops = 0
        self.accesses = 0
        self.allocs = 0
        self.frees = 0
        self.unmatched_releases = 0
        self.synthesized_releases = 0
        self.synthetic_txns = 0

        # Address / allocation resolution.
        self._live = _LiveIndex()
        self._alloc_state: Dict[int, _AllocState] = {}
        self._addr_memo: Dict[int, object] = {}
        #: (data_type, member) -> per-stack filter verdict cache,
        #: shared across all allocations of that type.
        self._reason_caches: Dict[Tuple[str, str], Dict[int, object]] = {}

        # Locks, contexts, transactions.
        self._locks: Dict[int, _LockInfo] = {}
        self._ctx: Dict[int, _Ctx] = {}
        self._txn_counter = 0
        self._access_counter = 0
        self._seq_intern: Dict[LockSeq, LockSeq] = {(): ()}
        self._outer_fns: Dict[int, Optional[str]] = {}
        self._stack_fns: Dict[int, frozenset] = {}

        # Contention (cumulative; intervals snapshot deltas).
        self.lock_stats: Dict[tuple, LockStats] = {}
        self.acquisitions = 0
        self.read_acquisitions = 0
        self.releases = 0
        self.synthetic_closes = 0
        #: log2 hold-span histogram: bucket i counts spans with
        #: ``span.bit_length() == i`` (bucket 0 = zero-tick holds).
        self.hold_histogram: List[int] = [0] * 48

        # Race state (only populated with races=True).
        self._races = races
        self._tracks: Dict[Tuple[int, str], MemberTrack] = {}
        self._stamps: Dict[int, AccessStamp] = {}
        self._hb_index: Dict[int, int] = {}
        self._hb_knowledge: Dict[int, Mapping[int, int]] = {}
        self._hb_releases: Dict[int, Tuple[int, int, Mapping[int, int]]] = {}

        # Interval reporting.
        self._interval = interval
        self._interval_callback = interval_callback
        self._top = top
        self.interval_reports: List[IntervalReport] = []
        self._tick_start = 0
        self._next_tick = interval if interval else float("inf")
        self._tick_index = 0
        self._prev_events = 0
        self._prev_acq = 0
        self._prev_read_acq = 0
        self._prev_rel = 0
        self._prev_hist = [0] * 48
        self._prev_class: Dict[tuple, Tuple[int, int]] = {}

        self._finalized = False

    # ------------------------------------------------------------------
    # Sink plumbing
    # ------------------------------------------------------------------

    def sink_factory(self, tracer) -> object:
        """Tracer sink factory: binds to the *first* tracer constructed
        while installed (every registered workload constructs exactly
        one); later tracers get a plain list and stay untouched."""
        if self.tracer is None:
            self.tracer = tracer
            return self
        return []

    def __len__(self) -> int:
        """Sink length — lets ``len(tracer.events)`` keep working."""
        return self.total_events

    # ------------------------------------------------------------------
    # The hot path: one call per trace event
    # ------------------------------------------------------------------

    def append(self, event) -> None:
        self.total_events += 1
        ts = event[0]
        while ts >= self._next_tick:
            self._tick()
        if self._races:
            ctx_id = event[1]
            own = self._hb_index.get(ctx_id, 0) + 1
            self._hb_index[ctx_id] = own
        else:
            own = 0
        cls = event.__class__
        if cls is AccessEvent:
            self._on_access(event, own)
        elif cls is LockEvent:
            self._on_lock(event, own)
        elif cls is AllocEvent:
            self._on_alloc(event)
        elif cls is FreeEvent:
            self._on_free(event)
        else:
            raise StreamProtocolError(f"unknown event {event!r}")

    # ------------------------------------------------------------------
    # Event handlers (importer state-machine mirrors)
    # ------------------------------------------------------------------

    def _on_access(self, event, own: int) -> None:
        ts, ctx_id, address, size, is_write, stack_id, file, line = event
        self.accesses += 1
        self._access_counter += 1
        ctx = self._ctx.get(ctx_id)
        if ctx is None:
            ctx = self._ctx[ctx_id] = _Ctx(ctx_id)

        # Transaction assignment (mirror of Importer._on_access): under
        # held locks the lock transaction is already open; lock-free
        # runs group into pseudo-transactions per outermost frame.
        if not ctx.held:
            outer = self._outer_fns.get(stack_id, _MISS)
            if outer is _MISS:
                frames = self.tracer.stack(stack_id)
                outer = frames[0][0] if frames else None
                self._outer_fns[stack_id] = outer
            if not ctx.txn_open or ctx.pseudo_frame != outer:
                self._flush_txn(ctx)
                self._open_txn(ctx, no_locks=True)
                ctx.pseudo_frame = outer

        # Address -> (allocation, member) resolution, memoized.
        entry = self._addr_memo.get(address)
        if entry is None:
            entry = self._resolve_address(address)
        if entry is _UNTYPED:
            return

        # Sec. 5.3 filters, verdict cached per (member, stack).
        reasons = entry.reasons
        reason = reasons.get(stack_id, _MISS)
        if reason is _MISS:
            functions = self._stack_fns.get(stack_id)
            if functions is None:
                functions = frozenset(
                    fn for fn, _, _ in self.tracer.stack(stack_id)
                )
                self._stack_fns[stack_id] = functions
            reason = self.filters.reason_for(
                entry.data_type, entry.member, entry.kind, functions
            )
            reasons[stack_id] = reason
        if reason is not None:
            return

        # Kept: fold into the open transaction's groups.
        ctx.kept_in_txn += 1
        seq = ctx.seq_cache.get(entry.alloc_id)
        if seq is None:
            seq = self._lockseq_for(ctx, entry.alloc_id)
            ctx.seq_cache[entry.alloc_id] = seq
        group = ctx.groups.get(entry)
        if group is None:
            ctx.groups[entry] = [seq, is_write]
        elif is_write and not group[1]:
            group[1] = True

        if self._races:
            self._track_access(
                entry, ctx, ts, ctx_id, address, size, is_write,
                stack_id, file, line, seq, own,
            )

    def _on_lock(self, event, own: int) -> None:
        (ts, ctx_id, lock_id, lock_class, lock_name, address,
         is_acquire, mode, _stack_id, _file, _line) = event
        self.lock_ops += 1
        ctx = self._ctx.get(ctx_id)
        if ctx is None:
            ctx = self._ctx[ctx_id] = _Ctx(ctx_id)
        info = self._locks.get(lock_id)
        if info is None:
            info = self._make_lock_info(
                lock_id, lock_class, lock_name, address
            )
        # Any lock operation is a transaction boundary.
        self._flush_txn(ctx)
        if is_acquire:
            if self._races:
                snapshot = self._hb_releases.get(lock_id)
                if snapshot is not None:
                    _learn(self._hb_knowledge, ctx_id, snapshot)
            ctx.held.append((lock_id, mode, ts, info))
            stats = info.stats
            stats.acquisitions += 1
            self.acquisitions += 1
            if mode == "r":
                stats.read_acquisitions += 1
                self.read_acquisitions += 1
        else:
            if self._races:
                self._hb_releases[lock_id] = (
                    ctx_id, own, self._hb_knowledge.get(ctx_id, _NO_KNOWLEDGE)
                )
            held = ctx.held
            for index in range(len(held) - 1, -1, -1):
                if held[index][0] == lock_id:
                    span = ts - held[index][2]
                    del held[index]
                    stats = info.stats
                    stats.total_hold_span += span
                    if span > stats.max_hold_span:
                        stats.max_hold_span = span
                    self.hold_histogram[span.bit_length()] += 1
                    self.releases += 1
                    break
            else:
                self.unmatched_releases += 1
        ctx.held_sets = None
        if ctx.held:
            self._open_txn(ctx, no_locks=False)

    def _on_alloc(self, event) -> None:
        ts, ctx_id, alloc_id, address, size, data_type, subclass = event
        self.allocs += 1
        if alloc_id in self._alloc_state:
            raise StreamProtocolError(f"duplicate allocation id {alloc_id}")
        if self._live.overlaps(address, size):
            raise StreamProtocolError(
                f"allocation {alloc_id} overlaps a live allocation "
                f"at {address:#x}"
            )
        row = AllocationRow(
            alloc_id=alloc_id,
            address=address,
            size=size,
            data_type=data_type,
            subclass=subclass,
            alloc_ts=ts,
        )
        self._live.insert(row)
        self._alloc_state[alloc_id] = _AllocState(row)
        # An allocation is an operation boundary for lock-free runs.
        ctx = self._ctx.get(ctx_id)
        if ctx is not None and ctx.txn_open and ctx.no_locks:
            self._flush_txn(ctx)

    def _on_free(self, event) -> None:
        ts, ctx_id, alloc_id, _address = event
        self.frees += 1
        state = self._alloc_state.get(alloc_id)
        if state is None or state.row.free_ts is not None:
            raise StreamProtocolError(
                f"free of unknown/dead allocation {alloc_id}"
            )
        state.row.free_ts = ts
        self._live.remove(state.row)
        if state.addresses:
            memo = self._addr_memo
            for addr in state.addresses:
                memo.pop(addr, None)
            state.addresses.clear()
        ctx = self._ctx.get(ctx_id)
        if ctx is not None and ctx.txn_open and ctx.no_locks:
            self._flush_txn(ctx)

    # ------------------------------------------------------------------
    # Resolution helpers (cold paths — each result is memoized)
    # ------------------------------------------------------------------

    def _resolve_address(self, address: int):
        """Resolve *address* to an interned member entry (or the untyped
        sentinel).  Only addresses inside a live allocation are
        memoized — a dead address may be reused by a later allocation."""
        alloc = self._live.find(address)
        if alloc is None:
            return _UNTYPED
        state = self._alloc_state[alloc.alloc_id]
        member = None
        if alloc.data_type in self.structs:
            try:
                member = self.structs.get(alloc.data_type).member_at(
                    address - alloc.address
                )
            except KeyError:
                member = None
        if member is None:
            self._addr_memo[address] = _UNTYPED
            state.addresses.append(address)
            return _UNTYPED
        entry = state.entries.get(member.name)
        if entry is None:
            reason_key = (alloc.data_type, member.name)
            reasons = self._reason_caches.get(reason_key)
            if reasons is None:
                reasons = self._reason_caches[reason_key] = {}
            entry = _MemberEntry(
                alloc.alloc_id, alloc.data_type, alloc.subclass,
                member.name, member.kind.value, reasons,
            )
            state.entries[member.name] = entry
        self._addr_memo[address] = entry
        state.addresses.append(address)
        return entry

    def _make_lock_info(
        self,
        lock_id: int,
        lock_class: str,
        lock_name: str,
        address: Optional[int],
    ) -> _LockInfo:
        """Mirror of ``Importer._ensure_lock_row``: owner resolved
        against the live index at the lock's first appearance."""
        info = _LockInfo()
        info.lock_id = lock_id
        info.lock_class = lock_class
        info.name = lock_name
        info.owner_alloc_id = None
        info.owner_data_type = None
        info.owner_member = None
        is_static = address is None or lock_class in _PSEUDO_CLASSES
        if address is not None:
            owner = self._live.find(address)
            if owner is not None:
                info.owner_alloc_id = owner.alloc_id
                info.owner_data_type = owner.data_type
                member = None
                if owner.data_type in self.structs:
                    try:
                        member = self.structs.get(owner.data_type).member_at(
                            address - owner.address
                        )
                    except KeyError:
                        member = None
                info.owner_member = member.name if member is not None else None
            else:
                is_static = True
        info.is_static = is_static
        if is_static or info.owner_alloc_id is None:
            info.class_key = ("global", lock_name, None)
        else:
            info.class_key = (
                "embedded",
                info.owner_data_type or "?",
                info.owner_member or lock_name,
            )
        stats = self.lock_stats.get(info.class_key)
        if stats is None:
            stats = self.lock_stats[info.class_key] = LockStats(info.class_key)
        info.stats = stats
        self._locks[lock_id] = info
        return info

    def _lockseq_for(self, ctx: _Ctx, alloc_id: int) -> LockSeq:
        """Abstract the held stack against the accessed allocation and
        intern the resulting sequence (mirror of
        ``Importer._resolve_lockseq`` + ``dedup_refs``)."""
        refs = [info.ref(mode, alloc_id) for _, mode, _, info in ctx.held]
        seq = dedup_refs(refs)
        return self._seq_intern.setdefault(seq, seq)

    # ------------------------------------------------------------------
    # Transaction machinery
    # ------------------------------------------------------------------

    def _open_txn(self, ctx: _Ctx, no_locks: bool) -> None:
        self._txn_counter += 1
        ctx.txn_id = self._txn_counter
        ctx.txn_open = True
        ctx.no_locks = no_locks

    def _flush_txn(self, ctx: _Ctx) -> None:
        """Close the open transaction, folding its groups (mirror of the
        ``(txn, alloc, member)`` grouping + write-over-read of
        ``ObservationTable.from_database``)."""
        if not ctx.txn_open:
            return
        groups = ctx.groups
        if groups:
            table = self.table
            for entry, group in groups.items():
                table._add(entry.key_w if group[1] else entry.key_r, group[0])
            groups.clear()
            ctx.seq_cache.clear()
        ctx.txn_open = False
        ctx.no_locks = False
        ctx.pseudo_frame = None
        ctx.kept_in_txn = 0

    def _drop_txn(self, ctx: _Ctx) -> None:
        """Drop the open transaction's fold groups — the streaming twin
        of the importer's synthetic-close quarantine."""
        self.table.synthetic_excluded += ctx.kept_in_txn
        if ctx.groups:
            ctx.groups.clear()
            ctx.seq_cache.clear()
        ctx.txn_open = False
        ctx.no_locks = False
        ctx.pseudo_frame = None
        ctx.kept_in_txn = 0

    def _track_access(
        self, entry, ctx, ts, ctx_id, address, size, is_write,
        stack_id, file, line, seq, own,
    ) -> None:
        """Race-mode bookkeeping for one kept access: lockset state
        advance (eager — the held set is fixed while a transaction is
        open) plus the happens-before stamp."""
        row = AccessRow(
            access_id=self._access_counter,
            ts=ts,
            ctx_id=ctx_id,
            txn_id=ctx.txn_id,
            alloc_id=entry.alloc_id,
            data_type=entry.data_type,
            subclass=entry.subclass,
            member=entry.member,
            access_type="w" if is_write else "r",
            address=address,
            size=size,
            stack_id=stack_id,
            file=file,
            line=line,
            lockseq=seq,
        )
        track = entry.track
        if track is None:
            track = MemberTrack(
                alloc_id=entry.alloc_id,
                member=entry.member,
                type_key=entry.type_key,
            )
            entry.track = track
            self._tracks[(entry.alloc_id, entry.member)] = track
        held_sets = ctx.held_sets
        if held_sets is None:
            held = ctx.held
            if held:
                all_ids = frozenset(h[0] for h in held)
                write_ids = frozenset(h[0] for h in held if h[1] == "w")
            else:
                all_ids = write_ids = _EMPTY
            held_sets = ctx.held_sets = (all_ids, write_ids)
        track.apply(row, held_sets)
        self._stamps[ts] = AccessStamp(
            ts=ts,
            ctx_id=ctx_id,
            index=own,
            knows=self._hb_knowledge.get(ctx_id, _NO_KNOWLEDGE),
        )

    # ------------------------------------------------------------------
    # Interval accounting
    # ------------------------------------------------------------------

    def _tick(self) -> None:
        """Close the current tick window and emit its delta report."""
        hist = self.hold_histogram
        prev_hist = self._prev_hist
        hist_delta = tuple(
            (bucket, hist[bucket] - prev_hist[bucket])
            for bucket in range(len(hist))
            if hist[bucket] != prev_hist[bucket]
        )
        prev_class = self._prev_class
        top = []
        for key, stats in self.lock_stats.items():
            prev_acq, prev_hold = prev_class.get(key, (0, 0))
            delta_acq = stats.acquisitions - prev_acq
            delta_hold = stats.total_hold_span - prev_hold
            if delta_acq or delta_hold:
                top.append((key, delta_acq, delta_hold))
        top.sort(key=lambda item: (-item[1], -item[2], item[0]))
        report = IntervalReport(
            index=self._tick_index,
            start_ts=self._tick_start,
            end_ts=self._next_tick,
            events=self.total_events - self._prev_events - 1,
            acquisitions=self.acquisitions - self._prev_acq,
            read_acquisitions=self.read_acquisitions - self._prev_read_acq,
            releases=self.releases - self._prev_rel,
            histogram_delta=hist_delta,
            top_locks=tuple(top[: self._top]),
        )
        self.interval_reports.append(report)
        if self._interval_callback is not None:
            self._interval_callback(report)
        self._tick_index += 1
        self._tick_start = self._next_tick
        self._next_tick += self._interval
        self._prev_events = self.total_events - 1
        self._prev_acq = self.acquisitions
        self._prev_read_acq = self.read_acquisitions
        self._prev_rel = self.releases
        self._prev_hist = list(hist)
        self._prev_class = {
            key: (stats.acquisitions, stats.total_hold_span)
            for key, stats in self.lock_stats.items()
        }

    # ------------------------------------------------------------------
    # End of stream
    # ------------------------------------------------------------------

    def finalize(self) -> None:
        """Close dangling state at end of stream.

        Transactions still open under held locks are the importer's
        ``synthetic_close`` set: their fold groups are dropped, their
        acquisitions removed from the contention counts (span unknown —
        mirrors the repaired ``build_contention``).  Lock-free pseudo
        transactions flush normally, exactly like the importer's
        ``_finalize`` close.
        """
        if self._finalized:
            return
        self._finalized = True
        for ctx in self._ctx.values():
            if ctx.held:
                self.synthesized_releases += len(ctx.held)
                for _, mode, _, info in ctx.held:
                    stats = info.stats
                    stats.acquisitions -= 1
                    if mode == "r":
                        stats.read_acquisitions -= 1
                    self.acquisitions -= 1
                    if mode == "r":
                        self.read_acquisitions -= 1
                    self.synthetic_closes += 1
                ctx.held.clear()
                ctx.held_sets = None
                if ctx.txn_open:
                    self.synthetic_txns += 1
                self._drop_txn(ctx)
            else:
                self._flush_txn(ctx)
        if self._interval is not None and self.total_events > self._prev_events:
            # Close the final (possibly partial) window at end of stream.
            end = self.tracer.clock + 1 if self.tracer is not None else (
                self._tick_start + self._interval
            )
            self._next_tick = max(end, self._tick_start + 1)
            self.total_events += 1  # _tick reports "events so far but one"
            self._tick()
            self.total_events -= 1

    # ------------------------------------------------------------------
    # Result views
    # ------------------------------------------------------------------

    def contention_report(self) -> ContentionReport:
        """The cumulative lock-usage statistics as a
        :class:`~repro.core.contention.ContentionReport` (identical to
        ``build_contention`` over the same trace's events + database)."""
        return ContentionReport(
            stats=dict(self.lock_stats),
            unmatched_releases=self.unmatched_releases,
            synthetic_closes=self.synthetic_closes,
        )

    def lockset_result(self) -> LocksetResult:
        """The incrementally built Eraser state (races mode only)."""
        if not self._races:
            raise ValueError("engine was built without races=True")
        candidates = sorted(
            (t for t in self._tracks.values() if t.is_candidate),
            key=lambda t: (t.type_key, t.member, t.alloc_id),
        )
        return LocksetResult(tracks=self._tracks, candidates=candidates)

    def race_report(self, derivation: DerivationResult) -> RaceReport:
        """Classify the streamed lockset candidates against *derivation*
        (races mode only) — same report as post-mortem
        :func:`~repro.analysis.racedetect.detect_races`."""
        lockset = self.lockset_result()
        hb = HappensBeforeIndex(self._stamps)
        return classify_candidates(
            lockset, hb, derivation,
            synthetic_excluded=self.table.synthetic_excluded,
        )
