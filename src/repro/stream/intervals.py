"""Interval reports for the live monitoring path (``watch``).

Each :class:`IntervalReport` is the *delta* of the streaming engine's
cumulative contention counters over one tick window ``[start_ts,
end_ts)`` of the simulated trace clock — acquisitions, releases, a
log2 hold-span histogram, and the hottest lock classes of the window.
The engine snapshots its counters at every window boundary, so a
report costs O(lock classes), not O(events), and the cumulative totals
stay untouched.

Spans are bucketed by bit length: bucket 0 holds zero-tick spans,
bucket *i* holds spans in ``[2^(i-1), 2^i)`` — the same shape as
lockstat-style latency histograms, cheap enough (one ``bit_length``
per release) for the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.lockorder import LockClassKey, format_class

#: One hottest-lock row: (class key, Δacquisitions, Δhold span).
TopLock = Tuple[LockClassKey, int, int]


def bucket_label(bucket: int) -> str:
    """Human label of one histogram bucket (span range in ticks)."""
    if bucket == 0:
        return "0"
    if bucket == 1:
        return "1"
    return f"{1 << (bucket - 1)}-{(1 << bucket) - 1}"


@dataclass(frozen=True)
class IntervalReport:
    """Contention deltas of one tick window."""

    index: int
    start_ts: int
    end_ts: int
    events: int
    acquisitions: int
    read_acquisitions: int
    releases: int
    #: Sparse log2 hold-span histogram delta: ((bucket, count), ...).
    histogram_delta: Tuple[Tuple[int, int], ...]
    #: Hottest lock classes of the window, by Δacquisitions.
    top_locks: Tuple[TopLock, ...]

    def format(self) -> str:
        lines = [
            f"[{self.index:>3}] ts {self.start_ts}..{self.end_ts}: "
            f"{self.events} events, {self.acquisitions} acq "
            f"({self.read_acquisitions} r), {self.releases} rel"
        ]
        if self.histogram_delta:
            buckets = "  ".join(
                f"{bucket_label(bucket)}:{count:+d}"
                for bucket, count in self.histogram_delta
            )
            lines.append(f"      hold spans (ticks): {buckets}")
        for key, delta_acq, delta_hold in self.top_locks:
            lines.append(
                f"      {format_class(key):<32} {delta_acq:+6d} acq  "
                f"{delta_hold:+8d} held"
            )
        return "\n".join(lines)
