"""Trace-health accounting for resilient ingestion.

A real trace arrives damaged: records torn mid-write, events dropped
under load, releases missing at trace boundaries.  The lenient
ingestion path measures the damage instead of crashing on it, and this
module is where the measurement lives:

* :class:`TraceHealth` — per-defect-class counts, the salvage ratio,
  and the error-budget status of one import.  The accounting identity
  ``kept + quarantined == total`` holds for every import: each event
  that entered the importer is either processed into the database or
  quarantined with a reason.  Synthesized closing releases are counted
  on top (they are outputs, not inputs).
* :func:`ingest_events` / :func:`ingest_path` — convenience drivers
  that run the lenient pipeline end-to-end and hand back
  ``(database, health)``.

Rendering goes through :mod:`repro.core.report` like every other
paper-style table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.report import percentage, render_table
from repro.tracing.events import Event
from repro.tracing.serialize import LoadReport

StackFrames = Tuple[Tuple[str, str, int], ...]


@dataclass
class TraceHealth:
    """Damage report of one trace ingestion (parse + import stages)."""

    #: Events that entered the importer.
    total_events: int = 0
    #: Events processed into the database (includes untyped accesses,
    #: which become rows tagged ``untyped_address``).
    kept_events: int = 0
    #: Events the importer could not resolve, per reason.
    quarantined: Dict[str, int] = field(default_factory=dict)
    #: Closing releases synthesized for locks still held at trace end.
    synthesized_releases: int = 0
    #: Lost releases healed mid-trace (a held exclusive lock was
    #: re-acquired by its own context, proving the release was dropped).
    healed_releases: int = 0
    #: Transactions closed by a synthesized release (``synthetic_close``).
    synthetic_txns: int = 0
    #: Access rows retroactively filtered out of synthetic transactions.
    synthetic_accesses: int = 0
    #: Access rows fenced off because a stale lock (lost release)
    #: polluted their context's held set when they were recorded and
    #: no clean hold duration was available to repair them.
    fenced_accesses: int = 0
    #: Access rows whose lock sequence was repaired by scrubbing a
    #: presumed-stale lock (held past its longest clean hold).
    scrubbed_accesses: int = 0
    #: Events referencing a stack id outside the stack table.
    dangling_stack_refs: int = 0
    #: Malformed records the (lenient) parser diagnosed and skipped.
    parse_diagnostics: int = 0
    #: Event count the trace file header declared (None when imported
    #: straight from memory or when the header was unreadable).
    declared_events: Optional[int] = None
    #: The error budget in force: maximum tolerated malformed fraction.
    budget: float = 1.0

    # ------------------------------------------------------------------
    # Derived measures
    # ------------------------------------------------------------------

    @property
    def quarantined_total(self) -> int:
        return sum(self.quarantined.values())

    @property
    def malformed_total(self) -> int:
        """Defects across both stages: parse diagnostics + quarantine."""
        return self.parse_diagnostics + self.quarantined_total

    @property
    def malformed_fraction(self) -> float:
        denominator = max(self.total_events + self.parse_diagnostics, 1)
        return self.malformed_total / denominator

    @property
    def salvage_ratio(self) -> float:
        """Fraction of importer input that made it into the database."""
        if self.total_events == 0:
            return 1.0
        return self.kept_events / self.total_events

    @property
    def budget_exceeded(self) -> bool:
        return self.malformed_fraction > self.budget

    def accounts_for_all_events(self) -> bool:
        """The core invariant: every input event is kept or quarantined."""
        return self.kept_events + self.quarantined_total == self.total_events

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "total_events": self.total_events,
            "kept_events": self.kept_events,
            "quarantined": dict(self.quarantined),
            "quarantined_total": self.quarantined_total,
            "synthesized_releases": self.synthesized_releases,
            "healed_releases": self.healed_releases,
            "synthetic_txns": self.synthetic_txns,
            "synthetic_accesses": self.synthetic_accesses,
            "fenced_accesses": self.fenced_accesses,
            "scrubbed_accesses": self.scrubbed_accesses,
            "dangling_stack_refs": self.dangling_stack_refs,
            "parse_diagnostics": self.parse_diagnostics,
            "declared_events": self.declared_events,
            "salvage_ratio": self.salvage_ratio,
            "malformed_fraction": self.malformed_fraction,
            "budget": self.budget,
            "budget_exceeded": self.budget_exceeded,
        }

    def render(self) -> str:
        rows = [
            ["declared events", "-" if self.declared_events is None else self.declared_events],
            ["imported events", self.total_events],
            ["kept", self.kept_events],
            ["quarantined", self.quarantined_total],
            ["parse diagnostics", self.parse_diagnostics],
            ["synthesized releases", self.synthesized_releases],
            ["healed releases", self.healed_releases],
            ["synthetic-close txns", self.synthetic_txns],
            ["synthetic accesses filtered", self.synthetic_accesses],
            ["stale-span accesses fenced", self.fenced_accesses],
            ["stale-lock sequences scrubbed", self.scrubbed_accesses],
            ["dangling stack refs", self.dangling_stack_refs],
            ["salvage ratio", percentage(self.salvage_ratio)],
            ["malformed fraction", percentage(self.malformed_fraction)],
            [
                "error budget",
                f"{percentage(self.budget)} "
                f"({'EXCEEDED' if self.budget_exceeded else 'ok'})",
            ],
        ]
        lines = [render_table(["measure", "value"], rows, title="trace health")]
        if self.quarantined:
            lines.append(
                render_table(
                    ["quarantine reason", "events"],
                    sorted(self.quarantined.items()),
                )
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Pipeline drivers
# ----------------------------------------------------------------------


def ingest_events(
    events: Sequence[Event],
    stacks: Sequence[StackFrames],
    structs,
    filters=None,
    policy=None,
    parse_report: Optional[LoadReport] = None,
):
    """Import an event stream and return ``(database, health)``."""
    from repro.db.importer import Importer

    importer = Importer(structs, filters, policy)
    db = importer.run(events, stacks)
    return db, importer.health(parse_report)


def ingest_path(
    path: str,
    structs,
    filters=None,
    policy=None,
    lenient: bool = True,
):
    """Load a trace file and import it: ``(database, health, report)``."""
    from repro.db.importer import LENIENT_POLICY
    from repro.tracing.serialize import load_path

    if policy is None and lenient:
        policy = LENIENT_POLICY
    report = load_path(path, lenient=lenient)
    db, health = ingest_events(
        report.events, report.stacks, structs, filters, policy, parse_report=report
    )
    return db, health, report


def render_diagnostics(diagnostics: List, limit: int = 10) -> str:
    """Render the first *limit* parse diagnostics as a table."""
    rows = [[d.location, d.reason] for d in diagnostics[:limit]]
    extra = len(diagnostics) - limit
    if extra > 0:
        rows.append(["...", f"{extra} more diagnostic(s)"])
    return render_table(
        ["position", "reason"], rows,
        title=f"parse diagnostics ({len(diagnostics)})",
    )
