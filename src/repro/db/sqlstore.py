"""Out-of-core SQLite trace store: build, validate, query.

This is the promotion of :mod:`repro.db.sqlbackend` from an export-only
side path to a first-class backend (the paper's own substrate is a
MariaDB instance holding the Fig. 6 schema).  Three pieces:

**Spooling import** — :class:`SpoolDatabase` subclasses
:class:`TraceDatabase` but spools access rows straight into SQLite in
batches instead of materializing them.  The importer's retroactive
repairs (synthetic-txn quarantine, stale-span fencing, stale-lock
scrubbing) become SQL ``UPDATE``s with identical semantics, so the
lenient-import behaviour is preserved bit-for-bit while resident
memory stays bounded by the small relations (allocations, locks,
transactions) plus one spool batch.

**Sharded build** — :func:`build_store_from_trace` partitions the
access table by ``txn_id % shard_count`` across worker processes.
Every worker replays the *full* event stream (the importer is a
cross-context state machine: transactions, healing and fences depend
on global order, so slicing the stream would change the analysis) but
spools only its partition, which is where all the memory and most of
the write volume lives.  Shards are merged with ``ATTACH`` + ordered
inserts; shard-local lockseq ids are remapped through a temp table.
Partition-local health counters (synthetic/fenced/scrubbed access
rows) sum exactly to the serial import's; every global counter is
identical in each worker by construction.

**Query backend** — :func:`open_store` validates completeness (a torn
or truncated file raises :class:`StoreCorrupt`, it never yields
partial rows); :class:`SqliteTraceStore` exposes

* :meth:`~SqliteTraceStore.fold` — :class:`SqliteFold`, a columnar
  streaming observation fold that feeds ``Derivator.derive`` without
  ever materializing a :class:`TraceDatabase` (duck-types the
  :class:`~repro.core.observations.ObservationTable` query surface,
  including lazy per-target observation materialization for the
  violation finder),
* :meth:`~SqliteTraceStore.load_database` — full reconstruction for
  consumers that need real rows (race detection).
"""

from __future__ import annotations

import json
import os
import sqlite3
import sys
from array import array
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.lockrefs import LockSeq
from repro.core.observations import ObsKey, Observation
from repro.db.database import TraceDatabase
from repro.db.filters import REASON_STALE_LOCK, REASON_SYNTHETIC_TXN, FilterConfig
from repro.db.health import TraceHealth
from repro.db.importer import Importer, ImportPolicy
from repro.db.schema import AccessRow, AllocationRow, HeldLock, LockRow, TxnRow
from repro.db.sqlbackend import (
    INDEXES_SQL,
    TABLES_SQL,
    _s64,
    _u64,
    apply_bulk_pragmas,
    completion_meta,
    parse_lockseq,
    table_counts,
    write_allocation_rows,
    write_lock_rows,
    write_lockseq_rows,
    write_meta,
    write_stack_rows,
    write_struct_tables,
    write_txn_rows,
)
from repro.kernel.structs import StructRegistry

StackFrames = Tuple[Tuple[str, str, int], ...]

#: Environment override for the default shard count.
SHARDS_ENV = "LOCKDOC_DB_SHARDS"

#: TraceHealth fields serialized into the store's ``meta`` table.
_HEALTH_FIELDS = (
    "total_events", "kept_events", "quarantined", "synthesized_releases",
    "healed_releases", "synthetic_txns", "synthetic_accesses",
    "fenced_accesses", "scrubbed_accesses", "dangling_stack_refs",
    "parse_diagnostics", "declared_events", "budget",
)

_ACCESS_INSERT = (
    "INSERT INTO accesses VALUES "
    "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)"
)

_ACCESS_COLUMNS = (
    "access_id, ts, ctx_id, txn_id, alloc_id, data_type, subclass, member, "
    "access_type, address, size, stack_id, file, line, lockseq_id"
)


class StoreCorrupt(ValueError):
    """A store file is missing, torn, or fails completeness checks."""


def default_shard_count() -> int:
    """Shard workers for a parallel build (env-overridable).

    More shards than cores buys nothing (every worker replays the full
    stream); beyond ~4 the per-shard replay cost dominates the write
    savings on typical traces.
    """
    override = os.environ.get(SHARDS_ENV)
    if override:
        try:
            return max(1, int(override))
        except ValueError:
            pass
    return max(1, min(4, os.cpu_count() or 1))


def health_to_json(health: TraceHealth) -> str:
    return json.dumps(
        {name: getattr(health, name) for name in _HEALTH_FIELDS},
        sort_keys=True,
    )


def health_from_json(text: str) -> TraceHealth:
    return TraceHealth(**json.loads(text))


# ----------------------------------------------------------------------
# Spooling import
# ----------------------------------------------------------------------


class SpoolDatabase(TraceDatabase):
    """A :class:`TraceDatabase` whose access table lives in SQLite.

    The small relations (allocations, locks, transactions, stacks) stay
    in memory exactly as before — the importer reads them constantly.
    Access rows are spooled to *connection* in batches and never
    retained, so peak memory no longer grows with trace length.  With
    ``shard_count > 1`` only rows of the ``txn_id % shard_count ==
    shard_index`` partition are written (the importer's state machine
    still sees every event).

    The retroactive-repair API (:meth:`quarantine_txn_accesses`,
    :meth:`quarantine_span_accesses`, :meth:`scrub_stale_lock`) is
    reimplemented over SQL with the exact in-memory semantics: repairs
    touch kept rows only, return the newly-affected count, and the
    scrub removes at most one reference per row.
    """

    def __init__(
        self,
        structs: StructRegistry,
        connection: sqlite3.Connection,
        shard_index: int = 0,
        shard_count: int = 1,
        batch_rows: int = 4096,
    ) -> None:
        super().__init__(structs)
        self._conn = connection
        self._shard_index = shard_index
        self._shard_count = shard_count
        self._batch_rows = batch_rows
        self._pending: List[tuple] = []
        self._seq_ids: Dict[LockSeq, int] = {}
        self._seqs: List[LockSeq] = []
        self.spooled = 0

    def seq_id(self, lockseq: LockSeq) -> int:
        seq_id = self._seq_ids.get(lockseq)
        if seq_id is None:
            seq_id = len(self._seqs)
            self._seq_ids[lockseq] = seq_id
            self._seqs.append(lockseq)
        return seq_id

    def add_access(self, row: AccessRow) -> None:
        if self._shard_count > 1 and row.txn_id % self._shard_count != self._shard_index:
            return
        self._pending.append(
            (row.access_id, row.ts, row.ctx_id, row.txn_id, row.alloc_id,
             row.data_type, row.subclass, row.member, row.access_type,
             _s64(row.address), row.size, row.stack_id, row.file, row.line,
             self.seq_id(row.lockseq), row.filter_reason)
        )
        if len(self._pending) >= self._batch_rows:
            self.flush()

    def flush(self) -> None:
        if self._pending:
            self._conn.executemany(_ACCESS_INSERT, self._pending)
            self.spooled += len(self._pending)
            self._pending.clear()

    def lockseq_dimension(self) -> Iterable[Tuple[int, LockSeq]]:
        return enumerate(self._seqs)

    # -- retroactive repairs (SQL flavours of the in-memory API) -------

    def quarantine_txn_accesses(self, txn_id: int, reason: str) -> int:
        self.flush()
        cursor = self._conn.execute(
            "UPDATE accesses SET filter_reason = ? "
            "WHERE txn_id = ? AND filter_reason IS NULL",
            (reason, txn_id),
        )
        return cursor.rowcount

    def quarantine_span_accesses(
        self, ctx_id: int, start_ts: int, end_ts: int, reason: str
    ) -> int:
        self.flush()
        cursor = self._conn.execute(
            "UPDATE accesses SET filter_reason = ? "
            "WHERE ctx_id = ? AND ts >= ? AND ts <= ? "
            "AND filter_reason IS NULL",
            (reason, ctx_id, start_ts, end_ts),
        )
        return cursor.rowcount

    def scrub_stale_lock(
        self, ctx_id: int, cutoff_ts: int, end_ts: int, ref_for
    ) -> int:
        self.flush()
        updates: List[Tuple[int, int]] = []
        cursor = self._conn.execute(
            "SELECT access_id, alloc_id, lockseq_id FROM accesses "
            "WHERE ctx_id = ? AND ts > ? AND ts <= ? "
            "AND filter_reason IS NULL",
            (ctx_id, cutoff_ts, end_ts),
        )
        for access_id, alloc_id, lockseq_id in cursor.fetchall():
            lockseq = self._seqs[lockseq_id]
            if not lockseq:
                continue
            ref = ref_for(alloc_id)
            seq = list(lockseq)
            try:
                seq.remove(ref)
            except ValueError:
                continue
            updates.append((self.seq_id(tuple(seq)), access_id))
        if updates:
            self._conn.executemany(
                "UPDATE accesses SET lockseq_id = ? WHERE access_id = ?",
                updates,
            )
        return len(updates)


# ----------------------------------------------------------------------
# Store building
# ----------------------------------------------------------------------


def build_store(
    path: str,
    events: Iterable,
    stacks: Sequence[StackFrames],
    structs: StructRegistry,
    filters: Optional[FilterConfig] = None,
    policy: Optional[ImportPolicy] = None,
    shard_index: int = 0,
    shard_count: int = 1,
    parse_report=None,
    meta_extra: Optional[Dict[str, str]] = None,
) -> TraceHealth:
    """Import *events* into a store file at *path* (atomic publish).

    One shard of a sharded build when ``shard_count > 1``; the complete
    store otherwise.  Returns the import's :class:`TraceHealth` (with
    partition-local access counters when sharded).  Like the in-memory
    importer, raises :class:`~repro.db.importer.ErrorBudgetExceeded`
    when the malformed fraction exceeds the policy budget — leaving no
    file behind.
    """
    tmp = f"{path}.{os.getpid()}.{shard_index}.build.tmp"
    connection: Optional[sqlite3.Connection] = sqlite3.connect(tmp)
    try:
        apply_bulk_pragmas(connection)
        connection.executescript(TABLES_SQL)
        db = SpoolDatabase(structs, connection, shard_index, shard_count)
        importer = Importer(structs, filters, policy, db=db)
        importer.run(events, stacks)
        db.flush()
        health = importer.health(parse_report)

        write_struct_tables(connection, structs)
        write_allocation_rows(connection, db.allocations.values())
        write_lock_rows(connection, db.locks.values())
        write_txn_rows(connection, db.txns.values())
        write_stack_rows(connection, db.stack_table)
        write_lockseq_rows(connection, db.lockseq_dimension())
        connection.executescript(INDEXES_SQL)

        meta = {
            "health": health_to_json(health),
            "shard_index": str(shard_index),
            "shard_count": str(shard_count),
        }
        if meta_extra:
            meta.update(meta_extra)
        write_meta(connection, meta)
        write_meta(connection, completion_meta(connection))
        connection.commit()
        connection.close()
        connection = None
        _fsync_file(tmp)
        os.replace(tmp, path)
        return health
    finally:
        if connection is not None:
            connection.close()
        if os.path.exists(tmp):
            os.unlink(tmp)


def _fsync_file(path: str) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
    except OSError:
        pass


def _shard_worker(
    trace_path: str,
    recipe: str,
    policy: Optional[ImportPolicy],
    shard_index: int,
    shard_count: int,
    out_path: str,
) -> None:
    """One sharded-build worker: full replay, partition-only spool."""
    from repro.tracing.serialize import open_binary_stream
    from repro.workloads.registry import database_inputs

    structs, filters = database_inputs(recipe)
    with open(trace_path, "rb") as fp:
        stream = open_binary_stream(fp)
        build_store(
            out_path,
            stream.events,
            stream.stacks,
            structs,
            filters,
            policy,
            shard_index=shard_index,
            shard_count=shard_count,
            meta_extra={"recipe": recipe},
        )


#: Small relations copied verbatim from shard 0 during a merge (every
#: worker builds identical copies — they are global state).
_SHARED_TABLES = (
    "data_types", "type_layout", "allocations", "locks", "txns",
    "txn_locks", "stack_traces", "subclasses",
)


def merge_shards(
    path: str,
    shard_paths: Sequence[str],
    meta_extra: Optional[Dict[str, str]] = None,
) -> TraceHealth:
    """Merge shard stores into one complete store at *path*.

    Small relations come from shard 0 (identical everywhere); access
    partitions are inserted in ``access_id`` order with shard-local
    lockseq ids remapped through a temp table; partition-local health
    counters are summed.
    """
    tmp = f"{path}.{os.getpid()}.merge.tmp"
    connection: Optional[sqlite3.Connection] = sqlite3.connect(tmp)
    try:
        apply_bulk_pragmas(connection)
        connection.executescript(TABLES_SQL)
        connection.execute(
            "CREATE TEMP TABLE seqmap (old INTEGER PRIMARY KEY, new INTEGER NOT NULL)"
        )
        merged_seq_ids: Dict[str, int] = {}
        healths: List[TraceHealth] = []
        stack_count = "1"
        recipe = None
        for index, shard_path in enumerate(shard_paths):
            connection.execute("ATTACH DATABASE ? AS shard", (str(shard_path),))
            shard_meta = dict(
                connection.execute("SELECT key, value FROM shard.meta")
            )
            if shard_meta.get("complete") != "1":
                raise StoreCorrupt(f"incomplete shard store {shard_path}")
            healths.append(health_from_json(shard_meta["health"]))
            if index == 0:
                stack_count = shard_meta.get("stack_count", "1")
                recipe = shard_meta.get("recipe")
                for table in _SHARED_TABLES:
                    connection.execute(
                        f"INSERT INTO {table} SELECT * FROM shard.{table}"
                    )
            connection.execute("DELETE FROM seqmap")
            remap = []
            for old_id, text in connection.execute(
                "SELECT lockseq_id, lockseq FROM shard.lockseqs"
            ):
                new_id = merged_seq_ids.get(text)
                if new_id is None:
                    new_id = len(merged_seq_ids)
                    merged_seq_ids[text] = new_id
                remap.append((old_id, new_id))
            connection.executemany("INSERT INTO seqmap VALUES (?, ?)", remap)
            connection.execute(
                "INSERT INTO accesses "
                "SELECT a.access_id, a.ts, a.ctx_id, a.txn_id, a.alloc_id, "
                "a.data_type, a.subclass, a.member, a.access_type, a.address, "
                "a.size, a.stack_id, a.file, a.line, m.new, a.filter_reason "
                "FROM shard.accesses a JOIN seqmap m ON m.old = a.lockseq_id "
                "ORDER BY a.access_id"
            )
            connection.commit()  # an open txn would pin the attached db
            connection.execute("DETACH DATABASE shard")
        write_lockseq_rows(
            connection,
            (
                (seq_id, parse_lockseq(text))
                for text, seq_id in merged_seq_ids.items()
            ),
        )
        connection.executescript(INDEXES_SQL)
        health = replace(
            healths[0],
            synthetic_accesses=sum(h.synthetic_accesses for h in healths),
            fenced_accesses=sum(h.fenced_accesses for h in healths),
            scrubbed_accesses=sum(h.scrubbed_accesses for h in healths),
        )
        meta = {
            "health": health_to_json(health),
            "stack_count": stack_count,
            "shard_index": "0",
            "shard_count": "1",
            "merged_from": str(len(shard_paths)),
        }
        if recipe is not None:
            meta["recipe"] = recipe
        if meta_extra:
            meta.update(meta_extra)
        write_meta(connection, meta)
        write_meta(connection, completion_meta(connection))
        connection.commit()
        connection.close()
        connection = None
        _fsync_file(tmp)
        os.replace(tmp, path)
        return health
    finally:
        if connection is not None:
            connection.close()
        if os.path.exists(tmp):
            os.unlink(tmp)


def build_store_from_trace(
    path: str,
    trace_path: str,
    recipe: str,
    shard_count: Optional[int] = None,
    policy: Optional[ImportPolicy] = None,
    meta_extra: Optional[Dict[str, str]] = None,
) -> TraceHealth:
    """Build a store from a binary trace file, sharded across processes.

    Each worker streams the file independently (no event pickling
    between processes) and writes one partition; the shards are then
    merged.  ``shard_count=1`` — or a failure to fan out — degrades to
    a serial in-process build with identical output.
    """
    if shard_count is None:
        shard_count = default_shard_count()
    if shard_count <= 1:
        return _serial_build_from_trace(path, trace_path, recipe, policy, meta_extra)
    shard_paths = [f"{path}.shard{index}" for index in range(shard_count)]
    try:
        try:
            with ProcessPoolExecutor(max_workers=shard_count) as pool:
                futures = [
                    pool.submit(
                        _shard_worker, trace_path, recipe, policy,
                        index, shard_count, shard_paths[index],
                    )
                    for index in range(shard_count)
                ]
                for future in futures:
                    future.result()
        except (OSError, RuntimeError):
            # Process pools need working fork/spawn; degrade to serial.
            return _serial_build_from_trace(
                path, trace_path, recipe, policy, meta_extra
            )
        return merge_shards(path, shard_paths, meta_extra)
    finally:
        for shard_path in shard_paths:
            if os.path.exists(shard_path):
                os.unlink(shard_path)


def _serial_build_from_trace(
    path: str,
    trace_path: str,
    recipe: str,
    policy: Optional[ImportPolicy],
    meta_extra: Optional[Dict[str, str]],
) -> TraceHealth:
    from repro.tracing.serialize import open_binary_stream
    from repro.workloads.registry import database_inputs

    structs, filters = database_inputs(recipe)
    meta = {"recipe": recipe}
    if meta_extra:
        meta.update(meta_extra)
    with open(trace_path, "rb") as fp:
        stream = open_binary_stream(fp)
        return build_store(
            path, stream.events, stream.stacks, structs, filters, policy,
            meta_extra=meta,
        )


def ingest_path_spooled(
    trace_path: str,
    store_path: str,
    structs: StructRegistry,
    filters: Optional[FilterConfig] = None,
    policy: Optional[ImportPolicy] = None,
    lenient: bool = True,
):
    """Spooled twin of :func:`repro.db.health.ingest_path`.

    Loads a trace file and imports it straight into a store file;
    returns ``(health, parse_report)``.  Error budgets and parse
    semantics are identical to the in-memory path.
    """
    from repro.db.importer import LENIENT_POLICY
    from repro.tracing.serialize import load_path

    if policy is None and lenient:
        policy = LENIENT_POLICY
    report = load_path(trace_path, lenient=lenient)
    health = build_store(
        store_path, report.events, report.stacks, structs, filters, policy,
        parse_report=report,
    )
    return health, report


# ----------------------------------------------------------------------
# Opening / validation
# ----------------------------------------------------------------------


def open_store(path: str) -> sqlite3.Connection:
    """Open a store file, verifying completeness.

    A torn file — truncated mid-byte, or written by a crashed builder —
    raises :class:`StoreCorrupt` instead of quietly serving partial
    rows: the ``meta`` completeness stamp (written last) must be
    present and every stamped row count must match an actual
    ``COUNT(*)``.
    """
    if not os.path.exists(path):
        raise StoreCorrupt(f"no trace store at {path}")
    connection = sqlite3.connect(path)
    try:
        try:
            meta = dict(connection.execute("SELECT key, value FROM meta"))
        except sqlite3.DatabaseError as exc:
            raise StoreCorrupt(f"unreadable trace store {path}: {exc}")
        if meta.get("complete") != "1":
            raise StoreCorrupt(f"incomplete trace store {path}")
        for table in ("accesses", "txns", "allocations", "locks"):
            declared = meta.get(f"rows_{table}")
            try:
                (count,) = connection.execute(
                    f"SELECT COUNT(*) FROM {table}"
                ).fetchone()
            except sqlite3.DatabaseError as exc:
                raise StoreCorrupt(f"unreadable trace store {path}: {exc}")
            if declared is None or count != int(declared):
                raise StoreCorrupt(
                    f"trace store {path} is torn: {table} has {count} rows, "
                    f"stamp says {declared}"
                )
        return connection
    except BaseException:
        connection.close()
        raise


# ----------------------------------------------------------------------
# The query backend
# ----------------------------------------------------------------------


class SqliteTraceStore:
    """First-class query backend over one store file."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self.connection = open_store(self.path)
        self.meta = dict(self.connection.execute("SELECT key, value FROM meta"))
        self._seq_table: Optional[List[LockSeq]] = None
        self._folds: Dict[bool, "SqliteFold"] = {}

    def close(self) -> None:
        self.connection.close()

    @property
    def recipe(self) -> str:
        return self.meta.get("recipe", "vfs")

    def health(self) -> Optional[TraceHealth]:
        text = self.meta.get("health")
        return health_from_json(text) if text else None

    def counts(self) -> Dict[str, int]:
        return table_counts(self.connection)

    def lockseq_table(self) -> List[LockSeq]:
        """All interned lock sequences, indexed by ``lockseq_id``."""
        if self._seq_table is None:
            rows = self.connection.execute(
                "SELECT lockseq_id, lockseq FROM lockseqs ORDER BY lockseq_id"
            ).fetchall()
            table: List[LockSeq] = [()] * (rows[-1][0] + 1 if rows else 0)
            for seq_id, text in rows:
                table[seq_id] = parse_lockseq(text)
            self._seq_table = table
        return self._seq_table

    def fold(self, split_subclasses: bool = True) -> "SqliteFold":
        fold = self._folds.get(split_subclasses)
        if fold is None:
            fold = SqliteFold(self, split_subclasses=split_subclasses)
            self._folds[split_subclasses] = fold
        return fold

    def load_database(
        self,
        structs: Optional[StructRegistry] = None,
        filters=None,
    ) -> TraceDatabase:
        """Reconstruct the full in-memory :class:`TraceDatabase`.

        For consumers that need real rows (race detection).  The result
        is identical — row for row, index for index — to the database
        the in-memory importer would have produced.
        """
        if structs is None:
            from repro.workloads.registry import database_inputs

            structs, _ = database_inputs(self.recipe)
        conn = self.connection
        db = TraceDatabase(structs)
        for (alloc_id, address, size, data_type, subclass, alloc_ts,
             free_ts) in conn.execute(
                "SELECT alloc_id, address, size, data_type, subclass, "
                "alloc_ts, free_ts FROM allocations ORDER BY alloc_id"):
            db.add_allocation(AllocationRow(
                alloc_id=alloc_id, address=_u64(address), size=size,
                data_type=data_type, subclass=subclass, alloc_ts=alloc_ts,
                free_ts=free_ts,
            ))
        for (lock_id, lock_class, name, address, is_static, owner_alloc_id,
             owner_data_type, owner_member) in conn.execute(
                "SELECT lock_id, lock_class, name, address, is_static, "
                "owner_alloc_id, owner_data_type, owner_member "
                "FROM locks ORDER BY lock_id"):
            db.add_lock(LockRow(
                lock_id=lock_id, lock_class=lock_class, name=name,
                address=_u64(address), is_static=bool(is_static),
                owner_alloc_id=owner_alloc_id,
                owner_data_type=owner_data_type, owner_member=owner_member,
            ))
        held: Dict[int, List[HeldLock]] = {}
        for txn_id, lock_id, mode in conn.execute(
                "SELECT txn_id, lock_id, mode FROM txn_locks "
                "ORDER BY txn_id, position"):
            held.setdefault(txn_id, []).append(HeldLock(lock_id, mode))
        for (txn_id, ctx_id, start_ts, end_ts, no_locks,
             synthetic_close) in conn.execute(
                "SELECT txn_id, ctx_id, start_ts, end_ts, no_locks, "
                "synthetic_close FROM txns ORDER BY seq"):
            db.add_txn(TxnRow(
                txn_id=txn_id, ctx_id=ctx_id, start_ts=start_ts,
                end_ts=end_ts, held=tuple(held.get(txn_id, ())),
                no_locks=bool(no_locks),
                synthetic_close=bool(synthetic_close),
            ))
        stack_count = int(self.meta.get("stack_count", "1"))
        stacks: List[StackFrames] = [()] * max(stack_count, 1)
        frames: Dict[int, List[Tuple[str, str, int]]] = {}
        for stack_id, function, file, line in conn.execute(
                "SELECT stack_id, function, file, line FROM stack_traces "
                "ORDER BY stack_id, depth"):
            frames.setdefault(stack_id, []).append((function, file, line))
        for stack_id, frame_list in frames.items():
            stacks[stack_id] = tuple(frame_list)
        db.set_stack_table(stacks)
        seqs = self.lockseq_table()
        for (access_id, ts, ctx_id, txn_id, alloc_id, data_type, subclass,
             member, access_type, address, size, stack_id, file, line,
             lockseq_id, filter_reason) in conn.execute(
                f"SELECT {_ACCESS_COLUMNS}, filter_reason FROM accesses "
                "ORDER BY access_id"):
            db.add_access(AccessRow(
                access_id=access_id, ts=ts, ctx_id=ctx_id, txn_id=txn_id,
                alloc_id=alloc_id, data_type=data_type, subclass=subclass,
                member=member, access_type=access_type,
                address=_u64(address), size=size, stack_id=stack_id,
                file=file, line=line, lockseq=seqs[lockseq_id],
                filter_reason=filter_reason,
            ))
        db.health = self.health()
        return db


# ----------------------------------------------------------------------
# The columnar derivation fold
# ----------------------------------------------------------------------


@dataclass
class ColumnBatch:
    """One fetch chunk of the access table in columnar form.

    Integer columns are ``array('q')`` (8 bytes per value, no object
    boxing); string columns are interned so the per-batch footprint is
    a pointer array over a handful of distinct strings.
    """

    txn_ids: array
    alloc_ids: array
    seq_ids: array
    members: List[str]
    access_types: List[str]
    data_types: List[str]
    subclasses: List[Optional[str]]

    def __len__(self) -> int:
        return len(self.txn_ids)


def _column_batches(cursor, batch_rows: int = 16384) -> Iterable[ColumnBatch]:
    intern = sys.intern
    while True:
        rows = cursor.fetchmany(batch_rows)
        if not rows:
            return
        yield ColumnBatch(
            txn_ids=array("q", (row[0] for row in rows)),
            alloc_ids=array("q", (row[1] for row in rows)),
            seq_ids=array("q", (row[2] for row in rows)),
            members=[intern(row[3]) for row in rows],
            access_types=[intern(row[4]) for row in rows],
            data_types=[intern(row[5]) for row in rows],
            subclasses=[
                intern(row[6]) if row[6] is not None else None for row in rows
            ],
        )


class SqliteFold:
    """Streaming observation fold over a store (Tab. 1 semantics).

    Duck-types the :class:`~repro.core.observations.ObservationTable`
    query surface used by rule derivation (``keys`` / ``sequences`` /
    ``observation_count``), by the documented-rule checker
    (``merged_sequences`` and friends), and by the violation finder
    (``get``).  The fold itself is one indexed scan of the kept access
    rows in ``(txn_id, alloc_id, member)`` group order, consumed in
    columnar batches with O(1) state per group — observation *rows*
    are only materialized lazily, per derivation target, when the
    violation finder asks for them.
    """

    def __init__(
        self,
        store: SqliteTraceStore,
        split_subclasses: bool = True,
        write_over_read: bool = True,
    ) -> None:
        self.store = store
        self.split_subclasses = split_subclasses
        self.write_over_read = write_over_read
        self._seq_counts: Dict[ObsKey, Dict[LockSeq, int]] = {}
        self._counts: Dict[ObsKey, int] = {}
        self._sorted_seqs: Dict[ObsKey, List[Tuple[LockSeq, int]]] = {}
        self.total = 0
        self._obs: Dict[ObsKey, List[Observation]] = {}
        self._materialized: Set[Tuple[str, str]] = set()
        self._scan()
        (self.synthetic_excluded,) = store.connection.execute(
            "SELECT COUNT(*) FROM accesses WHERE filter_reason IN (?, ?)",
            (REASON_SYNTHETIC_TXN, REASON_STALE_LOCK),
        ).fetchone()

    # -- the fold ------------------------------------------------------

    def _type_key(self, data_type: str, subclass: Optional[str]) -> str:
        if self.split_subclasses and subclass:
            return f"{data_type}:{subclass}"
        return data_type

    def _scan(self) -> None:
        cursor = self.store.connection.execute(
            "SELECT txn_id, alloc_id, lockseq_id, member, access_type, "
            "data_type, subclass FROM accesses "
            "WHERE filter_reason IS NULL "
            "ORDER BY txn_id, alloc_id, member, access_id"
        )
        group_txn = group_alloc = -1
        group_member: Optional[str] = None
        group_seq_id = 0
        group_type_key = ""
        has_write = has_read = False
        for batch in _column_batches(cursor):
            txn_ids = batch.txn_ids
            alloc_ids = batch.alloc_ids
            seq_ids = batch.seq_ids
            members = batch.members
            access_types = batch.access_types
            for index in range(len(batch)):
                txn_id = txn_ids[index]
                alloc_id = alloc_ids[index]
                member = members[index]
                if (
                    txn_id != group_txn
                    or alloc_id != group_alloc
                    or member != group_member
                ):
                    if group_member is not None:
                        self._emit(
                            group_type_key, group_member, group_seq_id,
                            has_write, has_read,
                        )
                    group_txn = txn_id
                    group_alloc = alloc_id
                    group_member = member
                    group_seq_id = seq_ids[index]
                    group_type_key = self._type_key(
                        batch.data_types[index], batch.subclasses[index]
                    )
                    has_write = has_read = False
                if access_types[index] == "w":
                    has_write = True
                else:
                    has_read = True
        if group_member is not None:
            self._emit(group_type_key, group_member, group_seq_id,
                       has_write, has_read)

    def _emit(
        self,
        type_key: str,
        member: str,
        seq_id: int,
        has_write: bool,
        has_read: bool,
    ) -> None:
        lockseq = self.store.lockseq_table()[seq_id]
        if self.write_over_read:
            access_types = ("w",) if has_write else ("r",)
        else:
            access_types = (
                ("w",) if has_write else ()
            ) + (("r",) if has_read else ())
        for access_type in access_types:
            key = (type_key, member, access_type)
            counter = self._seq_counts.get(key)
            if counter is None:
                counter = {}
                self._seq_counts[key] = counter
            counter[lockseq] = counter.get(lockseq, 0) + 1
            self._counts[key] = self._counts.get(key, 0) + 1
            self.total += 1

    # -- ObservationTable query surface --------------------------------

    def keys(self) -> List[ObsKey]:
        return sorted(self._seq_counts)

    def type_keys(self) -> List[str]:
        return sorted({key[0] for key in self._seq_counts})

    def members_of(self, type_key: str) -> List[str]:
        return sorted({m for (tk, m, _) in self._seq_counts if tk == type_key})

    def sequences(
        self, type_key: str, member: str, access_type: str
    ) -> List[Tuple[LockSeq, int]]:
        key = (type_key, member, access_type)
        cached = self._sorted_seqs.get(key)
        if cached is None:
            counter = self._seq_counts.get(key)
            if not counter:
                return []
            cached = sorted(counter.items(), key=lambda item: (-item[1], item[0]))
            self._sorted_seqs[key] = cached
        return cached

    def observation_count(
        self, type_key: str, member: str, access_type: str
    ) -> int:
        return self._counts.get((type_key, member, access_type), 0)

    def base_keys(self, data_type: str) -> List[str]:
        prefix = data_type + ":"
        return [
            tk
            for tk in self.type_keys()
            if tk == data_type or tk.startswith(prefix)
        ]

    def merged_sequences(
        self, data_type: str, member: str, access_type: str
    ) -> List[Tuple[LockSeq, int]]:
        counter: Dict[LockSeq, int] = {}
        for type_key in self.base_keys(data_type):
            for lockseq, count in self._seq_counts.get(
                (type_key, member, access_type), {}
            ).items():
                counter[lockseq] = counter.get(lockseq, 0) + count
        return sorted(counter.items(), key=lambda item: (-item[1], item[0]))

    def merged_members_of(self, data_type: str) -> List[str]:
        members: Set[str] = set()
        for type_key in self.base_keys(data_type):
            members.update(self.members_of(type_key))
        return sorted(members)

    def merged_get(
        self, data_type: str, member: str, access_type: str
    ) -> List[Observation]:
        merged: List[Observation] = []
        for type_key in self.base_keys(data_type):
            merged.extend(self.get(type_key, member, access_type))
        return merged

    # -- lazy observation materialization (violation finder) -----------

    def get(
        self, type_key: str, member: str, access_type: str
    ) -> List[Observation]:
        key = (type_key, member, access_type)
        cached = self._obs.get(key)
        if cached is not None:
            return cached
        data_type = type_key.split(":", 1)[0]
        if (data_type, member) not in self._materialized:
            self._materialize(data_type, member)
        return self._obs.get(key, [])

    def _materialize(self, data_type: str, member: str) -> None:
        """Fetch all kept rows of ``(data_type, member)`` and rebuild
        their observations, in the exact order the in-memory table
        holds them (first appearance in the access scan — i.e. by the
        group's smallest ``access_id``)."""
        self._materialized.add((data_type, member))
        seqs = self.store.lockseq_table()
        cursor = self.store.connection.execute(
            f"SELECT {_ACCESS_COLUMNS} FROM accesses "
            "WHERE filter_reason IS NULL AND data_type = ? AND member = ? "
            "ORDER BY txn_id, alloc_id, access_id",
            (data_type, member),
        )
        pending: List[Tuple[int, Observation]] = []
        group_key: Optional[Tuple[int, int]] = None
        rows: List[AccessRow] = []

        def emit() -> None:
            if not rows:
                return
            first = rows[0]
            type_key = self._type_key(first.data_type, first.subclass)
            reads = [r for r in rows if r.access_type == "r"]
            writes = [r for r in rows if r.access_type == "w"]
            observations = []
            if self.write_over_read:
                if writes:
                    observations.append(Observation(
                        first.txn_id, first.alloc_id, type_key, member,
                        "w", first.lockseq, tuple(rows), mixed=bool(reads),
                    ))
                else:
                    observations.append(Observation(
                        first.txn_id, first.alloc_id, type_key, member,
                        "r", first.lockseq, tuple(rows),
                    ))
            else:
                if writes:
                    observations.append(Observation(
                        first.txn_id, first.alloc_id, type_key, member,
                        "w", first.lockseq, tuple(writes),
                    ))
                if reads:
                    observations.append(Observation(
                        first.txn_id, first.alloc_id, type_key, member,
                        "r", first.lockseq, tuple(reads),
                    ))
            for obs in observations:
                pending.append((first.access_id, obs))

        for record in cursor:
            (access_id, ts, ctx_id, txn_id, alloc_id, row_dt, subclass,
             row_member, row_access_type, address, size, stack_id, file,
             line, lockseq_id) = record
            if (txn_id, alloc_id) != group_key:
                emit()
                group_key = (txn_id, alloc_id)
                rows = []
            rows.append(AccessRow(
                access_id=access_id, ts=ts, ctx_id=ctx_id, txn_id=txn_id,
                alloc_id=alloc_id, data_type=row_dt, subclass=subclass,
                member=row_member, access_type=row_access_type,
                address=_u64(address), size=size, stack_id=stack_id,
                file=file, line=line, lockseq=seqs[lockseq_id],
                filter_reason=None,
            ))
        emit()
        pending.sort(key=lambda item: item[0])
        for _, obs in pending:
            obs_key = (obs.type_key, obs.member, obs.access_type)
            self._obs.setdefault(obs_key, []).append(obs)
