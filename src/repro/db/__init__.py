"""Trace post-processing and storage (paper Sec. 5.3 / Fig. 6).

The raw event trace is imported into a relational-style in-memory
database: allocations, locks, transactions and member-resolved accesses
— the same relations the paper loads into MariaDB.  The importer also
applies the paper's filters (init/teardown functions, ``atomic_t``
members, black lists).
"""

from repro.db.database import TraceDatabase
from repro.db.filters import FilterConfig, FilterStats
from repro.db.importer import import_trace
from repro.db.schema import AccessRow, AllocationRow, LockRow, TxnRow

__all__ = [
    "AccessRow",
    "AllocationRow",
    "FilterConfig",
    "FilterStats",
    "LockRow",
    "TraceDatabase",
    "TxnRow",
    "import_trace",
]
