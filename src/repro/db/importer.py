"""Trace import: from the raw event stream to the relational database.

This is the paper's post-processing step (Sec. 5.3).  It replays the
event trace in order and

* reconstructs allocation lifetimes (addresses are reused, so lookups
  respect liveness),
* builds **transactions** per execution context: a transaction starts
  upon lock acquisition and ends when the held-lock set changes again
  (Sec. 4.2); lock-free access runs are grouped into pseudo-transactions
  so the "no lock" hypothesis has a well-defined denominator,
* resolves each memory access to ``(allocation, member)`` via the type
  layout,
* abstracts the held lock instances of each access into
  :class:`~repro.core.lockrefs.LockRef` sequences (global / embedded-
  same / embedded-other — resolved **against the accessed object**),
* applies the Sec. 5.3 filters, tagging dropped accesses with a reason.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.lockrefs import LockRef, LockSeq, dedup_refs
from repro.db.database import TraceDatabase
from repro.db.filters import (
    REASON_UNTYPED,
    FilterConfig,
    FilterStats,
)
from repro.db.schema import AccessRow, AllocationRow, HeldLock, LockRow, TxnRow
from repro.kernel.structs import StructRegistry
from repro.tracing.events import (
    AccessEvent,
    AllocEvent,
    Event,
    FreeEvent,
    LockEvent,
)

StackFrames = Tuple[Tuple[str, str, int], ...]

#: Lock classes whose instances are global pseudo-locks.
_PSEUDO_CLASSES = {"rcu", "softirq", "hardirq", "preempt"}


class ImportError_(ValueError):
    """Raised for traces that violate the event protocol."""


@dataclass
class _PendingTxn:
    txn_id: int
    ctx_id: int
    start_ts: int
    held: Tuple[HeldLock, ...]
    no_locks: bool
    used: bool = False


class _LiveIndex:
    """Sorted interval index over live allocations (no overlaps)."""

    def __init__(self) -> None:
        self._starts: List[int] = []
        self._rows: List[AllocationRow] = []

    def insert(self, row: AllocationRow) -> None:
        index = bisect.bisect_left(self._starts, row.address)
        self._starts.insert(index, row.address)
        self._rows.insert(index, row)

    def remove(self, row: AllocationRow) -> None:
        index = bisect.bisect_left(self._starts, row.address)
        if index >= len(self._rows) or self._rows[index] is not row:
            raise ImportError_(f"free of unknown allocation {row.alloc_id}")
        del self._starts[index]
        del self._rows[index]

    def find(self, address: int) -> Optional[AllocationRow]:
        index = bisect.bisect_right(self._starts, address) - 1
        if index < 0:
            return None
        row = self._rows[index]
        if row.address <= address < row.address + row.size:
            return row
        return None


@dataclass
class _CtxState:
    held: List[Tuple[int, str]] = field(default_factory=list)  # (lock_id, mode)
    txn: Optional[_PendingTxn] = None
    pseudo_frame: Optional[str] = None  # outermost function of pseudo-txn


class Importer:
    """One-shot importer; use :func:`import_trace` for convenience."""

    def __init__(
        self,
        structs: StructRegistry,
        filters: Optional[FilterConfig] = None,
    ) -> None:
        self.db = TraceDatabase(structs)
        self.filters = filters or FilterConfig()
        self.stats = FilterStats()
        self.unmatched_releases = 0
        self._live = _LiveIndex()
        self._ctx: Dict[int, _CtxState] = {}
        self._txn_counter = 0
        self._access_counter = 0
        self._stack_functions: Dict[int, FrozenSet[str]] = {}
        self._stack_table: Sequence[StackFrames] = [()]

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def run(
        self, events: Sequence[Event], stack_table: Sequence[StackFrames]
    ) -> TraceDatabase:
        self._stack_table = stack_table
        self.db.set_stack_table(stack_table)
        for event in events:
            if isinstance(event, AllocEvent):
                self._on_alloc(event)
            elif isinstance(event, FreeEvent):
                self._on_free(event)
            elif isinstance(event, LockEvent):
                self._on_lock(event)
            elif isinstance(event, AccessEvent):
                self._on_access(event)
            else:  # pragma: no cover - defensive
                raise ImportError_(f"unknown event {event!r}")
        final_ts = events[-1].ts if events else 0
        for state in self._ctx.values():
            self._close_txn(state, final_ts)
        return self.db

    # ------------------------------------------------------------------
    # Context / transaction machinery
    # ------------------------------------------------------------------

    def _state(self, ctx_id: int) -> _CtxState:
        state = self._ctx.get(ctx_id)
        if state is None:
            state = _CtxState()
            self._ctx[ctx_id] = state
        return state

    def _close_txn(self, state: _CtxState, end_ts: int) -> None:
        txn = state.txn
        if txn is None:
            return
        if txn.used:
            self.db.add_txn(
                TxnRow(
                    txn_id=txn.txn_id,
                    ctx_id=txn.ctx_id,
                    start_ts=txn.start_ts,
                    end_ts=end_ts,
                    held=txn.held,
                    no_locks=txn.no_locks,
                )
            )
        state.txn = None
        state.pseudo_frame = None

    def _open_txn(
        self, state: _CtxState, ctx_id: int, ts: int, no_locks: bool
    ) -> _PendingTxn:
        self._txn_counter += 1
        txn = _PendingTxn(
            txn_id=self._txn_counter,
            ctx_id=ctx_id,
            start_ts=ts,
            held=tuple(HeldLock(lock_id, mode) for lock_id, mode in state.held),
            no_locks=no_locks,
        )
        state.txn = txn
        return txn

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------

    def _on_alloc(self, event: AllocEvent) -> None:
        row = AllocationRow(
            alloc_id=event.alloc_id,
            address=event.address,
            size=event.size,
            data_type=event.data_type,
            subclass=event.subclass,
            alloc_ts=event.ts,
        )
        self.db.add_allocation(row)
        self._live.insert(row)
        # An allocation is an operation boundary for lock-free runs.
        state = self._state(event.ctx_id)
        if state.txn is not None and state.txn.no_locks:
            self._close_txn(state, event.ts)

    def _on_free(self, event: FreeEvent) -> None:
        row = self.db.allocations.get(event.alloc_id)
        if row is None or row.free_ts is not None:
            raise ImportError_(f"free of unknown/dead allocation {event.alloc_id}")
        row.free_ts = event.ts
        self._live.remove(row)
        state = self._state(event.ctx_id)
        if state.txn is not None and state.txn.no_locks:
            self._close_txn(state, event.ts)

    def _on_lock(self, event: LockEvent) -> None:
        state = self._state(event.ctx_id)
        self._ensure_lock_row(event)
        self._close_txn(state, event.ts)
        if event.is_acquire:
            state.held.append((event.lock_id, event.mode))
        else:
            for index in range(len(state.held) - 1, -1, -1):
                if state.held[index][0] == event.lock_id:
                    del state.held[index]
                    break
            else:
                # Lock predates tracing; tolerate but count.
                self.unmatched_releases += 1
        if state.held:
            self._open_txn(state, event.ctx_id, event.ts, no_locks=False)

    def _ensure_lock_row(self, event: LockEvent) -> None:
        if event.lock_id in self.db.locks:
            return
        owner_alloc_id = None
        owner_data_type = None
        owner_member = None
        is_static = event.address is None or event.lock_class in _PSEUDO_CLASSES
        if event.address is not None:
            owner = self._live.find(event.address)
            if owner is not None:
                owner_alloc_id = owner.alloc_id
                owner_data_type = owner.data_type
                if owner.data_type in self.db.structs:
                    struct = self.db.structs.get(owner.data_type)
                    offset = event.address - owner.address
                    owner_member = struct.member_at(offset).name
            else:
                is_static = True
        self.db.add_lock(
            LockRow(
                lock_id=event.lock_id,
                lock_class=event.lock_class,
                name=event.lock_name,
                address=event.address,
                is_static=is_static,
                owner_alloc_id=owner_alloc_id,
                owner_data_type=owner_data_type,
                owner_member=owner_member,
            )
        )

    def _on_access(self, event: AccessEvent) -> None:
        state = self._state(event.ctx_id)
        allocation = self._live.find(event.address)

        # Transaction assignment.
        if state.held:
            txn = state.txn
            if txn is None:  # pragma: no cover - defensive
                raise ImportError_("held locks without an open transaction")
        else:
            txn = state.txn
            outer = self._outer_function(event.stack_id)
            if txn is None or state.pseudo_frame != outer:
                self._close_txn(state, event.ts)
                txn = self._open_txn(state, event.ctx_id, event.ts, no_locks=True)
                state.pseudo_frame = outer
        txn.used = True

        self._access_counter += 1
        access_type = "w" if event.is_write else "r"

        if allocation is None:
            row = AccessRow(
                access_id=self._access_counter,
                ts=event.ts,
                ctx_id=event.ctx_id,
                txn_id=txn.txn_id,
                alloc_id=-1,
                data_type="<unknown>",
                subclass=None,
                member="<raw>",
                access_type=access_type,
                address=event.address,
                size=event.size,
                stack_id=event.stack_id,
                file=event.file,
                line=event.line,
                lockseq=(),
                filter_reason=REASON_UNTYPED,
            )
            self.stats.count(REASON_UNTYPED)
            self.db.add_access(row)
            return

        struct = self.db.structs.get(allocation.data_type)
        member = struct.member_at(event.address - allocation.address)
        lockseq = self._resolve_lockseq(state, allocation)
        reason = self.filters.reason_for(
            allocation.data_type,
            member.name,
            member.kind.value,
            self._functions_of(event.stack_id),
        )
        if reason is not None:
            self.stats.count(reason)
        row = AccessRow(
            access_id=self._access_counter,
            ts=event.ts,
            ctx_id=event.ctx_id,
            txn_id=txn.txn_id,
            alloc_id=allocation.alloc_id,
            data_type=allocation.data_type,
            subclass=allocation.subclass,
            member=member.name,
            access_type=access_type,
            address=event.address,
            size=event.size,
            stack_id=event.stack_id,
            file=event.file,
            line=event.line,
            lockseq=lockseq,
            filter_reason=reason,
        )
        self.db.add_access(row)

    # ------------------------------------------------------------------
    # Lock-reference resolution
    # ------------------------------------------------------------------

    def _resolve_lockseq(
        self, state: _CtxState, accessed: AllocationRow
    ) -> LockSeq:
        refs: List[LockRef] = []
        for lock_id, mode in state.held:
            lock = self.db.locks.get(lock_id)
            if lock is None:  # pragma: no cover - defensive
                continue
            if lock.is_static or lock.owner_alloc_id is None:
                refs.append(LockRef.global_(lock.name, mode))
            elif lock.owner_alloc_id == accessed.alloc_id:
                refs.append(
                    LockRef.es(lock.owner_member or lock.name, lock.owner_data_type or "?", mode)
                )
            else:
                refs.append(
                    LockRef.eo(lock.owner_member or lock.name, lock.owner_data_type or "?", mode)
                )
        return dedup_refs(refs)

    # ------------------------------------------------------------------
    # Stack helpers
    # ------------------------------------------------------------------

    def _functions_of(self, stack_id: int) -> FrozenSet[str]:
        cached = self._stack_functions.get(stack_id)
        if cached is None:
            frames = self._stack_table[stack_id]
            cached = frozenset(fn for fn, _, _ in frames)
            self._stack_functions[stack_id] = cached
        return cached

    def _outer_function(self, stack_id: int) -> Optional[str]:
        frames = self._stack_table[stack_id]
        return frames[0][0] if frames else None


def import_trace(
    events: Sequence[Event],
    stack_table: Sequence[StackFrames],
    structs: StructRegistry,
    filters: Optional[FilterConfig] = None,
) -> TraceDatabase:
    """Import an event trace into a fresh :class:`TraceDatabase`."""
    importer = Importer(structs, filters)
    return importer.run(events, stack_table)


def import_tracer(
    tracer,
    structs: StructRegistry,
    filters: Optional[FilterConfig] = None,
) -> TraceDatabase:
    """Import straight from a live :class:`~repro.tracing.tracer.Tracer`."""
    stack_table = [tracer.stack(i) for i in range(tracer.stack_count)]
    return import_trace(tracer.events, stack_table, structs, filters)
