"""Trace import: from the raw event stream to the relational database.

This is the paper's post-processing step (Sec. 5.3).  It replays the
event trace in order and

* reconstructs allocation lifetimes (addresses are reused, so lookups
  respect liveness),
* builds **transactions** per execution context: a transaction starts
  upon lock acquisition and ends when the held-lock set changes again
  (Sec. 4.2); lock-free access runs are grouped into pseudo-transactions
  so the "no lock" hypothesis has a well-defined denominator,
* resolves each memory access to ``(allocation, member)`` via the type
  layout,
* abstracts the held lock instances of each access into
  :class:`~repro.core.lockrefs.LockRef` sequences (global / embedded-
  same / embedded-other — resolved **against the accessed object**),
* applies the Sec. 5.3 filters, tagging dropped accesses with a reason.

Resilience
----------

Real traces violate the event protocol — frees without allocs,
duplicated allocations, releases of never-acquired locks.  The importer
runs under an :class:`ImportPolicy`:

* **strict** (default): protocol violations raise :class:`ImportError_`
  on first contact, as a pristine pipeline should.
* **lenient**: unresolvable events are *quarantined* — recorded with a
  reason, kept out of the database, counted in the
  :class:`~repro.db.health.TraceHealth` report — and the import
  continues.  The **error budget** still bounds the damage: once the
  malformed fraction exceeds ``policy.max_malformed_fraction`` the
  import aborts with :class:`ErrorBudgetExceeded`, so a fully garbage
  trace cannot masquerade as a small salvage.

In both modes, locks still held when the trace ends get a
**synthesized closing release**: the dangling transaction is closed,
flagged ``synthetic_close``, and its access rows are retroactively
filtered (reason ``synthetic_close_txn``) so rules and race verdicts
are mined only over salvaged-clean spans.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.core.lockrefs import LockRef, LockSeq, dedup_refs
from repro.db.database import TraceDatabase
from repro.db.filters import (
    REASON_STALE_LOCK,
    REASON_SYNTHETIC_TXN,
    REASON_UNMATCHED_RELEASE,
    REASON_UNTYPED,
    FilterConfig,
    FilterStats,
)
from repro.db.health import TraceHealth
from repro.db.schema import AccessRow, AllocationRow, HeldLock, LockRow, TxnRow
from repro.kernel.structs import StructRegistry
from repro.tracing.events import (
    AccessEvent,
    AllocEvent,
    Event,
    FreeEvent,
    LockEvent,
)
from repro.tracing.serialize import LoadReport

StackFrames = Tuple[Tuple[str, str, int], ...]

#: Lock classes whose instances are global pseudo-locks.
_PSEUDO_CLASSES = {"rcu", "softirq", "hardirq", "preempt"}


class ImportError_(ValueError):
    """Raised for traces that violate the event protocol."""


class ErrorBudgetExceeded(ImportError_):
    """Raised when the malformed fraction exceeds the configured budget."""


#: Quarantine reasons (event-level defects).
Q_FREE_UNKNOWN = "free_unknown_alloc"
Q_DUPLICATE_ALLOC = "duplicate_alloc"
Q_OVERLAPPING_ALLOC = "overlapping_alloc"
Q_UNMATCHED_RELEASE = REASON_UNMATCHED_RELEASE
Q_UNKNOWN_EVENT = "unknown_event_type"


@dataclass(frozen=True)
class ImportPolicy:
    """How the importer treats protocol violations.

    Attributes:
        lenient: quarantine unresolvable events instead of raising.
        max_malformed_fraction: the per-import error budget — abort
            with :class:`ErrorBudgetExceeded` when (quarantined + parse
            diagnostics) / total exceeds it.  The default tolerates a
            quarter of the trace; ``1.0`` disables the budget.
        min_events_for_budget: don't enforce the budget below this many
            events (tiny samples make fractions meaningless).
        heal_shared_reacquire: extend lost-release healing to shared
            and pseudo locks (RCU read sections, irq-off sections).
            Those can nest legitimately, so a re-acquisition is not
            *proof* of a lost release — but in a damaged trace the
            lost-release explanation dominates, and a stale RCU entry
            pollutes every later lock sequence of its context.  Off in
            strict mode (preserve true nesting), on in lenient mode.
    """

    lenient: bool = False
    max_malformed_fraction: float = 0.25
    min_events_for_budget: int = 64
    heal_shared_reacquire: bool = False


STRICT_POLICY = ImportPolicy(lenient=False)
LENIENT_POLICY = ImportPolicy(lenient=True, heal_shared_reacquire=True)


@dataclass(frozen=True)
class QuarantinedEvent:
    """One event the importer could not resolve, with its reason."""

    event: Event
    reason: str


@dataclass
class _PendingTxn:
    txn_id: int
    ctx_id: int
    start_ts: int
    held: Tuple[HeldLock, ...]
    no_locks: bool
    used: bool = False
    synthetic_close: bool = False


class _LiveIndex:
    """Sorted interval index over live allocations (no overlaps)."""

    def __init__(self) -> None:
        self._starts: List[int] = []
        self._rows: List[AllocationRow] = []

    def insert(self, row: AllocationRow) -> None:
        index = bisect.bisect_left(self._starts, row.address)
        self._starts.insert(index, row.address)
        self._rows.insert(index, row)

    def remove(self, row: AllocationRow) -> None:
        index = bisect.bisect_left(self._starts, row.address)
        if index >= len(self._rows) or self._rows[index] is not row:
            raise ImportError_(f"free of unknown allocation {row.alloc_id}")
        del self._starts[index]
        del self._rows[index]

    def find(self, address: int) -> Optional[AllocationRow]:
        index = bisect.bisect_right(self._starts, address) - 1
        if index < 0:
            return None
        row = self._rows[index]
        if row.address <= address < row.address + row.size:
            return row
        return None

    def overlaps(self, address: int, size: int) -> bool:
        """Would ``[address, address + size)`` overlap a live allocation?"""
        if size <= 0:
            return False
        if self.find(address) is not None:
            return True
        index = bisect.bisect_right(self._starts, address)
        return index < len(self._starts) and self._starts[index] < address + size


@dataclass
class _CtxState:
    #: Currently held locks: (lock_id, mode, acquire_ts).
    held: List[Tuple[int, str, int]] = field(default_factory=list)
    txn: Optional[_PendingTxn] = None
    pseudo_frame: Optional[str] = None  # outermost function of pseudo-txn


class Importer:
    """One-shot importer; use :func:`import_trace` for convenience."""

    def __init__(
        self,
        structs: StructRegistry,
        filters: Optional[FilterConfig] = None,
        policy: Optional[ImportPolicy] = None,
        db: Optional[TraceDatabase] = None,
    ) -> None:
        #: The target database.  Injectable so alternative storage
        #: (e.g. the spooling SQLite store) can receive the same
        #: population/repair calls through the TraceDatabase interface.
        self.db = db if db is not None else TraceDatabase(structs)
        self.filters = filters or FilterConfig()
        self.policy = policy or STRICT_POLICY
        self.stats = FilterStats()
        self.unmatched_releases = 0
        self.quarantine: List[QuarantinedEvent] = []
        self.healed_releases = 0
        self.synthesized_releases = 0
        self.synthetic_txns = 0
        self.synthetic_accesses = 0
        self.fenced_accesses = 0
        self.scrubbed_accesses = 0
        #: Suspect spans: (ctx_id, lock_id, mode, acquire_ts, end_ts)
        #: during which a stale lock polluted the context's held set.
        self._fences: List[Tuple[int, int, str, int, int]] = []
        #: Longest clean hold duration seen per lock instance / class —
        #: the credibility bound for suspect spans.
        self._max_hold: Dict[int, int] = {}
        self._class_max_hold: Dict[str, int] = {}
        self.dangling_stack_refs = 0
        self.total_events = 0
        self._live = _LiveIndex()
        self._ctx: Dict[int, _CtxState] = {}
        self._txn_counter = 0
        self._access_counter = 0
        self._stack_functions: Dict[int, FrozenSet[str]] = {}
        self._stack_table: Sequence[StackFrames] = [()]

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def run(
        self, events: Iterable[Event], stack_table: Sequence[StackFrames]
    ) -> TraceDatabase:
        """Import *events* (any iterable — a list, or a streaming
        binary loader's iterator) over *stack_table*.

        The import is single-pass, so a generator feeding straight from
        a trace file works without materializing the event list.
        """
        self._stack_table = stack_table if len(stack_table) > 0 else [()]
        self.db.set_stack_table(self._stack_table)
        final_ts = 0
        for event in events:
            self.total_events += 1
            final_ts = getattr(event, "ts", final_ts)
            if isinstance(event, AllocEvent):
                self._on_alloc(event)
            elif isinstance(event, FreeEvent):
                self._on_free(event)
            elif isinstance(event, LockEvent):
                self._on_lock(event)
            elif isinstance(event, AccessEvent):
                self._on_access(event)
            else:
                self._reject(event, Q_UNKNOWN_EVENT, f"unknown event {event!r}")
        self._finalize(final_ts)
        self._enforce_budget()
        self.db.health = self.health()
        return self.db

    def _finalize(self, final_ts: int) -> None:
        """Close dangling transactions, synthesizing missing releases."""
        synthetic_ids: List[int] = []
        for ctx_id, state in self._ctx.items():
            if state.held:
                # A release event never arrived for these locks — the
                # trace was truncated or the record dropped.  Synthesize
                # the close so the transaction has an end, but flag it:
                # its held set is a guess, not an observation — and
                # mark the whole span since the stale acquire suspect,
                # because the lost release may sit anywhere inside it.
                self.synthesized_releases += len(state.held)
                for lock_id, mode, acquire_ts in state.held:
                    self._fences.append(
                        (ctx_id, lock_id, mode, acquire_ts, final_ts)
                    )
                if state.txn is not None:
                    state.txn.synthetic_close = True
                state.held.clear()
            txn = state.txn
            self._close_txn(state, final_ts)
            if txn is not None and txn.synthetic_close and txn.used:
                synthetic_ids.append(txn.txn_id)
        self.synthetic_txns = len(synthetic_ids)
        for txn_id in synthetic_ids:
            flagged = self.db.quarantine_txn_accesses(txn_id, REASON_SYNTHETIC_TXN)
            self.synthetic_accesses += flagged
            for _ in range(flagged):
                self.stats.count(REASON_SYNTHETIC_TXN)
        for ctx_id, lock_id, mode, start_ts, end_ts in self._fences:
            cap = self._hold_cap(lock_id)
            if cap is None:
                # Never saw this lock held cleanly: no basis to split
                # the span into a credible and a stale part — fence it
                # entirely.
                flagged = self.db.quarantine_span_accesses(
                    ctx_id, start_ts, end_ts, REASON_STALE_LOCK
                )
                self.fenced_accesses += flagged
                for _ in range(flagged):
                    self.stats.count(REASON_STALE_LOCK)
            else:
                # The lock was credibly held for at most *cap* time
                # units (its longest clean hold anywhere in the trace);
                # beyond that the entry is presumed stale — scrub the
                # lock from the affected lock sequences instead of
                # discarding the accesses.
                self.scrubbed_accesses += self._scrub_stale_lock(
                    ctx_id, lock_id, mode, start_ts + cap, end_ts
                )

    def _hold_cap(self, lock_id: int) -> Optional[int]:
        """Longest clean hold of *lock_id* (instance, then class-wide)."""
        cap = self._max_hold.get(lock_id)
        if cap is not None:
            return cap
        lock = self.db.locks.get(lock_id)
        if lock is None:
            return None
        return self._class_max_hold.get(lock.lock_class)

    def _scrub_stale_lock(
        self, ctx_id: int, lock_id: int, mode: str, cutoff_ts: int, end_ts: int
    ) -> int:
        """Remove a presumed-stale lock from affected lock sequences.

        Accesses *ctx_id* made in ``(cutoff_ts, end_ts]`` were resolved
        while the stale entry still sat in the held set; their recorded
        sequences contain one lock reference too many.  Dropping that
        reference repairs the observation instead of discarding it, so
        low-traffic members keep their support.
        """
        lock = self.db.locks.get(lock_id)
        if lock is None:  # pragma: no cover - defensive
            return 0
        return self.db.scrub_stale_lock(
            ctx_id,
            cutoff_ts,
            end_ts,
            lambda alloc_id: self._ref_for(lock, mode, alloc_id),
        )

    def _enforce_budget(self) -> None:
        if self.total_events < self.policy.min_events_for_budget:
            return
        fraction = len(self.quarantine) / max(self.total_events, 1)
        if fraction > self.policy.max_malformed_fraction:
            raise ErrorBudgetExceeded(
                f"malformed fraction {fraction:.1%} exceeds the "
                f"{self.policy.max_malformed_fraction:.1%} error budget "
                f"({len(self.quarantine)} of {self.total_events} events "
                f"quarantined)"
            )

    def health(self, parse_report: Optional[LoadReport] = None) -> TraceHealth:
        """The damage report of this import (plus the parse stage's)."""
        by_reason: Dict[str, int] = {}
        for entry in self.quarantine:
            by_reason[entry.reason] = by_reason.get(entry.reason, 0) + 1
        return TraceHealth(
            total_events=self.total_events,
            kept_events=self.total_events - len(self.quarantine),
            quarantined=by_reason,
            synthesized_releases=self.synthesized_releases,
            healed_releases=self.healed_releases,
            synthetic_txns=self.synthetic_txns,
            synthetic_accesses=self.synthetic_accesses,
            fenced_accesses=self.fenced_accesses,
            scrubbed_accesses=self.scrubbed_accesses,
            dangling_stack_refs=self.dangling_stack_refs,
            parse_diagnostics=(
                len(parse_report.diagnostics) if parse_report is not None else 0
            ),
            declared_events=(
                parse_report.declared_events if parse_report is not None else None
            ),
            budget=self.policy.max_malformed_fraction,
        )

    # ------------------------------------------------------------------
    # Quarantine machinery
    # ------------------------------------------------------------------

    def _reject(self, event: Event, reason: str, message: str) -> None:
        """Quarantine *event* (lenient) or raise (strict)."""
        if not self.policy.lenient:
            raise ImportError_(message)
        self.quarantine.append(QuarantinedEvent(event, reason))

    # ------------------------------------------------------------------
    # Context / transaction machinery
    # ------------------------------------------------------------------

    def _state(self, ctx_id: int) -> _CtxState:
        state = self._ctx.get(ctx_id)
        if state is None:
            state = _CtxState()
            self._ctx[ctx_id] = state
        return state

    def _close_txn(self, state: _CtxState, end_ts: int) -> None:
        txn = state.txn
        if txn is None:
            return
        if txn.used:
            self.db.add_txn(
                TxnRow(
                    txn_id=txn.txn_id,
                    ctx_id=txn.ctx_id,
                    start_ts=txn.start_ts,
                    end_ts=end_ts,
                    held=txn.held,
                    no_locks=txn.no_locks,
                    synthetic_close=txn.synthetic_close,
                )
            )
        state.txn = None
        state.pseudo_frame = None

    def _open_txn(
        self, state: _CtxState, ctx_id: int, ts: int, no_locks: bool
    ) -> _PendingTxn:
        self._txn_counter += 1
        txn = _PendingTxn(
            txn_id=self._txn_counter,
            ctx_id=ctx_id,
            start_ts=ts,
            held=tuple(HeldLock(lock_id, mode) for lock_id, mode, _ in state.held),
            no_locks=no_locks,
        )
        state.txn = txn
        return txn

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------

    def _on_alloc(self, event: AllocEvent) -> None:
        existing = self.db.allocations.get(event.alloc_id)
        if existing is not None:
            self._reject(
                event,
                Q_DUPLICATE_ALLOC,
                f"duplicate allocation id {event.alloc_id}",
            )
            return
        if self._live.overlaps(event.address, event.size):
            self._reject(
                event,
                Q_OVERLAPPING_ALLOC,
                f"allocation {event.alloc_id} overlaps a live allocation "
                f"at {event.address:#x}",
            )
            return
        row = AllocationRow(
            alloc_id=event.alloc_id,
            address=event.address,
            size=event.size,
            data_type=event.data_type,
            subclass=event.subclass,
            alloc_ts=event.ts,
        )
        self.db.add_allocation(row)
        self._live.insert(row)
        # An allocation is an operation boundary for lock-free runs.
        state = self._state(event.ctx_id)
        if state.txn is not None and state.txn.no_locks:
            self._close_txn(state, event.ts)

    def _on_free(self, event: FreeEvent) -> None:
        row = self.db.allocations.get(event.alloc_id)
        if row is None or row.free_ts is not None:
            self._reject(
                event,
                Q_FREE_UNKNOWN,
                f"free of unknown/dead allocation {event.alloc_id}",
            )
            return
        row.free_ts = event.ts
        self._live.remove(row)
        state = self._state(event.ctx_id)
        if state.txn is not None and state.txn.no_locks:
            self._close_txn(state, event.ts)

    def _on_lock(self, event: LockEvent) -> None:
        state = self._state(event.ctx_id)
        self._ensure_lock_row(event)
        self._close_txn(state, event.ts)
        if event.is_acquire:
            self._heal_lost_release(state, event)
            self._heal_foreign_holders(event)
            state.held.append((event.lock_id, event.mode, event.ts))
        else:
            for index in range(len(state.held) - 1, -1, -1):
                if state.held[index][0] == event.lock_id:
                    self._record_hold(event, event.ts - state.held[index][2])
                    del state.held[index]
                    break
            else:
                # No matching acquisition in this context: either the
                # lock predates tracing or the acquire event was lost.
                # Tolerated in both modes, but counted and quarantined
                # so it is never silently dropped.
                self.unmatched_releases += 1
                self.stats.count(REASON_UNMATCHED_RELEASE)
                self.quarantine.append(
                    QuarantinedEvent(event, Q_UNMATCHED_RELEASE)
                )
        if state.held:
            self._open_txn(state, event.ctx_id, event.ts, no_locks=False)

    def _record_hold(self, event: LockEvent, duration: int) -> None:
        """Track the longest clean hold per lock instance and class."""
        if duration > self._max_hold.get(event.lock_id, -1):
            self._max_hold[event.lock_id] = duration
        if duration > self._class_max_hold.get(event.lock_class, -1):
            self._class_max_hold[event.lock_class] = duration

    def _heal_lost_release(self, state: _CtxState, event: LockEvent) -> None:
        """Fence a lost release when the same lock is re-acquired.

        A context cannot re-acquire a held exclusive lock without
        deadlocking, so an exclusive re-acquisition proves the release
        event was dropped: evict the stale held entry so it stops
        polluting every later lock sequence of this context.  Shared
        and pseudo locks (RCU read sections, irq-off sections) nest
        legitimately, so for them the same eviction is a heuristic and
        only runs under ``policy.heal_shared_reacquire``.
        """
        exclusive = event.mode == "w" and event.lock_class not in _PSEUDO_CLASSES
        if not exclusive and not self.policy.heal_shared_reacquire:
            return
        for index in range(len(state.held) - 1, -1, -1):
            if state.held[index][0] == event.lock_id:
                _, mode, acquire_ts = state.held[index]
                del state.held[index]
                self.healed_releases += 1
                self._fences.append(
                    (event.ctx_id, event.lock_id, mode, acquire_ts, event.ts)
                )
                break

    def _heal_foreign_holders(self, event: LockEvent) -> None:
        """Fence lost releases proven by mutual exclusion.

        When a context acquires an exclusive lock, no *other* context
        can still hold it — any foreign held entry for the same lock
        instance is a stale leftover of a dropped release.  A shared
        acquisition likewise excludes a foreign *exclusive* holder.
        Evicting at the earliest provable point keeps the suspect span
        (and the damage it fences off) as short as possible.
        """
        if event.lock_class in _PSEUDO_CLASSES:
            return
        for ctx_id, state in self._ctx.items():
            if ctx_id == event.ctx_id:
                continue
            for index in range(len(state.held) - 1, -1, -1):
                if state.held[index][0] == event.lock_id and (
                    event.mode == "w" or state.held[index][1] == "w"
                ):
                    _, mode, acquire_ts = state.held[index]
                    del state.held[index]
                    self.healed_releases += 1
                    self._fences.append(
                        (ctx_id, event.lock_id, mode, acquire_ts, event.ts)
                    )
                    break

    def _ensure_lock_row(self, event: LockEvent) -> None:
        if event.lock_id in self.db.locks:
            return
        owner_alloc_id = None
        owner_data_type = None
        owner_member = None
        is_static = event.address is None or event.lock_class in _PSEUDO_CLASSES
        if event.address is not None:
            owner = self._live.find(event.address)
            if owner is not None:
                owner_alloc_id = owner.alloc_id
                owner_data_type = owner.data_type
                member = self._resolve_member(owner, event.address - owner.address)
                owner_member = member.name if member is not None else None
            else:
                is_static = True
        self.db.add_lock(
            LockRow(
                lock_id=event.lock_id,
                lock_class=event.lock_class,
                name=event.lock_name,
                address=event.address,
                is_static=is_static,
                owner_alloc_id=owner_alloc_id,
                owner_data_type=owner_data_type,
                owner_member=owner_member,
            )
        )

    def _resolve_member(self, allocation: AllocationRow, offset: int):
        """Resolve *offset* within *allocation* to a member, or None.

        Corrupt traces produce addresses landing in padding, beyond the
        layout, or in unregistered types; resolution failure falls back
        to the untyped path instead of raising.
        """
        if allocation.data_type not in self.db.structs:
            return None
        try:
            return self.db.structs.get(allocation.data_type).member_at(offset)
        except KeyError:
            return None

    def _on_access(self, event: AccessEvent) -> None:
        state = self._state(event.ctx_id)
        allocation = self._live.find(event.address)

        # Transaction assignment.
        if state.held:
            txn = state.txn
            if txn is None:  # pragma: no cover - defensive
                raise ImportError_("held locks without an open transaction")
        else:
            txn = state.txn
            outer = self._outer_function(event.stack_id)
            if txn is None or state.pseudo_frame != outer:
                self._close_txn(state, event.ts)
                txn = self._open_txn(state, event.ctx_id, event.ts, no_locks=True)
                state.pseudo_frame = outer
        txn.used = True

        self._access_counter += 1
        access_type = "w" if event.is_write else "r"

        member = None
        if allocation is not None:
            member = self._resolve_member(allocation, event.address - allocation.address)
        if allocation is None or member is None:
            row = AccessRow(
                access_id=self._access_counter,
                ts=event.ts,
                ctx_id=event.ctx_id,
                txn_id=txn.txn_id,
                alloc_id=allocation.alloc_id if allocation is not None else -1,
                data_type="<unknown>",
                subclass=None,
                member="<raw>",
                access_type=access_type,
                address=event.address,
                size=event.size,
                stack_id=event.stack_id,
                file=event.file,
                line=event.line,
                lockseq=(),
                filter_reason=REASON_UNTYPED,
            )
            self.stats.count(REASON_UNTYPED)
            self.db.add_access(row)
            return

        lockseq = self._resolve_lockseq(state, allocation)
        reason = self.filters.reason_for(
            allocation.data_type,
            member.name,
            member.kind.value,
            self._functions_of(event.stack_id),
        )
        if reason is not None:
            self.stats.count(reason)
        row = AccessRow(
            access_id=self._access_counter,
            ts=event.ts,
            ctx_id=event.ctx_id,
            txn_id=txn.txn_id,
            alloc_id=allocation.alloc_id,
            data_type=allocation.data_type,
            subclass=allocation.subclass,
            member=member.name,
            access_type=access_type,
            address=event.address,
            size=event.size,
            stack_id=event.stack_id,
            file=event.file,
            line=event.line,
            lockseq=lockseq,
            filter_reason=reason,
        )
        self.db.add_access(row)

    # ------------------------------------------------------------------
    # Lock-reference resolution
    # ------------------------------------------------------------------

    def _resolve_lockseq(
        self, state: _CtxState, accessed: AllocationRow
    ) -> LockSeq:
        refs: List[LockRef] = []
        for lock_id, mode, _ in state.held:
            lock = self.db.locks.get(lock_id)
            if lock is None:  # pragma: no cover - defensive
                continue
            refs.append(self._ref_for(lock, mode, accessed.alloc_id))
        return dedup_refs(refs)

    def _ref_for(self, lock: LockRow, mode: str, accessed_alloc_id: int) -> LockRef:
        """Abstract one held lock relative to the accessed object."""
        if lock.is_static or lock.owner_alloc_id is None:
            return LockRef.global_(lock.name, mode)
        if lock.owner_alloc_id == accessed_alloc_id:
            return LockRef.es(
                lock.owner_member or lock.name, lock.owner_data_type or "?", mode
            )
        return LockRef.eo(
            lock.owner_member or lock.name, lock.owner_data_type or "?", mode
        )

    # ------------------------------------------------------------------
    # Stack helpers
    # ------------------------------------------------------------------

    def _frames_of(self, stack_id: int) -> StackFrames:
        """Bounds-checked stack lookup; corrupt ids resolve to no frames."""
        if 0 <= stack_id < len(self._stack_table):
            return self._stack_table[stack_id]
        self.dangling_stack_refs += 1
        return ()

    def _functions_of(self, stack_id: int) -> FrozenSet[str]:
        cached = self._stack_functions.get(stack_id)
        if cached is None:
            frames = self._frames_of(stack_id)
            cached = frozenset(fn for fn, _, _ in frames)
            self._stack_functions[stack_id] = cached
        return cached

    def _outer_function(self, stack_id: int) -> Optional[str]:
        frames = self._frames_of(stack_id)
        return frames[0][0] if frames else None


def import_trace(
    events: Iterable[Event],
    stack_table: Sequence[StackFrames],
    structs: StructRegistry,
    filters: Optional[FilterConfig] = None,
    policy: Optional[ImportPolicy] = None,
) -> TraceDatabase:
    """Import an event trace into a fresh :class:`TraceDatabase`.

    *events* may be any single-pass iterable — in particular the lazy
    iterator of :func:`repro.tracing.serialize.open_binary_stream`, so
    a trace file streams into the database without an intermediate
    event list.
    """
    importer = Importer(structs, filters, policy)
    return importer.run(events, stack_table)


def import_tracer(
    tracer,
    structs: StructRegistry,
    filters: Optional[FilterConfig] = None,
    policy: Optional[ImportPolicy] = None,
) -> TraceDatabase:
    """Import straight from a live :class:`~repro.tracing.tracer.Tracer`."""
    stack_table = [tracer.stack(i) for i in range(tracer.stack_count)]
    return import_trace(tracer.events, stack_table, structs, filters, policy)
