"""SQLite backend: the Fig. 6 schema as real SQL tables.

The paper loads its trace into MariaDB and implements the
rule-violation finder "as a parametrizable SQL statement" (Sec. 6).
This module provides the equivalent: export a
:class:`~repro.db.database.TraceDatabase` into an SQLite database with
the Fig. 6 relations, plus the violation query itself.

Schema (one table per Fig. 6 relation):

======================  ==================================================
``data_types``          observed struct names
``type_layout``         member name/offset/size/kind per data type
``allocations``         id, address, size, type, subclass, lifetime
``locks``               id, class, name, address, static flag, owner
``txns``                id, context, start/end timestamps, no-locks flag
``txn_locks``           held locks per txn in acquisition order (+mode)
``accesses``            member-resolved accesses (txn, alloc, member, ...)
``access_locks``        the abstract lock-reference sequence per access
``stack_traces``        interned stacks, one row per frame
``subclasses``          distinct (data_type, subclass) pairs
======================  ==================================================
"""

from __future__ import annotations

import sqlite3
from typing import Iterable, List, Optional, Tuple

from repro.db.database import TraceDatabase


def _s64(value):
    """Kernel addresses exceed SQLite's signed 64-bit INTEGER range;
    store them as their two's-complement signed value (None passes
    through)."""
    if value is None:
        return None
    return value - (1 << 64) if value >= (1 << 63) else value

_SCHEMA = """
CREATE TABLE data_types (
    name TEXT PRIMARY KEY,
    size INTEGER NOT NULL
);
CREATE TABLE type_layout (
    data_type TEXT NOT NULL,
    member TEXT NOT NULL,
    offset INTEGER NOT NULL,
    size INTEGER NOT NULL,
    kind TEXT NOT NULL,
    PRIMARY KEY (data_type, member)
);
CREATE TABLE allocations (
    alloc_id INTEGER PRIMARY KEY,
    address INTEGER NOT NULL,
    size INTEGER NOT NULL,
    data_type TEXT NOT NULL,
    subclass TEXT,
    alloc_ts INTEGER NOT NULL,
    free_ts INTEGER
);
CREATE TABLE locks (
    lock_id INTEGER PRIMARY KEY,
    lock_class TEXT NOT NULL,
    name TEXT NOT NULL,
    address INTEGER,
    is_static INTEGER NOT NULL,
    owner_alloc_id INTEGER,
    owner_data_type TEXT,
    owner_member TEXT
);
CREATE TABLE txns (
    txn_id INTEGER PRIMARY KEY,
    ctx_id INTEGER NOT NULL,
    start_ts INTEGER NOT NULL,
    end_ts INTEGER NOT NULL,
    no_locks INTEGER NOT NULL
);
CREATE TABLE txn_locks (
    txn_id INTEGER NOT NULL,
    position INTEGER NOT NULL,
    lock_id INTEGER NOT NULL,
    mode TEXT NOT NULL,
    PRIMARY KEY (txn_id, position)
);
CREATE TABLE accesses (
    access_id INTEGER PRIMARY KEY,
    ts INTEGER NOT NULL,
    ctx_id INTEGER NOT NULL,
    txn_id INTEGER,
    alloc_id INTEGER NOT NULL,
    data_type TEXT NOT NULL,
    subclass TEXT,
    member TEXT NOT NULL,
    access_type TEXT NOT NULL,
    address INTEGER NOT NULL,
    size INTEGER NOT NULL,
    stack_id INTEGER NOT NULL,
    file TEXT NOT NULL,
    line INTEGER NOT NULL,
    filter_reason TEXT
);
CREATE TABLE access_locks (
    access_id INTEGER NOT NULL,
    position INTEGER NOT NULL,
    scope TEXT NOT NULL,
    name TEXT NOT NULL,
    owner_type TEXT,
    mode TEXT NOT NULL,
    PRIMARY KEY (access_id, position)
);
CREATE TABLE stack_traces (
    stack_id INTEGER NOT NULL,
    depth INTEGER NOT NULL,
    function TEXT NOT NULL,
    file TEXT NOT NULL,
    line INTEGER NOT NULL,
    PRIMARY KEY (stack_id, depth)
);
CREATE TABLE subclasses (
    data_type TEXT NOT NULL,
    subclass TEXT NOT NULL,
    PRIMARY KEY (data_type, subclass)
);
CREATE INDEX idx_accesses_member ON accesses (data_type, member, access_type);
CREATE INDEX idx_accesses_txn ON accesses (txn_id);
CREATE INDEX idx_access_locks ON access_locks (access_id);
"""


def export_sqlite(
    db: TraceDatabase, path: str = ":memory:"
) -> sqlite3.Connection:
    """Export *db* into an SQLite database; returns the connection."""
    connection = sqlite3.connect(path)
    connection.executescript(_SCHEMA)

    for struct in db.structs.all():
        connection.execute(
            "INSERT INTO data_types VALUES (?, ?)", (struct.name, struct.size)
        )
        connection.executemany(
            "INSERT INTO type_layout VALUES (?, ?, ?, ?, ?)",
            [
                (struct.name, m.name, m.offset, m.size, m.kind.value)
                for m in struct.flat_members
            ],
        )

    connection.executemany(
        "INSERT INTO allocations VALUES (?, ?, ?, ?, ?, ?, ?)",
        [
            (a.alloc_id, _s64(a.address), a.size, a.data_type, a.subclass,
             a.alloc_ts, a.free_ts)
            for a in db.allocations.values()
        ],
    )
    connection.executemany(
        "INSERT INTO locks VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
        [
            (l.lock_id, l.lock_class, l.name, _s64(l.address), int(l.is_static),
             l.owner_alloc_id, l.owner_data_type, l.owner_member)
            for l in db.locks.values()
        ],
    )
    connection.executemany(
        "INSERT INTO txns VALUES (?, ?, ?, ?, ?)",
        [
            (t.txn_id, t.ctx_id, t.start_ts, t.end_ts, int(t.no_locks))
            for t in db.txns.values()
        ],
    )
    txn_locks = []
    for txn in db.txns.values():
        for position, held in enumerate(txn.held):
            txn_locks.append((txn.txn_id, position, held.lock_id, held.mode))
    connection.executemany("INSERT INTO txn_locks VALUES (?, ?, ?, ?)", txn_locks)

    connection.executemany(
        "INSERT INTO accesses VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
        [
            (a.access_id, a.ts, a.ctx_id, a.txn_id, a.alloc_id, a.data_type,
             a.subclass, a.member, a.access_type, _s64(a.address), a.size,
             a.stack_id, a.file, a.line, a.filter_reason)
            for a in db.accesses
        ],
    )
    access_locks = []
    for access in db.accesses:
        for position, ref in enumerate(access.lockseq):
            access_locks.append(
                (access.access_id, position, ref.scope.value, ref.name,
                 ref.owner_type, ref.mode)
            )
    connection.executemany(
        "INSERT INTO access_locks VALUES (?, ?, ?, ?, ?, ?)", access_locks
    )

    stack_rows = []
    for stack_id, frames in enumerate(db.stack_table):
        for depth, (function, file, line) in enumerate(frames):
            stack_rows.append((stack_id, depth, function, file, line))
    connection.executemany(
        "INSERT INTO stack_traces VALUES (?, ?, ?, ?, ?)", stack_rows
    )

    subclasses = sorted(
        {
            (a.data_type, a.subclass)
            for a in db.allocations.values()
            if a.subclass
        }
    )
    connection.executemany("INSERT INTO subclasses VALUES (?, ?)", subclasses)
    connection.commit()
    return connection


#: The parametrizable rule-violation SQL (Sec. 6): find kept accesses to
#: (data_type, member, access_type) whose lock sequence does not contain
#: a given lock reference.  Order checking for multi-lock rules is done
#: by composing this per lock and comparing positions in Python — the
#: paper's post-processing script does the same address translation and
#: refinement step after the SQL pass.
VIOLATION_QUERY = """
SELECT a.access_id, a.subclass, a.file, a.line, a.stack_id
FROM accesses a
WHERE a.data_type = :data_type
  AND a.member = :member
  AND a.access_type = :access_type
  AND a.filter_reason IS NULL
  AND NOT EXISTS (
      SELECT 1 FROM access_locks al
      WHERE al.access_id = a.access_id
        AND al.scope = :scope
        AND al.name = :name
        AND (al.owner_type = :owner_type
             OR (:owner_type IS NULL AND al.owner_type IS NULL))
        AND (al.mode = :mode OR (al.mode = 'w' AND :mode = 'r'))
  )
"""


def find_violations_sql(
    connection: sqlite3.Connection,
    data_type: str,
    member: str,
    access_type: str,
    rule_refs: Iterable,
) -> List[Tuple[int, Optional[str], str, int, int]]:
    """Run the violation query for every lock of a rule; union of hits.

    *rule_refs* are :class:`~repro.core.lockrefs.LockRef` objects; an
    access violates if any required lock is missing (the order check is
    refined by the Python-side finder, as in the paper).
    """
    hits = {}
    for ref in rule_refs:
        cursor = connection.execute(
            VIOLATION_QUERY,
            {
                "data_type": data_type,
                "member": member,
                "access_type": access_type,
                "scope": ref.scope.value,
                "name": ref.name,
                "owner_type": ref.owner_type,
                "mode": ref.mode,
            },
        )
        for row in cursor.fetchall():
            hits[row[0]] = row
    return [hits[key] for key in sorted(hits)]


def table_counts(connection: sqlite3.Connection) -> dict:
    """Row counts per table (sanity/report helper)."""
    tables = (
        "data_types", "type_layout", "allocations", "locks", "txns",
        "txn_locks", "accesses", "access_locks", "stack_traces", "subclasses",
    )
    counts = {}
    for table in tables:
        (count,) = connection.execute(f"SELECT COUNT(*) FROM {table}").fetchone()
        counts[table] = count
    return counts
