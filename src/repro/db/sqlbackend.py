"""SQLite backend: the Fig. 6 schema as real SQL tables.

The paper loads its trace into MariaDB and implements the
rule-violation finder "as a parametrizable SQL statement" (Sec. 6).
This module provides the equivalent schema and queries:

* :func:`export_sqlite` — export an in-memory
  :class:`~repro.db.database.TraceDatabase` into the schema (the
  original side path, now crash-safe: bulk-load PRAGMAs, tmp+rename
  publish, indexes created after the inserts),
* the shared DDL (:data:`TABLES_SQL` / :data:`INDEXES_SQL`) and the
  small-table writers also used by :mod:`repro.db.sqlstore`, which
  *builds* the same schema straight from an event stream without ever
  materializing the database in RAM,
* :data:`VIOLATION_QUERY` — the parametrizable rule-violation SQL.

Schema (one table per Fig. 6 relation):

======================  ==================================================
``data_types``          observed struct names
``type_layout``         member name/offset/size/kind per data type
``allocations``         id, address, size, type, subclass, lifetime
``locks``               id, class, name, address, static flag, owner
``txns``                id, insertion seq, context, timestamps, flags
``txn_locks``           held locks per txn in acquisition order (+mode)
``accesses``            member-resolved accesses (txn, alloc, member, ...)
``lockseqs``            distinct abstract lock sequences (interned)
``lockseq_refs``        one row per lock reference of each sequence
``access_locks``        VIEW: the per-access lock-reference expansion
``stack_traces``        interned stacks, one row per frame
``subclasses``          distinct (data_type, subclass) pairs
``meta``                completeness flag, row counts, health report
======================  ==================================================

Lock sequences are *interned*: each distinct abstract sequence is one
``lockseqs`` row (canonical text via :meth:`LockRef.format`, exactly
invertible by :meth:`LockRef.parse`) and every access stores only its
``lockseq_id``.  ``access_locks`` — the relation the violation query
joins against — is a view over that dimension, so retroactive lockseq
repairs (stale-lock scrubbing) are single-column updates and the
on-disk size stays near-linear in distinct sequences, not references.

The ``meta`` table carries a ``complete`` flag plus per-table row
counts written only after every insert and index landed.  A crash
mid-export can therefore never produce a database that *opens*
successfully but silently misses rows: the loader
(:func:`repro.db.sqlstore.open_store`) refuses anything whose counts
disagree.
"""

from __future__ import annotations

import os
import sqlite3
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.lockrefs import LockRef, LockSeq
from repro.db.database import TraceDatabase

#: Bumped whenever the DDL changes shape; stored in ``meta``.
SCHEMA_VERSION = "2"

#: Separator between formatted refs in a canonical lockseq text.  A
#: control character that cannot occur in lock/struct identifiers, so
#: the join is unambiguous.
_SEQ_SEPARATOR = "\x1f"


def _s64(value):
    """Kernel addresses exceed SQLite's signed 64-bit INTEGER range;
    store them as their two's-complement signed value (None passes
    through)."""
    if value is None:
        return None
    return value - (1 << 64) if value >= (1 << 63) else value


def _u64(value):
    """Inverse of :func:`_s64`: recover the unsigned kernel address
    from its stored two's-complement value (None passes through).

    Every read path must go through this — a raw read hands back
    negative "addresses" for anything at or above 2^63.
    """
    if value is None:
        return None
    return value + (1 << 64) if value < 0 else value


def format_lockseq(lockseq: LockSeq) -> str:
    """Canonical text of an abstract lock sequence (order-preserving)."""
    return _SEQ_SEPARATOR.join(ref.format() for ref in lockseq)


def parse_lockseq(text: str) -> LockSeq:
    """Exact inverse of :func:`format_lockseq`."""
    if not text:
        return ()
    return tuple(LockRef.parse(part) for part in text.split(_SEQ_SEPARATOR))


TABLES_SQL = """
CREATE TABLE data_types (
    name TEXT PRIMARY KEY,
    size INTEGER NOT NULL
);
CREATE TABLE type_layout (
    data_type TEXT NOT NULL,
    member TEXT NOT NULL,
    offset INTEGER NOT NULL,
    size INTEGER NOT NULL,
    kind TEXT NOT NULL,
    PRIMARY KEY (data_type, member)
);
CREATE TABLE allocations (
    alloc_id INTEGER PRIMARY KEY,
    address INTEGER NOT NULL,
    size INTEGER NOT NULL,
    data_type TEXT NOT NULL,
    subclass TEXT,
    alloc_ts INTEGER NOT NULL,
    free_ts INTEGER
);
CREATE TABLE locks (
    lock_id INTEGER PRIMARY KEY,
    lock_class TEXT NOT NULL,
    name TEXT NOT NULL,
    address INTEGER,
    is_static INTEGER NOT NULL,
    owner_alloc_id INTEGER,
    owner_data_type TEXT,
    owner_member TEXT
);
CREATE TABLE txns (
    txn_id INTEGER PRIMARY KEY,
    seq INTEGER NOT NULL,
    ctx_id INTEGER NOT NULL,
    start_ts INTEGER NOT NULL,
    end_ts INTEGER NOT NULL,
    no_locks INTEGER NOT NULL,
    synthetic_close INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE txn_locks (
    txn_id INTEGER NOT NULL,
    position INTEGER NOT NULL,
    lock_id INTEGER NOT NULL,
    mode TEXT NOT NULL,
    PRIMARY KEY (txn_id, position)
);
CREATE TABLE accesses (
    access_id INTEGER PRIMARY KEY,
    ts INTEGER NOT NULL,
    ctx_id INTEGER NOT NULL,
    txn_id INTEGER,
    alloc_id INTEGER NOT NULL,
    data_type TEXT NOT NULL,
    subclass TEXT,
    member TEXT NOT NULL,
    access_type TEXT NOT NULL,
    address INTEGER NOT NULL,
    size INTEGER NOT NULL,
    stack_id INTEGER NOT NULL,
    file TEXT NOT NULL,
    line INTEGER NOT NULL,
    lockseq_id INTEGER NOT NULL,
    filter_reason TEXT
);
CREATE TABLE lockseqs (
    lockseq_id INTEGER PRIMARY KEY,
    lockseq TEXT NOT NULL UNIQUE
);
CREATE TABLE lockseq_refs (
    lockseq_id INTEGER NOT NULL,
    position INTEGER NOT NULL,
    scope TEXT NOT NULL,
    name TEXT NOT NULL,
    owner_type TEXT,
    mode TEXT NOT NULL,
    PRIMARY KEY (lockseq_id, position)
);
CREATE VIEW access_locks AS
    SELECT a.access_id AS access_id, r.position AS position,
           r.scope AS scope, r.name AS name,
           r.owner_type AS owner_type, r.mode AS mode
    FROM accesses a
    JOIN lockseq_refs r ON r.lockseq_id = a.lockseq_id;
CREATE TABLE stack_traces (
    stack_id INTEGER NOT NULL,
    depth INTEGER NOT NULL,
    function TEXT NOT NULL,
    file TEXT NOT NULL,
    line INTEGER NOT NULL,
    PRIMARY KEY (stack_id, depth)
);
CREATE TABLE subclasses (
    data_type TEXT NOT NULL,
    subclass TEXT NOT NULL,
    PRIMARY KEY (data_type, subclass)
);
CREATE TABLE meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""

#: Created *after* the bulk inserts: index maintenance during the load
#: would roughly double the write volume for nothing.
INDEXES_SQL = """
CREATE INDEX idx_accesses_member ON accesses (data_type, member, access_type);
CREATE INDEX idx_accesses_txn ON accesses (txn_id);
CREATE INDEX idx_accesses_fold
    ON accesses (txn_id, alloc_id, member, access_id);
"""

#: Kept for backwards compatibility with the original export signature.
_SCHEMA = TABLES_SQL + INDEXES_SQL


def apply_bulk_pragmas(connection: sqlite3.Connection) -> None:
    """Tune *connection* for a one-shot bulk load.

    Rollback journal and fsyncs are disabled: crash-safety comes from
    the tmp+rename publish protocol (a killed writer leaves only a
    ``*.tmp`` orphan), not from SQLite's own durability machinery, so
    paying for a journal here would buy nothing.
    """
    connection.execute("PRAGMA journal_mode=OFF")
    connection.execute("PRAGMA synchronous=OFF")
    connection.execute("PRAGMA temp_store=MEMORY")
    connection.execute("PRAGMA cache_size=-16384")


def write_meta(connection: sqlite3.Connection, values: Dict[str, str]) -> None:
    connection.executemany(
        "INSERT OR REPLACE INTO meta VALUES (?, ?)",
        [(key, str(value)) for key, value in values.items()],
    )


def completion_meta(connection: sqlite3.Connection) -> Dict[str, str]:
    """The completeness stamp: row counts the loader re-verifies."""
    values = {"schema_version": SCHEMA_VERSION, "complete": "1"}
    for table in ("accesses", "txns", "allocations", "locks"):
        (count,) = connection.execute(
            f"SELECT COUNT(*) FROM {table}"
        ).fetchone()
        values[f"rows_{table}"] = str(count)
    return values


# ----------------------------------------------------------------------
# Shared table writers (export path and the sqlstore build path)
# ----------------------------------------------------------------------

def write_struct_tables(connection: sqlite3.Connection, structs) -> None:
    for struct in structs.all():
        connection.execute(
            "INSERT INTO data_types VALUES (?, ?)", (struct.name, struct.size)
        )
        connection.executemany(
            "INSERT INTO type_layout VALUES (?, ?, ?, ?, ?)",
            [
                (struct.name, m.name, m.offset, m.size, m.kind.value)
                for m in struct.flat_members
            ],
        )


def write_allocation_rows(connection: sqlite3.Connection, allocations) -> None:
    connection.executemany(
        "INSERT INTO allocations VALUES (?, ?, ?, ?, ?, ?, ?)",
        [
            (a.alloc_id, _s64(a.address), a.size, a.data_type, a.subclass,
             a.alloc_ts, a.free_ts)
            for a in allocations
        ],
    )
    subclasses = sorted(
        {(a.data_type, a.subclass) for a in allocations if a.subclass}
    )
    connection.executemany("INSERT INTO subclasses VALUES (?, ?)", subclasses)


def write_lock_rows(connection: sqlite3.Connection, locks) -> None:
    connection.executemany(
        "INSERT INTO locks VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
        [
            (l.lock_id, l.lock_class, l.name, _s64(l.address),
             int(l.is_static), l.owner_alloc_id, l.owner_data_type,
             l.owner_member)
            for l in locks
        ],
    )


def write_txn_rows(connection: sqlite3.Connection, txns) -> None:
    """*txns* in database insertion order — recorded in ``seq`` so a
    reload can restore the exact iteration order (``txn_id`` alone
    cannot: transactions are inserted at *close* time)."""
    rows = []
    held_rows = []
    for seq, txn in enumerate(txns):
        rows.append(
            (txn.txn_id, seq, txn.ctx_id, txn.start_ts, txn.end_ts,
             int(txn.no_locks), int(txn.synthetic_close))
        )
        for position, held in enumerate(txn.held):
            held_rows.append((txn.txn_id, position, held.lock_id, held.mode))
    connection.executemany(
        "INSERT INTO txns VALUES (?, ?, ?, ?, ?, ?, ?)", rows
    )
    connection.executemany(
        "INSERT INTO txn_locks VALUES (?, ?, ?, ?)", held_rows
    )


def write_stack_rows(
    connection: sqlite3.Connection, stack_table: Sequence
) -> None:
    rows = []
    for stack_id, frames in enumerate(stack_table):
        for depth, (function, file, line) in enumerate(frames):
            rows.append((stack_id, depth, function, file, line))
    connection.executemany(
        "INSERT INTO stack_traces VALUES (?, ?, ?, ?, ?)", rows
    )
    write_meta(connection, {"stack_count": str(len(stack_table))})


def write_lockseq_rows(
    connection: sqlite3.Connection, sequences: Iterable[Tuple[int, LockSeq]]
) -> None:
    """Write the interned sequence dimension: one ``lockseqs`` row per
    distinct sequence plus its ``lockseq_refs`` expansion."""
    seq_rows = []
    ref_rows = []
    for seq_id, lockseq in sequences:
        seq_rows.append((seq_id, format_lockseq(lockseq)))
        for position, ref in enumerate(lockseq):
            ref_rows.append(
                (seq_id, position, ref.scope.value, ref.name,
                 ref.owner_type, ref.mode)
            )
    connection.executemany("INSERT INTO lockseqs VALUES (?, ?)", seq_rows)
    connection.executemany(
        "INSERT INTO lockseq_refs VALUES (?, ?, ?, ?, ?, ?)", ref_rows
    )


def _publish(connection: sqlite3.Connection, tmp: str, path: str) -> None:
    """Close *connection*'s tmp file and atomically rename it into place."""
    connection.commit()
    connection.close()
    try:
        fd = os.open(tmp, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
    except OSError:
        pass  # durability is best-effort; atomicity comes from the rename
    os.replace(tmp, path)


def export_sqlite(
    db: TraceDatabase, path: str = ":memory:"
) -> sqlite3.Connection:
    """Export *db* into an SQLite database; returns the connection.

    File exports are **atomic**: the database is built at a ``*.tmp``
    sibling and renamed over *path* only once it is complete (tables,
    indexes, the ``meta`` completeness stamp).  A crash mid-export
    leaves the previous file — or nothing — under the final name,
    never a half-written database that opens "successfully".
    """
    in_memory = path == ":memory:"
    tmp = path if in_memory else f"{path}.{os.getpid()}.export.tmp"
    connection = sqlite3.connect(tmp)
    try:
        apply_bulk_pragmas(connection)
        connection.executescript(TABLES_SQL)

        write_struct_tables(connection, db.structs)
        write_allocation_rows(connection, db.allocations.values())
        write_lock_rows(connection, db.locks.values())
        write_txn_rows(connection, db.txns.values())
        write_stack_rows(connection, db.stack_table)

        seq_ids: Dict[LockSeq, int] = {}
        access_rows = []
        for a in db.accesses:
            seq_id = seq_ids.get(a.lockseq)
            if seq_id is None:
                seq_id = len(seq_ids)
                seq_ids[a.lockseq] = seq_id
            access_rows.append(
                (a.access_id, a.ts, a.ctx_id, a.txn_id, a.alloc_id,
                 a.data_type, a.subclass, a.member, a.access_type,
                 _s64(a.address), a.size, a.stack_id, a.file, a.line,
                 seq_id, a.filter_reason)
            )
        connection.executemany(
            "INSERT INTO accesses VALUES "
            "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            access_rows,
        )
        write_lockseq_rows(
            connection, ((sid, seq) for seq, sid in seq_ids.items())
        )

        connection.executescript(INDEXES_SQL)
        write_meta(connection, completion_meta(connection))
        if in_memory:
            connection.commit()
            return connection
        _publish(connection, tmp, path)
        # Reopen under the final name; same file, post-rename.
        return sqlite3.connect(path)
    except BaseException:
        try:
            connection.close()
        except sqlite3.Error:
            pass
        if not in_memory:
            try:
                os.unlink(tmp)
            except OSError:
                pass
        raise


#: The parametrizable rule-violation SQL (Sec. 6): find kept accesses to
#: (data_type, member, access_type) whose lock sequence does not contain
#: a given lock reference.  Order checking for multi-lock rules is done
#: by composing this per lock and comparing positions in Python — the
#: paper's post-processing script does the same address translation and
#: refinement step after the SQL pass.
VIOLATION_QUERY = """
SELECT a.access_id, a.subclass, a.file, a.line, a.stack_id
FROM accesses a
WHERE a.data_type = :data_type
  AND a.member = :member
  AND a.access_type = :access_type
  AND a.filter_reason IS NULL
  AND NOT EXISTS (
      SELECT 1 FROM access_locks al
      WHERE al.access_id = a.access_id
        AND al.scope = :scope
        AND al.name = :name
        AND (al.owner_type = :owner_type
             OR (:owner_type IS NULL AND al.owner_type IS NULL))
        AND (al.mode = :mode OR (al.mode = 'w' AND :mode = 'r'))
  )
"""


def find_violations_sql(
    connection: sqlite3.Connection,
    data_type: str,
    member: str,
    access_type: str,
    rule_refs: Iterable,
) -> List[Tuple[int, Optional[str], str, int, int]]:
    """Run the violation query for every lock of a rule; union of hits.

    *rule_refs* are :class:`~repro.core.lockrefs.LockRef` objects; an
    access violates if any required lock is missing (the order check is
    refined by the Python-side finder, as in the paper).
    """
    hits = {}
    for ref in rule_refs:
        cursor = connection.execute(
            VIOLATION_QUERY,
            {
                "data_type": data_type,
                "member": member,
                "access_type": access_type,
                "scope": ref.scope.value,
                "name": ref.name,
                "owner_type": ref.owner_type,
                "mode": ref.mode,
            },
        )
        for row in cursor.fetchall():
            hits[row[0]] = row
    return [hits[key] for key in sorted(hits)]


def table_counts(connection: sqlite3.Connection) -> dict:
    """Row counts per table (sanity/report helper)."""
    tables = (
        "data_types", "type_layout", "allocations", "locks", "txns",
        "txn_locks", "accesses", "access_locks", "lockseqs",
        "stack_traces", "subclasses",
    )
    counts = {}
    for table in tables:
        (count,) = connection.execute(f"SELECT COUNT(*) FROM {table}").fetchone()
        counts[table] = count
    return counts
