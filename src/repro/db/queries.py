"""Query layer over the trace database.

The paper's pipeline runs dedicated queries against the database: the
77-minute "query generating the locking-rule derivator input" and the
172-minute "extraction of all counterexamples" (Sec. 7.2).  This module
provides those queries (in-memory, but with the same semantics) plus
smaller inspection helpers used by tools and tests.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Tuple

from repro.core.lockrefs import LockSeq
from repro.core.rules import LockingRule, complies
from repro.db.database import TraceDatabase
from repro.db.schema import AccessRow


def derivator_input(
    db: TraceDatabase,
    split_subclasses: bool = True,
) -> Dict[Tuple[str, str, str], List[Tuple[LockSeq, int]]]:
    """The derivator-input query: per (type_key, member, access_type),
    the distinct held-lock sequences with observation counts.

    This is the raw-access view (no folding): it answers "which lock
    combinations were in force at accesses of this member" and is what
    the paper's 77-minute SQL query produced.  Rule derivation itself
    uses the folded :class:`~repro.core.observations.ObservationTable`.
    """
    out: Dict[Tuple[str, str, str], Counter] = defaultdict(Counter)
    for access in db.kept_accesses():
        type_key = access.type_key if split_subclasses else access.data_type
        out[(type_key, access.member, access.access_type)][access.lockseq] += 1
    return {
        key: sorted(counter.items(), key=lambda item: (-item[1], item[0]))
        for key, counter in out.items()
    }


def counterexamples(
    db: TraceDatabase,
    type_key: str,
    member: str,
    access_type: str,
    rule: LockingRule,
) -> List[AccessRow]:
    """All kept accesses of the target that violate *rule* (the paper's
    counterexample-extraction query)."""
    hits = []
    for access in db.kept_accesses(type_key):
        if access.member != member or access.access_type != access_type:
            continue
        if not complies(access.lockseq, rule):
            hits.append(access)
    return hits


def accesses_for_member(
    db: TraceDatabase, type_key: str, member: str
) -> List[AccessRow]:
    """Every kept access to one member of one type key, in trace order."""
    return [
        access
        for access in db.kept_accesses(type_key)
        if access.member == member
    ]


def txn_lock_histogram(db: TraceDatabase) -> Dict[int, int]:
    """How many transactions held N locks (N=0 are the pseudo-txns)."""
    histogram: Dict[int, int] = defaultdict(int)
    for txn in db.txns.values():
        histogram[len(txn.held)] += 1
    return dict(histogram)


def locks_summary(db: TraceDatabase) -> Dict[str, Dict[str, int]]:
    """Per lock class name: instance count and static/embedded split."""
    summary: Dict[str, Dict[str, int]] = defaultdict(
        lambda: {"instances": 0, "static": 0, "embedded": 0}
    )
    for lock in db.locks.values():
        entry = summary[lock.lock_class]
        entry["instances"] += 1
        if lock.is_static:
            entry["static"] += 1
        else:
            entry["embedded"] += 1
    return dict(summary)


def busiest_members(
    db: TraceDatabase, limit: int = 10
) -> List[Tuple[str, str, int]]:
    """The most-accessed (type_key, member) pairs."""
    counter: Counter = Counter()
    for access in db.kept_accesses():
        counter[(access.type_key, access.member)] += 1
    return [
        (type_key, member, count)
        for (type_key, member), count in counter.most_common(limit)
    ]


def contexts_touching(
    db: TraceDatabase, type_key: str, member: str
) -> Dict[int, int]:
    """Access counts per execution context for one member (who uses it)."""
    counter: Dict[int, int] = defaultdict(int)
    for access in accesses_for_member(db, type_key, member):
        counter[access.ctx_id] += 1
    return dict(counter)
