"""Relational rows of the trace database.

Mirrors the (slightly simplified) schema of Fig. 6: memory *accesses*
go to *allocations*, which are instances of observed *data types* whose
*type layout* maps offsets to members; accesses belong to *txns* that
refer to all held *locks* in locking order; each access carries a
*stack trace* id.  Subclasses are recorded per allocation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.lockrefs import LockSeq


@dataclass
class AllocationRow:
    """One dynamic allocation with its lifetime (Fig. 6)."""
    alloc_id: int
    address: int
    size: int
    data_type: str
    subclass: Optional[str]
    alloc_ts: int
    free_ts: Optional[int] = None

    @property
    def type_key(self) -> str:
        """Analysis key: ``inode:ext4`` for subclassed types."""
        if self.subclass:
            return f"{self.data_type}:{self.subclass}"
        return self.data_type


@dataclass(frozen=True)
class LockRow:
    """One lock instance seen in the trace.

    ``owner_alloc_id`` links embedded locks to their containing
    allocation (Fig. 6: "each lock may be embedded in an allocation");
    it is None for static/global and pseudo locks.
    """

    lock_id: int
    lock_class: str
    name: str
    address: Optional[int]
    is_static: bool
    owner_alloc_id: Optional[int] = None
    owner_data_type: Optional[str] = None
    owner_member: Optional[str] = None


@dataclass(frozen=True)
class HeldLock:
    """A (lock, mode) pair inside a transaction, in acquisition order."""

    lock_id: int
    mode: str  # "r" or "w"


@dataclass(frozen=True)
class TxnRow:
    """A transaction: a maximal access span with a fixed set of held locks.

    ``no_locks`` marks pseudo-transactions grouping lock-free accesses
    (needed so "no lock" hypotheses have a denominator).
    """

    txn_id: int
    ctx_id: int
    start_ts: int
    end_ts: int
    held: Tuple[HeldLock, ...]
    no_locks: bool = False
    #: True when the transaction was closed by a *synthesized* lock
    #: release: its locks were still held when the trace ended (or their
    #: release event went missing), so the held set is a guess.
    synthetic_close: bool = False


@dataclass
class AccessRow:
    """One member-resolved memory access.

    ``lockseq`` is the access's abstract lock-reference sequence —
    resolved against the accessed allocation (ES vs. EO scoping) at
    import time.  ``filter_reason`` is None for accesses that survive
    the Sec. 5.3 filters; filtered accesses stay in the table so filter
    behaviour itself is testable/reportable.
    """

    access_id: int
    ts: int
    ctx_id: int
    txn_id: Optional[int]
    alloc_id: int
    data_type: str
    subclass: Optional[str]
    member: str
    access_type: str  # "r" or "w"
    address: int
    size: int
    stack_id: int
    file: str
    line: int
    lockseq: LockSeq = ()
    filter_reason: Optional[str] = None

    @property
    def type_key(self) -> str:
        if self.subclass:
            return f"{self.data_type}:{self.subclass}"
        return self.data_type

    @property
    def kept(self) -> bool:
        return self.filter_reason is None
