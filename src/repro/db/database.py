"""The in-memory trace database.

Plain lists plus dictionaries-as-indexes; the query layer lives in
:mod:`repro.db.queries`.  The paper used MariaDB for the same job — a
laptop-scale Python run fits comfortably in memory.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.db.schema import AccessRow, AllocationRow, LockRow, TxnRow
from repro.kernel.structs import StructRegistry

StackFrames = Tuple[Tuple[str, str, int], ...]


class TraceDatabase:
    """All relations of one imported trace."""

    def __init__(self, structs: StructRegistry) -> None:
        self.structs = structs
        self.allocations: Dict[int, AllocationRow] = {}
        self.locks: Dict[int, LockRow] = {}
        self.txns: Dict[int, TxnRow] = {}
        self.accesses: List[AccessRow] = []
        self.stack_table: List[StackFrames] = [()]
        #: TraceHealth of the producing import (set by the importer).
        self.health: Optional[Any] = None
        # Indexes
        self._accesses_by_type: Dict[str, List[AccessRow]] = defaultdict(list)
        self._accesses_by_txn: Dict[Optional[int], List[AccessRow]] = defaultdict(list)

    # ------------------------------------------------------------------
    # Population (importer API)
    # ------------------------------------------------------------------

    def add_allocation(self, row: AllocationRow) -> None:
        self.allocations[row.alloc_id] = row

    def add_lock(self, row: LockRow) -> None:
        self.locks[row.lock_id] = row

    def add_txn(self, row: TxnRow) -> None:
        self.txns[row.txn_id] = row

    def add_access(self, row: AccessRow) -> None:
        self.accesses.append(row)
        if row.kept:
            self._accesses_by_type[row.type_key].append(row)
            self._accesses_by_txn[row.txn_id].append(row)

    def set_stack_table(self, table: Sequence[StackFrames]) -> None:
        self.stack_table = list(table)

    def quarantine_txn_accesses(self, txn_id: int, reason: str) -> int:
        """Retroactively filter the kept accesses of one transaction.

        Used for transactions whose held-lock set turned out to be
        untrustworthy (synthetic close): their rows stay in the table
        but stop counting as kept, so rule derivation and race
        detection only see salvaged-clean spans.  Returns how many rows
        were newly filtered.
        """
        flagged = 0
        for row in self._accesses_by_txn.get(txn_id, ()):
            if row.filter_reason is None:
                row.filter_reason = reason
                self._accesses_by_type[row.type_key].remove(row)
                flagged += 1
        if txn_id in self._accesses_by_txn:
            del self._accesses_by_txn[txn_id]
        return flagged

    def quarantine_span_accesses(
        self, ctx_id: int, start_ts: int, end_ts: int, reason: str
    ) -> int:
        """Retroactively filter one context's kept accesses in a span.

        Used when a lock turns out to have been stale for part of the
        trace (its release event was lost): every access the context
        made while the stale entry sat in its held set carries a
        potentially wrong lock sequence.  Returns how many rows were
        newly filtered.
        """
        flagged = 0
        for row in self.accesses:
            if (
                row.filter_reason is None
                and row.ctx_id == ctx_id
                and start_ts <= row.ts <= end_ts
            ):
                row.filter_reason = reason
                self._accesses_by_type[row.type_key].remove(row)
                self._accesses_by_txn[row.txn_id].remove(row)
                flagged += 1
        return flagged

    def scrub_stale_lock(
        self, ctx_id: int, cutoff_ts: int, end_ts: int, ref_for
    ) -> int:
        """Remove a presumed-stale lock from affected lock sequences.

        Accesses *ctx_id* made in ``(cutoff_ts, end_ts]`` were resolved
        while a stale held-set entry was still present; their recorded
        sequences contain one lock reference too many.  *ref_for* maps
        an accessed ``alloc_id`` to the :class:`LockRef` to remove —
        the reference depends on the accessed object (embedded-same vs
        embedded-other scoping), so it must be recomputed per row.
        Returns how many rows were repaired.
        """
        scrubbed = 0
        for row in self.accesses:
            if (
                row.ctx_id != ctx_id
                or not cutoff_ts < row.ts <= end_ts
                or row.filter_reason is not None
                or not row.lockseq
            ):
                continue
            ref = ref_for(row.alloc_id)
            seq = list(row.lockseq)
            try:
                seq.remove(ref)
            except ValueError:
                continue
            row.lockseq = tuple(seq)
            scrubbed += 1
        return scrubbed

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def stack(self, stack_id: int) -> StackFrames:
        return self.stack_table[stack_id]

    def kept_accesses(self, type_key: Optional[str] = None) -> List[AccessRow]:
        """Accesses surviving the filters, optionally for one type key."""
        if type_key is None:
            return [a for a in self.accesses if a.kept]
        return list(self._accesses_by_type.get(type_key, ()))

    def accesses_in_txn(self, txn_id: Optional[int]) -> List[AccessRow]:
        return list(self._accesses_by_txn.get(txn_id, ()))

    def type_keys(self) -> List[str]:
        """All type keys with at least one kept access."""
        return sorted(self._accesses_by_type)

    def filtered_counts(self) -> Dict[str, int]:
        """How many accesses each filter reason removed."""
        counts: Dict[str, int] = defaultdict(int)
        for access in self.accesses:
            if access.filter_reason is not None:
                counts[access.filter_reason] += 1
        return dict(counts)

    # ------------------------------------------------------------------
    # Statistics (the Sec. 7.2 numbers)
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        static_locks = sum(1 for l in self.locks.values() if l.is_static)
        return {
            "allocations": len(self.allocations),
            "frees": sum(1 for a in self.allocations.values() if a.free_ts is not None),
            "locks": len(self.locks),
            "static_locks": static_locks,
            "embedded_locks": len(self.locks) - static_locks,
            "txns": len(self.txns),
            "accesses": len(self.accesses),
            "kept_accesses": sum(1 for a in self.accesses if a.kept),
            "stacks": len(self.stack_table),
        }
