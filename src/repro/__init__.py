"""LockDoc reproduction: trace-based analysis of locking rules.

Reproduces "LockDoc: Trace-Based Analysis of Locking in the Linux
Kernel" (EuroSys 2019) as a pure-Python system:

* :mod:`repro.kernel`      — the simulated, instrumented kernel
* :mod:`repro.tracing`     — the monitoring/tracing phase (phase 1)
* :mod:`repro.db`          — trace post-processing and storage
* :mod:`repro.core`        — rule derivation + analysis tools (phases 2/3)
* :mod:`repro.workloads`   — the benchmark mix
* :mod:`repro.doc`         — documented-rule corpus and comment parser
* :mod:`repro.kernelsrc`   — synthetic source corpus (Fig. 1)
* :mod:`repro.experiments` — one module per paper table/figure

Quickstart::

    from repro.experiments.common import get_pipeline

    pipeline = get_pipeline(seed=0, scale=5.0)
    rules = pipeline.derive()
    print(rules.get("inode:ext4", "i_state", "w").winner.format())
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
