"""Content-addressed on-disk trace cache.

Re-running a workload the pipeline has already traced is pure waste:
the simulation is deterministic, so ``(workload, seed, scale)`` plus
the source revision of everything that influences the event stream
fully determines the trace.  This module persists traces (and the
expensive artifacts derived from them) under a cache directory keyed
by exactly that tuple:

* **trace tier** — the binary trace (``<key>.trace.bin``) plus a JSON
  sidecar with human-readable metadata.  The key digests the workload
  name, seed, scale, the trace-format version
  (:data:`repro.tracing.serialize.FORMAT_VERSION`) and the **kernel
  revision** — a content hash over every source file that can change
  the emitted event stream (``repro.kernel``, ``repro.tracing``,
  ``repro.workloads``, ``repro.fuzz``).  Touch any of those and every
  cached trace silently misses.
* **artifact tier** — pickled post-processing results (the imported
  :class:`TraceDatabase`, observation tables, derivation results)
  under ``<key>.<analysis-rev>.<name>.pkl``, where the analysis
  revision additionally hashes ``repro.db`` and ``repro.core``.
  Artifacts load independently, so a consumer that needs only the
  split observation table never pays for the (much larger) database
  pickle.

The cache is **best-effort**: a missing directory, a corrupt entry or
an unpicklable artifact degrades to recomputation, never to an error.
Writes are atomic (temp file + rename), so concurrent runs at worst
duplicate work.

The cache directory defaults to ``~/.cache/lockdoc-repro`` (honouring
``XDG_CACHE_HOME``) and is overridden by ``LOCKDOC_CACHE_DIR``; the
test suites point it at a session-private temp directory.  The CLI
exposes ``--no-cache`` (per invocation) and ``lockdoc cache
ls / clear / path`` for management.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import repro.kernel  # noqa: F401  (must initialize before repro.tracing)
from repro.atomicio import atomic_write_bytes
from repro.tracing.serialize import (
    FORMAT_VERSION,
    dumps_events_binary,
    load_binary,
    open_binary_stream,
    stacks_of,
)
from repro.tracing.tracer import TraceStats

_ENV_DIR = "LOCKDOC_CACHE_DIR"

#: Workloads eligible for disk caching: their factories are pure
#: functions of ``(seed, scale)`` and the hashed source revision.
#: ``fuzz:*`` corpora are excluded — their content lives outside the
#: source tree, so the key could not see it change.
_CACHEABLE = frozenset(
    {"mix", "racer", "racer-safe", "netbench", "sockstress", "netmix"}
)

#: Packages whose sources determine the emitted event stream.
_TRACE_PACKAGES = ("kernel", "tracing", "workloads", "fuzz")

#: Additional packages that determine imported/derived artifacts.
_ANALYSIS_PACKAGES = _TRACE_PACKAGES + ("db", "core")

_enabled = True

_revision_memo: Dict[Tuple[str, ...], str] = {}


def set_enabled(on: bool) -> None:
    """Globally enable/disable the disk cache (CLI ``--no-cache``)."""
    global _enabled
    _enabled = bool(on)


def is_enabled() -> bool:
    return _enabled


def cache_dir() -> Path:
    """The cache directory (not necessarily existing yet)."""
    override = os.environ.get(_ENV_DIR)
    if override:
        return Path(override).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "lockdoc-repro"


# ----------------------------------------------------------------------
# Revision hashing and keys
# ----------------------------------------------------------------------

def _revision(packages: Tuple[str, ...]) -> str:
    """Content hash over the named ``repro`` subpackages (memoized)."""
    memoized = _revision_memo.get(packages)
    if memoized is not None:
        return memoized
    root = Path(__file__).resolve().parent
    digest = hashlib.sha256()
    for package in packages:
        for path in sorted((root / package).rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
    revision = digest.hexdigest()[:16]
    _revision_memo[packages] = revision
    return revision


def kernel_revision() -> str:
    """Hash of every source that can change an emitted trace."""
    return _revision(_TRACE_PACKAGES)


def analysis_revision() -> str:
    """Hash of trace *and* import/derivation sources (artifact tier)."""
    return _revision(_ANALYSIS_PACKAGES)


def trace_key(workload: str, seed: int, scale: float) -> str:
    """The content-addressed key for one ``(workload, seed, scale)``."""
    blob = json.dumps(
        {
            "workload": workload,
            "seed": int(seed),
            "scale": repr(float(scale)),
            "format": FORMAT_VERSION,
            "kernel": kernel_revision(),
        },
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:24]


def trace_path(workload: str, seed: int, scale: float) -> Path:
    return cache_dir() / f"{trace_key(workload, seed, scale)}.trace.bin"


def is_cacheable(workload: str) -> bool:
    """Whether *workload* is eligible for disk caching at all."""
    return workload in _CACHEABLE


def store_path(workload: str, seed: int, scale: float) -> Path:
    """The SQLite trace-store artifact for one workload tuple.

    Stores live in the artifact tier (keyed by the analysis revision,
    like the pickles): the on-disk schema embeds import semantics, so
    any db/core source change must invalidate them.
    """
    key = trace_key(workload, seed, scale)
    return cache_dir() / f"{key}.{analysis_revision()}.store.sqlite"


def _meta_path(key: str) -> Path:
    return cache_dir() / f"{key}.meta.json"


def _artifact_path(workload: str, seed: int, scale: float, name: str) -> Path:
    key = trace_key(workload, seed, scale)
    return cache_dir() / f"{key}.{analysis_revision()}.{name}.pkl"


def _atomic_write(path: Path, data: bytes) -> None:
    atomic_write_bytes(path, data)


#: Suffix appended to cache files the recovery sweep (or a failed read)
#: set aside: none of the lookup globs match it, so a quarantined entry
#: can never be served again, but it stays on disk for post-mortems.
QUARANTINE_SUFFIX = ".quarantined"


def quarantine_file(path: Path) -> Optional[Path]:
    """Move a torn/corrupt cache file out of service (best-effort).

    Returns the quarantine path, or None when the file vanished first
    (a concurrent sweeper or ``cache clear`` got there before us).
    """
    target = path.with_name(path.name + QUARANTINE_SUFFIX)
    try:
        os.replace(path, target)
    except OSError:
        return None
    return target


# ----------------------------------------------------------------------
# Cached run results
# ----------------------------------------------------------------------

class ReplayTracer:
    """Read-only :class:`~repro.tracing.tracer.Tracer` stand-in over a
    cached event stream: events, the interned stack table, and the
    derived summary statistics — everything trace *consumers* use."""

    def __init__(self, events, stacks) -> None:
        self.events = list(events)
        self.enabled = False
        self._stacks = list(stacks)

    def stack(self, stack_id: int):
        return self._stacks[stack_id]

    @property
    def stack_count(self) -> int:
        return len(self._stacks)

    @property
    def clock(self) -> int:
        return self.events[-1].ts if self.events else 0

    @property
    def stats(self) -> TraceStats:
        from repro.tracing.events import (
            AccessEvent,
            AllocEvent,
            FreeEvent,
            LockEvent,
        )

        stats = TraceStats()
        for event in self.events:
            if isinstance(event, AccessEvent):
                stats.accesses += 1
            elif isinstance(event, LockEvent):
                stats.lock_ops += 1
            elif isinstance(event, AllocEvent):
                stats.allocs += 1
            elif isinstance(event, FreeEvent):
                stats.frees += 1
        return stats


class CachedRun:
    """A workload run served from the trace cache.

    Honours the registry run-result contract (``.tracer`` /
    ``.to_database()``) without re-running the simulation:

    * ``tracer`` materializes the cached binary trace on first access,
    * ``to_database()`` **streams** events straight from the cache file
      into the importer (via
      :func:`repro.tracing.serialize.open_binary_stream`), so the
      310k-element event list is never built when only the database is
      needed,
    * any other attribute (``world``, ``scheduler``, ...) falls back to
      a live re-run of the workload — deterministic, so the fallback is
      observably identical to a cache miss, just slower.

    A cached trace that turns out to be torn or corrupt (truncated by a
    killed writer, vanished under a concurrent ``cache clear``) is
    **quarantined** and the run degrades to the same live re-run — a
    damaged cache can slow a request down but never change its answer.
    """

    def __init__(self, workload: str, seed: int, scale: float, path: Path) -> None:
        self.workload = workload
        self.seed = seed
        self.scale = scale
        self.path = path
        self._tracer: Optional[ReplayTracer] = None
        self._live = None

    def _live_run(self):
        if self._live is None:
            from repro.workloads import registry

            self._live = registry.run(
                self.workload, seed=self.seed, scale=self.scale
            )
        return self._live

    def _entry_corrupt(self, exc: Exception):
        """Quarantine the damaged entry; all reads go live from now on."""
        quarantine_file(self.path)
        return self._live_run()

    @property
    def tracer(self) -> ReplayTracer:
        if self._tracer is None:
            if self._live is not None:
                return self._live.tracer
            try:
                with open(self.path, "rb") as fp:
                    events, stacks = load_binary(fp)
            except Exception as exc:  # torn entry: degrade to a live run
                return self._entry_corrupt(exc).tracer
            self._tracer = ReplayTracer(events, stacks)
        return self._tracer

    def to_database(self):
        from repro.db.importer import Importer
        from repro.workloads import registry

        structs, filters = registry.database_inputs(
            registry.db_recipe(self.workload)
        )
        importer = Importer(structs, filters)
        if self._tracer is not None:
            # Already materialized — no point re-reading the file.
            return importer.run(self._tracer.events, self._tracer._stacks)
        if self._live is not None:
            return self._live.to_database()
        try:
            with open(self.path, "rb") as fp:
                stream = open_binary_stream(fp)
                return importer.run(stream.events, stream.stacks)
        except Exception as exc:
            # The stream can fail mid-import (truncated tail), leaving
            # the importer partially filled — discard it and rebuild
            # from a live run.
            return self._entry_corrupt(exc).to_database()

    def __getattr__(self, name: str):
        # Anything beyond the trace (e.g. tab3's ``.world``) needs the
        # simulation itself; re-run it once, lazily.
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self._live_run(), name)


# ----------------------------------------------------------------------
# Store / lookup
# ----------------------------------------------------------------------

def store_trace(workload: str, seed: int, scale: float, tracer) -> Path:
    """Persist *tracer*'s trace for ``(workload, seed, scale)``."""
    path = trace_path(workload, seed, scale)
    payload = dumps_events_binary(tracer.events, stacks_of(tracer))
    _atomic_write(path, payload)
    meta = {
        "workload": workload,
        "seed": int(seed),
        "scale": float(scale),
        "format": FORMAT_VERSION,
        "kernel_revision": kernel_revision(),
        "events": len(tracer.events),
        "stacks": tracer.stack_count,
        "bytes": len(payload),
    }
    _atomic_write(
        _meta_path(trace_key(workload, seed, scale)),
        json.dumps(meta, indent=2, sort_keys=True).encode() + b"\n",
    )
    return path


def cached_run(workload: str, seed: int = 0, scale: float = 1.0):
    """Run *workload* through the disk cache.

    Cache hit: a :class:`CachedRun` (no simulation).  Miss: the live
    run result, with its trace stored for next time.  Disabled cache or
    uncacheable workload (``fuzz:*``): the live run, untouched.
    """
    from repro.workloads import registry

    if not _enabled or workload not in _CACHEABLE:
        return registry.run(workload, seed=seed, scale=scale)
    path = trace_path(workload, seed, scale)
    if path.exists():
        return CachedRun(workload, seed, scale, path)
    result = registry.run(workload, seed=seed, scale=scale)
    try:
        store_trace(workload, seed, scale, result.tracer)
    except OSError:
        pass  # unwritable cache dir: stay correct, just slower
    return result


def load_artifact(workload: str, seed: int, scale: float, name: str):
    """A pickled artifact for the keyed run, or None."""
    if not _enabled:
        return None
    path = _artifact_path(workload, seed, scale, name)
    if not path.exists():
        return None
    try:
        with open(path, "rb") as fp:
            return pickle.load(fp)
    except Exception:  # corrupt/stale entry: recompute
        return None


def store_artifact(workload: str, seed: int, scale: float, name: str, obj) -> None:
    """Best-effort persist of a derived artifact."""
    if not _enabled:
        return
    try:
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        _atomic_write(_artifact_path(workload, seed, scale, name), payload)
    except (OSError, pickle.PicklingError, TypeError, AttributeError):
        pass


# ----------------------------------------------------------------------
# Management (the ``lockdoc cache`` subcommand)
# ----------------------------------------------------------------------

def entries() -> List[Dict]:
    """Metadata of every cached trace, plus its artifact footprint.

    Concurrency contract: the cache directory is shared with writers,
    the daemon's recovery sweep and ``cache clear`` — any file may
    vanish between listing and stat.  Vanished files are skipped, never
    raised: a listing taken during churn is a consistent snapshot of
    whatever survived it.
    """
    directory = cache_dir()
    if not directory.is_dir():
        return []
    found = []
    for meta_file in sorted(directory.glob("*.meta.json")):
        key = meta_file.name[: -len(".meta.json")]
        try:
            meta = json.loads(meta_file.read_text())
        except (OSError, ValueError):
            continue
        artifacts = 0
        artifact_bytes = 0
        for pattern in (f"{key}.*.pkl", f"{key}.*.store.sqlite"):
            for path in directory.glob(pattern):
                try:
                    artifact_bytes += path.stat().st_size
                except OSError:
                    continue  # deleted/quarantined mid-iteration
                artifacts += 1
        meta["key"] = key
        meta["artifacts"] = artifacts
        meta["artifact_bytes"] = artifact_bytes
        found.append(meta)
    return found


def clear() -> int:
    """Delete every cache file; returns the number removed.

    Tolerates a concurrent writer/sweeper the same way
    :func:`entries` does: files that vanish mid-iteration are simply
    not counted.
    """
    directory = cache_dir()
    if not directory.is_dir():
        return 0
    removed = 0
    patterns = (
        "*.trace.bin", "*.meta.json", "*.pkl", "*.store.sqlite",
        f"*{QUARANTINE_SUFFIX}", "*.tmp",
    )
    for pattern in patterns:
        for path in directory.glob(pattern):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
    return removed
