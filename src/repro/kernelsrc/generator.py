"""Deterministic synthetic kernel-source generator.

Produces, per release, an in-memory source tree (``{path: content}``)
whose line count and lock-initialization call counts hit the calibrated
(scaled) targets of :mod:`repro.kernelsrc.model`.  The generated C is
nonsense-but-plausible: function bodies, struct definitions, comments —
enough that the scanner has to do real work (skip comments, match the
actual initializer idioms) rather than counting lines of a trivial
format.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.kernelsrc.model import KernelVersion, scaled_metrics

#: Spinlock initialization idioms (dynamic and static), as counted by
#: the paper's Fig. 1 methodology.
SPINLOCK_IDIOMS = (
    "spin_lock_init(&{var});",
    "DEFINE_SPINLOCK({var});",
    "raw_spin_lock_init(&{var});",
)
MUTEX_IDIOMS = (
    "mutex_init(&{var});",
    "DEFINE_MUTEX({var});",
)
RCU_IDIOMS = (
    "rcu_read_lock();",
    "synchronize_rcu();",
    "call_rcu(&{var}, {var}_free);",
)

_SUBSYSTEMS = (
    "fs", "fs/ext4", "fs/jbd2", "mm", "kernel", "net/core", "block",
    "drivers/base", "drivers/net", "security",
)

_FILLER = (
    "\tif (unlikely(err))",
    "\t\treturn -EINVAL;",
    "\tlist_add_tail(&entry->node, &head);",
    "\tsmp_wmb();",
    "\twake_up(&queue->wait);",
    "\tentry->flags |= MASK_DIRTY;",
    "\treturn 0;",
    "static int counter;",
    "struct list_head head;",
)


def _make_file(
    rng: random.Random,
    path: str,
    lines_budget: int,
    idiom_plan: List[str],
) -> str:
    """Generate one C file with ~lines_budget lines embedding the
    planned idiom occurrences at random positions."""
    lines: List[str] = [
        f"// SPDX-License-Identifier: GPL-2.0",
        f"/* {path} — synthetic corpus file */",
        "#include <linux/spinlock.h>",
        "#include <linux/mutex.h>",
        "",
    ]
    body_lines = max(0, lines_budget - len(lines))
    positions = sorted(rng.sample(range(body_lines), min(len(idiom_plan), body_lines)))
    plan = dict(zip(positions, idiom_plan))
    for index in range(body_lines):
        idiom = plan.get(index)
        if idiom is not None:
            var = f"lk_{rng.randrange(1_000_000)}"
            lines.append("\t" + idiom.format(var=var))
        elif rng.random() < 0.06:
            lines.append(f"\t/* {rng.choice(('fast path', 'slow path', 'XXX: racy?'))} */")
        else:
            lines.append(rng.choice(_FILLER))
    return "\n".join(lines) + "\n"


def generate_tree(version: KernelVersion) -> Dict[str, str]:
    """The synthetic source tree of *version*: ``{path: content}``.

    Deterministic: same version -> byte-identical tree.
    """
    rng = random.Random(version.ordinal * 7919 + 13)
    targets = scaled_metrics(version)
    total_lines = targets["loc"]

    idioms: List[str] = []
    for _ in range(targets["spinlock"]):
        idioms.append(rng.choice(SPINLOCK_IDIOMS))
    for _ in range(targets["mutex"]):
        idioms.append(rng.choice(MUTEX_IDIOMS))
    for _ in range(targets["rcu"]):
        idioms.append(rng.choice(RCU_IDIOMS))
    rng.shuffle(idioms)

    file_count = max(4, total_lines // 2400)
    tree: Dict[str, str] = {}
    remaining_lines = total_lines
    remaining_idioms = idioms
    for index in range(file_count):
        files_left = file_count - index
        lines_budget = remaining_lines // files_left
        idiom_budget = len(remaining_idioms) // files_left
        chunk, remaining_idioms = (
            remaining_idioms[:idiom_budget],
            remaining_idioms[idiom_budget:],
        )
        subsystem = _SUBSYSTEMS[index % len(_SUBSYSTEMS)]
        path = f"{subsystem}/gen_{version.name.replace('.', '_')}_{index:04d}.c"
        tree[path] = _make_file(rng, path, lines_budget, chunk)
        remaining_lines -= lines_budget
    return tree
