"""Deterministic synthetic kernel-source generator.

Produces, per release, an in-memory source tree (``{path: content}``)
whose line count and lock-initialization call counts hit the calibrated
(scaled) targets of :mod:`repro.kernelsrc.model`.  The generated C is
nonsense-but-plausible: function bodies, struct definitions, comments —
enough that the scanner has to do real work (skip comments, match the
actual initializer idioms) rather than counting lines of a trivial
format.

A second, independent product is the *call-graph-bearing* subsystem
corpus (:func:`generate_subsystem_tree`): structured C rendered from
:class:`~repro.kernelsrc.model.SourceFunction` records planned by
:mod:`repro.staticcheck.plan` — real call edges, balanced
acquire/release pairs, and typed member accesses that the static
checker parses back.  It shares the rendering conventions of this
module but is a separate tree: :func:`generate_tree` output (and hence
the Fig. 1 counts) is unaffected by it.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List

from repro.kernelsrc.model import KernelVersion, SourceFunction, scaled_metrics

#: Spinlock initialization idioms (dynamic and static), as counted by
#: the paper's Fig. 1 methodology.
SPINLOCK_IDIOMS = (
    "spin_lock_init(&{var});",
    "DEFINE_SPINLOCK({var});",
    "raw_spin_lock_init(&{var});",
)
MUTEX_IDIOMS = (
    "mutex_init(&{var});",
    "DEFINE_MUTEX({var});",
)
RCU_IDIOMS = (
    "rcu_read_lock();",
    "synchronize_rcu();",
    "call_rcu(&{var}, {var}_free);",
)

_SUBSYSTEMS = (
    "fs", "fs/ext4", "fs/jbd2", "mm", "kernel", "net/core", "block",
    "drivers/base", "drivers/net", "security",
)

_FILLER = (
    "\tif (unlikely(err))",
    "\t\treturn -EINVAL;",
    "\tlist_add_tail(&entry->node, &head);",
    "\tsmp_wmb();",
    "\twake_up(&queue->wait);",
    "\tentry->flags |= MASK_DIRTY;",
    "\treturn 0;",
    "static int counter;",
    "struct list_head head;",
)


def _make_file(
    rng: random.Random,
    path: str,
    lines_budget: int,
    idiom_plan: List[str],
) -> str:
    """Generate one C file with ~lines_budget lines embedding the
    planned idiom occurrences at random positions."""
    lines: List[str] = [
        f"// SPDX-License-Identifier: GPL-2.0",
        f"/* {path} — synthetic corpus file */",
        "#include <linux/spinlock.h>",
        "#include <linux/mutex.h>",
        "",
    ]
    body_lines = max(0, lines_budget - len(lines))
    positions = sorted(rng.sample(range(body_lines), min(len(idiom_plan), body_lines)))
    plan = dict(zip(positions, idiom_plan))
    for index in range(body_lines):
        idiom = plan.get(index)
        if idiom is not None:
            var = f"lk_{rng.randrange(1_000_000)}"
            lines.append("\t" + idiom.format(var=var))
        elif rng.random() < 0.06:
            lines.append(f"\t/* {rng.choice(('fast path', 'slow path', 'XXX: racy?'))} */")
        else:
            lines.append(rng.choice(_FILLER))
    return "\n".join(lines) + "\n"


def generate_tree(version: KernelVersion) -> Dict[str, str]:
    """The synthetic source tree of *version*: ``{path: content}``.

    Deterministic: same version -> byte-identical tree.
    """
    rng = random.Random(version.ordinal * 7919 + 13)
    targets = scaled_metrics(version)
    total_lines = targets["loc"]

    idioms: List[str] = []
    for _ in range(targets["spinlock"]):
        idioms.append(rng.choice(SPINLOCK_IDIOMS))
    for _ in range(targets["mutex"]):
        idioms.append(rng.choice(MUTEX_IDIOMS))
    for _ in range(targets["rcu"]):
        idioms.append(rng.choice(RCU_IDIOMS))
    rng.shuffle(idioms)

    file_count = max(4, total_lines // 2400)
    tree: Dict[str, str] = {}
    remaining_lines = total_lines
    remaining_idioms = idioms
    for index in range(file_count):
        files_left = file_count - index
        lines_budget = remaining_lines // files_left
        idiom_budget = len(remaining_idioms) // files_left
        chunk, remaining_idioms = (
            remaining_idioms[:idiom_budget],
            remaining_idioms[idiom_budget:],
        )
        subsystem = _SUBSYSTEMS[index % len(_SUBSYSTEMS)]
        path = f"{subsystem}/gen_{version.name.replace('.', '_')}_{index:04d}.c"
        tree[path] = _make_file(rng, path, lines_budget, chunk)
        remaining_lines -= lines_budget
    return tree


# ----------------------------------------------------------------------
# Call-graph-bearing subsystem corpus (static-checker substrate)
# ----------------------------------------------------------------------

_SUBSYSTEM_INCLUDES = (
    "#include <linux/fs.h>",
    "#include <linux/spinlock.h>",
    "#include <linux/mutex.h>",
    "#include <linux/rwsem.h>",
)


def render_function(fn: SourceFunction) -> str:
    """Render one :class:`SourceFunction` to kernel-style C text."""
    params = ", ".join(f"struct {t} *{v}" for t, v in fn.params) or "void"
    lines: List[str] = []
    if fn.comment:
        lines.append(f"/* {fn.comment} */")
    lines.append(f"static void {fn.name}({params})")
    lines.append("{")
    lines.extend("\t" + statement for statement in fn.body)
    lines.append("}")
    return "\n".join(lines)


def generate_subsystem_tree(functions: Iterable[SourceFunction]) -> Dict[str, str]:
    """Render a planned subsystem corpus to a ``{path: content}`` tree.

    Deterministic: file paths come sorted, functions keep plan order
    within each file, and the text depends only on the records.  Each
    file carries forward declarations for every function it defines so
    call order never constrains definition order.
    """
    by_file: Dict[str, List[SourceFunction]] = {}
    for fn in functions:
        by_file.setdefault(fn.file, []).append(fn)
    tree: Dict[str, str] = {}
    for path in sorted(by_file):
        members = by_file[path]
        lines: List[str] = [
            "// SPDX-License-Identifier: GPL-2.0",
            f"/* {path} — synthetic call-graph corpus (staticcheck substrate) */",
            *_SUBSYSTEM_INCLUDES,
            "",
        ]
        for fn in members:
            params = ", ".join(f"struct {t} *{v}" for t, v in fn.params) or "void"
            lines.append(f"static void {fn.name}({params});")
        lines.append("")
        for fn in members:
            lines.append(render_function(fn))
            lines.append("")
        tree[path] = "\n".join(lines)
    return tree
