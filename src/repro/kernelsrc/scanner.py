"""Lock-usage and LoC scanner over a source tree (Fig. 1 methodology).

Counts calls to lock-related initialization functions — dynamic
(``spin_lock_init``, ``mutex_init``) and static (``DEFINE_SPINLOCK``,
``DEFINE_MUTEX``) — plus RCU usage markers, and lines of code.
Comment text is excluded from idiom matching (but every line counts as
LoC, matching ``wc -l``-style methodology): block comments are tracked
across lines with a small state machine, so an idiom mentioned in the
middle of a multi-line ``/* ... */`` is not counted, while code sharing
a line with a comment (``spin_lock_init(&a); /* why */``) still is.
String and character literals are opaque: a ``"/*"`` inside a string
does not open a comment (it used to swallow the rest of the file),
and ``//`` inside a URL-bearing string does not truncate the line.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

_SPINLOCK = re.compile(
    r"\b(?:raw_)?spin_lock_init\s*\(|\bDEFINE_SPINLOCK\s*\(|\b__SPIN_LOCK_UNLOCKED\s*\("
)
_MUTEX = re.compile(r"\bmutex_init\s*\(|\bDEFINE_MUTEX\s*\(")
_RCU = re.compile(r"\brcu_read_lock\s*\(|\bsynchronize_rcu\s*\(|\bcall_rcu\s*\(")

#: A lone ``*``-continuation line outside any open block comment — a
#: comment fragment (e.g. a diff hunk or doc excerpt); skip it entirely.
_ORPHAN_CONTINUATION = re.compile(r"^\s*\*")


@dataclass
class LockUsage:
    """Scan result for one tree."""

    loc: int = 0
    spinlock: int = 0
    mutex: int = 0
    rcu: int = 0
    files: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "loc": self.loc,
            "spinlock": self.spinlock,
            "mutex": self.mutex,
            "rcu": self.rcu,
            "files": self.files,
        }


def _strip_comments(line: str, in_block: bool) -> Tuple[str, bool]:
    """Remove comment text from one line.

    Returns the remaining code and whether a ``/* ... */`` block is
    still open at the end of the line.  Comment openers inside string
    or character literals are literal text, not comments — the scan
    walks the line character-wise and copies quoted regions verbatim
    (honoring backslash escapes; an unterminated literal runs to the
    end of the line).
    """
    code = []
    length = len(line)
    position = 0
    while position < length:
        if in_block:
            end = line.find("*/", position)
            if end == -1:
                return "".join(code), True
            position = end + 2
            in_block = False
            continue
        char = line[position]
        if char == "/" and position + 1 < length:
            following = line[position + 1]
            if following == "/":
                return "".join(code), False
            if following == "*":
                position += 2
                in_block = True
                continue
        if char in ('"', "'"):
            quote = char
            code.append(char)
            position += 1
            while position < length:
                char = line[position]
                code.append(char)
                if char == "\\" and position + 1 < length:
                    code.append(line[position + 1])
                    position += 2
                    continue
                position += 1
                if char == quote:
                    break
            continue
        code.append(char)
        position += 1
    return "".join(code), in_block


def scan_source(content: str, usage: LockUsage) -> None:
    """Accumulate one file's counts into *usage*."""
    usage.files += 1
    in_block = False
    for line in content.splitlines():
        usage.loc += 1
        if not in_block and _ORPHAN_CONTINUATION.match(line):
            continue
        code, in_block = _strip_comments(line, in_block)
        if _SPINLOCK.search(code):
            usage.spinlock += 1
        if _MUTEX.search(code):
            usage.mutex += 1
        if _RCU.search(code):
            usage.rcu += 1


def scan_tree(tree: Mapping[str, str]) -> LockUsage:
    """Scan a ``{path: content}`` tree."""
    usage = LockUsage()
    for content in tree.values():
        scan_source(content, usage)
    return usage
