"""Lock-usage and LoC scanner over a source tree (Fig. 1 methodology).

Counts calls to lock-related initialization functions — dynamic
(``spin_lock_init``, ``mutex_init``) and static (``DEFINE_SPINLOCK``,
``DEFINE_MUTEX``) — plus RCU usage markers, and lines of code.
Comment-only lines are excluded from idiom matching (but counted as
LoC, matching ``wc -l``-style methodology).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Mapping

_SPINLOCK = re.compile(
    r"\b(?:raw_)?spin_lock_init\s*\(|\bDEFINE_SPINLOCK\s*\(|\b__SPIN_LOCK_UNLOCKED\s*\("
)
_MUTEX = re.compile(r"\bmutex_init\s*\(|\bDEFINE_MUTEX\s*\(")
_RCU = re.compile(r"\brcu_read_lock\s*\(|\bsynchronize_rcu\s*\(|\bcall_rcu\s*\(")

_COMMENT_LINE = re.compile(r"^\s*(?://|/\*|\*)")


@dataclass
class LockUsage:
    """Scan result for one tree."""

    loc: int = 0
    spinlock: int = 0
    mutex: int = 0
    rcu: int = 0
    files: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "loc": self.loc,
            "spinlock": self.spinlock,
            "mutex": self.mutex,
            "rcu": self.rcu,
            "files": self.files,
        }


def scan_source(content: str, usage: LockUsage) -> None:
    """Accumulate one file's counts into *usage*."""
    usage.files += 1
    for line in content.splitlines():
        usage.loc += 1
        if _COMMENT_LINE.match(line):
            continue
        if _SPINLOCK.search(line):
            usage.spinlock += 1
        if _MUTEX.search(line):
            usage.mutex += 1
        if _RCU.search(line):
            usage.rcu += 1


def scan_tree(tree: Mapping[str, str]) -> LockUsage:
    """Scan a ``{path: content}`` tree."""
    usage = LockUsage()
    for content in tree.values():
        scan_source(content, usage)
    return usage
