"""Lock-usage and LoC scanner over a source tree (Fig. 1 methodology).

Counts calls to lock-related initialization functions — dynamic
(``spin_lock_init``, ``mutex_init``) and static (``DEFINE_SPINLOCK``,
``DEFINE_MUTEX``) — plus RCU usage markers, and lines of code.
Comment text is excluded from idiom matching (but every line counts as
LoC, matching ``wc -l``-style methodology): block comments are tracked
across lines with a small state machine, so an idiom mentioned in the
middle of a multi-line ``/* ... */`` is not counted, while code sharing
a line with a comment (``spin_lock_init(&a); /* why */``) still is.
Comment markers inside string literals are not recognized — acceptable
for a counting methodology, wrong for a parser.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

_SPINLOCK = re.compile(
    r"\b(?:raw_)?spin_lock_init\s*\(|\bDEFINE_SPINLOCK\s*\(|\b__SPIN_LOCK_UNLOCKED\s*\("
)
_MUTEX = re.compile(r"\bmutex_init\s*\(|\bDEFINE_MUTEX\s*\(")
_RCU = re.compile(r"\brcu_read_lock\s*\(|\bsynchronize_rcu\s*\(|\bcall_rcu\s*\(")

#: A lone ``*``-continuation line outside any open block comment — a
#: comment fragment (e.g. a diff hunk or doc excerpt); skip it entirely.
_ORPHAN_CONTINUATION = re.compile(r"^\s*\*")


@dataclass
class LockUsage:
    """Scan result for one tree."""

    loc: int = 0
    spinlock: int = 0
    mutex: int = 0
    rcu: int = 0
    files: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "loc": self.loc,
            "spinlock": self.spinlock,
            "mutex": self.mutex,
            "rcu": self.rcu,
            "files": self.files,
        }


def _strip_comments(line: str, in_block: bool) -> Tuple[str, bool]:
    """Remove comment text from one line.

    Returns the remaining code and whether a ``/* ... */`` block is
    still open at the end of the line.
    """
    code = []
    position = 0
    while position < len(line):
        if in_block:
            end = line.find("*/", position)
            if end == -1:
                return "".join(code), True
            position = end + 2
            in_block = False
            continue
        block = line.find("/*", position)
        slashes = line.find("//", position)
        if slashes != -1 and (block == -1 or slashes < block):
            code.append(line[position:slashes])
            return "".join(code), False
        if block == -1:
            code.append(line[position:])
            return "".join(code), False
        code.append(line[position:block])
        position = block + 2
        in_block = True
    return "".join(code), in_block


def scan_source(content: str, usage: LockUsage) -> None:
    """Accumulate one file's counts into *usage*."""
    usage.files += 1
    in_block = False
    for line in content.splitlines():
        usage.loc += 1
        if not in_block and _ORPHAN_CONTINUATION.match(line):
            continue
        code, in_block = _strip_comments(line, in_block)
        if _SPINLOCK.search(code):
            usage.spinlock += 1
        if _MUTEX.search(code):
            usage.mutex += 1
        if _RCU.search(code):
            usage.rcu += 1


def scan_tree(tree: Mapping[str, str]) -> LockUsage:
    """Scan a ``{path: content}`` tree."""
    usage = LockUsage()
    for content in tree.values():
        scan_source(content, usage)
    return usage
