"""Kernel-release model and Fig. 1 calibration anchors.

The anchors encode what Fig. 1 shows (and the paper's text states):
between v3.0 and v4.18 mutex usage grew by about 81 %, spinlock usage
by about 45 % (with a slight decrease over the last releases), RCU rose
steadily, and the code base grew by 73 %.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class KernelVersion:
    """One major release."""

    major: int
    minor: int

    @property
    def name(self) -> str:
        return f"v{self.major}.{self.minor}"

    @property
    def ordinal(self) -> int:
        """Position on the release axis (v3.0 = 0)."""
        if self.major == 3:
            return self.minor
        return 20 + self.minor  # v3.19 is ordinal 19; v4.0 follows

    def __str__(self) -> str:
        return self.name


def _releases() -> List[KernelVersion]:
    threes = [KernelVersion(3, minor) for minor in range(0, 20)]
    fours = [KernelVersion(4, minor) for minor in range(0, 19)]
    return threes + fours


#: All major releases from v3.0 to v4.18 (the Fig. 1 x-axis).
KERNEL_VERSIONS: List[KernelVersion] = _releases()

#: Scale factor of the synthetic corpus: generated counts are 1/SCALE of
#: the real tree's (the corpus would otherwise be ~10^7 lines per
#: release x 39 releases).
CORPUS_SCALE = 100

#: Calibration anchors: (ordinal, value) pairs per metric, real-tree
#: magnitudes.  Linear interpolation in between.
_ANCHORS: Dict[str, List[Tuple[int, float]]] = {
    # lines of code: 9.55M -> 16.52M (+73%)
    "loc": [(0, 9_550_000), (10, 11_400_000), (20, 13_250_000),
            (30, 15_300_000), (38, 16_520_000)],
    # spinlocks: +45% overall, peaking around v4.13 then dipping
    "spinlock": [(0, 3_900), (10, 4_450), (20, 5_050), (33, 5_900),
                 (38, 5_650)],
    # mutexes: +81%, monotonic
    "mutex": [(0, 2_480), (10, 3_100), (20, 3_700), (30, 4_200),
              (38, 4_490)],
    # RCU usage: steady growth
    "rcu": [(0, 1_150), (10, 1_500), (20, 1_950), (30, 2_400), (38, 2_700)],
}


def _interpolate(anchors: List[Tuple[int, float]], ordinal: int) -> float:
    if ordinal <= anchors[0][0]:
        return anchors[0][1]
    for (x0, y0), (x1, y1) in zip(anchors, anchors[1:]):
        if x0 <= ordinal <= x1:
            fraction = (ordinal - x0) / (x1 - x0)
            return y0 + fraction * (y1 - y0)
    return anchors[-1][1]


def expected_metrics(version: KernelVersion) -> Dict[str, int]:
    """Real-tree-magnitude metric targets for *version*.

    A small deterministic per-release wobble (±0.8 %) keeps the curve
    from looking artificially straight.
    """
    out = {}
    for metric, anchors in _ANCHORS.items():
        base = _interpolate(anchors, version.ordinal)
        # crc32, not hash(): hash() of a str is randomized per process
        # (PYTHONHASHSEED), which made the targets differ across runs.
        phase = zlib.crc32(metric.encode("ascii")) % 7
        wobble = math.sin(version.ordinal * 2.39996 + phase) * 0.008
        out[metric] = int(base * (1.0 + wobble))
    return out


def scaled_metrics(version: KernelVersion) -> Dict[str, int]:
    """Metric targets scaled down by :data:`CORPUS_SCALE` (generator
    budget for the synthetic tree)."""
    return {
        metric: max(1, value // CORPUS_SCALE)
        for metric, value in expected_metrics(version).items()
    }


@dataclass(frozen=True)
class SourceFunction:
    """IR of one function in the call-graph-bearing subsystem corpus.

    The Fig. 1 corpus is counting-plausible nonsense; the static
    checker needs *structured* C instead — real call edges, balanced
    lock pairs, typed member accesses.  The corpus planner
    (:mod:`repro.staticcheck.plan`) emits these records and the
    generator renders them to C text, keeping the two corpora
    independent (the Fig. 1 counts must not move when the subsystem
    corpus grows).

    Attributes:
        name: function name (globally unique within the corpus).
        file: tree-relative path of the ``.c`` file holding it.
        params: ``(struct_type, var_name)`` pairs, pointer parameters.
        body: statement lines, one statement each, without the
            surrounding braces (rendered with a leading tab).
        comment: optional one-line description rendered above.
    """

    name: str
    file: str
    params: Tuple[Tuple[str, str], ...] = ()
    body: Tuple[str, ...] = ()
    comment: str = ""
