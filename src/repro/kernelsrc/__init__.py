"""Synthetic kernel source-tree substrate (Fig. 1).

Fig. 1 of the paper counts lock-initialization calls and lines of code
across Linux releases v3.0–v4.18.  The real trees (≈10⁷ LoC each) are
not available offline, so this package generates a *calibrated,
deterministic, down-scaled* source corpus per release
(:mod:`repro.kernelsrc.generator`) and provides the scanner that counts
lock usages the same way the paper did
(:mod:`repro.kernelsrc.scanner`).  Growth *ratios* — +45 % spinlocks,
+81 % mutexes, +73 % LoC with the spinlock dip after v4.13 — are
preserved; absolute numbers carry the documented scale factor.
"""

from repro.kernelsrc.model import KERNEL_VERSIONS, KernelVersion
from repro.kernelsrc.generator import generate_tree
from repro.kernelsrc.scanner import LockUsage, scan_tree

__all__ = [
    "KERNEL_VERSIONS",
    "KernelVersion",
    "LockUsage",
    "generate_tree",
    "scan_tree",
]
