"""Command-line interface: ``lockdoc <command>``.

Commands mirror the paper's pipeline and analysis tools:

=============  =====================================================
``trace``      run the benchmark mix, write the trace to a file
``derive``     run rule derivation, print winners per member
``check``      check the documented-rule corpus (Tab. 4 summary)
``docgen``     print generated locking documentation (Fig. 8 style)
``violations`` print the rule-violation summary (Tab. 7)
``experiment`` regenerate a specific table/figure by name
``stats``      trace statistics (Sec. 7.2)
``watch``      live-monitor a workload: streamed interval contention
``analyze``    derive rules from a previously saved trace file
``lockorder``  lockdep-style lock-order graph, ABBA candidates, cycles
``races``      lockset + happens-before race detection
``docpatch``   documentation patch: keep/update/add/review per member
``sql``        export the trace database to SQLite (Fig. 6 schema)
``contention`` Lockmeter-style lock-usage statistics
``relations``  object-relation classification of EO rules (Sec. 8)
``health``     lenient ingestion + TraceHealth damage report
``corrupt``    apply a seeded fault plan to a saved trace file
``fuzz``       coverage-guided workload fuzzing (run/replay/corpus/report)
``cache``      inspect/manage the on-disk trace cache (ls/clear/path)
``staticcheck`` static call-graph lock-context checker (run/report)
``serve``      always-on analysis daemon (run/status/stop)
=============  =====================================================

``derive`` and ``races`` also take ``--stream``: the trace is folded
*online* by the fused single-pass engine (:mod:`repro.stream`) while
the workload runs — no event list, no serialize/import round trip —
with output identical to the post-mortem path on clean traces.

``derive``/``check``/``violations``/``races``/``stats``/``health``
also take ``--remote``: the request is sent to a running analysis daemon
(:mod:`repro.serve`), which owns a shared warm cache and coalesces
duplicate in-flight work.  Output is byte-identical to local mode;
when the daemon is unreachable the client prints a one-line
``degraded:`` notice on stderr and computes locally.

The same subcommands take ``--backend memory|sqlite``: ``memory``
(default) analyzes the in-RAM :class:`TraceDatabase`; ``sqlite``
builds an out-of-core sharded SQLite trace store
(:mod:`repro.db.sqlstore`) and streams derivation/checking/violation
queries from disk — byte-identical output with bounded resident
memory.  ``--backend`` composes with ``--remote``.

Trace-producing subcommands take ``--workload``, resolved through the
central :mod:`repro.workloads.registry` — built-ins (``mix``,
``racer``, ``racer-safe``) or a fuzzed corpus (``fuzz:<file>`` /
``fuzz:<corpus-id>``).  Built-in workload runs are served from the
content-addressed on-disk trace cache (:mod:`repro.cache`) unless
``--no-cache`` is given.

Every subcommand taking a file input exits with status 2 and a
one-line ``error: ...`` on empty, unreadable or malformed inputs —
never a traceback.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.docgen import DocOptions, generate_doc
from repro.core.report import render_table
from repro.core.violations import ViolationFinder
from repro.doc.corpus import documented_rules
from repro.experiments import common as experiments_common

_EXPERIMENTS = (
    "fig1", "tab1", "tab2", "tab3", "tab4", "tab5", "tab6",
    "fig7", "tab7", "tab8", "fig8", "stats", "tab3net", "tab6net",
)


def _add_pipeline_args(
    parser: argparse.ArgumentParser, workload_default: str = "mix"
) -> None:
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument(
        "--scale", type=float, default=experiments_common.DEFAULT_SCALE,
        help="workload scale factor",
    )
    parser.add_argument(
        "--workload", default=workload_default, metavar="NAME",
        help="trace source from the workload registry: mix, racer, "
        "racer-safe, netbench, sockstress, netmix, or "
        "fuzz:<corpus-file> "
        f"(default: {workload_default})",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the on-disk trace cache: re-run the workload and "
        "recompute every artifact (see `lockdoc cache`)",
    )


def _add_remote_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--remote", action="store_true",
        help="send this request to the analysis daemon (`lockdoc serve "
        "run`); output is identical to local mode; falls back to local "
        "computation with a `degraded:` stderr notice when unreachable",
    )


def _add_backend_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend", choices=experiments_common.BACKENDS,
        default=experiments_common.DEFAULT_BACKEND,
        help="trace query backend: `memory` holds the whole TraceDatabase "
        "in RAM; `sqlite` builds an out-of-core sharded store and streams "
        "queries from disk (identical output, bounded memory)",
    )


def _add_stream_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--stream", action="store_true",
        help="fold the trace online while the workload runs (single "
        "fused pass, no serialize/import round trip); identical output "
        "on clean traces; memory backend only, not combinable with "
        "--remote",
    )


def _add_jobs_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for rule derivation (results are "
        "identical to serial; small workloads fall back to serial "
        "automatically since pool startup would dominate; "
        "default: serial)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="lockdoc",
        description="LockDoc reproduction: trace-based locking-rule analysis",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    trace = sub.add_parser("trace", help="run the benchmark mix and save the trace")
    _add_pipeline_args(trace)
    trace.add_argument("output", help="trace file (.txt for text, .bin for binary)")

    derive = sub.add_parser("derive", help="derive locking rules")
    _add_pipeline_args(derive)
    _add_jobs_arg(derive)
    _add_backend_arg(derive)
    _add_remote_arg(derive)
    derive.add_argument("--type", default="", help="restrict to one type key")
    derive.add_argument(
        "--threshold", type=float, default=0.9, help="accept threshold t_ac"
    )
    derive.add_argument(
        "--json", default="", metavar="FILE",
        help="also write the machine-readable rule export (summary mode)",
    )
    _add_stream_arg(derive)

    check = sub.add_parser("check", help="check documented rules (Tab. 4)")
    _add_pipeline_args(check)
    _add_jobs_arg(check)
    _add_backend_arg(check)
    _add_remote_arg(check)

    docgen = sub.add_parser("docgen", help="generate documentation (Fig. 8)")
    _add_pipeline_args(docgen)
    docgen.add_argument("--type", default="inode:ext4", help="type key to document")

    violations = sub.add_parser("violations", help="find rule violations (Tab. 7)")
    _add_pipeline_args(violations)
    _add_jobs_arg(violations)
    _add_backend_arg(violations)
    _add_remote_arg(violations)
    violations.add_argument(
        "--examples", type=int, default=0, help="also print the N largest violations"
    )

    experiment = sub.add_parser("experiment", help="regenerate a table/figure")
    experiment.add_argument("name", choices=_EXPERIMENTS)
    _add_pipeline_args(experiment)
    _add_jobs_arg(experiment)

    stats = sub.add_parser("stats", help="trace statistics (Sec. 7.2)")
    _add_pipeline_args(stats)
    _add_backend_arg(stats)
    _add_remote_arg(stats)

    analyze = sub.add_parser(
        "analyze", help="derive rules from a saved trace file"
    )
    analyze.add_argument("trace", help="trace file written by `lockdoc trace`")
    analyze.add_argument("--type", default="", help="restrict to one type key")
    analyze.add_argument("--threshold", type=float, default=0.9)

    lockorder = sub.add_parser(
        "lockorder", help="lock-order graph + ABBA candidates + cycles"
    )
    _add_pipeline_args(lockorder)

    races = sub.add_parser(
        "races", help="lockset + happens-before race detection"
    )
    _add_pipeline_args(races, workload_default="racer")
    _add_jobs_arg(races)
    _add_backend_arg(races)
    _add_remote_arg(races)
    races.add_argument(
        "--examples", type=int, default=0,
        help="print details for the first N findings (default: racy only)",
    )
    races.add_argument(
        "--threshold", type=float, default=0.9, help="accept threshold t_ac"
    )
    _add_stream_arg(races)

    watch = sub.add_parser(
        "watch", help="live-monitor a workload with the streaming engine"
    )
    _add_pipeline_args(watch)
    watch.add_argument(
        "--interval", type=int, default=2000, metavar="TICKS",
        help="tick-window width in simulated trace-clock ticks "
        "(default: 2000)",
    )
    watch.add_argument(
        "--top", type=int, default=5, metavar="K",
        help="hottest lock classes printed per interval (default: 5)",
    )
    watch.add_argument(
        "--limit", type=int, default=12,
        help="lock classes in the final cumulative summary (default: 12)",
    )

    docpatch = sub.add_parser(
        "docpatch", help="documentation patch (keep/update/add/review)"
    )
    _add_pipeline_args(docpatch)
    docpatch.add_argument("--type", default="inode", help="base data type")

    sql = sub.add_parser("sql", help="export the trace database to SQLite")
    _add_pipeline_args(sql)
    sql.add_argument("output", help="SQLite file to write")

    contention = sub.add_parser(
        "contention", help="Lockmeter-style lock-usage statistics"
    )
    _add_pipeline_args(contention)
    contention.add_argument("--limit", type=int, default=12)

    relations = sub.add_parser(
        "relations", help="object-relation classification of EO rules"
    )
    _add_pipeline_args(relations)

    health = sub.add_parser(
        "health", help="lenient trace ingestion + TraceHealth report"
    )
    health.add_argument("trace", help="trace file (text or binary, may be damaged)")
    health.add_argument(
        "--registry", choices=("vfs", "racer", "net"), default="vfs",
        help="struct registry the trace was recorded against "
        "(`net` = the combined vfs+net recipe)",
    )
    health.add_argument(
        "--budget", type=float, default=0.25,
        help="error budget: max tolerated malformed fraction (1.0 = off)",
    )
    health.add_argument(
        "--diagnostics", type=int, default=10,
        help="how many parse diagnostics to print",
    )
    _add_backend_arg(health)
    _add_remote_arg(health)

    corrupt = sub.add_parser(
        "corrupt", help="apply a seeded fault plan to a saved trace"
    )
    corrupt.add_argument("input", help="clean trace file (from `trace`)")
    corrupt.add_argument("output", help="corrupted trace file to write")
    corrupt.add_argument(
        "--ops", default="drop:0.02,mangle:0.02",
        help="fault spec: name[:param],... (see repro.faults)",
    )
    corrupt.add_argument("--seed", type=int, default=0, help="fault plan seed")

    fuzz = sub.add_parser(
        "fuzz", help="coverage-guided workload fuzzing (repro.fuzz)"
    )
    fuzz_sub = fuzz.add_subparsers(dest="action", required=True)

    fuzz_run = fuzz_sub.add_parser(
        "run", help="run a fuzzing campaign and save the corpus"
    )
    fuzz_run.add_argument("--seed", type=int, default=0, help="campaign seed")
    fuzz_run.add_argument(
        "--subsystem", choices=("vfs", "net"), default="vfs",
        help="which simulated slice to fuzz (baseline: mix for vfs, "
        "netbench for net)",
    )
    fuzz_run.add_argument(
        "--generations", type=int, default=3, help="fuzzing generations"
    )
    fuzz_run.add_argument(
        "--population", type=int, default=8, help="candidates per generation"
    )
    fuzz_run.add_argument(
        "--baseline-scale", type=float, default=1.0,
        help="scale of the seed (mix) workload the frontier starts from",
    )
    fuzz_run.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for candidate execution "
        "(bit-identical to serial; default: serial)",
    )
    fuzz_run.add_argument(
        "--out", default="corpus.json", help="corpus file to write"
    )

    fuzz_replay = fuzz_sub.add_parser(
        "replay", help="re-execute a saved corpus, verify coverage bit-for-bit"
    )
    fuzz_replay.add_argument("corpus", help="corpus file from `fuzz run`")

    fuzz_corpus = fuzz_sub.add_parser(
        "corpus", help="inspect (and optionally minimize) a saved corpus"
    )
    fuzz_corpus.add_argument("corpus", help="corpus file from `fuzz run`")
    fuzz_corpus.add_argument(
        "--minimize", default="", metavar="FILE",
        help="write a coverage-preserving minimal corpus to FILE",
    )

    fuzz_report = fuzz_sub.add_parser(
        "report", help="mix-only vs mix+fuzz comparison report"
    )
    fuzz_report.add_argument("corpus", help="corpus file from `fuzz run`")
    fuzz_report.add_argument("--seed", type=int, default=0)
    fuzz_report.add_argument(
        "--scale", type=float, default=1.0, help="mix scale for the comparison"
    )
    fuzz_report.add_argument("--threshold", type=float, default=0.9)
    _add_jobs_arg(fuzz_report)

    staticcheck = sub.add_parser(
        "staticcheck", help="static call-graph lock-context checker"
    )
    static_sub = staticcheck.add_subparsers(dest="action", required=True)

    static_run = static_sub.add_parser(
        "run", help="run the static analysis, print outliers + score"
    )
    static_run.add_argument(
        "--threshold", type=float, default=0.7,
        help="majority-context threshold (fraction of paths)",
    )
    static_run.add_argument(
        "--depth", type=int, default=8,
        help="context-string bound: max call-chain length",
    )
    static_run.add_argument(
        "--paths", type=int, default=None, metavar="K",
        help="locked call chains per target (corpus shape; default 3)",
    )
    static_run.add_argument(
        "--findings", type=int, default=20, metavar="N",
        help="print at most N findings (0 = all)",
    )
    static_run.add_argument(
        "--json", default="", metavar="FILE",
        help="write the machine-readable static report",
    )

    static_report = static_sub.add_parser(
        "report", help="fuse static findings with dynamically mined rules"
    )
    _add_pipeline_args(static_report)
    _add_jobs_arg(static_report)
    static_report.add_argument(
        "--rules", default="", metavar="FILE",
        help="rule export from `lockdoc derive --json` "
        "(default: derive in-process from the pipeline)",
    )
    static_report.add_argument("--threshold", type=float, default=0.7)
    static_report.add_argument("--depth", type=int, default=8)
    static_report.add_argument(
        "--json", default="", metavar="FILE",
        help="write the machine-readable fusion report",
    )

    cache_p = sub.add_parser(
        "cache", help="inspect/manage the on-disk trace cache"
    )
    cache_sub = cache_p.add_subparsers(dest="action", required=True)
    cache_sub.add_parser("ls", help="list cached traces and artifacts")
    cache_sub.add_parser("clear", help="delete every cache entry")
    cache_sub.add_parser("path", help="print the cache directory")

    serve = sub.add_parser(
        "serve", help="always-on analysis daemon (run/status/stop)"
    )
    serve_sub = serve.add_subparsers(dest="action", required=True)

    serve_run = serve_sub.add_parser(
        "run", help="serve in the foreground until signalled"
    )
    serve_run.add_argument(
        "--socket", default="", metavar="PATH",
        help="unix socket path (default: <cache dir>/serve/serve.sock)",
    )
    serve_run.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="max concurrent worker processes",
    )
    serve_run.add_argument(
        "--max-inflight", type=int, default=None, metavar="N",
        help="admission limit before load shedding (RETRY_AFTER)",
    )
    serve_run.add_argument(
        "--rate", type=float, default=None, metavar="R",
        help="per-client token-bucket refill rate (requests/second)",
    )
    serve_run.add_argument(
        "--burst", type=float, default=None, metavar="B",
        help="per-client token-bucket burst capacity",
    )
    serve_run.add_argument(
        "--deadline", type=float, default=None, metavar="S",
        help="default per-request deadline in seconds",
    )
    serve_run.add_argument(
        "--max-retries", type=int, default=None, metavar="N",
        help="bounded re-executions after a worker crash",
    )
    serve_run.add_argument(
        "--chaos", default="", metavar="SPEC",
        help="fault-injection drill inside workers: name[:param],... "
        "(crash, stall, stall-sometimes; see repro.faults.daemon)",
    )
    serve_run.add_argument("--chaos-seed", type=int, default=0)
    serve_run.add_argument(
        "--log", default="", metavar="FILE",
        help="structured JSON-lines log "
        "(default: <cache dir>/serve/serve.log.jsonl)",
    )
    serve_run.add_argument(
        "--no-sweep", action="store_true",
        help="skip the startup recovery sweep of the cache",
    )

    serve_status = serve_sub.add_parser(
        "status", help="ask a running daemon for its counters"
    )
    serve_status.add_argument("--socket", default="", metavar="PATH")
    serve_status.add_argument(
        "--json", action="store_true", help="print the raw status object"
    )

    serve_stop = serve_sub.add_parser(
        "stop", help="stop a running daemon (graceful, then SIGTERM)"
    )
    serve_stop.add_argument("--socket", default="", metavar="PATH")
    serve_stop.add_argument(
        "--timeout", type=float, default=10.0,
        help="seconds to wait for the daemon to exit",
    )

    return parser


def _pipeline(args):
    """The cached pipeline for the subcommand's (workload, seed, scale)."""
    return experiments_common.get_pipeline(
        args.seed, args.scale, workload=getattr(args, "workload", "mix")
    )


def _cmd_trace(args) -> int:
    from repro.tracing import serialize
    pipeline = _pipeline(args)
    tracer = pipeline.mix.tracer
    if args.output.endswith(".bin"):
        with open(args.output, "wb") as fp:
            serialize.dump_binary(tracer, fp)
    else:
        with open(args.output, "w") as fp:
            serialize.dump_text(tracer, fp)
    print(f"wrote {len(tracer.events)} events to {args.output}")
    return 0


def _pipeline_params(args) -> dict:
    params = {"workload": args.workload, "seed": args.seed, "scale": args.scale}
    backend = getattr(args, "backend", None)
    if backend is not None:
        params["backend"] = backend
    return params


def _execute_op(args, op: str, params: dict) -> dict:
    """Run one :mod:`repro.serve.ops` operation, locally by default.

    With ``--remote`` the request goes to the analysis daemon; an
    unreachable daemon degrades to local computation (flagged on
    stderr), and a classified remote error surfaces through the
    standard ``error:``/exit-2 contract.  Both paths execute the same
    runner, so the printed result is identical either way.
    """
    from repro.serve import ops

    if not getattr(args, "remote", False):
        return ops.execute(op, params)
    if getattr(args, "no_cache", False):
        raise ValueError(
            "--remote cannot be combined with --no-cache "
            "(the daemon owns the shared cache)"
        )
    from repro.serve.client import DaemonUnreachable, RemoteClient, RemoteError

    try:
        return RemoteClient().request(op, params).result
    except DaemonUnreachable as exc:
        print(f"degraded: {exc}; computing locally", file=sys.stderr)
        return ops.execute(op, params)
    except RemoteError as exc:
        raise ValueError(f"remote {exc.kind}: {exc.message}") from None


def _check_stream_flags(args) -> None:
    """``--stream`` is a local, in-memory fused pass by definition."""
    if getattr(args, "remote", False):
        raise ValueError(
            "--stream cannot be combined with --remote (the stream is "
            "this process's live workload run)"
        )
    if getattr(args, "backend", "memory") != "memory":
        raise ValueError(
            "--stream supports only the memory backend (the fused pass "
            "never builds a store)"
        )


def _cmd_derive(args) -> int:
    params = {
        **_pipeline_params(args),
        "threshold": args.threshold,
        "type": args.type,
        "jobs": args.jobs,
        "want_rules_json": bool(args.json),
    }
    if args.stream:
        from repro.stream import run_derive_streamed

        _check_stream_flags(args)
        params.pop("backend", None)
        result = run_derive_streamed(params)
    else:
        result = _execute_op(args, "derive", params)
    if args.json:
        with open(args.json, "w") as fp:
            fp.write(result["rules_json"])
        print(f"wrote rule export to {args.json}")
    print(result["text"])
    return result["exit_code"]


def _cmd_check(args) -> int:
    params = {**_pipeline_params(args), "jobs": args.jobs}
    result = _execute_op(args, "check", params)
    print(result["text"])
    return result["exit_code"]


def _cmd_docgen(args) -> int:
    pipeline = _pipeline(args)
    derivation = pipeline.derive()
    print(generate_doc(derivation, args.type, DocOptions()))
    return 0


def _cmd_violations(args) -> int:
    params = {
        **_pipeline_params(args),
        "examples": args.examples,
        "jobs": args.jobs,
    }
    result = _execute_op(args, "violations", params)
    print(result["text"])
    return result["exit_code"]


def _cmd_experiment(args) -> int:
    import importlib

    if args.workload != "mix":
        # The paper tables are defined over the benchmark mix; the net
        # analogues (tab3net/tab6net) run their own netbench trace.
        print(
            "error: experiments reproduce paper tables over the benchmark "
            "mix and do not accept --workload (net-only workloads "
            "included; tab3net/tab6net already run netbench internally)",
            file=sys.stderr,
        )
        return 2
    module = importlib.import_module(f"repro.experiments.{args.name}")
    if args.name in ("fig1", "tab1", "tab2"):
        result = module.run()
    else:
        result = module.run(seed=args.seed, scale=args.scale)
    print(result.render())
    return 0


def _cmd_stats(args) -> int:
    result = _execute_op(args, "stats", _pipeline_params(args))
    print(result["text"])
    return result["exit_code"]


def _cmd_watch(args) -> int:
    from repro.stream import run_streamed

    if args.interval < 1:
        raise ValueError(f"--interval {args.interval} must be >= 1")
    run = run_streamed(
        args.workload,
        args.seed,
        args.scale,
        interval=args.interval,
        interval_callback=lambda report: print(report.format(), flush=True),
        top=args.top,
    )
    engine = run.engine
    print(
        f"watched {args.workload}: {engine.total_events} events in "
        f"{len(engine.interval_reports)} interval(s) of "
        f"{args.interval} ticks"
    )
    print(engine.contention_report().render(limit=args.limit))
    return 0


def _cmd_analyze(args) -> int:
    from repro.core.derivator import Derivator
    from repro.core.observations import ObservationTable
    from repro.db.importer import import_trace
    from repro.kernel.vfs.groundtruth import build_filter_config
    from repro.kernel.vfs.layouts import build_struct_registry
    from repro.tracing import serialize

    events, stacks = serialize.load_path(args.trace).as_tuple()
    db = import_trace(events, stacks, build_struct_registry(), build_filter_config())
    table = ObservationTable.from_database(db)
    derivation = Derivator(args.threshold).derive(table)
    rows = [
        [d.type_key, d.member, d.access_type, d.rule.format(),
         f"{d.winner.s_r:.2%}"]
        for d in derivation.all()
        if not args.type or d.type_key == args.type
    ]
    print(render_table(
        ["type", "member", "r/w", "winning rule", "s_r"], rows,
        title=f"rules derived from {args.trace} ({len(events)} events)",
    ))
    return 0


def _cmd_lockorder(args) -> int:
    from repro.core.lockorder import build_lock_order

    print(build_lock_order(_pipeline(args).db).render())
    return 0


def _cmd_races(args) -> int:
    params = {
        **_pipeline_params(args),
        "threshold": args.threshold,
        "examples": args.examples,
        "jobs": args.jobs,
    }
    if args.stream:
        from repro.stream import run_races_streamed

        _check_stream_flags(args)
        params.pop("backend", None)
        result = run_races_streamed(params)
    else:
        result = _execute_op(args, "races", params)
    print(result["text"])
    return result["exit_code"]


def _cmd_docpatch(args) -> int:
    from repro.core.docdiff import build_doc_patch

    pipeline = _pipeline(args)
    patch = build_doc_patch(pipeline.derive(), documented_rules(), args.type)
    print(patch.render())
    return 0


def _cmd_contention(args) -> int:
    from repro.core.contention import build_contention

    pipeline = _pipeline(args)
    report = build_contention(pipeline.mix.tracer.events, pipeline.db)
    print(report.render(limit=args.limit))
    return 0


def _cmd_relations(args) -> int:
    from repro.core.relations import analyze_relations

    pipeline = _pipeline(args)
    report = analyze_relations(pipeline.derive(), pipeline.table, pipeline.db)
    print(report.render())
    return 0


def _cmd_sql(args) -> int:
    from repro.db.sqlbackend import export_sqlite, table_counts

    pipeline = _pipeline(args)
    connection = export_sqlite(pipeline.db, args.output)
    counts = table_counts(connection)
    connection.close()
    rows = sorted(counts.items())
    print(render_table(["table", "rows"], rows, title=f"exported {args.output}"))
    return 0


def _cmd_health(args) -> int:
    import os

    trace = args.trace
    if getattr(args, "remote", False):
        # The daemon runs in its own cwd: a relative path must be
        # resolved on the client side to name the same file.
        trace = os.path.abspath(trace)
    params = {
        "trace": trace,
        "registry": args.registry,
        "budget": args.budget,
        "diagnostics": args.diagnostics,
        "backend": args.backend,
    }
    result = _execute_op(args, "health", params)
    print(result["text"])
    return result["exit_code"]


def _cmd_corrupt(args) -> int:
    from repro.faults import FaultPlan

    plan = FaultPlan.from_spec(args.ops, seed=args.seed)
    with open(args.input, "rb") as fp:
        data = fp.read()
    if not data:
        raise ValueError(f"empty trace file {args.input!r}")
    if data.startswith(b"LDOC1"):
        out = plan.corrupt_binary(data)
        with open(args.output, "wb") as fp:
            fp.write(out)
        size_note = f"{len(data)} -> {len(out)} bytes"
    else:
        out_text = plan.corrupt_text(data.decode("utf-8"))
        with open(args.output, "w") as fp:
            fp.write(out_text)
        size_note = f"{len(data)} -> {len(out_text)} chars"
    print(f"applied {plan.describe()}")
    print(f"wrote {args.output} ({size_note})")
    return 0


def _cmd_fuzz(args) -> int:
    from repro.fuzz import Corpus, FuzzConfig, FuzzOrchestrator, replay_corpus
    from repro.workloads.registry import register_corpus

    if args.action == "run":
        config = FuzzConfig(
            seed=args.seed,
            generations=args.generations,
            population=args.population,
            baseline_scale=args.baseline_scale,
            jobs=args.jobs,
            subsystem=args.subsystem,
        )
        outcome = FuzzOrchestrator(config, progress=print).run()
        corpus = outcome.corpus
        corpus.save(args.out)
        name = register_corpus(corpus)
        baseline_name = "netbench" if args.subsystem == "net" else "mix"
        print(
            f"wrote {args.out}: {len(corpus.entries)} programs, "
            f"{corpus.global_coverage.pair_count} pairs "
            f"(+{outcome.pair_growth:.1%} over the {baseline_name} baseline)"
        )
        print(f"registered as workload {name!r} "
              f"(also runnable as fuzz:{args.out})")
        return 0

    corpus = Corpus.load(args.corpus)
    if args.action == "replay":
        result = replay_corpus(corpus)
        status = "identical" if result.identical else "DIVERGED"
        print(
            f"replayed {result.entries} programs: coverage {status} "
            f"({result.pair_coverage} pairs)"
        )
        if not result.identical:
            print(f"mismatching entries: {result.mismatches}", file=sys.stderr)
            return 1
        return 0
    if args.action == "corpus":
        rows = [
            [e.entry_id, e.generation, len(e.program.threads),
             e.program.op_count, e.novel.pair_count, e.novel.function_count,
             f"{e.energy:.0f}"]
            for e in corpus.entries
        ]
        print(render_table(
            ["id", "gen", "threads", "ops", "new pairs", "new funcs", "energy"],
            rows,
            title=f"corpus {corpus.corpus_id} "
            f"({corpus.global_coverage.pair_count} pairs total)",
        ))
        if args.minimize:
            minimized = corpus.minimize()
            minimized.save(args.minimize)
            print(
                f"minimized {len(corpus.entries)} -> "
                f"{len(minimized.entries)} programs, wrote {args.minimize}"
            )
        return 0
    # report
    from repro.fuzz.report import build_fuzz_report

    report = build_fuzz_report(
        corpus, seed=args.seed, scale=args.scale,
        threshold=args.threshold, jobs=args.jobs,
    )
    print(report.render())
    return 0


def _cmd_staticcheck(args) -> int:
    import json

    from repro.staticcheck import fuse, run_static_analysis

    if args.action == "report":
        # Resolve the dynamic side first: a bad --rules file must fail
        # fast (exit 2) before any static-analysis work starts.
        import os

        from repro.core.rulesio import rules_from_json, rules_to_json

        violations = None
        if args.rules:
            if os.path.getsize(args.rules) == 0:
                raise ValueError(f"empty rule export {args.rules!r}")
            with open(args.rules) as fp:
                rules = rules_from_json(fp.read())
        else:
            pipeline = _pipeline(args)
            derivation = pipeline.derive()
            rules = rules_from_json(rules_to_json(derivation))
            violations = ViolationFinder(derivation, pipeline.table).find()
        result = run_static_analysis(
            threshold=args.threshold, max_depth=args.depth
        )
        fusion = fuse(result.report, rules, violations)
        print(fusion.render())
        if args.json:
            with open(args.json, "w") as fp:
                json.dump(fusion.to_json_dict(), fp, indent=2, sort_keys=True)
                fp.write("\n")
            print(f"wrote fusion report to {args.json}")
        return 0

    # run
    result = run_static_analysis(
        threshold=args.threshold, max_depth=args.depth,
        locked_paths=args.paths,
    )
    print(result.report.render(limit=args.findings))
    score = result.score
    print(
        f"score vs planted ground truth: precision {score.precision:.2f} "
        f"recall {score.recall:.2f} (tp={score.tp} fp={score.fp} "
        f"fn={score.fn}, planted={score.tp + score.fn})"
    )
    if args.json:
        payload = {
            "report": result.report.to_json_dict(),
            "score": {
                "precision": round(score.precision, 4),
                "recall": round(score.recall, 4),
                "tp": score.tp,
                "fp": score.fp,
                "fn": score.fn,
            },
            "planted": [
                {"target": f"{t}.{m}:{a}", "reason": p.reason}
                for p in sorted(result.plan.planted, key=lambda p: p.key)
                for t, m, a in [p.key]
            ],
        }
        with open(args.json, "w") as fp:
            json.dump(payload, fp, indent=2, sort_keys=True)
            fp.write("\n")
        print(f"wrote static report to {args.json}")
    return 0


def _cmd_cache(args) -> int:
    from repro import cache

    if args.action == "path":
        print(cache.cache_dir())
        return 0
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cache files from {cache.cache_dir()}")
        return 0
    # ls
    rows = [
        [
            e.get("workload", "?"),
            e.get("seed", "?"),
            e.get("scale", "?"),
            e.get("events", "?"),
            f"{e.get('bytes', 0) / 1e6:.1f}",
            e.get("artifacts", 0),
            f"{e.get('artifact_bytes', 0) / 1e6:.1f}",
            e.get("key", "?"),
        ]
        for e in cache.entries()
    ]
    print(render_table(
        ["workload", "seed", "scale", "events", "trace MB",
         "artifacts", "artifact MB", "key"],
        rows, title=f"trace cache at {cache.cache_dir()}",
    ))
    return 0


def _cmd_serve(args) -> int:
    from repro.serve import daemon as serve_daemon

    if args.action == "run":
        import os

        config = serve_daemon.build_config(
            socket_path=args.socket or None,
            workers=args.workers,
            max_inflight=args.max_inflight,
            bucket_rate=args.rate,
            bucket_burst=args.burst,
            default_deadline=args.deadline,
            max_retries=args.max_retries,
            chaos_spec=args.chaos or None,
            chaos_seed=args.chaos_seed,
            log_path=args.log or None,
            skip_sweep=args.no_sweep,
        )
        print(f"serving on {config.socket_path} (pid {os.getpid()})", flush=True)
        return serve_daemon.run(config)

    if args.action == "status":
        payload = serve_daemon.status(args.socket or None)
        if args.json:
            import json

            print(json.dumps(payload, indent=2, sort_keys=True))
        elif payload["running"]:
            counters = payload.get("counters", {})
            print(f"running: pid {payload.get('pid')} on {payload['socket']}")
            print(
                f"uptime {payload.get('uptime_s', 0):.0f}s, "
                f"workers {payload.get('workers')}, "
                f"active {payload.get('active')}, "
                f"requests {counters.get('received', 0)} "
                f"(ok {counters.get('ok', 0)}, "
                f"coalesced {counters.get('coalesced', 0)}, "
                f"shed {counters.get('shed', 0)})"
            )
        else:
            print(f"not running (socket {payload['socket']})")
            if payload.get("note"):
                print(payload["note"])
        return 0 if payload["running"] else 2

    # stop
    if serve_daemon.stop(args.socket or None, timeout=args.timeout):
        print("daemon stopped")
        return 0
    print(
        "error: no daemon stopped (not running, or it did not exit in time)",
        file=sys.stderr,
    )
    return 2


_HANDLERS = {
    "trace": _cmd_trace,
    "derive": _cmd_derive,
    "check": _cmd_check,
    "docgen": _cmd_docgen,
    "violations": _cmd_violations,
    "experiment": _cmd_experiment,
    "stats": _cmd_stats,
    "watch": _cmd_watch,
    "analyze": _cmd_analyze,
    "lockorder": _cmd_lockorder,
    "races": _cmd_races,
    "docpatch": _cmd_docpatch,
    "sql": _cmd_sql,
    "contention": _cmd_contention,
    "relations": _cmd_relations,
    "health": _cmd_health,
    "corrupt": _cmd_corrupt,
    "fuzz": _cmd_fuzz,
    "cache": _cmd_cache,
    "staticcheck": _cmd_staticcheck,
    "serve": _cmd_serve,
}


class _Terminated(Exception):
    """SIGTERM arrived: unwind for a clean exit (code 143)."""


def _raise_terminated(signum, frame):
    raise _Terminated()


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: parse arguments and dispatch to a handler.

    Input problems (missing/empty/malformed trace files, bad fault
    specs, exceeded error budgets in strict paths) surface as a
    one-line ``error: ...`` on stderr and exit status 2 — never as a
    traceback.  Long-running subcommands (fuzz, experiment,
    staticcheck, serve) interrupted by SIGINT/SIGTERM exit with the
    conventional codes 130/143 and a one-line message, also without a
    traceback.
    """
    args = _build_parser().parse_args(argv)
    jobs = getattr(args, "jobs", None)
    if jobs is not None and jobs < 1:
        print(f"error: --jobs {jobs} must be >= 1", file=sys.stderr)
        return 2
    # One process-wide default so every derivation a subcommand
    # triggers (including inside experiments) uses the worker pool.
    experiments_common.set_default_jobs(jobs)
    if getattr(args, "no_cache", False):
        from repro import cache

        cache.set_enabled(False)
    import signal as signal_mod

    previous_sigterm = None
    try:
        # Only the main thread may install handlers; in-process callers
        # (tests, embedding) from other threads keep their own.
        previous_sigterm = signal_mod.signal(
            signal_mod.SIGTERM, _raise_terminated
        )
    except ValueError:
        pass
    try:
        return _HANDLERS[args.command](args)
    except KeyboardInterrupt:
        print("interrupted (SIGINT)", file=sys.stderr)
        return 130
    except _Terminated:
        print("terminated (SIGTERM)", file=sys.stderr)
        return 143
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if previous_sigterm is not None:
            try:
                signal_mod.signal(signal_mod.SIGTERM, previous_sigterm)
            except ValueError:
                pass


if __name__ == "__main__":
    sys.exit(main())
