"""Shim for legacy editable installs (`pip install -e . --no-build-isolation`).

The execution environment has no network and no `wheel` package, so the
PEP 660 editable path is unavailable; this file enables the classic
`setup.py develop` route.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
