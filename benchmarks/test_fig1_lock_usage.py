"""Fig. 1 — lock usage and LoC growth, Linux v3.0 .. v4.18.

Regenerates the growth series from the synthetic source corpus and
checks the paper-stated growth factors (+81 % mutex, +45 % spinlock,
+73 % LoC, spinlock dip near the end).
"""

from benchmarks.conftest import emit
from repro.experiments import fig1
from repro.kernelsrc.generator import generate_tree
from repro.kernelsrc.model import KERNEL_VERSIONS
from repro.kernelsrc.scanner import scan_tree


def test_fig1_lock_usage(benchmark):
    result = fig1.run(stride=2)

    def scan_one_release():
        return scan_tree(generate_tree(KERNEL_VERSIONS[-1]))

    benchmark(scan_one_release)
    emit("Fig. 1 — lock usage and LoC growth", result.render())
    assert abs(result.growth("mutex") - 1.81) < 0.15
    assert abs(result.growth("spinlock") - 1.45) < 0.12
    assert abs(result.growth("loc") - 1.73) < 0.10
    assert result.peak_version("spinlock") != result.series[-1]["version"]
