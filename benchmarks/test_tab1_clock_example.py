"""Tab. 1 — the clock-counter access matrix (observed/folded/WoR)."""

from benchmarks.conftest import emit
from repro.experiments import tab1


def test_tab1_clock_example(benchmark):
    result = benchmark(tab1.run)
    emit("Tab. 1 — clock example accesses", result.render())
    assert result.matrix == tab1.PAPER_TAB1
