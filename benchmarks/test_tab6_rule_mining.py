"""Tab. 6 — mined locking rules per data type and inode subclass."""

from benchmarks.conftest import BENCH_SCALE, emit
from repro.core.derivator import Derivator
from repro.experiments import tab6


def test_tab6_rule_mining(benchmark, pipeline):
    result = tab6.run(seed=0, scale=BENCH_SCALE)
    benchmark(lambda: Derivator().derive(pipeline.table))
    emit("Tab. 6 — mined locking rules", result.render())

    # static columns are exact
    for type_key, (members, _bl, *_unused) in tab6.PAPER_TAB6.items():
        assert result.row(type_key).members == members, type_key

    # shape: lock-free reads far outnumber lock-free writes
    nl_r = sum(r.no_lock_r for r in result.rows)
    nl_w = sum(r.no_lock_w for r in result.rows)
    rules_r = sum(r.rules_r for r in result.rows)
    rules_w = sum(r.rules_w for r in result.rows)
    assert nl_r / rules_r > 1.5 * (nl_w / rules_w)

    # shape: subclass coverage ordering — ext4 rich, debugfs near-zero
    assert result.row("inode:ext4").rules_r >= 30
    debugfs = result.row("inode:debugfs")
    assert debugfs.rules_r + debugfs.rules_w <= 4

    # clean JBD2 shapes: journal_head has no lock-free write rules
    assert result.row("journal_head").no_lock_w == 0
