"""Ablation — LockDoc's winner selection vs. the naive strategy.

Sec. 4.3's argument: picking the highest-support hypothesis above the
threshold lets under-specified rules (and "no lock") shadow the true
rule.  This ablation derives winners both ways over the full trace and
counts how often they disagree — and verifies the clock example's
known-truth case.
"""

from benchmarks.conftest import emit
from repro.core.hypotheses import Hypothesis, enumerate_and_score
from repro.core.lockrefs import LockRef
from repro.core.report import render_table
from repro.core.rules import LockingRule
from repro.core.selection import select_naive, select_winner
from repro.experiments.tab1 import record_clock_trace


def test_ablation_selection_strategy(benchmark, pipeline):
    table = pipeline.table

    def derive_both_ways():
        disagreements = []
        for type_key, member, access in table.keys():
            sequences = table.sequences(type_key, member, access)
            hypotheses = enumerate_and_score(sequences)
            lockdoc = select_winner(hypotheses).winner
            naive = select_naive(hypotheses)
            if lockdoc.rule != naive.rule:
                disagreements.append(
                    [f"{type_key}.{member}/{access}",
                     lockdoc.rule.format(), naive.rule.format()]
                )
        return disagreements

    disagreements = benchmark(derive_both_ways)
    emit(
        "Ablation — selection strategy (LockDoc vs naive)",
        render_table(
            ["target", "LockDoc winner", "naive winner"],
            disagreements[:20],
            title=f"{len(disagreements)} of {len(table.keys())} targets disagree",
        ),
    )

    # The naive strategy loses every lock it should keep: whenever they
    # disagree, naive picked a rule with fewer locks.
    assert disagreements
    # Known ground truth: the clock example.
    clock = record_clock_trace(1000)
    hypotheses = enumerate_and_score(clock.table.sequences("clock", "minutes", "w"))
    assert select_winner(hypotheses).winner.rule.format() == (
        "ES(sec_lock in clock) -> ES(min_lock in clock)"
    )
    assert select_naive(hypotheses).rule.format() != (
        "ES(sec_lock in clock) -> ES(min_lock in clock)"
    )
    # The naive winner must be deterministic regardless of hypothesis
    # order — otherwise this ablation's disagreement counts would be
    # order-sensitive.  Tie-break: fewest locks, then lexicographically
    # first format.
    assert select_naive(list(reversed(hypotheses))) == select_naive(hypotheses)


def test_naive_tie_break_is_explicit_and_deterministic():
    """The strawman breaks support ties towards *fewer* locks and the
    lexicographically-first format (regression: it used to do the exact
    opposite via ``max`` over ascending keys)."""
    sec = LockRef.es("sec_lock", "clock")
    minute = LockRef.es("min_lock", "clock")
    tied = [
        Hypothesis(rule=LockingRule.of(sec, minute), s_a=7, total=7),
        Hypothesis(rule=LockingRule.of(minute), s_a=7, total=7),
        Hypothesis(rule=LockingRule.of(sec), s_a=7, total=7),
    ]
    # Fewest locks first; "ES(min_lock ...)" < "ES(sec_lock ...)".
    assert select_naive(tied).rule == LockingRule.of(minute)
    assert select_naive(list(reversed(tied))).rule == LockingRule.of(minute)
    with_no_lock = tied + [
        Hypothesis(rule=LockingRule.no_lock(), s_a=7, total=7)
    ]
    assert select_naive(with_no_lock).rule.is_no_lock
