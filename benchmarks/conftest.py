"""Benchmark fixtures.

The tracing phase runs once per session (like the paper's single 34-min
Fail* run); each benchmark then measures its analysis phase over the
shared trace and prints the regenerated table/figure, so a
``pytest benchmarks/ --benchmark-only`` run reproduces the entire
evaluation section.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.common import DEFAULT_SCALE, get_pipeline

#: Benchmark-run workload scale (matches the experiments default).
BENCH_SCALE = DEFAULT_SCALE


@pytest.fixture(scope="session", autouse=True)
def _isolated_trace_cache(tmp_path_factory):
    """Session-private on-disk trace cache (hermetic benchmark runs)."""
    os.environ["LOCKDOC_CACHE_DIR"] = str(tmp_path_factory.mktemp("trace-cache"))
    yield


@pytest.fixture(scope="session")
def pipeline():
    return get_pipeline(seed=0, scale=BENCH_SCALE)


def emit(title: str, rendered: str) -> None:
    """Print a regenerated table under a visible banner."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{rendered}\n")
