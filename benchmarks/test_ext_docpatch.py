"""Extension — documentation patch generation.

Sec. 5.5: generated rules "can replace currently documented but
ambivalent/incorrect rules, or add new documentation".  The patch
generator computes that diff; on the calibrated corpus it must propose
updates for the stale inode rules (i_size under i_lock, ...) and adds
for confidently-mined undocumented members.
"""

from benchmarks.conftest import emit
from repro.core.docdiff import DocAction, build_doc_patch
from repro.doc.corpus import documented_rules


def test_ext_docpatch(benchmark, pipeline):
    derivation = pipeline.derive()

    patch = benchmark(
        build_doc_patch, derivation, documented_rules(), "inode"
    )
    emit("Extension — documentation patch for struct inode", patch.render())

    counts = patch.summary()
    assert counts["update"] >= 3  # the stale Tab. 5 rules
    assert counts["add"] >= 5  # confidently mined, undocumented members
    assert counts["review"] >= 1  # documented but unobserved (#No)
    assert counts["keep"] >= 2  # i_bytes/i_state writes

    # the famously stale i_size rule is proposed for update
    updates = {
        (e.member, e.access_type) for e in patch.by_action(DocAction.UPDATE)
    }
    assert ("i_size", "w") in updates
