"""Tab. 8 — the three violation examples, with exact lock shapes."""

from benchmarks.conftest import BENCH_SCALE, emit
from repro.experiments import tab8


def test_tab8_violation_examples(benchmark):
    result = benchmark(tab8.run, seed=0, scale=BENCH_SCALE)
    emit("Tab. 8 — violation examples", result.render())
    assert result.found_all(), result.render()

    i_hash, jbd2_row, d_subdirs = result.examples

    held = [r.format() for r in i_hash.held]
    assert "inode_hash_lock" in held
    assert "EO(i_lock in inode)" in held
    assert i_hash.sample.file == "fs/inode.c"

    held = [r.format() for r in jbd2_row.held]
    assert "ES(j_state_lock in journal_t):r" in held
    assert jbd2_row.sample.file == "fs/ext4/inode.c"
    assert jbd2_row.sample.line == 4685

    held = [r.format() for r in d_subdirs.held]
    assert "rcu:r" in held
    assert "EO(i_rwsem in inode):r" in held
    assert d_subdirs.sample.file == "fs/libfs.c"
