"""Tab. 5 — per-rule check detail for struct inode."""

from benchmarks.conftest import BENCH_SCALE, emit
from repro.core.checker import check_rules
from repro.doc.corpus import inode_rules
from repro.experiments import tab5


def test_tab5_inode_rules(benchmark, pipeline):
    result = tab5.run(seed=0, scale=BENCH_SCALE)
    benchmark(check_rules, pipeline.table, inode_rules())
    emit("Tab. 5 — check rules for struct inode", result.render())

    for (member, access), verdict in tab5.PAPER_TAB5.items():
        assert result.verdict(member, access) == verdict, (member, access)

    # support shapes: i_bytes/i_state writes fully supported, i_blocks
    # writes just below 100 % (paper 93.56 %), i_lru around half
    # (paper ~50 %), i_state reads mostly unlocked (paper 19.78 %)
    by_key = {
        (r.documented.member, r.access_type): r.s_r for r in result.results
    }
    assert by_key[("i_bytes", "w")] == 1.0
    assert by_key[("i_state", "w")] == 1.0
    assert 0.85 < by_key[("i_blocks", "w")] < 1.0
    assert 0.25 < by_key[("i_lru", "r")] < 0.75
    assert 0.25 < by_key[("i_lru", "w")] < 0.75
    assert by_key[("i_state", "r")] < 0.5
    assert by_key[("i_size", "w")] == 0.0
