"""Tab. 7 — summary of locking-rule violations."""

from benchmarks.conftest import BENCH_SCALE, emit
from repro.core.violations import ViolationFinder
from repro.experiments import tab7


def test_tab7_violations(benchmark, pipeline):
    result = tab7.run(seed=0, scale=BENCH_SCALE)
    derivation = pipeline.derive()
    benchmark(lambda: ViolationFinder(derivation, pipeline.table).find())
    emit("Tab. 7 — locking-rule violations", result.render())

    # buffer_head dominates (paper: 45 325 of 52 452 events)
    buffer_head = result.events_for("buffer_head")
    assert buffer_head == max(s.events for s in result.summaries)

    # the paper's zero rows stay zero
    for type_key in tab7.PAPER_ZERO_TYPES:
        assert result.events_for(type_key) == 0, type_key

    # the paper's hot types are non-zero
    for type_key in ("journal_t", "inode:rootfs", "inode:ext4", "inode:tmpfs",
                     "dentry", "pipe_inode_info"):
        assert result.events_for(type_key) > 0, type_key

    # violations are a small fraction of all accesses (paper ~0.4 %)
    kept = pipeline.db.stats()["kept_accesses"]
    assert result.total_events / kept < 0.05
