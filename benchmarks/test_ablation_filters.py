"""Ablation — init/teardown filtering on vs. off (Sec. 5.3, item 2).

Object construction writes members without locks on purpose; feeding
those accesses into derivation drags relative support of true lock
rules down.  The ablation quantifies how many winning write rules are
weakened or flipped to "no lock" when the filter is disabled.
"""

from benchmarks.conftest import emit
from repro.core.derivator import Derivator
from repro.core.observations import ObservationTable
from repro.core.report import render_table
from repro.db.filters import FilterConfig
from repro.db.importer import import_tracer
from repro.kernel.vfs.groundtruth import (
    GLOBAL_FUNCTION_BLACKLIST,
    MEMBER_BLACKLIST,
    build_filter_config,
)


def test_ablation_init_teardown_filter(benchmark, pipeline):
    tracer = pipeline.mix.tracer
    structs = pipeline.mix.world.rt.structs

    no_init_filter = FilterConfig(
        init_teardown_functions=set(),  # << the ablated knob
        global_function_blacklist=set(GLOBAL_FUNCTION_BLACKLIST),
        member_blacklist=set(MEMBER_BLACKLIST),
    )
    db_ablated = benchmark(import_tracer, tracer, structs, no_init_filter)
    table_ablated = ObservationTable.from_database(db_ablated)
    d_ablated = Derivator().derive(table_ablated)
    d_normal = pipeline.derive()

    flipped = []
    weakened = 0
    for type_key, member, access in d_normal.keys():
        if access != "w":
            continue
        normal = d_normal.get(type_key, member, access)
        ablated = d_ablated.get(type_key, member, access)
        if normal.is_no_lock or ablated is None:
            continue
        if ablated.is_no_lock:
            flipped.append([f"{type_key}.{member}", normal.rule.format()])
        elif ablated.winner.s_r < normal.winner.s_r - 1e-9:
            weakened += 1

    emit(
        "Ablation — init/teardown filter disabled",
        render_table(
            ["member", "true rule lost"],
            flipped[:20],
            title=(
                f"{len(flipped)} write rules flip to 'no lock', "
                f"{weakened} more lose support"
            ),
        ),
    )
    assert len(flipped) + weakened > 5
    # the filter matters: it removes a large share of all accesses
    kept_normal = pipeline.db.stats()["kept_accesses"]
    kept_ablated = db_ablated.stats()["kept_accesses"]
    assert kept_ablated > kept_normal
