"""Tab. 4 — validation of the documented locking rules."""

from benchmarks.conftest import BENCH_SCALE, emit
from repro.core.checker import check_rules
from repro.doc.corpus import documented_rules
from repro.experiments import tab4


def test_tab4_rule_checking(benchmark, pipeline):
    result = tab4.run(seed=0, scale=BENCH_SCALE)
    benchmark(check_rules, pipeline.table, documented_rules())
    emit("Tab. 4 — validated documented rules", result.render())

    # corpus sizes are exact (the paper's 142 rules, #R and #No columns)
    for data_type, (rules, unobserved, observed, *_unused) in tab4.PAPER_TAB4.items():
        summary = result.summary_for(data_type)
        assert summary.rules == rules, data_type
        assert abs(summary.unobserved - unobserved) <= 2, data_type

    # inode is calibrated exactly (Tab. 5 is its detail view)
    inode = result.summary_for("inode")
    assert (inode.correct, inode.ambivalent, inode.incorrect) == (2, 5, 4)

    # ordering shapes: transaction_t best-documented, inode worst,
    # dentry most ambivalent
    correct = {s.data_type: s.correct / s.observed for s in result.summaries}
    ambivalent = {s.data_type: s.ambivalent / s.observed for s in result.summaries}
    assert correct["transaction_t"] == max(correct.values())
    assert correct["inode"] == min(correct.values())
    assert ambivalent["dentry"] == max(ambivalent.values())

    # the headline: only about half the documented rules fully hold
    assert 0.35 < result.overall_correct_fraction() < 0.75
