"""Static-checker benchmark: precision/recall, determinism, throughput.

Runs the full static pipeline (plan → render → parse → trace →
outliers → score) and gates the properties CI cares about:

* **precision / recall** — flagged targets vs the corpus plan's
  planted deviations; fails under ``--min-precision`` /
  ``--min-recall`` (both default 0.8).
* **determinism** — two complete runs must produce byte-identical
  corpus trees and byte-identical findings JSON (same findings, same
  order); any drift fails the run.
* **fusion** — the static report fused against a real pipeline
  derivation must classify at least one finding *static-only* (the
  planted coverage gaps are invisible to the dynamic side).
* **throughput** — functions analyzed per second, best of
  ``--repeat`` timed runs, each preceded by ``gc.collect()``.

Results land in ``BENCH_static.json``::

    PYTHONPATH=src python -m benchmarks.perf.bench_static \
        --scale 4 --out BENCH_static.json
"""

from __future__ import annotations

import argparse
import gc
import hashlib
import json
import sys
import time

from repro.atomicio import atomic_write_json

#: Bump on any change to the JSON layout.
SCHEMA = "lockdoc-bench-static/1"


def _findings_blob(result) -> bytes:
    return json.dumps(result.report.to_json_dict(), sort_keys=True).encode()


def _tree_blob(result) -> bytes:
    return json.dumps(sorted(result.tree.items())).encode()


def bench_analysis(threshold: float, depth: int, repeat: int) -> dict:
    from repro.staticcheck import run_static_analysis

    best = float("inf")
    result = None
    for _ in range(max(1, repeat)):
        gc.collect()
        t0 = time.perf_counter()
        result = run_static_analysis(threshold=threshold, max_depth=depth)
        best = min(best, time.perf_counter() - t0)
    score = result.score
    counters = result.report.counters
    return {
        "functions": result.report.functions,
        "call_edges": counters["call_edges"],
        "targets": counters["targets"],
        "paths": counters["paths"],
        "truncated_paths": counters["truncated_paths"],
        "findings": len(result.report.findings),
        "flagged_targets": counters["flagged_targets"],
        "planted": score.tp + score.fn,
        "tp": score.tp,
        "fp": score.fp,
        "fn": score.fn,
        "precision": round(score.precision, 4),
        "recall": round(score.recall, 4),
        "best_s": round(best, 4),
        "functions_per_s": round(result.report.functions / best, 1),
        "_result": result,  # stripped before writing the report
    }


def bench_determinism(result, threshold: float, depth: int) -> dict:
    from repro.staticcheck import run_static_analysis

    again = run_static_analysis(threshold=threshold, max_depth=depth)
    tree_first = _tree_blob(result)
    tree_again = _tree_blob(again)
    findings_first = _findings_blob(result)
    findings_again = _findings_blob(again)
    return {
        "tree_identical": tree_first == tree_again,
        "findings_identical": findings_first == findings_again,
        "tree_sha256": hashlib.sha256(tree_first).hexdigest(),
        "findings_sha256": hashlib.sha256(findings_first).hexdigest(),
    }


def bench_fusion(result, seed: int, scale: float) -> dict:
    from repro.core.rulesio import rules_from_json, rules_to_json
    from repro.core.violations import ViolationFinder
    from repro.experiments import common
    from repro.staticcheck import fuse

    pipeline = common.get_pipeline(seed, scale)
    derivation = pipeline.derive()
    rules = rules_from_json(rules_to_json(derivation))
    violations = ViolationFinder(derivation, pipeline.table).find()
    fusion = fuse(result.report, rules, violations)
    counts = fusion.counts()
    return {
        "confirmed_by_trace": counts["confirmed-by-trace"],
        "static_only": counts["static-only"],
        "dynamic_only": counts["dynamic-only"],
        "agreement": dict(sorted(fusion.agreement.items())),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="benchmark the static checker; write BENCH_static.json"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--scale", type=float, default=4.0,
        help="pipeline scale for the fusion stage",
    )
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--threshold", type=float, default=0.7)
    parser.add_argument("--depth", type=int, default=8)
    parser.add_argument(
        "--min-precision", type=float, default=0.8,
        help="fail if precision on the planted set drops below this",
    )
    parser.add_argument(
        "--min-recall", type=float, default=0.8,
        help="fail if recall on the planted set drops below this",
    )
    parser.add_argument("--out", default="BENCH_static.json")
    args = parser.parse_args(argv)

    analysis = bench_analysis(args.threshold, args.depth, args.repeat)
    result = analysis.pop("_result")
    print(
        f"analysis: {analysis['functions']} functions, "
        f"{analysis['paths']} paths over {analysis['targets']} targets, "
        f"{analysis['findings']} findings in {analysis['best_s']:.3f}s "
        f"({analysis['functions_per_s']:.0f} functions/s)"
    )
    print(
        f"score: precision={analysis['precision']} "
        f"recall={analysis['recall']} "
        f"(tp={analysis['tp']} fp={analysis['fp']} fn={analysis['fn']} "
        f"of {analysis['planted']} planted)"
    )

    determinism = bench_determinism(result, args.threshold, args.depth)
    print(
        f"determinism: tree_identical={determinism['tree_identical']} "
        f"findings_identical={determinism['findings_identical']}"
    )

    fusion = bench_fusion(result, args.seed, args.scale)
    print(
        f"fusion: confirmed={fusion['confirmed_by_trace']} "
        f"static_only={fusion['static_only']} "
        f"dynamic_only={fusion['dynamic_only']}"
    )

    failures = []
    if analysis["precision"] < args.min_precision:
        failures.append(
            f"precision {analysis['precision']} below the "
            f"{args.min_precision} floor"
        )
    if analysis["recall"] < args.min_recall:
        failures.append(
            f"recall {analysis['recall']} below the {args.min_recall} floor"
        )
    if not determinism["tree_identical"]:
        failures.append("corpus tree differed between two runs")
    if not determinism["findings_identical"]:
        failures.append("findings differed between two runs")
    if fusion["static_only"] < 1:
        failures.append("fusion produced no static-only finding")

    report = {
        "schema": SCHEMA,
        "seed": args.seed,
        "scale": args.scale,
        "repeat": args.repeat,
        "threshold": args.threshold,
        "depth": args.depth,
        "python": sys.version.split()[0],
        "analysis": analysis,
        "determinism": determinism,
        "fusion": fusion,
        "gates": {
            "min_precision": args.min_precision,
            "min_recall": args.min_recall,
            "failures": failures,
        },
    }
    atomic_write_json(args.out, report)
    print(f"wrote {args.out}")
    if failures:
        for failure in failures:
            print(f"error: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
