"""The pre-memoization serial derivation path, preserved for benchmarking.

This is the engine as it stood before the parallel/memoized rewrite:
for every target it re-folds the raw observations into a Counter and
re-runs ``enumerate_and_score`` from scratch — no profile sharing, no
incremental fold.  The benchmark harness times it as the "serial
baseline" so ``BENCH_derive.json``'s speedup numbers measure the new
engine against the code it replaced, and asserts its output still
equals the new engine's (the optimization must be behaviour-free).
"""

from __future__ import annotations

from collections import Counter

from repro.core.derivator import DerivationResult, Derivator
from repro.core.hypotheses import enumerate_and_score
from repro.core.observations import ObservationTable


def fold_sequences(table: ObservationTable, key):
    """The old ``ObservationTable.sequences``: rescan and count."""
    counter: Counter = Counter()
    for obs in table.get(*key):
        counter[obs.lockseq] += 1
    return sorted(counter.items(), key=lambda item: (-item[1], item[0]))


def derive_serial_baseline(
    derivator: Derivator, table: ObservationTable
) -> DerivationResult:
    """Unmemoized whole-table derivation (the pre-rewrite hot path)."""
    result = DerivationResult(derivator.accept_threshold)
    for key in table.keys():
        sequences = fold_sequences(table, key)
        if not sequences:
            continue
        hypotheses = enumerate_and_score(sequences, derivator.max_locks)
        result.add(
            derivator._build(*key, table.observation_count(*key), hypotheses)
        )
    return result
