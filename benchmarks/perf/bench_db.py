"""SQLite-backend benchmark: parity, out-of-core memory, sharded import.

Gates the promotion of SQLite to a first-class query backend
(:mod:`repro.db.sqlstore`):

* **parity** — rendered rule derivations, violations, and race reports
  from the SQLite backend must be byte-identical to the in-memory
  backend on the mix workload, the racer workload, and a
  fault-corrupted (2% event drops) mix trace.
* **memory** — peak traced-allocation bytes (the same peak-RSS proxy
  :mod:`tracemalloc` gives bench_trace) of the full SQLite derive path
  — store build + columnar fold + ``Derivator.derive`` — at
  ``--scale-factor``× the base scale must stay *below* the in-memory
  path's peak at the base scale: resident memory must not grow
  linearly with trace length.
* **throughput** — sharded parallel store building
  (:func:`~repro.db.sqlstore.build_store_from_trace`) at the large
  scale must reach at least ``--min-throughput-ratio`` of the
  in-memory importer's events/s on the same trace file.

Results land in ``BENCH_db.json``::

    PYTHONPATH=src python -m benchmarks.perf.bench_db \
        --scale 18 --out BENCH_db.json
"""

from __future__ import annotations

import argparse
import gc
import os
import sys
import tempfile
import time
import tracemalloc

import repro.kernel  # noqa: F401  (must initialize before repro.tracing)
from repro.atomicio import atomic_write_json

#: Bump on any change to the JSON layout.
SCHEMA = "lockdoc-bench-db/1"


def _write_trace(path: str, seed: float, scale: float, workload: str,
                 corrupt: bool = False) -> int:
    """Generate a workload trace file; returns its event count."""
    from repro.tracing import serialize

    if workload == "mix":
        from repro.workloads.mix import run_benchmark_mix

        tracer = run_benchmark_mix(seed=int(seed), scale=scale).tracer
    else:
        from repro.workloads.racer import run_racer

        tracer = run_racer(seed=int(seed), scale=scale,
                           racy=workload == "racer").tracer
    events = tracer.events
    if corrupt:
        from repro.faults import FaultPlan

        events = FaultPlan.from_spec("drop:0.02", seed=1).apply_events(events)
    with open(path, "wb") as fp:
        serialize.write_binary(events, serialize.stacks_of(tracer), fp)
    return len(events)


def _memory_pipeline(trace_path: str, recipe: str):
    """In-memory backend: import -> fold -> derive.  Returns rendered
    (rules, violations, races) plus the database for reuse."""
    from repro.analysis import detect_races
    from repro.core.derivator import Derivator
    from repro.core.observations import ObservationTable
    from repro.core.violations import ViolationFinder
    from repro.db.health import ingest_path
    from repro.db.importer import LENIENT_POLICY
    from repro.tracing.serialize import load_path
    from repro.workloads.registry import database_inputs

    structs, filters = database_inputs(recipe)
    db, _health, _report = ingest_path(
        trace_path, structs, filters, LENIENT_POLICY
    )
    table = ObservationTable.from_database(db, split_subclasses=True)
    derivation = Derivator(0.9).derive(table)
    violations = ViolationFinder(derivation, table).find()
    events = load_path(trace_path, lenient=True).events
    races = detect_races(events, db, derivation).render(examples=2)
    return _render_rules(derivation), [v.format() for v in violations], races


def _sqlite_pipeline(trace_path: str, store_path: str, recipe: str):
    """SQLite backend: sharded build -> fold -> derive."""
    from repro.analysis import detect_races
    from repro.core.derivator import Derivator
    from repro.core.violations import ViolationFinder
    from repro.db.importer import LENIENT_POLICY
    from repro.db.sqlstore import SqliteTraceStore, build_store_from_trace
    from repro.tracing.serialize import load_path

    build_store_from_trace(store_path, trace_path, recipe,
                           policy=LENIENT_POLICY)
    store = SqliteTraceStore(store_path)
    try:
        table = store.fold(split_subclasses=True)
        derivation = Derivator(0.9).derive(table)
        violations = ViolationFinder(derivation, table).find()
        events = load_path(trace_path, lenient=True).events
        races = detect_races(
            events, store.load_database(), derivation
        ).render(examples=2)
        return (
            _render_rules(derivation),
            [v.format() for v in violations],
            races,
        )
    finally:
        store.close()


def _render_rules(derivation) -> list:
    return [
        f"{d.type_key}\t{d.member}\t{d.access_type}\t{d.rule.format()}"
        f"\t{d.winner.s_r:.6f}\t{d.observation_count}"
        for d in derivation.all()
    ]


def bench_parity(tmp: str, seed: int, scale: float) -> dict:
    """Byte-identical output across backends, per workload flavour."""
    flavours = (
        ("mix", "mix", "vfs", scale, False),
        ("racer", "racer", "racer", 1.0, False),
        ("mix-corrupted", "mix", "vfs", scale, True),
    )
    results = {}
    for label, workload, recipe, flavour_scale, corrupt in flavours:
        trace_path = os.path.join(tmp, f"{label}.bin")
        events = _write_trace(trace_path, seed, flavour_scale, workload,
                              corrupt=corrupt)
        memory = _memory_pipeline(trace_path, recipe)
        sqlite = _sqlite_pipeline(
            trace_path, os.path.join(tmp, f"{label}.store.sqlite"), recipe
        )
        results[label] = {
            "events": events,
            "rules": len(memory[0]),
            "violations": len(memory[1]),
            "rules_identical": sqlite[0] == memory[0],
            "violations_identical": sqlite[1] == memory[1],
            "races_identical": sqlite[2] == memory[2],
        }
    return results


def _peak_of(fn) -> int:
    gc.collect()
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def bench_memory(tmp: str, base_trace: str, big_trace: str) -> dict:
    """Out-of-core gate: sqlite derive at the big scale must stay under
    the in-memory derive peak at the base scale."""
    from repro.core.derivator import Derivator
    from repro.core.observations import ObservationTable
    from repro.db.importer import Importer
    from repro.db.sqlstore import SqliteTraceStore, build_store
    from repro.tracing.serialize import open_binary_stream
    from repro.workloads.registry import database_inputs

    def memory_derive():
        structs, filters = database_inputs("vfs")
        with open(base_trace, "rb") as fp:
            stream = open_binary_stream(fp)
            db = Importer(structs, filters).run(stream.events, stream.stacks)
        table = ObservationTable.from_database(db, split_subclasses=True)
        Derivator(0.9).derive(table)

    store_path = os.path.join(tmp, "memgate.store.sqlite")

    def sqlite_derive():
        structs, filters = database_inputs("vfs")
        with open(big_trace, "rb") as fp:
            stream = open_binary_stream(fp)
            build_store(store_path, stream.events, stream.stacks,
                        structs, filters)
        store = SqliteTraceStore(store_path)
        try:
            Derivator(0.9).derive(store.fold(split_subclasses=True))
        finally:
            store.close()

    memory_peak = _peak_of(memory_derive)
    sqlite_peak = _peak_of(sqlite_derive)
    return {
        "memory_peak_bytes": memory_peak,
        "sqlite_peak_bytes": sqlite_peak,
        "peak_ratio": round(sqlite_peak / memory_peak, 4)
        if memory_peak else None,
        "store_bytes": os.path.getsize(store_path),
    }


def bench_throughput(tmp: str, big_trace: str, big_events: int) -> dict:
    """Sharded store build vs the in-memory importer, events/s."""
    from repro.db.importer import Importer
    from repro.db.sqlstore import build_store_from_trace, default_shard_count
    from repro.tracing.serialize import open_binary_stream
    from repro.workloads.registry import database_inputs

    gc.collect()
    t0 = time.perf_counter()
    structs, filters = database_inputs("vfs")
    with open(big_trace, "rb") as fp:
        stream = open_binary_stream(fp)
        Importer(structs, filters).run(stream.events, stream.stacks)
    memory_s = time.perf_counter() - t0

    shard_count = default_shard_count()
    store_path = os.path.join(tmp, "throughput.store.sqlite")
    gc.collect()
    t0 = time.perf_counter()
    build_store_from_trace(store_path, big_trace, "vfs",
                           shard_count=shard_count)
    sharded_s = time.perf_counter() - t0
    return {
        "events": big_events,
        "shard_count": shard_count,
        "memory_s": round(memory_s, 4),
        "sharded_s": round(sharded_s, 4),
        "memory_events_per_s": round(big_events / memory_s, 1),
        "sharded_events_per_s": round(big_events / sharded_s, 1),
        "throughput_ratio": round(memory_s / sharded_s, 4),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="benchmark the SQLite trace backend; write BENCH_db.json"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=float, default=18.0)
    parser.add_argument(
        "--scale-factor", type=float, default=2.0,
        help="the out-of-core gates run at scale * this factor",
    )
    parser.add_argument(
        "--min-throughput-ratio", type=float, default=1.0,
        help="fail unless sharded import events/s reaches this fraction "
        "of the in-memory importer (relax on small CI runs where "
        "process spawn dominates)",
    )
    parser.add_argument("--out", default="BENCH_db.json")
    args = parser.parse_args(argv)
    big_scale = args.scale * args.scale_factor

    with tempfile.TemporaryDirectory(prefix="lockdoc-bench-db-") as tmp:
        parity = bench_parity(tmp, args.seed, args.scale)
        for label, record in parity.items():
            print(
                f"parity[{label}]: {record['events']} events, "
                f"rules={record['rules_identical']} "
                f"violations={record['violations_identical']} "
                f"races={record['races_identical']}"
            )

        base_trace = os.path.join(tmp, "base.bin")
        big_trace = os.path.join(tmp, "big.bin")
        _write_trace(base_trace, args.seed, args.scale, "mix")
        big_events = _write_trace(big_trace, args.seed, big_scale, "mix")

        memory = bench_memory(tmp, base_trace, big_trace)
        print(
            f"memory: sqlite@{big_scale:g} peak "
            f"{memory['sqlite_peak_bytes'] / 1e6:.1f} MB vs "
            f"memory@{args.scale:g} peak "
            f"{memory['memory_peak_bytes'] / 1e6:.1f} MB "
            f"({memory['peak_ratio']:.0%})"
        )

        throughput = bench_throughput(tmp, big_trace, big_events)
        print(
            f"throughput: sharded({throughput['shard_count']}) "
            f"{throughput['sharded_events_per_s']:.0f} ev/s vs memory "
            f"{throughput['memory_events_per_s']:.0f} ev/s "
            f"(ratio {throughput['throughput_ratio']:.2f})"
        )

    failures = []
    for label, record in parity.items():
        for aspect in ("rules", "violations", "races"):
            if not record[f"{aspect}_identical"]:
                failures.append(
                    f"sqlite backend diverged from memory on {label} {aspect}"
                )
    if memory["sqlite_peak_bytes"] >= memory["memory_peak_bytes"]:
        failures.append(
            f"sqlite peak at scale {big_scale:g} "
            f"({memory['sqlite_peak_bytes']} B) not below in-memory peak "
            f"at scale {args.scale:g} ({memory['memory_peak_bytes']} B)"
        )
    if throughput["throughput_ratio"] < args.min_throughput_ratio:
        failures.append(
            f"sharded import reached only "
            f"{throughput['throughput_ratio']:.2f}x of the in-memory "
            f"importer (floor {args.min_throughput_ratio}x)"
        )

    report = {
        "schema": SCHEMA,
        "seed": args.seed,
        "scale": args.scale,
        "big_scale": big_scale,
        "python": sys.version.split()[0],
        "parity": parity,
        "memory": memory,
        "throughput": throughput,
        "gates": {
            "min_throughput_ratio": args.min_throughput_ratio,
            "failures": failures,
        },
    }
    atomic_write_json(args.out, report)
    print(f"wrote {args.out}")
    if failures:
        for failure in failures:
            print(f"error: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
