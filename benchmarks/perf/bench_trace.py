"""Trace-path benchmark: generation throughput, cache, streaming import.

Measures the three layers of the trace-path overhaul and gates each:

* **generation** — events/s of the optimised tracer on the benchmark
  mix vs the frozen pre-rewrite snapshot
  (:mod:`benchmarks.perf.legacy_repro`); fails under
  ``--min-speedup``.  Both tracers must produce byte-identical binary
  dumps.
* **cache** — cold vs warm wall time of an end-to-end ``lockdoc
  derive`` against a throwaway cache directory; the warm run must stay
  under ``--max-warm-fraction`` of the cold run, and a trace reloaded
  from the cache must be byte-identical to fresh generation.
* **streaming import** — peak traced-allocation bytes (a peak-RSS
  proxy via :mod:`tracemalloc`) of importing the binary trace through
  :func:`~repro.tracing.serialize.open_binary_stream` vs materializing
  the event list first; the resulting observation tables must be
  equal.

Results land in ``BENCH_trace.json``::

    PYTHONPATH=src python -m benchmarks.perf.bench_trace \
        --scale 18 --out BENCH_trace.json

Timed generation runs are best-of-``--repeat``, each preceded by a
full ``gc.collect()`` — the optimised scheduler defers cycle
collection past the run, so without the pre-run collect a later
iteration pays the previous iteration's garbage inside its timing.
"""

from __future__ import annotations

import argparse
import gc
import hashlib
import io

import os
import subprocess
import sys
import tempfile
import time
import tracemalloc
from typing import Callable, Tuple

import repro.kernel  # noqa: F401  (must initialize before repro.tracing)
from repro.atomicio import atomic_write_json

#: Bump on any change to the JSON layout.
SCHEMA = "lockdoc-bench-trace/1"


def _run_new(seed: int, scale: float):
    from repro.workloads.mix import BenchmarkMix

    return BenchmarkMix(seed=seed, scale=scale).run().tracer


def _run_legacy(seed: int, scale: float):
    from benchmarks.perf.legacy_repro.workloads.mix import (
        BenchmarkMix as LegacyMix,
    )

    return LegacyMix(seed=seed, scale=scale).run().tracer


def _time_generation(
    run: Callable[[int, float], object], seed: int, scale: float, repeat: int
) -> Tuple[float, object]:
    """(best wall seconds, last tracer) over *repeat* timed runs."""
    best = float("inf")
    tracer = None
    for _ in range(max(1, repeat)):
        gc.collect()  # keep deferred garbage out of the timed region
        t0 = time.perf_counter()
        tracer = run(seed, scale)
        best = min(best, time.perf_counter() - t0)
    return best, tracer


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def bench_generation(seed: int, scale: float, repeat: int) -> dict:
    import benchmarks.perf.legacy_repro.kernel  # noqa: F401  (import order)
    from benchmarks.perf.legacy_repro.tracing.serialize import (
        dumps_events_binary as legacy_dumps,
        stacks_of as legacy_stacks_of,
    )
    from repro.tracing.serialize import dumps_events_binary, stacks_of

    new_s, new_tracer = _time_generation(_run_new, seed, scale, repeat)
    legacy_s, legacy_tracer = _time_generation(_run_legacy, seed, scale, repeat)
    events = len(new_tracer.events)
    new_dump = dumps_events_binary(new_tracer.events, stacks_of(new_tracer))
    # The legacy events are the snapshot's own classes; its serializer
    # writes the same byte format, so the dumps compare byte-for-byte.
    legacy_dump = legacy_dumps(
        legacy_tracer.events, legacy_stacks_of(legacy_tracer)
    )
    return {
        "events": events,
        "new_s": round(new_s, 4),
        "legacy_s": round(legacy_s, 4),
        "new_events_per_s": round(events / new_s, 1),
        "legacy_events_per_s": round(len(legacy_tracer.events) / legacy_s, 1),
        "speedup": round(legacy_s / new_s, 2),
        "identical_to_legacy": new_dump == legacy_dump,
        "trace_sha256": _sha256(new_dump),
        "trace_bytes": len(new_dump),
        "_dump": new_dump,  # stripped before writing the report
    }


def bench_cache(
    seed: int, scale: float, fresh_dump: bytes, cache_dir: str
) -> dict:
    """Cold/warm end-to-end derive + cached-reload divergence gate."""
    from repro import cache
    from repro.tracing.serialize import dumps_events_binary, stacks_of

    env = dict(os.environ, LOCKDOC_CACHE_DIR=cache_dir)
    env.setdefault("PYTHONPATH", "src")
    command = [
        sys.executable, "-m", "repro.cli", "derive",
        "--seed", str(seed), "--scale", str(scale),
    ]
    timings = {}
    for label in ("cold", "warm"):
        t0 = time.perf_counter()
        proc = subprocess.run(command, env=env, capture_output=True, text=True)
        timings[label] = time.perf_counter() - t0
        if proc.returncode != 0:
            raise RuntimeError(
                f"{label} derive failed (rc {proc.returncode}): {proc.stderr}"
            )

    # Reload the trace the cold run cached and compare byte-for-byte
    # against fresh in-process generation.
    saved = os.environ.get("LOCKDOC_CACHE_DIR")
    os.environ["LOCKDOC_CACHE_DIR"] = cache_dir
    try:
        run = cache.cached_run("mix", seed=seed, scale=scale)
        served_from_cache = isinstance(run, cache.CachedRun)
        reload_dump = dumps_events_binary(
            run.tracer.events, stacks_of(run.tracer)
        )
    finally:
        if saved is None:
            os.environ.pop("LOCKDOC_CACHE_DIR", None)
        else:
            os.environ["LOCKDOC_CACHE_DIR"] = saved
    return {
        "cold_s": round(timings["cold"], 4),
        "warm_s": round(timings["warm"], 4),
        "warm_fraction": round(timings["warm"] / timings["cold"], 4),
        "served_from_cache": served_from_cache,
        "reload_identical": reload_dump == fresh_dump,
    }


def bench_streaming(fresh_dump: bytes) -> dict:
    """Streaming vs materialised import: peak memory proxy + equality."""
    from repro.core.observations import ObservationTable
    from repro.db.importer import Importer
    from repro.tracing.serialize import load_binary, open_binary_stream
    from repro.workloads.registry import database_inputs

    def _import_materialized():
        structs, filters = database_inputs("vfs")
        events, stacks = load_binary(io.BytesIO(fresh_dump))
        return Importer(structs, filters).run(events, stacks)

    def _import_streaming():
        structs, filters = database_inputs("vfs")
        stream = open_binary_stream(io.BytesIO(fresh_dump))
        return Importer(structs, filters).run(stream.events, stream.stacks)

    peaks = {}
    tables = {}
    for label, importer in (
        ("materialized", _import_materialized),
        ("streaming", _import_streaming),
    ):
        gc.collect()
        tracemalloc.start()
        db = importer()
        _, peaks[label] = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        tables[label] = ObservationTable.from_database(db, split_subclasses=True)

    keys = list(tables["materialized"].keys())
    equal = keys == list(tables["streaming"].keys()) and all(
        tables["materialized"].sequences(*key)
        == tables["streaming"].sequences(*key)
        for key in keys
    )
    return {
        "materialized_peak_bytes": peaks["materialized"],
        "streaming_peak_bytes": peaks["streaming"],
        "peak_ratio": round(peaks["streaming"] / peaks["materialized"], 4)
        if peaks["materialized"]
        else None,
        "tables_equal": equal,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="benchmark the trace path; write BENCH_trace.json"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=float, default=18.0)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument(
        "--min-speedup", type=float, default=3.0,
        help="fail unless new/legacy generation speedup reaches this",
    )
    parser.add_argument(
        "--max-warm-fraction", type=float, default=0.10,
        help="fail unless warm derive wall time is at most this "
        "fraction of cold (fixed interpreter startup dominates at very "
        "small scales — relax there)",
    )
    parser.add_argument("--out", default="BENCH_trace.json")
    args = parser.parse_args(argv)

    generation = bench_generation(args.seed, args.scale, args.repeat)
    fresh_dump = generation.pop("_dump")
    print(
        f"generation: {generation['events']} events, "
        f"new={generation['new_s']:.3f}s "
        f"legacy={generation['legacy_s']:.3f}s "
        f"speedup={generation['speedup']}x "
        f"identical={generation['identical_to_legacy']}"
    )

    with tempfile.TemporaryDirectory(prefix="lockdoc-bench-cache-") as tmp:
        cache_rec = bench_cache(args.seed, args.scale, fresh_dump, tmp)
    print(
        f"cache: cold={cache_rec['cold_s']:.2f}s "
        f"warm={cache_rec['warm_s']:.2f}s "
        f"({cache_rec['warm_fraction']:.1%}) "
        f"reload_identical={cache_rec['reload_identical']}"
    )

    streaming = bench_streaming(fresh_dump)
    print(
        f"streaming import: peak {streaming['streaming_peak_bytes'] / 1e6:.1f} MB "
        f"vs materialized {streaming['materialized_peak_bytes'] / 1e6:.1f} MB "
        f"({streaming['peak_ratio']:.0%}), tables_equal={streaming['tables_equal']}"
    )

    failures = []
    if not generation["identical_to_legacy"]:
        failures.append("optimised tracer diverged from the legacy snapshot")
    if generation["speedup"] < args.min_speedup:
        failures.append(
            f"generation speedup {generation['speedup']}x below the "
            f"{args.min_speedup}x floor"
        )
    if not cache_rec["reload_identical"]:
        failures.append("cached trace reload diverged from fresh generation")
    if not cache_rec["served_from_cache"]:
        failures.append("second lookup was not served from the cache")
    if cache_rec["warm_fraction"] > args.max_warm_fraction:
        failures.append(
            f"warm derive took {cache_rec['warm_fraction']:.1%} of cold "
            f"(ceiling {args.max_warm_fraction:.0%})"
        )
    if not streaming["tables_equal"]:
        failures.append("streaming import diverged from materialized import")

    report = {
        "schema": SCHEMA,
        "seed": args.seed,
        "scale": args.scale,
        "repeat": args.repeat,
        "python": sys.version.split()[0],
        "generation": generation,
        "cache": cache_rec,
        "streaming": streaming,
        "gates": {
            "min_speedup": args.min_speedup,
            "max_warm_fraction": args.max_warm_fraction,
            "failures": failures,
        },
    }
    atomic_write_json(args.out, report)
    print(f"wrote {args.out}")
    if failures:
        for failure in failures:
            print(f"error: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
