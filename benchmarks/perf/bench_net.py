"""Net-slice benchmark: rule fidelity, plants, parity, fuzz growth.

Runs the netbench workload end-to-end against the net ground truth and
writes ``BENCH_net.json``::

    PYTHONPATH=src python -m benchmarks.perf.bench_net \
        --scale 4 --out BENCH_net.json

Exit status is 1 (and the ``net-smoke`` CI job fails) if any gate
misses:

* **fidelity** — the fraction of ground-truth targets whose mined
  winning rule equals the spec falls below the floor (default 90 %;
  the one expected miss is the documented ambivalent ``sk_state``
  read, whose sanctioned lock-free peek path outvotes ``sk_lock``);
* **plants** — any of the four planted deviations fails to surface as
  a rule violation;
* **parity** — the sqlite backend's rule export differs from the
  in-memory backend's by a single byte;
* **determinism** — a second netbench run at the same seed mines a
  different rule set;
* **fuzz growth** — a coverage-guided campaign over the net syscall
  vocabulary fails to grow pair coverage over the netbench baseline by
  the floor (default 10 %), or its corpus replay diverges.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time

from repro.atomicio import atomic_write_json
from repro.core.derivator import Derivator
from repro.core.observations import ObservationTable
from repro.core.rulesio import rules_to_json
from repro.core.violations import ViolationFinder
from repro.fuzz.orchestrator import (
    FuzzConfig,
    FuzzOrchestrator,
    baseline_coverage,
    replay_corpus,
)
from repro.kernel.net.groundtruth import (
    NET_MEMBER_BLACKLIST,
    NET_PLANTED_DEVIATIONS,
    build_net_specs,
)
from repro.workloads import registry
from repro.workloads.net import NetBench

#: Bump on any change to the JSON layout.
SCHEMA = "lockdoc-bench-net/1"


def _derive(db):
    table = ObservationTable.from_database(db, split_subclasses=True)
    return table, Derivator(0.9).derive(table)


def _fidelity(derivation):
    """(matched, total, misses) over every observable ground-truth
    target — no exclusions: the ambivalent members count as misses,
    exactly like the paper's Tab. 6 counts ambivalent targets."""
    specs = build_net_specs()
    matched, total, misses = 0, 0, []
    for name in sorted(specs):
        spec = specs[name]
        for member in spec.members:
            if member.member in spec.blacklist:
                continue
            if (name, member.member) in NET_MEMBER_BLACKLIST:
                continue
            for access in ("r", "w"):
                if member.weight_for(access) == 0:
                    continue
                d = derivation.get(name, member.member, access)
                if d is None:
                    continue
                total += 1
                expected = spec.expected_rule(member.member, access)
                if d.rule == expected:
                    matched += 1
                else:
                    misses.append(
                        f"{name}.{member.member}[{access}]: mined "
                        f"[{d.rule.format()}] expected [{expected.format()}]"
                    )
    return matched, total, misses


def _sqlite_rules(run, tmpdir: str) -> str:
    """Rule export mined through the out-of-core sqlite backend."""
    from repro.db import sqlstore

    tracer = run.tracer
    stacks = [tracer.stack(i) for i in range(tracer.stack_count)]
    structs, filters = registry.database_inputs("net")
    path = f"{tmpdir}/net-store.sqlite"
    sqlstore.build_store(path, tracer.events, stacks, structs, filters)
    store = sqlstore.SqliteTraceStore(path)
    return rules_to_json(Derivator(0.9).derive(store.fold(True)))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="run the net-slice gates; write BENCH_net.json"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=float, default=4.0)
    parser.add_argument("--min-fidelity", type=float, default=0.9)
    parser.add_argument("--generations", type=int, default=4)
    parser.add_argument("--population", type=int, default=10)
    parser.add_argument("--fuzz-baseline-scale", type=float, default=1.0)
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument(
        "--min-growth", type=float, default=0.10,
        help="required pair-coverage growth over the netbench baseline",
    )
    parser.add_argument("--out", default="BENCH_net.json")
    args = parser.parse_args(argv)

    # -- mine the netbench trace (twice: the determinism gate).
    t0 = time.perf_counter()
    run = NetBench(seed=args.seed, scale=args.scale).run()
    db = run.to_database()
    table, derivation = _derive(db)
    mine_s = time.perf_counter() - t0
    rules_json = rules_to_json(derivation)
    again = NetBench(seed=args.seed, scale=args.scale).run()
    rules_again = rules_to_json(_derive(again.to_database())[1])
    deterministic = rules_json == rules_again

    # -- fidelity vs the ground-truth specs.
    matched, total, misses = _fidelity(derivation)
    fidelity = matched / total if total else 0.0

    # -- the planted deviations must surface as violations.
    violations = ViolationFinder(derivation, table).find()
    violated = {(v.type_key, v.member, v.access_type) for v in violations}
    missing_plants = [
        f"{t}.{m}[{a}]"
        for t, m, a in NET_PLANTED_DEVIATIONS
        if (t, m, a) not in violated
    ]

    # -- backend parity: sqlite mining must match byte-for-byte.
    with tempfile.TemporaryDirectory(prefix="lockdoc-bench-net-") as tmpdir:
        parity = _sqlite_rules(run, tmpdir) == rules_json

    # -- coverage-guided fuzzing over the net vocabulary.
    t0 = time.perf_counter()
    baseline = baseline_coverage(
        args.seed, args.fuzz_baseline_scale, subsystem="net"
    )
    config = FuzzConfig(
        seed=args.seed,
        generations=args.generations,
        population=args.population,
        baseline_scale=args.fuzz_baseline_scale,
        jobs=args.jobs,
        subsystem="net",
    )
    outcome = FuzzOrchestrator(config).run(baseline=baseline)
    campaign_s = time.perf_counter() - t0
    corpus = outcome.corpus
    replay = replay_corpus(corpus)

    report = {
        "schema": SCHEMA,
        "python": sys.version.split()[0],
        "seed": args.seed,
        "scale": args.scale,
        "events": len(run.tracer.events),
        "fidelity": round(fidelity, 4),
        "fidelity_matched": matched,
        "fidelity_total": total,
        "fidelity_misses": misses,
        "planted": [f"{t}.{m}[{a}]" for t, m, a in NET_PLANTED_DEVIATIONS],
        "missing_plants": missing_plants,
        "violations": len(violations),
        "backend_parity": parity,
        "deterministic": deterministic,
        "mine_s": round(mine_s, 4),
        "fuzz_generations": args.generations,
        "fuzz_population": args.population,
        "fuzz_baseline_pairs": baseline.pair_count,
        "fuzz_pairs": corpus.global_coverage.pair_count,
        "fuzz_pair_growth": round(outcome.pair_growth, 4),
        "fuzz_corpus_entries": len(corpus.entries),
        "fuzz_replay_identical": replay.identical,
        "campaign_s": round(campaign_s, 4),
    }
    atomic_write_json(args.out, report)

    print(
        f"net: fidelity={matched}/{total} ({fidelity:.1%}) "
        f"violations={len(violations)} plants_found="
        f"{len(NET_PLANTED_DEVIATIONS) - len(missing_plants)}/"
        f"{len(NET_PLANTED_DEVIATIONS)} parity={parity} "
        f"fuzz_pairs={baseline.pair_count}->"
        f"{corpus.global_coverage.pair_count} (+{outcome.pair_growth:.1%})"
    )
    print(f"wrote {args.out}")

    errors = []
    if fidelity < args.min_fidelity:
        errors.append(
            f"rule fidelity {fidelity:.1%} below the "
            f"{args.min_fidelity:.0%} floor: {misses}"
        )
    if missing_plants:
        errors.append(f"planted deviations not surfaced: {missing_plants}")
    if not parity:
        errors.append("sqlite backend rules diverge from the memory backend")
    if not deterministic:
        errors.append("two netbench runs mined different rules")
    if outcome.pair_growth < args.min_growth:
        errors.append(
            f"fuzz pair growth {outcome.pair_growth:.1%} below the "
            f"{args.min_growth:.0%} floor"
        )
    if not replay.identical:
        errors.append(f"fuzz replay diverged on entries {replay.mismatches}")
    for message in errors:
        print(f"error: {message}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
