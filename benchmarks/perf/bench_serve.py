"""Analysis-daemon benchmark: envelope latency + chaos survival.

Boots real ``lockdoc serve run`` subprocesses (private runtime + cache
directories under /tmp) and measures the robustness envelope the daemon
wraps around every request:

* **latency** — cold derive through the daemon, then p50/p99 over warm
  repeats, against the local warm-cache baseline: the same op run
  through :func:`repro.serve.pool.run_task_sync` (fork + isolated
  execution, no socket), i.e. everything the daemon does per request
  except the network envelope.  Gate: ``warm_p99 <= 2 x`` that
  baseline — the envelope may tax a warm hit, but never double it.
  The raw in-process call (no isolation at all) is reported as
  ``inprocess_warm_s`` for context but not gated: per-request crash
  isolation is the point of the daemon, not overhead to optimize away.
* **coalescing** — concurrent identical requests must share one
  execution (>= 1 reply arrives with ``meta.coalesced``).
* **chaos gauntlet** — under worker crashes, stalls vs deadlines,
  flooding past the token budget, and torn cache entries, 100% of
  requests must terminate with a correct result or a classified error
  (never a hang or a traceback), and a truncated cache entry must be
  quarantined at startup and recomputed to the original answer.

Results land in ``BENCH_serve.json``::

    PYTHONPATH=src python -m benchmarks.perf.bench_serve \
        --scale 1.3 --out BENCH_serve.json
"""

from __future__ import annotations

import argparse
import os
import statistics
import subprocess
import sys
import tempfile
import threading
import time

import repro.kernel  # noqa: F401  (must initialize before repro.tracing)
from repro.atomicio import atomic_write_json
from repro.serve import ops
from repro.serve.client import RemoteClient, RemoteError
from repro.serve.protocol import ERROR_KINDS, E_RETRY_AFTER
from repro.serve.slog import read_events

#: Bump on any change to the JSON layout.
SCHEMA = "lockdoc-bench-serve/1"

_REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


class Daemon:
    """One ``lockdoc serve run`` subprocess plus its runtime dirs."""

    def __init__(self, extra_args=(), serve_dir=None, cache_dir=None):
        self.serve_dir = serve_dir or tempfile.mkdtemp(prefix="bsd", dir="/tmp")
        self.cache_dir = cache_dir or tempfile.mkdtemp(prefix="bsc", dir="/tmp")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(_REPO, "src")
        env["LOCKDOC_SERVE_DIR"] = self.serve_dir
        env["LOCKDOC_CACHE_DIR"] = self.cache_dir
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "run", *extra_args],
            env=env, cwd=_REPO,
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
        )
        self.socket_path = os.path.join(self.serve_dir, "serve.sock")
        self.log_path = os.path.join(self.serve_dir, "serve.log.jsonl")
        probe = self.client(attempts=1)
        deadline = time.monotonic() + 60.0
        while not probe.ping():
            if self.process.poll() is not None or time.monotonic() > deadline:
                raise RuntimeError(
                    "daemon did not come up: "
                    + self.process.stderr.read().decode(errors="replace")
                )
            time.sleep(0.1)

    def client(self, **kwargs):
        kwargs.setdefault("attempts", 1)
        return RemoteClient(socket_path=self.socket_path, **kwargs)

    def close(self):
        if self.process.poll() is None:
            if not self.client().shutdown():
                self.process.terminate()
            try:
                self.process.wait(timeout=20)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=5)
        self.process.stderr.close()


def _percentile(samples, q):
    ranked = sorted(samples)
    index = min(len(ranked) - 1, max(0, round(q * (len(ranked) - 1))))
    return ranked[index]


def _trace_file(directory: str, scale: float) -> str:
    from repro.tracing import serialize
    from repro.workloads.racer import run_racer

    path = os.path.join(directory, "racer.bin")
    with open(path, "wb") as fp:
        serialize.dump_binary(run_racer(seed=0, scale=scale).tracer, fp)
    return path


def bench_latency(scale: float, warm_requests: int) -> dict:
    """Cold/warm latency through the daemon vs the in-process baseline."""
    params = {"scale": scale}
    daemon = Daemon()
    try:
        client = daemon.client()
        t0 = time.perf_counter()
        cold = client.request("derive", params, deadline=600)
        cold_s = time.perf_counter() - t0

        warm = []
        for _ in range(warm_requests):
            t0 = time.perf_counter()
            reply = client.request("derive", params, deadline=600)
            warm.append(time.perf_counter() - t0)
            assert reply.result == cold.result
    finally:
        daemon.close()

    # Local warm-cache baseline over the daemon's own cache dir: the
    # identical isolated execution (fork + run, crash contained), just
    # without the socket/asyncio envelope in front of it.
    from repro.serve import pool

    os.environ["LOCKDOC_CACHE_DIR"] = daemon.cache_dir
    try:
        checked = ops.validate("derive", params)
        local = []
        for _ in range(max(5, warm_requests // 3)):
            t0 = time.perf_counter()
            outcome = pool.run_task_sync("derive", checked)
            local.append(time.perf_counter() - t0)
        assert outcome.status == "ok"
        assert outcome.result["text"] == cold.result["text"]
        inproc = []
        for _ in range(5):
            t0 = time.perf_counter()
            result = ops.execute("derive", checked)
            inproc.append(time.perf_counter() - t0)
        assert result["text"] == cold.result["text"]
    finally:
        del os.environ["LOCKDOC_CACHE_DIR"]

    local_warm_s = statistics.median(local)
    return {
        "scale": scale,
        "cold_s": round(cold_s, 4),
        "warm_requests": warm_requests,
        "warm_p50_s": round(_percentile(warm, 0.50), 4),
        "warm_p99_s": round(_percentile(warm, 0.99), 4),
        "local_warm_s": round(local_warm_s, 4),
        "inprocess_warm_s": round(statistics.median(inproc), 4),
        "warm_p99_over_local": round(_percentile(warm, 0.99) / local_warm_s, 2),
    }


def bench_coalescing(scale: float, fanout: int) -> dict:
    """Concurrent identical cold requests share a single execution."""
    params = {"scale": scale}
    daemon = Daemon()
    try:
        client = daemon.client()
        replies = [None] * fanout

        def call(index):
            replies[index] = client.request("derive", params, deadline=600)

        threads = [
            threading.Thread(target=call, args=(i,)) for i in range(fanout)
        ]
        t0 = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall_s = time.perf_counter() - t0
    finally:
        daemon.close()

    assert all(r is not None for r in replies)
    assert all(r.result == replies[0].result for r in replies)
    coalesced = sum(1 for r in replies if r.meta.get("coalesced"))
    return {
        "fanout": fanout,
        "coalesced": coalesced,
        "executions": fanout - coalesced,
        "wall_s": round(wall_s, 4),
    }


def _classified_burst(daemon, requests, deadline, param_of) -> dict:
    """Fire *requests* sequential requests; classify every outcome."""
    outcomes = {"ok": 0}
    unclassified = 0
    for index in range(requests):
        client = daemon.client(client_id=f"bench-{index % 4}")
        try:
            reply = client.request("health", param_of(index), deadline=deadline)
            assert reply.result["exit_code"] in (0, 1)
            outcomes["ok"] += 1
        except RemoteError as exc:
            if exc.kind in ERROR_KINDS:
                outcomes[exc.kind] = outcomes.get(exc.kind, 0) + 1
            else:
                unclassified += 1
        except Exception:
            unclassified += 1
    return {"outcomes": outcomes, "unclassified": unclassified}


def bench_chaos(trace_scale: float, requests: int) -> dict:
    """Crash/stall chaos + flood: everything terminates classified."""
    staging = tempfile.mkdtemp(prefix="bst", dir="/tmp")
    trace = _trace_file(staging, trace_scale)

    chaos_daemon = Daemon(extra_args=[
        "--chaos", "crash:0.35,stall-sometimes:0.35", "--chaos-seed", "11",
    ])
    try:
        chaos = _classified_burst(
            chaos_daemon, requests, deadline=60.0,
            param_of=lambda i: {
                "trace": trace, "registry": "racer", "diagnostics": 10 + i,
            },
        )
    finally:
        chaos_daemon.close()

    flood_daemon = Daemon(extra_args=["--rate", "0.5", "--burst", "2"])
    try:
        flood = _classified_burst(
            flood_daemon, requests, deadline=20.0,
            param_of=lambda i: {
                "trace": trace, "registry": "racer", "diagnostics": 10 + i,
            },
        )
    finally:
        flood_daemon.close()

    total = 2 * requests
    unclassified = chaos["unclassified"] + flood["unclassified"]
    return {
        "requests": total,
        "chaos_outcomes": chaos["outcomes"],
        "flood_outcomes": flood["outcomes"],
        "unclassified": unclassified,
        "survival": round((total - unclassified) / total, 4),
        "flood_shed": flood["outcomes"].get(E_RETRY_AFTER, 0),
    }


def bench_truncation(scale: float) -> dict:
    """Torn cache entry: quarantined at startup, recomputed identically."""
    first = Daemon()
    try:
        warm = first.client().request("derive", {"scale": scale}, deadline=600)
        torn = 0
        for name in os.listdir(first.cache_dir):
            if name.endswith(".trace.bin"):
                path = os.path.join(first.cache_dir, name)
                payload = open(path, "rb").read()
                with open(path, "wb") as fp:
                    fp.write(payload[:-64])
                torn += 1
    finally:
        first.close()

    rebuilt = Daemon(serve_dir=first.serve_dir, cache_dir=first.cache_dir)
    try:
        start = [
            e for e in read_events(rebuilt.log_path) if e["event"] == "start"
        ][-1]
        recomputed = rebuilt.client().request(
            "derive", {"scale": scale}, deadline=600
        )
    finally:
        rebuilt.close()
    return {
        "torn_entries": torn,
        "quarantined": len(start["sweep"]["quarantined"]),
        "recomputed_identical": recomputed.result == warm.result,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="benchmark the analysis daemon; write BENCH_serve.json"
    )
    parser.add_argument(
        "--scale", type=float, default=1.3,
        help="derive scale for the latency/coalescing stages",
    )
    parser.add_argument("--warm-requests", type=int, default=30)
    parser.add_argument("--fanout", type=int, default=4)
    parser.add_argument(
        "--chaos-requests", type=int, default=12,
        help="requests per chaos stage (crash/stall and flood)",
    )
    parser.add_argument(
        "--max-warm-ratio", type=float, default=2.0,
        help="fail if daemon warm p99 exceeds this multiple of the "
        "in-process warm-cache latency",
    )
    parser.add_argument("--out", default="BENCH_serve.json")
    args = parser.parse_args(argv)

    latency = bench_latency(args.scale, args.warm_requests)
    print(
        f"latency: cold {latency['cold_s']:.3f}s, warm p50 "
        f"{latency['warm_p50_s'] * 1000:.1f}ms p99 "
        f"{latency['warm_p99_s'] * 1000:.1f}ms "
        f"(local warm {latency['local_warm_s'] * 1000:.1f}ms, "
        f"ratio {latency['warm_p99_over_local']:.2f})"
    )

    coalescing = bench_coalescing(args.scale + 0.01, args.fanout)
    print(
        f"coalescing: {coalescing['fanout']} concurrent identical requests "
        f"-> {coalescing['executions']} execution(s), "
        f"{coalescing['coalesced']} coalesced in {coalescing['wall_s']:.3f}s"
    )

    chaos = bench_chaos(0.5, args.chaos_requests)
    print(
        f"chaos: {chaos['requests']} requests under crash/stall/flood, "
        f"survival {chaos['survival']:.0%}, "
        f"{chaos['flood_shed']} shed with retry hints; "
        f"outcomes {chaos['chaos_outcomes']} / {chaos['flood_outcomes']}"
    )

    truncation = bench_truncation(args.scale + 0.02)
    print(
        f"truncation: {truncation['torn_entries']} torn entries, "
        f"{truncation['quarantined']} quarantined at startup, "
        f"recompute identical: {truncation['recomputed_identical']}"
    )

    gates = {
        "warm_p99_within_ratio":
            latency["warm_p99_over_local"] <= args.max_warm_ratio,
        "coalesced_at_least_one": coalescing["coalesced"] >= 1,
        "chaos_survival_total": chaos["survival"] == 1.0,
        "flood_shed_observed": chaos["flood_shed"] >= 1,
        "truncation_recovered":
            truncation["quarantined"] >= 1
            and truncation["recomputed_identical"],
    }

    report = {
        "schema": SCHEMA,
        "config": {
            "scale": args.scale,
            "warm_requests": args.warm_requests,
            "fanout": args.fanout,
            "chaos_requests": args.chaos_requests,
            "max_warm_ratio": args.max_warm_ratio,
            "python": sys.version.split()[0],
        },
        "latency": latency,
        "coalescing": coalescing,
        "chaos": chaos,
        "truncation": truncation,
        "gates": gates,
    }
    atomic_write_json(args.out, report)
    print(f"wrote {args.out}")

    failed = sorted(name for name, ok in gates.items() if not ok)
    if failed:
        print(f"GATES FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    print("all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
