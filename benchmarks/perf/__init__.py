"""Performance-benchmark harness (the repo's perf trajectory).

Unlike ``benchmarks/`` (pytest-benchmark regenerations of the paper's
tables), this package holds *timed* end-to-end harnesses that emit
machine-readable ``BENCH_*.json`` artifacts, so CI and future PRs can
track wall-clock numbers over time.

Run the derivation benchmark with::

    PYTHONPATH=src python -m benchmarks.perf.bench_derive \
        --scale 18 --jobs 4 --out BENCH_derive.json
"""
