"""Frozen leaf modules needed by the vfs op specs (lockrefs, rules)."""
