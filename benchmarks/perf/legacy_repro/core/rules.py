"""Locking rules and their compliance semantics.

A locking rule specifies *a set of locks and a lock ordering* required
for a read or write access to a data-structure member (Sec. 5.4).  An
observation (the ordered lock references held during an access)
**complies** with a rule iff every rule lock is held and the rule locks
were taken in rule order — additional, interleaved locks are harmless:

    rule  a -> b   vs.  held  a -> c -> b     => complies
    rule  a -> b   vs.  held  b -> a          => violates (order)
    rule  a -> b   vs.  held  a               => violates (b missing)

i.e. the rule must be a *subsequence* of the held-lock sequence.
The empty rule ("no lock needed") complies with every observation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

from benchmarks.perf.legacy_repro.core.lockrefs import LockRef, LockSeq, satisfies

#: Separator used in the textual rule notation (matches Tab. 5).
ARROW = " -> "


@dataclass(frozen=True)
class LockingRule:
    """An ordered sequence of lock references; empty means "no lock"."""

    locks: LockSeq = ()

    def __post_init__(self) -> None:
        if len(set(self.locks)) != len(self.locks):
            raise ValueError(f"rule repeats a lock: {self.locks}")

    @classmethod
    def no_lock(cls) -> "LockingRule":
        return cls(())

    @classmethod
    def of(cls, *locks: LockRef) -> "LockingRule":
        return cls(tuple(locks))

    @property
    def is_no_lock(self) -> bool:
        return not self.locks

    def __len__(self) -> int:
        return len(self.locks)

    def format(self) -> str:
        if not self.locks:
            return "no lock needed"
        return ARROW.join(ref.format() for ref in self.locks)

    @classmethod
    def parse(cls, text: str) -> "LockingRule":
        """Inverse of :meth:`format`."""
        text = text.strip()
        if not text or text == "no lock needed":
            return cls.no_lock()
        refs = tuple(LockRef.parse(part) for part in text.split("->"))
        return cls(refs)

    def __str__(self) -> str:
        return self.format()


def complies(observation: Sequence[LockRef], rule: LockingRule) -> bool:
    """True iff *observation* (held locks in acquisition order) complies
    with *rule* (subsequence semantics; see module docstring)."""
    position = 0
    needed = rule.locks
    if not needed:
        return True
    for held in observation:
        if satisfies(held, needed[position]):
            position += 1
            if position == len(needed):
                return True
    return False


def support(
    observations: Iterable[Tuple[LockSeq, int]], rule: LockingRule
) -> Tuple[int, int]:
    """Count rule support over ``(lock_sequence, count)`` pairs.

    Returns ``(s_a, total)`` — the absolute support and the total number
    of observations; relative support is ``s_a / total``.
    """
    absolute = 0
    total = 0
    for sequence, count in observations:
        total += count
        if complies(sequence, rule):
            absolute += count
    return absolute, total
