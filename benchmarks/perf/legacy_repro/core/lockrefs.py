"""Lock abstraction: from lock *instances* to lock *references*.

A trace contains thousands of lock instances (41 589 in the paper's
run), but locking rules talk about lock *roles*: the paper's rule model
is "a sequence of locks — global, embedded within the same object, or
member of 'some' other object" (Sec. 8).  Accordingly a
:class:`LockRef` names a lock by scope:

* ``GLOBAL``  — a static lock such as ``inode_hash_lock`` or the
  synthetic ``rcu``/``softirq``/``hardirq`` locks,
* ``ES``      — *embedded same*: a lock member of the very object the
  access goes to (``ES(i_lock in inode)``, printed like Fig. 8),
* ``EO``      — *embedded other*: a lock member of some other object
  (``EO(wb.list_lock in backing_dev_info)``).

Two different inode instances' ``i_lock`` both abstract to
``ES(i_lock in inode)`` when each protects its own structure — but
holding inode *A*'s lock while writing inode *B* abstracts to
``EO(i_lock in inode)``, which is exactly how LockDoc exposes the
``i_hash`` neighbour-write mystery (Sec. 7.4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple


class Scope(enum.Enum):
    """Where a lock lives relative to the accessed object."""
    GLOBAL = "global"
    ES = "ES"  # embedded in the same object as the accessed member
    EO = "EO"  # embedded in another object

    def __lt__(self, other: "Scope") -> bool:
        # Stable ordering so LockRef tuples sort deterministically.
        if not isinstance(other, Scope):
            return NotImplemented
        return self.value < other.value


@dataclass(frozen=True, order=True)
class LockRef:
    """An abstract lock reference.

    Attributes:
        scope: global / embedded-same / embedded-other.
        name: lock variable name (``"i_lock"``, ``"inode_hash_lock"``).
        owner_type: for ES/EO, the struct type containing the lock
            (``"inode"``); None for globals.
        mode: ``"r"`` or ``"w"`` — how the lock is held.  Reader/writer
            primitives yield distinct refs per side, matching the paper's
            distinct ``read_lock``/``write_lock`` instrumentation.
    """

    scope: Scope
    name: str
    owner_type: Optional[str] = None
    mode: str = "w"

    def __post_init__(self) -> None:
        if self.scope == Scope.GLOBAL and self.owner_type is not None:
            raise ValueError("global lock refs carry no owner type")
        if self.scope != Scope.GLOBAL and not self.owner_type:
            raise ValueError(f"{self.scope.value} lock ref requires owner_type")

    @classmethod
    def global_(cls, name: str, mode: str = "w") -> "LockRef":
        return cls(Scope.GLOBAL, name, None, mode)

    @classmethod
    def es(cls, name: str, owner_type: str, mode: str = "w") -> "LockRef":
        return cls(Scope.ES, name, owner_type, mode)

    @classmethod
    def eo(cls, name: str, owner_type: str, mode: str = "w") -> "LockRef":
        return cls(Scope.EO, name, owner_type, mode)

    def format(self) -> str:
        """Fig. 8 / Tab. 5-style rendering."""
        suffix = ":r" if self.mode == "r" else ""
        if self.scope == Scope.GLOBAL:
            return f"{self.name}{suffix}"
        return f"{self.scope.value}({self.name} in {self.owner_type}){suffix}"

    @classmethod
    def parse(cls, text: str) -> "LockRef":
        """Inverse of :meth:`format` (used by the documented-rule corpus)."""
        text = text.strip()
        mode = "w"
        if text.endswith(":r"):
            mode = "r"
            text = text[:-2]
        for scope in (Scope.ES, Scope.EO):
            prefix = scope.value + "("
            if text.startswith(prefix) and text.endswith(")"):
                inner = text[len(prefix):-1]
                name, sep, owner = inner.partition(" in ")
                if not sep:
                    raise ValueError(f"malformed lock ref {text!r}")
                return cls(scope, name.strip(), owner.strip(), mode)
        if "(" in text or ")" in text:
            raise ValueError(f"malformed lock ref {text!r}")
        return cls(Scope.GLOBAL, text, None, mode)

    def __str__(self) -> str:
        return self.format()


LockSeq = Tuple[LockRef, ...]


def satisfies(held: LockRef, needed: LockRef) -> bool:
    """True if holding *held* satisfies a rule's *needed* reference.

    Identity must match on scope/name/owner; for the mode, holding the
    exclusive (write) side of a reader/writer lock is strictly stronger
    than the shared side, so ``w`` satisfies a needed ``r``.
    """
    if (held.scope, held.name, held.owner_type) != (
        needed.scope,
        needed.name,
        needed.owner_type,
    ):
        return False
    if held.mode == needed.mode:
        return True
    return needed.mode == "r" and held.mode == "w"


def dedup_refs(refs: Sequence[LockRef]) -> LockSeq:
    """Drop repeated references, keeping first (acquisition) positions.

    Holding two different instances that abstract to the same ref (e.g.
    two inode ``i_lock``\\ s while accessing a third object) collapses to
    one EO reference — rule semantics cannot distinguish them.
    """
    seen = set()
    out = []
    for ref in refs:
        if ref not in seen:
            seen.add(ref)
            out.append(ref)
    return tuple(out)
