"""Byte-addressed heap allocator of the simulated kernel.

The paper's tracing phase records dynamic memory allocations and
deallocations of the observed data structures (Sec. 5.2); the analysis
later maps raw access addresses back to ``(allocation, member)`` pairs.
To exercise the same machinery this allocator

* hands out real byte addresses from a flat address space,
* keeps an :class:`Allocation` record per live object (address, size,
  data type, subclass, lifetime), and
* **reuses addresses** of freed allocations (kmalloc caches do), so the
  post-processing step must respect allocation lifetimes instead of
  treating addresses as unique keys.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from benchmarks.perf.legacy_repro.kernel.errors import BadAccessError, DoubleFreeError, MemoryError_

#: Base of the simulated kernel heap (an arbitrary, kernel-looking value).
HEAP_BASE = 0xFFFF_8800_0000_0000
#: Base of the static/global data segment.
STATIC_BASE = 0xFFFF_FFFF_8100_0000
#: Allocation granularity; mirrors kmalloc's minimum alignment.
ALIGN = 8

_alloc_ids = itertools.count(1)


def reset_alloc_ids() -> None:
    """Restart the allocation-id counter (trace reproducibility helper)."""
    global _alloc_ids
    _alloc_ids = itertools.count(1)


def _align_up(n: int, align: int = ALIGN) -> int:
    return (n + align - 1) & ~(align - 1)


@dataclass
class Allocation:
    """A live (or historical) dynamic allocation.

    Attributes:
        alloc_id: unique id (never reused, unlike the address).
        address: start address.
        size: size in bytes.
        data_type: name of the struct stored here (``"inode"``...).
        subclass: optional subclass tag (``"ext4"`` for an ext4 inode);
            realizes the paper's subclass handling (Sec. 5.3, item 1).
        alloc_ts / free_ts: event timestamps delimiting the lifetime
            (``free_ts`` is None while live).
    """

    address: int
    size: int
    data_type: str
    subclass: Optional[str] = None
    alloc_id: int = field(default_factory=lambda: next(_alloc_ids))
    alloc_ts: int = 0
    free_ts: Optional[int] = None

    @property
    def live(self) -> bool:
        return self.free_ts is None

    def contains(self, address: int, size: int = 1) -> bool:
        """True if ``[address, address+size)`` lies inside this allocation."""
        return self.address <= address and address + size <= self.address + self.size

    def offset_of(self, address: int) -> int:
        """Byte offset of *address* within this allocation."""
        if not self.contains(address):
            raise BadAccessError(
                f"address {address:#x} outside allocation {self.alloc_id}"
            )
        return address - self.address


class Allocator:
    """Bump allocator with per-size free lists (address reuse).

    Also owns the static segment used for global variables such as
    ``inode_hash_lock`` — statics get addresses but no Allocation
    record, matching the paper's distinction between the 821 static and
    40 768 embedded locks (Sec. 7.2).
    """

    def __init__(self) -> None:
        self._next = HEAP_BASE
        self._next_static = STATIC_BASE
        self._free_lists: Dict[int, List[int]] = {}
        self._live_by_addr: Dict[int, Allocation] = {}
        self.history: List[Allocation] = []
        self.alloc_count = 0
        self.free_count = 0

    # ------------------------------------------------------------------
    # Dynamic allocations
    # ------------------------------------------------------------------

    def alloc(
        self,
        size: int,
        data_type: str,
        subclass: Optional[str] = None,
        timestamp: int = 0,
    ) -> Allocation:
        """Allocate *size* bytes for an instance of *data_type*."""
        if size <= 0:
            raise MemoryError_(f"invalid allocation size {size}")
        size = _align_up(size)
        free = self._free_lists.get(size)
        if free:
            address = free.pop()
        else:
            address = self._next
            self._next += size
        record = Allocation(
            address=address,
            size=size,
            data_type=data_type,
            subclass=subclass,
            alloc_ts=timestamp,
        )
        self._live_by_addr[address] = record
        self.history.append(record)
        self.alloc_count += 1
        return record

    def free(self, allocation: Allocation, timestamp: int = 0) -> None:
        """Free a live allocation; its address becomes reusable."""
        if not allocation.live:
            raise DoubleFreeError(
                f"double free of allocation {allocation.alloc_id} "
                f"({allocation.data_type} @ {allocation.address:#x})"
            )
        current = self._live_by_addr.get(allocation.address)
        if current is not allocation:
            raise DoubleFreeError(
                f"free of stale allocation {allocation.alloc_id}"
            )
        allocation.free_ts = timestamp
        del self._live_by_addr[allocation.address]
        self._free_lists.setdefault(allocation.size, []).append(allocation.address)
        self.free_count += 1

    # ------------------------------------------------------------------
    # Static segment
    # ------------------------------------------------------------------

    def alloc_static(self, size: int) -> int:
        """Reserve *size* bytes in the static segment; returns the address."""
        size = _align_up(size)
        address = self._next_static
        self._next_static += size
        return address

    def is_static_address(self, address: int) -> bool:
        return STATIC_BASE <= address < self._next_static

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def find_live(self, address: int) -> Optional[Allocation]:
        """Find the live allocation containing *address* (linear in the
        number of live allocations only for interior pointers; start
        addresses resolve in O(1))."""
        exact = self._live_by_addr.get(address)
        if exact is not None:
            return exact
        for allocation in self._live_by_addr.values():
            if allocation.contains(address):
                return allocation
        return None

    @property
    def live_allocations(self) -> Tuple[Allocation, ...]:
        return tuple(self._live_by_addr.values())

    def live_of_type(self, data_type: str) -> List[Allocation]:
        return [a for a in self._live_by_addr.values() if a.data_type == data_type]
